#!/usr/bin/env python
"""Run the benchmark-regression suite and compare against the baseline.

Runs one of the benchmark suites under pytest-benchmark, pulls each
benchmark's median, and compares it with the suite's baseline file at
the repo root:

* ``--suite engine`` (default): ``benchmarks/bench_regression.py``
  vs ``BENCH_ENGINE.json`` — engines + schedule generation.
* ``--suite sweep``: ``benchmarks/bench_sweep.py`` vs
  ``BENCH_SWEEP.json`` — serial/parallel full-figure sweeps and the
  disk-cache cold/warm paths.
* ``--suite runtime``: ``benchmarks/bench_runtime.py`` vs
  ``BENCH_RUNTIME.json`` — the actor runtime (collective execution,
  fault repair, one differential runtime-vs-engine check).
* ``--suite service``: ``benchmarks/bench_service.py`` vs
  ``BENCH_SERVICE.json`` — the multi-tenant collective service
  (scenario runs per policy, plus the admission-constrained path).
* ``--suite workload``: ``benchmarks/bench_workload.py`` vs
  ``BENCH_WORKLOAD.json`` — workload DAG steps (pipeline, MoE,
  contended mice flows, the 1024-node training step, runtime backend).
* ``--suite topology``: ``benchmarks/bench_topology.py`` vs
  ``BENCH_TOPOLOGY.json`` — the torus paths (ring-decomposition trees,
  the Jung–Sakho all-broadcast, torus collectives end to end) and the
  vectorized adjacency resolution.

* ``python scripts/bench_compare.py`` — fail (exit 1) when any median
  exceeds its baseline by more than ``--threshold`` (default 50%) *and*
  by more than ``--min-delta`` seconds (absolute floor shielding
  microsecond-scale benchmarks from scheduler noise).
* ``python scripts/bench_compare.py --update`` — rewrite the baseline
  with the freshly measured medians.

New benchmarks (no baseline entry) and orphaned baseline entries are
reported but never fail the comparison; refresh with ``--update``.
Timings are machine-dependent: refresh the baseline when switching
hardware rather than chasing phantom regressions.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: suite name -> (benchmark file, baseline file at the repo root)
SUITES = {
    "engine": ("benchmarks/bench_regression.py", "BENCH_ENGINE.json"),
    "sweep": ("benchmarks/bench_sweep.py", "BENCH_SWEEP.json"),
    "runtime": ("benchmarks/bench_runtime.py", "BENCH_RUNTIME.json"),
    "service": ("benchmarks/bench_service.py", "BENCH_SERVICE.json"),
    "workload": ("benchmarks/bench_workload.py", "BENCH_WORKLOAD.json"),
    "topology": ("benchmarks/bench_topology.py", "BENCH_TOPOLOGY.json"),
}


def run_benchmarks(bench_file: Path, pytest_args: list[str]) -> dict[str, float]:
    """Run the regression suite; return {test name: median seconds}."""
    with tempfile.TemporaryDirectory() as tmp:
        json_path = Path(tmp) / "bench.json"
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        cmd = [
            sys.executable,
            "-m",
            "pytest",
            str(bench_file),
            f"--benchmark-json={json_path}",
            "-q",
            *pytest_args,
        ]
        proc = subprocess.run(cmd, cwd=REPO_ROOT, env=env)
        if proc.returncode != 0:
            sys.exit(f"benchmark run failed (pytest exit {proc.returncode})")
        data = json.loads(json_path.read_text())
    return {b["name"]: b["stats"]["median"] for b in data["benchmarks"]}


def load_baseline(baseline_path: Path) -> dict:
    if not baseline_path.exists():
        return {}
    return json.loads(baseline_path.read_text())


def save_baseline(
    medians: dict[str, float], bench_file: Path, baseline_path: Path
) -> None:
    payload = {
        "_meta": {
            "updated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "python": sys.version.split()[0],
            "platform": sys.platform,
            "cpu_count": os.cpu_count(),
            "suite": str(bench_file.relative_to(REPO_ROOT)),
            "stat": "median seconds per round",
        },
        "benchmarks": {
            name: {"median": medians[name]} for name in sorted(medians)
        },
    }
    baseline_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"baseline written: {baseline_path}")


def compare(
    medians: dict[str, float],
    baseline: dict,
    threshold: float,
    min_delta: float,
) -> tuple[int, dict]:
    """Print the comparison; return (exit code, JSON-able report)."""
    recorded = baseline.get("benchmarks", {})
    regressions = []
    rows = []
    width = max((len(n) for n in medians), default=0)
    for name in sorted(medians):
        median = medians[name]
        entry = recorded.get(name)
        if entry is None:
            print(f"{name:<{width}}  {median:>10.4f}s  (new - no baseline)")
            rows.append({"name": name, "median": median, "status": "new"})
            continue
        base = entry["median"]
        ratio = median / base if base > 0 else float("inf")
        marker = ""
        status = "ok"
        if ratio > 1.0 + threshold and median - base > min_delta:
            marker = "  REGRESSION"
            status = "regression"
            regressions.append((name, base, median, ratio))
        print(
            f"{name:<{width}}  {median:>10.4f}s  baseline {base:.4f}s  "
            f"x{ratio:.2f}{marker}"
        )
        rows.append(
            {
                "name": name,
                "median": median,
                "baseline": base,
                "ratio": ratio if ratio != float("inf") else None,
                "status": status,
            }
        )
    for name in sorted(set(recorded) - set(medians)):
        print(f"{name:<{width}}  (baseline entry has no benchmark - stale?)")
        rows.append(
            {
                "name": name,
                "baseline": recorded[name]["median"],
                "status": "stale",
            }
        )
    if regressions:
        print(
            f"\n{len(regressions)} regression(s) beyond {threshold:.0%} "
            "(rerun, or refresh with --update if intentional):"
        )
        for name, base, median, ratio in regressions:
            print(f"  {name}: {base:.4f}s -> {median:.4f}s (x{ratio:.2f})")
    else:
        print("\nno regressions")
    report = {
        "threshold": threshold,
        "min_delta": min_delta,
        "regressions": len(regressions),
        "passed": not regressions,
        "benchmarks": rows,
    }
    return (1 if regressions else 0), report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--suite",
        choices=sorted(SUITES),
        default="engine",
        help="benchmark suite to run (default: engine)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite BENCH_ENGINE.json with the measured medians",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.5,
        help="allowed fractional slowdown before failing (default 0.5)",
    )
    parser.add_argument(
        "--min-delta",
        type=float,
        default=0.005,
        help="absolute slowdown in seconds a regression must also exceed "
        "(default 0.005)",
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        help="also write the comparison as a JSON report (for CI artifacts)",
    )
    parser.add_argument(
        "pytest_args",
        nargs="*",
        help="extra arguments forwarded to pytest (after --)",
    )
    args = parser.parse_args()

    bench_rel, baseline_rel = SUITES[args.suite]
    bench_file = REPO_ROOT / bench_rel
    baseline_path = REPO_ROOT / baseline_rel
    medians = run_benchmarks(bench_file, args.pytest_args)
    if not medians:
        sys.exit("no benchmark results collected")
    if args.update:
        save_baseline(medians, bench_file, baseline_path)
        return 0
    baseline = load_baseline(baseline_path)
    if not baseline:
        sys.exit(
            f"no baseline at {baseline_path}; create one with --update"
        )
    base_cpus = baseline.get("_meta", {}).get("cpu_count")
    if base_cpus is not None and base_cpus != os.cpu_count():
        print(
            f"warning: baseline captured with cpu_count={base_cpus} but "
            f"this machine has {os.cpu_count()}; timings may not be "
            "comparable (refresh with --update after switching hardware)",
            file=sys.stderr,
        )
    code, report = compare(medians, baseline, args.threshold, args.min_delta)
    if args.report:
        report = {
            "suite": args.suite,
            "baseline_file": baseline_rel,
            "generated": datetime.now(timezone.utc).isoformat(
                timespec="seconds"
            ),
            **report,
        }
        Path(args.report).write_text(json.dumps(report, indent=2) + "\n")
        print(f"report written: {args.report}")
    return code


if __name__ == "__main__":
    raise SystemExit(main())
