#!/usr/bin/env python
"""Run the benchmark-regression suite and compare against the baseline.

Runs ``benchmarks/bench_regression.py`` under pytest-benchmark, pulls
each benchmark's median, and compares it with ``BENCH_ENGINE.json`` at
the repo root:

* ``python scripts/bench_compare.py`` — fail (exit 1) when any median
  exceeds its baseline by more than ``--threshold`` (default 50%) *and*
  by more than ``--min-delta`` seconds (absolute floor shielding
  microsecond-scale benchmarks from scheduler noise).
* ``python scripts/bench_compare.py --update`` — rewrite the baseline
  with the freshly measured medians.

New benchmarks (no baseline entry) and orphaned baseline entries are
reported but never fail the comparison; refresh with ``--update``.
Timings are machine-dependent: refresh the baseline when switching
hardware rather than chasing phantom regressions.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_ENGINE.json"
BENCH_FILE = REPO_ROOT / "benchmarks" / "bench_regression.py"


def run_benchmarks(pytest_args: list[str]) -> dict[str, float]:
    """Run the regression suite; return {test name: median seconds}."""
    with tempfile.TemporaryDirectory() as tmp:
        json_path = Path(tmp) / "bench.json"
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        cmd = [
            sys.executable,
            "-m",
            "pytest",
            str(BENCH_FILE),
            f"--benchmark-json={json_path}",
            "-q",
            *pytest_args,
        ]
        proc = subprocess.run(cmd, cwd=REPO_ROOT, env=env)
        if proc.returncode != 0:
            sys.exit(f"benchmark run failed (pytest exit {proc.returncode})")
        data = json.loads(json_path.read_text())
    return {b["name"]: b["stats"]["median"] for b in data["benchmarks"]}


def load_baseline() -> dict:
    if not BASELINE_PATH.exists():
        return {}
    return json.loads(BASELINE_PATH.read_text())


def save_baseline(medians: dict[str, float]) -> None:
    payload = {
        "_meta": {
            "updated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "python": sys.version.split()[0],
            "platform": sys.platform,
            "suite": str(BENCH_FILE.relative_to(REPO_ROOT)),
            "stat": "median seconds per round",
        },
        "benchmarks": {
            name: {"median": medians[name]} for name in sorted(medians)
        },
    }
    BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"baseline written: {BASELINE_PATH}")


def compare(
    medians: dict[str, float],
    baseline: dict,
    threshold: float,
    min_delta: float,
) -> int:
    recorded = baseline.get("benchmarks", {})
    regressions = []
    width = max((len(n) for n in medians), default=0)
    for name in sorted(medians):
        median = medians[name]
        entry = recorded.get(name)
        if entry is None:
            print(f"{name:<{width}}  {median:>10.4f}s  (new - no baseline)")
            continue
        base = entry["median"]
        ratio = median / base if base > 0 else float("inf")
        marker = ""
        if ratio > 1.0 + threshold and median - base > min_delta:
            marker = "  REGRESSION"
            regressions.append((name, base, median, ratio))
        print(
            f"{name:<{width}}  {median:>10.4f}s  baseline {base:.4f}s  "
            f"x{ratio:.2f}{marker}"
        )
    for name in sorted(set(recorded) - set(medians)):
        print(f"{name:<{width}}  (baseline entry has no benchmark - stale?)")
    if regressions:
        print(
            f"\n{len(regressions)} regression(s) beyond {threshold:.0%} "
            "(rerun, or refresh with --update if intentional):"
        )
        for name, base, median, ratio in regressions:
            print(f"  {name}: {base:.4f}s -> {median:.4f}s (x{ratio:.2f})")
        return 1
    print("\nno regressions")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite BENCH_ENGINE.json with the measured medians",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.5,
        help="allowed fractional slowdown before failing (default 0.5)",
    )
    parser.add_argument(
        "--min-delta",
        type=float,
        default=0.005,
        help="absolute slowdown in seconds a regression must also exceed "
        "(default 0.005)",
    )
    parser.add_argument(
        "pytest_args",
        nargs="*",
        help="extra arguments forwarded to pytest (after --)",
    )
    args = parser.parse_args()

    medians = run_benchmarks(args.pytest_args)
    if not medians:
        sys.exit("no benchmark results collected")
    if args.update:
        save_baseline(medians)
        return 0
    baseline = load_baseline()
    if not baseline:
        sys.exit(
            f"no baseline at {BASELINE_PATH}; create one with --update"
        )
    return compare(medians, baseline, args.threshold, args.min_delta)


if __name__ == "__main__":
    raise SystemExit(main())
