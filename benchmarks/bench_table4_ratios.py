"""Table 4 — broadcast complexity of SBT/TCBT relative to the MSBT.

The one-packet and step-count (``M/B >> log N``) columns are exact at
finite N; the optimal-packet-size columns are asymptotic in the paper,
so the assertion checks the computed ratio approaches the printed entry
as the cube grows.
"""

from repro.analysis.compare import TABLE4_ROWS, table4_paper_entry, table4_ratio
from repro.experiments import run_table4


def test_table4_ratios(benchmark, show):
    report = benchmark(run_table4, 6)
    show(report)
    for algos, pm, regime, computed, paper in report.rows:
        if regime in ("one_packet", "many_packets", "b_opt_bandwidth_dominated"):
            assert abs(computed - paper) <= 0.05 * max(paper, 1), (
                f"{algos} {pm} {regime}: {computed} vs {paper}"
            )


def test_table4_startup_column_converges(benchmark):
    """The start-up-dominated column approaches the paper's constant."""

    def errors(n: int) -> dict:
        return {
            (algo, pm): abs(
                table4_ratio(algo, pm, "b_opt_startup_dominated", n)
                - table4_paper_entry(algo, pm, "b_opt_startup_dominated", n)
            )
            for algo, pm in TABLE4_ROWS
        }

    # purely analytic, so the dimension can go far beyond buildable cubes
    err64 = benchmark(errors, 64)
    err6 = errors(6)
    for key in err64:
        # convergence is slow (error ~ c/n, e.g. TCBT full duplex is
        # 2(n-2)/n -> 2), but strictly towards the paper's constants
        assert err64[key] <= err6[key] + 1e-9, key
        assert err64[key] <= 0.07, (key, err64[key])
