"""Figure 5 — SBT broadcasting time on the iPSC model.

Shape claims reproduced: time grows almost linearly with message size;
external packet sizes below the 1 KB internal packet size cost more
(more start-ups); larger cubes pay proportionally more (the SBT factor
is log N).
"""

from repro.experiments import run_fig5


def test_fig5_sbt_packet_size(benchmark, show):
    report = benchmark(
        run_fig5, (2, 4, 6), (256, 1024, 4096), (4096, 16384, 61440)
    )
    show(report)
    t = {(d, b, m): time for d, b, m, time in report.rows}
    # near-linear in message size: 60 KB costs ~15x the 4 KB run
    for d in (2, 4, 6):
        ratio = t[(d, 1024, 61440)] / t[(d, 1024, 4096)]
        assert 10 < ratio < 20, ratio
    # sub-1KB external packets pay more start-ups
    for d in (2, 4, 6):
        assert t[(d, 256, 61440)] > t[(d, 1024, 61440)]
    # >= 1KB external packets change little (internal splitting dominates)
    for d in (2, 4, 6):
        assert abs(t[(d, 4096, 61440)] - t[(d, 1024, 61440)]) < 0.25 * t[(d, 1024, 61440)]
    # SBT time scales ~ log N
    assert 2.2 < t[(6, 1024, 61440)] / t[(2, 1024, 61440)] < 4.0
