"""Table 2 — steady-state routing cycles per distinct broadcast packet.

Measured as the marginal cycles of doubling the packet count, which
cancels pipeline-fill constants; asserts exact agreement.
"""

from repro.experiments import run_table2


def test_table2_cycles_per_packet(benchmark, show):
    report = benchmark(run_table2, 4, 48)
    show(report)
    for algo, pm, measured, paper in report.rows:
        assert abs(float(measured) - float(paper)) < 1e-3, (
            f"{algo} {pm}: measured {measured} != paper {paper}"
        )
