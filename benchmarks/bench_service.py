"""Benchmark suite for the multi-tenant service: baselines in
BENCH_SERVICE.json.

Pins the cost of the service scheduler end to end — schedule
pregeneration, merged-program lowering, the shared-cube engine run and
the per-job provenance split — for the named workload scenarios under
each policy family, plus the admission-constrained path (which
re-simulates per admission batch).  Compare or refresh with::

    python scripts/bench_compare.py --suite service [--update]

The names of these tests are the keys of the baseline file — renaming
one orphans its baseline entry.
"""

import pytest

from repro.experiments import get_scenario
from repro.service import AdmissionControl, run_service
from repro.topology import Hypercube


@pytest.fixture(scope="module")
def smoke_mix():
    scenario = get_scenario("smoke-mix")
    return Hypercube(scenario.dimension), scenario.build(7)


@pytest.fixture(scope="module")
def hog_vs_mice():
    scenario = get_scenario("hog-vs-mice")
    return Hypercube(scenario.dimension), scenario.build(0)


def test_service_smoke_mix_fifo(benchmark, smoke_mix):
    cube, specs = smoke_mix
    result = benchmark(run_service, cube, specs, policy="fifo")
    assert len(result.accepted) == len(specs)


def test_service_smoke_mix_fair_share(benchmark, smoke_mix):
    cube, specs = smoke_mix
    result = benchmark(run_service, cube, specs, policy="fair-share")
    assert len(result.accepted) == len(specs)


def test_service_smoke_mix_admission_limited(benchmark, smoke_mix):
    """The constrained path: one job on the cube at a time forces a
    re-simulation per admission batch."""
    cube, specs = smoke_mix
    result = benchmark(
        run_service, cube, specs,
        admission=AdmissionControl(max_in_flight_total=1),
    )
    assert len(result.accepted) == len(specs)


def test_service_hog_vs_mice_fair_share_n8(benchmark, hog_vs_mice):
    cube, specs = hog_vs_mice
    result = benchmark(run_service, cube, specs, policy="fair-share")
    assert len(result.accepted) == len(specs)
