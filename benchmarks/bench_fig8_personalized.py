"""Figure 8 — personalized communication on the iPSC model: BST vs SBT.

One-port-at-a-time hardware with ~20 % cross-port overlap.  Shape
claims: both times grow ~ N; on the larger cubes the BST wins by close
to the overlap fraction (§5.2: "full advantage of the 20 % overlap"),
while on tiny cubes its extra drain hops dominate.
"""

from repro.experiments import run_fig8
from repro.sim.machine import IPSC_D7


def test_fig8_personalized(benchmark, show):
    report = benchmark(run_fig8, (2, 3, 4, 5, 6), 1024, IPSC_D7)
    show(report)
    rows = {d: (s, b) for d, s, b, _ in report.rows}
    # both ~ N: d=6 about 16x d=2
    assert 10 < rows[6][0] / rows[2][0] < 32
    # BST beats SBT on the larger cubes, approaching the 20% overlap gain
    for d in (4, 5, 6):
        assert rows[d][1] < rows[d][0], (d, rows[d])
    assert rows[6][1] / rows[6][0] < 0.9


def test_fig8_overlap_is_the_mechanism(benchmark, show):
    """Without cross-port overlap the BST advantage disappears (§5.2)."""
    with_overlap = benchmark(run_fig8, (5,), 1024, IPSC_D7)
    without = run_fig8((5,), 1024, IPSC_D7.with_overlap(0.0))
    ratio_with = float(with_overlap.rows[0][3])
    ratio_without = float(without.rows[0][3])
    assert ratio_with < ratio_without - 0.05, (ratio_with, ratio_without)
