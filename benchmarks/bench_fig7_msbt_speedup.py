"""Figure 7 — measured MSBT-over-SBT broadcast speed-up.

The paper's claim: "the measured speed-up is approximately log N".
Asserted as: speed-up within [0.6 log N, 1.3 log N] and monotone in N.
"""

from repro.experiments import run_fig7


def test_fig7_msbt_speedup(benchmark, show):
    report = benchmark(run_fig7, (2, 3, 4, 5, 6), 61440, 1024)
    show(report)
    prev = 0.0
    for n, speedup, logn in report.rows:
        assert 0.6 * logn <= speedup <= 1.3 * logn, (n, speedup)
        # grows with the cube dimension (small scheduling noise allowed)
        assert speedup >= 0.95 * prev, (n, speedup, prev)
        prev = speedup
    first, last = report.rows[0][1], report.rows[-1][1]
    assert last > 1.8 * first, "speed-up should roughly track log N"
