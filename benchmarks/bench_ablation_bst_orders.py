"""Ablation — BST scatter transmission orders (§5.2).

The paper implemented the depth-first order on the iPSC and notes
reversed breadth-first as the alternative (most remote data first,
which makes the root's finish time the completion time).  Both must
deliver identically; their lock-step cycle counts match, and timing
differences on the iPSC model stay small.
"""

from repro.routing import bst_scatter_schedule
from repro.sim import IPSC_D7, PortModel
from repro.sim.engine import run_async
from repro.topology import Hypercube


def _times(n: int, M: int) -> dict[str, float]:
    cube = Hypercube(n)
    out = {}
    for order in ("depth_first", "reversed_breadth_first"):
        sched = bst_scatter_schedule(
            cube, 0, M, M, PortModel.ONE_PORT_HALF, subtree_order=order
        )
        res = run_async(
            cube, sched, PortModel.ONE_PORT_HALF,
            {0: set(sched.chunk_sizes)}, IPSC_D7,
        )
        out[order] = res.time
    return out


def test_ablation_bst_orders(benchmark, show):
    times = benchmark(_times, 5, 1024)
    print()
    for order, t in times.items():
        print(f"  {order:<24} {t:.4f} s")
    ratio = times["reversed_breadth_first"] / times["depth_first"]
    assert 0.8 < ratio < 1.25, ratio
