"""Figure 6 — broadcasting 60 KB (1 KB packets): SBT vs MSBT per dimension.

Shape claims: the SBT's time grows roughly linearly with the cube
dimension while the MSBT's stays nearly flat.
"""

from repro.experiments import run_fig6


def test_fig6_sbt_vs_msbt(benchmark, show):
    report = benchmark(run_fig6, (2, 3, 4, 5, 6), 61440, 1024)
    show(report)
    rows = {d: (s, m) for d, s, m in report.rows}
    # SBT grows ~ linearly in n
    assert 2.5 < rows[6][0] / rows[2][0] < 3.5
    # MSBT nearly flat: within 40% from d=2 to d=6
    assert rows[6][1] < 1.4 * rows[2][1]
    # MSBT never slower than SBT
    for d, (s, m) in rows.items():
        assert m <= s * 1.02, (d, s, m)
