"""Table 5 — maximum BST subtree sizes vs (N-1)/log N for n = 2..20.

An exact combinatorial reproduction: the closed form (binary necklace
count minus one) is checked against the paper's printed column for
every n, and against explicitly constructed trees for n <= 12.
"""

from repro.experiments import PAPER_TABLE5, run_table5


def test_table5_bst_subtree_sizes(benchmark, show):
    report = benchmark(run_table5, 20, 12)
    show(report)
    for n, computed, paper, ideal, ratio in report.rows:
        assert computed == paper == PAPER_TABLE5[n], f"n={n}: {computed} != {paper}"
    # the paper's convergence claim: the ratio approaches 1
    assert report.rows[-1][4] <= 1.01
