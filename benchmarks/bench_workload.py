"""Benchmark suite for the workload layer: baselines in
BENCH_WORKLOAD.json.

Pins the cost of running a workload step end to end — DAG lowering,
schedule pregeneration, the event-ordered admission loop with its
per-batch merged-program re-simulation, and the per-step report
(link utilization, stragglers, critical path).  Compare or refresh
with::

    python scripts/bench_compare.py --suite workload [--update]

The names of these tests are the keys of the baseline file — renaming
one orphans its baseline entry.
"""

import pytest

from repro.workloads import get_workload_scenario, run_workload


@pytest.fixture(scope="module")
def pipeline():
    return get_workload_scenario("pipeline-4stage").build(seed=0)


@pytest.fixture(scope="module")
def moe():
    return get_workload_scenario("moe-alltoall").build(seed=0)


@pytest.fixture(scope="module")
def mice():
    return get_workload_scenario("train-with-mice").build(seed=0)


@pytest.fixture(scope="module")
def dp_train():
    return get_workload_scenario("dp-train-n10").build(seed=0)


def test_workload_pipeline_4stage_step(benchmark, pipeline):
    report = benchmark(run_workload, pipeline, 1)
    assert not report.degraded


def test_workload_moe_alltoall_step(benchmark, moe):
    report = benchmark(run_workload, moe, 1)
    assert not report.degraded


def test_workload_train_with_mice_step(benchmark, mice):
    """The contended path: mice flows admitted mid-step force extra
    merged-program re-simulations."""
    report = benchmark(run_workload, mice, 1)
    assert not report.degraded


def test_workload_dp_train_n10_step(benchmark, dp_train):
    """One training step on the 1024-node cube — the big-cube path."""
    report = benchmark(run_workload, dp_train, 1)
    assert not report.degraded


def test_workload_pipeline_runtime_backend(benchmark, pipeline):
    """The runtime lowering of the same serial DAG (actor backend)."""
    report = benchmark(run_workload, pipeline, 1, backend="runtime")
    assert not report.degraded
