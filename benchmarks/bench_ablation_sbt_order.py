"""Ablation — port-oriented vs packet-oriented SBT broadcast (§2).

Both orders take exactly ``ceil(M/B) * log N`` lock-step cycles, but
they disagree on *when* the far subtrees start receiving: the
packet-oriented order touches every port once per packet, so the last
subtree sees data after ``log N`` rounds instead of after
``(log N - 1) * ceil(M/B)`` rounds — visible as earlier first-delivery
times under the event engine.
"""

from repro.routing import sbt_broadcast_schedule
from repro.sim import PortModel, UNIT_COST, run_synchronous
from repro.sim.engine import run_async
from repro.topology import Hypercube


def _compare(n: int, M: int, B: int) -> dict[str, dict[str, float]]:
    cube = Hypercube(n)
    out = {}
    for order in ("port", "packet"):
        sched = sbt_broadcast_schedule(
            cube, 0, M, B, PortModel.ONE_PORT_FULL, order=order
        )
        init = {0: set(sched.chunk_sizes)}
        sync = run_synchronous(cube, sched, PortModel.ONE_PORT_FULL, init)
        asy = run_async(cube, sched, PortModel.ONE_PORT_FULL, init, UNIT_COST)
        # time at which the last node receives its FIRST chunk
        first_round = None
        seen = {0}
        for ri, r in enumerate(sched.rounds):
            for t in r:
                seen.add(t.dst)
            if len(seen) == cube.num_nodes:
                first_round = ri + 1
                break
        out[order] = {
            "cycles": sync.cycles,
            "async_time": asy.time,
            "all_reached_by_round": first_round,
        }
    return out


def test_ablation_sbt_orders(benchmark, show):
    n, M, B = 5, 64, 4
    results = benchmark(_compare, n, M, B)
    print()
    for order, stats in results.items():
        print(f"  {order:<8} {stats}")
    # identical lock-step cost (the paper's T is order-independent)
    assert results["port"]["cycles"] == results["packet"]["cycles"] == 16 * n
    # packet-oriented reaches every node much earlier
    assert (
        results["packet"]["all_reached_by_round"]
        < results["port"]["all_reached_by_round"]
    )
