"""Benchmark suite for the topology layer: baselines in
BENCH_TOPOLOGY.json.

Pins the cost of the torus paths next to their hypercube peers —
ring-decomposition tree construction, the Jung–Sakho all-broadcast
schedule, torus collectives end to end on the vectorized engine, and
the vectorized ``edge_ports`` adjacency resolution the lowering layer
leans on.  Compare or refresh with::

    python scripts/bench_compare.py --suite topology [--update]

The names of these tests are the keys of the baseline file — renaming
one orphans its baseline entry.
"""

import numpy as np
import pytest

from repro.cache import clear_caches
from repro.collectives import all_broadcast, allreduce, broadcast
from repro.routing import torus_all_broadcast_schedule
from repro.sim.ports import PortModel
from repro.topology import Hypercube, Torus
from repro.trees import RingDecompositionTree


@pytest.fixture(autouse=True)
def _cold_caches():
    """Schedule/tree memoizers would hide the generation cost."""
    clear_caches()
    yield
    clear_caches()


def test_topology_ring_tree_construction(benchmark):
    """Build the ring-decomposition tree maps on a 729-node torus."""
    t = Torus(6, 3)

    def build():
        tree = RingDecompositionTree(t)
        return tree.parents_map, tree.levels

    parents, levels = benchmark(build)
    assert len(parents) == 729
    assert max(levels.values()) == t.diameter


def test_topology_torus_all_broadcast_schedule(benchmark):
    """Generate the Jung–Sakho circulation schedule on Torus(3, 5)."""
    t = Torus(3, 5)

    def build():
        clear_caches()
        return torus_all_broadcast_schedule(
            t, 4, PortModel.ALL_PORT
        )

    sched = benchmark(build)
    assert sched.num_rounds > 0


def test_topology_torus_broadcast_end_to_end(benchmark):
    """Ring broadcast on Torus(2, 16) through the vectorized engine."""
    t = Torus(2, 16)

    def run():
        clear_caches()
        return broadcast(
            t, 0, message_elems=64, packet_elems=16,
            run_event_sim=True, engine="vectorized",
        )

    res = benchmark(run)
    assert res.time > 0


def test_topology_torus_allreduce_end_to_end(benchmark):
    """Two-phase ring allreduce on Torus(2, 8), both engines."""
    t = Torus(2, 8)

    def run():
        clear_caches()
        return allreduce(
            t, message_elems=32, packet_elems=8,
            run_event_sim=True, engine="vectorized",
        )

    res = benchmark(run)
    assert res.time > 0


def test_topology_hypercube_all_broadcast_end_to_end(benchmark):
    """The hypercube counterpart at a similar node count (n=8)."""
    h = Hypercube(8)

    def run():
        clear_caches()
        return all_broadcast(
            h, message_elems=4, run_event_sim=True, engine="vectorized",
        )

    res = benchmark(run)
    assert res.time > 0


def test_topology_torus_edge_ports_vectorized(benchmark):
    """Resolve 100k directed pairs to ports on a 4096-node torus."""
    t = Torus(4, 8)
    rng = np.random.default_rng(7)
    src = rng.integers(0, t.num_nodes, size=100_000)
    # half genuine ring neighbours, half random (mostly non-edges)
    dim = rng.integers(0, 4, size=50_000)
    delta = rng.choice([1, -1], size=50_000)
    neigh = np.array([
        t.ring_step(int(s), int(d), int(e))
        for s, d, e in zip(src[:50_000], dim, delta)
    ])
    dst = np.concatenate([neigh, rng.integers(0, t.num_nodes, size=50_000)])

    ports = benchmark(t.edge_ports, src, dst)
    assert (ports[:50_000] >= 0).all()
