"""§4.2's T(B) estimates vs simulation — the backbone of Table 6.

Asserts the §4.3 comparison claims: SBT time falls monotonically with
the packet size and lands on the (N-1)M t_c + log N tau optimum; the
BST matches the SBT at B = M (both are (N-1)(tau + M t_c)) and is
never more than a factor of two worse at any packet size.
"""

from repro.experiments import run_scatter_packet_sweep


def test_scatter_packet_sweep(benchmark, show):
    n, M = 5, 8
    report = benchmark(run_scatter_packet_sweep, n, M)
    show(report)
    rows = {r[0]: r[1:] for r in report.rows}

    # SBT monotone improvement with B; sim within 5% of the §4.2 form
    sbt_times = [rows[b][0] for b in sorted(k for k in rows if isinstance(k, int))]
    for a, b in zip(sbt_times, sbt_times[1:]):
        assert b <= a + 1e-9
    for b, (sbt_sim, sbt_model, _, _) in rows.items():
        assert abs(sbt_sim - sbt_model) <= 0.05 * sbt_model + 2, b

    # at B = M the SBT and BST coincide: (N-1)(tau + M t_c) (§4.3)
    sbt_at_m, _, bst_at_m, _ = rows[M]
    expected = ((1 << n) - 1) * (1 + M)
    assert sbt_at_m == expected
    assert abs(bst_at_m - expected) <= 0.05 * expected

    # BST never worse than 2x the SBT at any packet size (§4.3)
    for b, (sbt_sim, _, bst_sim, _) in rows.items():
        assert bst_sim <= 2 * sbt_sim, b
