"""Table 1 — propagation delays of HP/SBT/TCBT/MSBT under all port models.

Regenerates every cell by running the real schedules and asserts exact
agreement with the paper's formulas.
"""

from repro.experiments import run_table1


def test_table1_propagation_delays(benchmark, show):
    report = benchmark(run_table1, 4)
    show(report)
    for algo, pm, measured, paper in report.rows:
        assert measured == paper, f"{algo} {pm}: measured {measured} != paper {paper}"
