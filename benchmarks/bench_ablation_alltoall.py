"""Ablation — total exchange: N translated BSTs vs dimension exchange.

§1: "lower bound algorithms for ... sending personalized data from
every node to every other node on a Boolean cube can be attained by
using N BST's rooted at each node concurrently. See [8] for details."

The BST version keeps every directed link busy every step; dimension
exchange uses one dimension (a 1/log N fraction of the links) per
step.  The measured speed-up should grow towards log N.
"""

from repro.routing.alltoall import (
    alltoall_bst_schedule,
    alltoall_initial_holdings,
    alltoall_personalized_schedule,
)
from repro.sim import MachineParams, PortModel, run_synchronous
from repro.topology import Hypercube


def _speedups(dims: tuple[int, ...], M: int) -> dict[int, float]:
    machine = MachineParams(tau=1.0, t_c=1.0)
    out = {}
    for n in dims:
        cube = Hypercube(n)
        init = alltoall_initial_holdings(cube)
        t_bst = run_synchronous(
            cube, alltoall_bst_schedule(cube, M), PortModel.ALL_PORT, init, machine
        ).time
        t_dim = run_synchronous(
            cube,
            alltoall_personalized_schedule(cube, M, PortModel.ONE_PORT_FULL),
            PortModel.ONE_PORT_FULL,
            init,
            machine,
        ).time
        out[n] = t_dim / t_bst
    return out


def test_ablation_alltoall_bst_vs_dimension_exchange(benchmark, show):
    speedups = benchmark(_speedups, (3, 4, 5, 6), 4)
    print()
    for n, s in speedups.items():
        print(f"  n={n}  N-BST speed-up over dimension exchange: {s:.2f} (log N = {n})")
    items = sorted(speedups.items())
    for (n1, s1), (n2, s2) in zip(items, items[1:]):
        assert s2 > s1, "speed-up should grow with the dimension"
    n_last, s_last = items[-1]
    assert s_last > 0.55 * n_last
