"""Benchmark-regression suite: canonical workloads pinned in BENCH_ENGINE.json.

The workloads cover the two engines and the schedule-generation path
(cold and cached).  ``scripts/bench_compare.py`` runs this file with
``--benchmark-json``, extracts each benchmark's median, and compares it
against the medians recorded in ``BENCH_ENGINE.json`` at the repo root;
``--update`` refreshes the baseline.  Run the suite directly with::

    PYTHONPATH=src python -m pytest benchmarks/bench_regression.py

The names of these tests are the keys of the baseline file — renaming
one orphans its baseline entry.
"""

import pytest

from repro import cache
from repro.routing import msbt_broadcast_schedule
from repro.sim import (
    IPSC_D7,
    PortModel,
    run_async,
    run_async_vectorized,
    run_synchronous,
)
from repro.topology import Hypercube


def _msbt_workload(n: int):
    cube = Hypercube(n)
    sched = msbt_broadcast_schedule(cube, 0, 61440, 1024, PortModel.ONE_PORT_FULL)
    return cube, sched


@pytest.fixture(scope="module")
def workload_n7():
    return _msbt_workload(7)


@pytest.fixture(scope="module")
def workload_n10():
    return _msbt_workload(10)


def test_regress_event_engine_n7(benchmark, workload_n7):
    cube, sched = workload_n7
    init = {0: set(sched.chunk_sizes)}
    res = benchmark(run_async, cube, sched, PortModel.ONE_PORT_FULL, init, IPSC_D7)
    assert res.time > 0


def test_regress_event_engine_n10(benchmark, workload_n10):
    # ~60k transfers; a single round keeps total wall time reasonable
    cube, sched = workload_n10
    init = {0: set(sched.chunk_sizes)}
    res = benchmark.pedantic(
        run_async,
        args=(cube, sched, PortModel.ONE_PORT_FULL, init, IPSC_D7),
        rounds=1,
        iterations=1,
    )
    assert res.time > 0


def test_regress_vectorized_engine_n10(benchmark, workload_n10):
    cube, sched = workload_n10
    init = {0: set(sched.chunk_sizes)}
    res = benchmark.pedantic(
        run_async_vectorized,
        args=(cube, sched, PortModel.ONE_PORT_FULL, init, IPSC_D7),
        rounds=1,
        iterations=1,
    )
    assert res.time > 0


def test_regress_vectorized_engine_n12(benchmark):
    # ~246k transfers — indexed-engine territory measured in minutes;
    # only the vectorized engine runs a large cube in the suite
    cube, sched = _msbt_workload(12)
    init = {0: set(sched.chunk_sizes)}
    res = benchmark.pedantic(
        run_async_vectorized,
        args=(cube, sched, PortModel.ONE_PORT_FULL, init, IPSC_D7),
        rounds=1,
        iterations=1,
    )
    assert res.time > 0


def test_regress_lockstep_engine_n7(benchmark, workload_n7):
    cube, sched = workload_n7
    init = {0: set(sched.chunk_sizes)}
    res = benchmark(run_synchronous, cube, sched, PortModel.ONE_PORT_FULL, init)
    assert res.cycles > 0


def test_regress_generate_msbt_cold(benchmark):
    cube = Hypercube(7)

    def cold():
        with cache.disabled():
            return msbt_broadcast_schedule(
                cube, 0, 61440, 1024, PortModel.ONE_PORT_FULL
            )

    sched = benchmark(cold)
    assert sched.num_transfers > 0


def test_regress_generate_msbt_cached(benchmark):
    cube = Hypercube(7)
    msbt_broadcast_schedule(cube, 0, 61440, 1024, PortModel.ONE_PORT_FULL)  # warm
    sched = benchmark(
        msbt_broadcast_schedule, cube, 0, 61440, 1024, PortModel.ONE_PORT_FULL
    )
    assert sched.num_transfers > 0
