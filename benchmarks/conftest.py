"""Shared fixtures for the table/figure reproduction benchmarks."""

from __future__ import annotations

import pytest


def report_and_print(report) -> None:
    """Print a reproduction table under pytest -s / benchmark output."""
    print()
    print(report.render())


@pytest.fixture
def show():
    """Fixture exposing the report printer."""
    return report_and_print
