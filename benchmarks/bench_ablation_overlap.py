"""Ablation — the cross-port overlap factor.

§5.2 attributes the measured BST scatter advantage to the iPSC's ~20 %
overlap between communication actions on different ports.  Sweeping the
overlap factor in the machine model shows the BST's relative advantage
grow monotonically with the available overlap — zero overlap, no
advantage.
"""

from repro.experiments import run_fig8
from repro.sim.machine import IPSC_D7


def _sweep(overlaps: tuple[float, ...]) -> list[tuple[float, float]]:
    out = []
    for o in overlaps:
        report = run_fig8((5,), 1024, IPSC_D7.with_overlap(o))
        out.append((o, float(report.rows[0][3])))  # BST/SBT ratio
    return out


def test_ablation_overlap_sweep(benchmark, show):
    results = benchmark(_sweep, (0.0, 0.1, 0.2, 0.3))
    print()
    for o, ratio in results:
        print(f"  overlap={o:.1f}  BST/SBT={ratio:.3f}")
    ratios = [r for _, r in results]
    # BST's advantage grows with overlap (ratio falls)
    for a, b in zip(ratios, ratios[1:]):
        assert b <= a + 0.02, results
    assert ratios[-1] < ratios[0] - 0.05, results
