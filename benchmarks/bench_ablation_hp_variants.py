"""Ablation — Hamiltonian-path variations (§3.4).

"Some variations exist, such as using two Hamiltonian paths with
opposite directions sending distinct data, or using one Hamiltonian
path such that the source node is at the center of the path.  However,
these variations only affect delays, and the number of cycles per
packet, by at most a factor of two."
"""

from repro.collectives import broadcast
from repro.sim import PortModel
from repro.topology import Hypercube


def _cycles(n: int, M: int, B: int) -> dict[tuple[str, str], int]:
    cube = Hypercube(n)
    out = {}
    for algo in ("hp", "hp-centered", "hp-dual"):
        for pm in PortModel:
            out[(algo, pm.name)] = broadcast(cube, 0, algo, M, B, pm).cycles
    return out


def test_ablation_hp_variants(benchmark, show):
    n, M, B = 5, 32, 1
    cycles = benchmark(_cycles, n, M, B)
    print()
    for (algo, pm), c in sorted(cycles.items()):
        print(f"  {algo:<12} {pm:<16} {c:>4} cycles")
    for pm in ("ONE_PORT_HALF", "ONE_PORT_FULL", "ALL_PORT"):
        base = cycles[("hp", pm)]
        for variant in ("hp-centered", "hp-dual"):
            v = cycles[(variant, pm)]
            # the paper's claim: within a factor of two either way
            # (centered halves the delay but doubles the root's sends;
            # dual halves the packet term but not under one port)
            assert v <= 2 * base + 2 and base <= 2 * v + 2, (variant, pm)

    # single-packet propagation delay: centered halves the path
    one = _cycles(n, 1, 1)
    assert one[("hp-centered", "ALL_PORT")] <= one[("hp", "ALL_PORT")] // 2 + 2
    # steady state under all ports: dual moves two packets per cycle
    assert cycles[("hp-dual", "ALL_PORT")] <= cycles[("hp", "ALL_PORT")] - M // 2 + 2
