"""Table 6 — personalized-communication time at optimal packet size.

The SBT rows and the TCBT all-port row are exact equalities of the
measured lock-step time with the paper's formula; the remaining rows
are paper upper bounds (its "<=" rows) — measured time must not exceed
them — and the BST all-port row must sit within the true max-subtree
load of the ideal (N-1)/log N figure.
"""

from repro.experiments import run_table6
from repro.trees.bst import max_subtree_size


def test_table6_personalized(benchmark, show):
    n, M = 5, 8
    report = benchmark(run_table6, n, M)
    show(report)
    for algo, pm, measured, paper, kind in report.rows:
        if kind == "=":
            assert abs(measured - paper) < 1e-6, f"{algo} {pm}: {measured} != {paper}"
        elif (algo, pm) == ("BST", "all ports"):
            # ideal uses (N-1)/log N; reality pays the max subtree size
            actual_bound = max_subtree_size(n) * M * 1.0 + n * 1.0
            assert measured <= actual_bound + 1e-9, (measured, actual_bound)
        else:
            assert measured <= paper + 1e-9, f"{algo} {pm}: {measured} > bound {paper}"


def test_bst_beats_sbt_allport(benchmark, show):
    """The headline claim: all-port BST scatter ~ (log N)/2 faster than SBT.

    At finite n the ratio is (N/2) / (max subtree size) — 32/13 = 2.46
    at n = 6, approaching the asymptotic log N / 2 = 3 from below.
    """
    n, M = 6, 8
    report = benchmark(run_table6, n, M)
    vals = {(a, p): m for a, p, m, *_ in report.rows}
    sbt = vals[("SBT", "all ports")]
    bst = vals[("BST", "all ports")]
    structural = ((1 << n) // 2) / max_subtree_size(n)
    assert sbt / bst > structural * 0.9, (sbt, bst, structural)
    assert sbt / bst > 2.0
