"""Raw performance of the library itself (not a paper exhibit).

Keeps the engines and generators honest as the repo evolves: schedule
generation, lock-step execution, event-driven execution, and the
vectorized whole-cube computations all get a timed budget.
"""

import pytest

from repro import cache
from repro.routing import bst_scatter_schedule, msbt_broadcast_schedule
from repro.sim import IPSC_D7, PortModel, run_async, run_synchronous
from repro.topology import Hypercube
from repro.trees.vectorized import bst_subtree_sizes_array


@pytest.fixture(scope="module")
def big_broadcast():
    cube = Hypercube(7)
    sched = msbt_broadcast_schedule(cube, 0, 61440, 1024, PortModel.ONE_PORT_FULL)
    return cube, sched


@pytest.fixture(scope="module")
def huge_broadcast():
    cube = Hypercube(10)
    sched = msbt_broadcast_schedule(cube, 0, 61440, 1024, PortModel.ONE_PORT_FULL)
    return cube, sched


def test_perf_generate_msbt_schedule(benchmark):
    # cold generation: the schedule cache would otherwise absorb every
    # round after the first
    cube = Hypercube(7)

    def cold():
        with cache.disabled():
            return msbt_broadcast_schedule(
                cube, 0, 61440, 1024, PortModel.ONE_PORT_FULL
            )

    sched = benchmark(cold)
    assert sched.num_transfers > 0


def test_perf_generate_msbt_schedule_cached(benchmark):
    cube = Hypercube(7)
    msbt_broadcast_schedule(cube, 0, 61440, 1024, PortModel.ONE_PORT_FULL)  # warm
    sched = benchmark(
        msbt_broadcast_schedule, cube, 0, 61440, 1024, PortModel.ONE_PORT_FULL
    )
    assert sched.num_transfers > 0


def test_perf_generate_bst_scatter(benchmark):
    cube = Hypercube(6)

    def cold():
        with cache.disabled():
            return bst_scatter_schedule(cube, 0, 1024, 1024, PortModel.ONE_PORT_FULL)

    sched = benchmark(cold)
    assert sched.num_transfers >= cube.num_nodes - 1


def test_perf_lockstep_engine(benchmark, big_broadcast):
    cube, sched = big_broadcast
    init = {0: set(sched.chunk_sizes)}
    res = benchmark(run_synchronous, cube, sched, PortModel.ONE_PORT_FULL, init)
    assert res.cycles > 0


def test_perf_event_engine(benchmark, big_broadcast):
    cube, sched = big_broadcast
    init = {0: set(sched.chunk_sizes)}
    res = benchmark(run_async, cube, sched, PortModel.ONE_PORT_FULL, init, IPSC_D7)
    assert res.time > 0


def test_perf_event_engine_n10(benchmark, huge_broadcast):
    # ~60k transfers; only feasible on the indexed engine (the rescan
    # engine needs minutes here), so a single round keeps wall time low
    cube, sched = huge_broadcast
    init = {0: set(sched.chunk_sizes)}
    res = benchmark.pedantic(
        run_async,
        args=(cube, sched, PortModel.ONE_PORT_FULL, init, IPSC_D7),
        rounds=1,
        iterations=1,
    )
    assert res.time > 0


def test_perf_vectorized_table5_n18(benchmark):
    sizes = benchmark(bst_subtree_sizes_array, 18)
    assert int(sizes.sum()) == (1 << 18) - 1
