"""Table 3 — broadcast complexity T / B_opt / T_min for every algorithm.

Measured lock-step steps vs the closed-form step counts at several
packet sizes, and the closed-form optimal packet size vs brute force.
Most rows are exact; the HP/TCBT rows produced by greedy list
scheduling are allowed one round of slack (the paper's own HP constant
is off by one from the pipeline-depth count).
"""

from repro.experiments import run_table3


def test_table3_broadcast_complexity(benchmark, show):
    report = benchmark(run_table3)
    show(report)
    for row in report.rows:
        algo, pm, B, measured, model, b_opt_model, b_opt_num, t_min_model, t_min_num = row
        slack = 2 if algo in ("HP", "TCBT") else 0
        assert abs(measured - model) <= slack, f"{algo} {pm} B={B}: {measured} vs {model}"
        # closed-form optimum within 15% of brute force (continuous
        # relaxation vs integer scan)
        assert t_min_model <= 1.15 * t_min_num + 1e-9, (algo, pm)
        assert t_min_num <= 1.15 * t_min_model + 1e-9, (algo, pm)
