"""Benchmark suite for the actor runtime: baselines in BENCH_RUNTIME.json.

Pins the cost of executing collectives on the message-passing runtime
(actors + virtual clock + port admission), of the sharded
multi-process runtime (forked subcube workers under the distributed
clock — the ``n10_w1``/``n10_w4`` pair measures the sharding
speedup, or on a single-CPU runner the coordination overhead), of the
repair path under faults, and of one differential runtime-vs-engine
check.  Compare or refresh with::

    python scripts/bench_compare.py --suite runtime [--update]

The names of these tests are the keys of the baseline file — renaming
one orphans its baseline entry.
"""

import pytest

from repro.runtime import differential_check, run_collective
from repro.sim.faults import FaultPlan
from repro.sim.ports import PortModel
from repro.topology import Hypercube


@pytest.fixture(scope="module")
def cube6():
    return Hypercube(6)


def test_runtime_broadcast_msbt_n6(benchmark, cube6):
    res = benchmark(
        run_collective,
        cube6, "broadcast", "msbt", 0, 64, 8, PortModel.ONE_PORT_FULL,
    )
    assert res.transfers_executed > 0


def test_runtime_broadcast_sbt_allport_n6(benchmark, cube6):
    res = benchmark(
        run_collective,
        cube6, "broadcast", "sbt", 0, 64, 8, PortModel.ALL_PORT,
    )
    assert res.transfers_executed > 0


def test_runtime_scatter_bst_n6(benchmark, cube6):
    res = benchmark(
        run_collective,
        cube6, "scatter", "bst", 0, 16, 4, PortModel.ONE_PORT_FULL,
    )
    assert res.transfers_executed > 0


def test_runtime_sharded_msbt_n8_w2(benchmark):
    cube = Hypercube(8)
    res = benchmark(
        run_collective,
        cube, "broadcast", "msbt", 0, 64, 8, PortModel.ONE_PORT_FULL,
        workers=2, start_method="fork",
    )
    assert res.sharding.workers == 2


def test_runtime_sharded_msbt_n8_w4(benchmark):
    cube = Hypercube(8)
    res = benchmark(
        run_collective,
        cube, "broadcast", "msbt", 0, 64, 8, PortModel.ONE_PORT_FULL,
        workers=4, start_method="fork",
    )
    assert res.sharding.workers == 4


def test_runtime_sharded_msbt_n10_w1(benchmark):
    # the single-process anchor the w4 entry is compared against: the
    # speedup (or, on a single-CPU runner, the coordination overhead)
    # is the ratio of these two medians
    cube = Hypercube(10)
    res = benchmark(
        run_collective,
        cube, "broadcast", "msbt", 0, 64, 8, PortModel.ONE_PORT_FULL,
    )
    assert res.transfers_executed > 0


def test_runtime_sharded_msbt_n10_w4(benchmark):
    cube = Hypercube(10)
    res = benchmark(
        run_collective,
        cube, "broadcast", "msbt", 0, 64, 8, PortModel.ONE_PORT_FULL,
        workers=4, start_method="fork",
    )
    assert res.sharding.workers == 4


def test_runtime_repair_broadcast_n5(benchmark):
    cube = Hypercube(5)
    faults = FaultPlan(dead_links=[(0, 1), (0, 2)])

    def repaired():
        return run_collective(
            cube, "broadcast", "sbt", 0, 32, 8, PortModel.ONE_PORT_FULL,
            faults=faults, on_fault="repair",
        )

    res = benchmark(repaired)
    assert res.repair_rounds >= 1


def test_runtime_differential_point_n5(benchmark):
    cube = Hypercube(5)
    benchmark(
        differential_check,
        cube, "broadcast", "msbt", 0, 64, 8, PortModel.ONE_PORT_FULL,
    )
