"""Benchmark suite for the actor runtime: baselines in BENCH_RUNTIME.json.

Pins the cost of executing collectives on the message-passing runtime
(actors + virtual clock + port admission), of the repair path under
faults, and of one differential runtime-vs-engine check.  Compare or
refresh with::

    python scripts/bench_compare.py --suite runtime [--update]

The names of these tests are the keys of the baseline file — renaming
one orphans its baseline entry.
"""

import pytest

from repro.runtime import differential_check, run_collective
from repro.sim.faults import FaultPlan
from repro.sim.ports import PortModel
from repro.topology import Hypercube


@pytest.fixture(scope="module")
def cube6():
    return Hypercube(6)


def test_runtime_broadcast_msbt_n6(benchmark, cube6):
    res = benchmark(
        run_collective,
        cube6, "broadcast", "msbt", 0, 64, 8, PortModel.ONE_PORT_FULL,
    )
    assert res.transfers_executed > 0


def test_runtime_broadcast_sbt_allport_n6(benchmark, cube6):
    res = benchmark(
        run_collective,
        cube6, "broadcast", "sbt", 0, 64, 8, PortModel.ALL_PORT,
    )
    assert res.transfers_executed > 0


def test_runtime_scatter_bst_n6(benchmark, cube6):
    res = benchmark(
        run_collective,
        cube6, "scatter", "bst", 0, 16, 4, PortModel.ONE_PORT_FULL,
    )
    assert res.transfers_executed > 0


def test_runtime_repair_broadcast_n5(benchmark):
    cube = Hypercube(5)
    faults = FaultPlan(dead_links=[(0, 1), (0, 2)])

    def repaired():
        return run_collective(
            cube, "broadcast", "sbt", 0, 32, 8, PortModel.ONE_PORT_FULL,
            faults=faults, on_fault="repair",
        )

    res = benchmark(repaired)
    assert res.repair_rounds >= 1


def test_runtime_differential_point_n5(benchmark):
    cube = Hypercube(5)
    benchmark(
        differential_check,
        cube, "broadcast", "msbt", 0, 64, 8, PortModel.ONE_PORT_FULL,
    )
