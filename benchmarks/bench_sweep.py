"""Sweep-executor benchmarks: serial vs parallel full-figure wall clock
and the disk-cache cold/warm paths.

Medians are pinned in ``BENCH_SWEEP.json`` at the repo root; compare or
refresh with::

    python scripts/bench_compare.py --suite sweep [--update]

Each benchmark regenerates Figure 6 in full (the headline broadcast
experiment: five cube dimensions, SBT + MSBT on the event engine), so
one timed round each is the right cost.  The serial/parallel pair is
the speedup record — on a multi-core runner the ``jobs4`` median should
sit well below the serial one; on a single core it documents the pool
overhead instead.  Caches are cleared before every round so each round
pays the true cold generation cost.
"""

from __future__ import annotations

import shutil

import pytest

from repro import cache
from repro.experiments import run_fig6

#: the full Figure 6 grid (what `repro figure 6` runs)
FIG6_DIMS = (2, 3, 4, 5, 6)


def _cold():
    cache.clear_caches()


def test_sweep_fig6_serial(benchmark):
    report = benchmark.pedantic(
        run_fig6,
        kwargs=dict(dims=FIG6_DIMS, jobs=1),
        setup=_cold,
        rounds=1,
        iterations=1,
    )
    assert len(report.rows) == len(FIG6_DIMS)
    assert report.sweep.executor == "serial"


def test_sweep_fig6_jobs4(benchmark):
    report = benchmark.pedantic(
        run_fig6,
        kwargs=dict(dims=FIG6_DIMS, jobs=4),
        setup=_cold,
        rounds=1,
        iterations=1,
    )
    assert len(report.rows) == len(FIG6_DIMS)
    assert report.sweep.executor == "process-pool"


def test_sweep_disk_cold(benchmark, tmp_path):
    cache_dir = tmp_path / "disk"

    def cold_disk():
        # fresh process-local caches AND an empty disk directory: this
        # measures generation plus the cost of persisting everything
        cache.clear_caches()
        shutil.rmtree(cache_dir, ignore_errors=True)

    report = benchmark.pedantic(
        run_fig6,
        kwargs=dict(dims=FIG6_DIMS, jobs=1, cache_dir=cache_dir),
        setup=cold_disk,
        rounds=1,
        iterations=1,
    )
    assert report.sweep.disk_hits == 0


def test_sweep_disk_warm(benchmark, tmp_path):
    cache_dir = tmp_path / "disk"
    cache.clear_caches()
    run_fig6(dims=FIG6_DIMS, jobs=1, cache_dir=cache_dir)  # populate

    report = benchmark.pedantic(
        run_fig6,
        kwargs=dict(dims=FIG6_DIMS, jobs=1, cache_dir=cache_dir),
        setup=_cold,
        rounds=1,
        iterations=1,
    )
    # every generator call was served from disk: zero regeneration
    assert report.sweep.disk_misses == 0
    assert report.sweep.disk_hits > 0
