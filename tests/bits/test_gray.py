"""Unit tests for binary-reflected Gray codes and Hamiltonian paths."""

import pytest

from repro.bits import gray
from repro.bits.ops import hamming_distance


class TestGrayCode:
    def test_first_codewords(self):
        assert [gray.gray_code(i) for i in range(8)] == [0, 1, 3, 2, 6, 7, 5, 4]

    def test_decode_inverts_encode(self):
        for i in range(512):
            assert gray.gray_decode(gray.gray_code(i)) == i
            assert gray.gray_rank(gray.gray_code(i)) == i

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gray.gray_code(-1)
        with pytest.raises(ValueError):
            gray.gray_decode(-3)

    def test_sequence_adjacent_differ_in_one_bit(self):
        for n in range(1, 7):
            seq = gray.gray_sequence(n)
            assert len(seq) == 1 << n
            assert len(set(seq)) == 1 << n
            for a, b in zip(seq, seq[1:]):
                assert hamming_distance(a, b) == 1
            # cyclic: last and first also adjacent
            assert hamming_distance(seq[-1], seq[0]) == 1


class TestTransitionSequence:
    def test_matches_paper_port_pattern(self):
        # port 0 every other step, port 1 every fourth, ... (§5.2)
        ts = gray.transition_sequence(4)
        assert ts[::2] == [0] * 8
        assert ts[1::4] == [1] * 4

    def test_is_ruler_sequence(self):
        ts = gray.transition_sequence(3)
        assert ts == [0, 1, 0, 2, 0, 1, 0]

    def test_matches_sequence_diffs(self):
        for n in (2, 3, 5):
            seq = gray.gray_sequence(n)
            ts = gray.transition_sequence(n)
            for i, d in enumerate(ts):
                assert seq[i] ^ seq[i + 1] == 1 << d


class TestHamiltonianPath:
    def test_starts_at_start_and_spans(self):
        for n in (1, 3, 5):
            for start in (0, (1 << n) - 1):
                p = gray.hamiltonian_path(n, start)
                assert p[0] == start
                assert sorted(p) == list(range(1 << n))
                for a, b in zip(p, p[1:]):
                    assert hamming_distance(a, b) == 1

    def test_bad_start_rejected(self):
        with pytest.raises(ValueError):
            gray.hamiltonian_path(3, 8)
        with pytest.raises(ValueError):
            gray.hamiltonian_path(3, -1)

    def test_iter_edges(self):
        edges = list(gray.iter_hamiltonian_edges(2, 0))
        assert edges == [(0, 1), (1, 3), (3, 2)]
