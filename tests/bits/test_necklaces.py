"""Unit tests for periods, necklaces and the BST base function."""

import pytest

from repro.bits import necklaces as nk
from repro.bits.ops import rotate_right


class TestPeriod:
    def test_paper_examples(self):
        # "the period of (011011) is 3" (§2)
        assert nk.period(0b011011, 6) == 3
        # "The period of (011010) is 6 and the period of (110110) is 3" (§4.1)
        assert nk.period(0b011010, 6) == 6
        assert nk.period(0b110110, 6) == 3

    def test_constants(self):
        assert nk.period(0, 6) == 1
        assert nk.period(0b111111, 6) == 1
        assert nk.period(0b101010, 6) == 2

    def test_period_divides_n(self):
        for n in (4, 6, 8):
            for x in range(1 << n):
                assert n % nk.period(x, n) == 0

    def test_period_is_minimal(self):
        for n in (5, 6):
            for x in range(1 << n):
                p = nk.period(x, n)
                assert rotate_right(x, p, n) == x
                for q in range(1, p):
                    assert rotate_right(x, q, n) != x

    def test_is_cyclic(self):
        assert nk.is_cyclic(0b0101, 4)
        assert not nk.is_cyclic(0b0001, 4)
        assert nk.is_cyclic(0, 4)

    def test_bad_args_rejected(self):
        with pytest.raises(ValueError):
            nk.period(1, 0)
        with pytest.raises(ValueError):
            nk.period(16, 4)


class TestBase:
    def test_paper_example_110110(self):
        # base((110110)) = 1: one right rotation reaches 011011 = min
        assert nk.base(0b110110, 6) == 1

    def test_formal_definition_on_011010(self):
        # The paper's prose says 3, but its formal definition gives 1:
        # R^1(011010) = 001101 = 13 is the unique minimum rotation.
        # (See DESIGN.md §2 — the formal definition reproduces Table 5.)
        assert nk.base(0b011010, 6) == 1
        assert nk.canonical_rotation(0b011010, 6) == 0b001101

    def test_base_reaches_minimum(self):
        for n in (4, 5, 6, 7):
            for x in range(1 << n):
                b = nk.base(x, n)
                m = rotate_right(x, b, n)
                assert all(
                    m <= rotate_right(x, j, n) for j in range(n)
                ), (x, n)
                # b is the least such rotation count
                assert all(
                    rotate_right(x, j, n) > m for j in range(b)
                ), (x, n)

    def test_base_range_limited_by_period(self):
        # base < period: rotating by the period revisits the same values
        for n in (6, 8):
            for x in range(1, 1 << n):
                assert nk.base(x, n) < nk.period(x, n)

    def test_necklace_members_have_distinct_bases_per_rotation(self):
        # within a full necklace, every subtree index appears exactly once
        n = 6
        for rep in nk.necklace_representatives(n):
            if rep == 0:
                continue
            members = nk.generator_set(rep, n)
            bases = sorted(nk.base(m, n) for m in members)
            assert bases == list(range(len(members))), rep


class TestGeneratorSets:
    def test_paper_example(self):
        # (001001), (010010), (100100) form one generator set (§2)
        gs = set(nk.generator_set(0b001001, 6))
        assert gs == {0b001001, 0b010010, 0b100100}

    def test_size_equals_period(self):
        for n in (4, 6):
            for x in range(1 << n):
                assert len(nk.generator_set(x, n)) == nk.period(x, n)

    def test_representatives_partition_the_space(self):
        for n in (4, 5, 6):
            reps = nk.necklace_representatives(n)
            seen: set[int] = set()
            for r in reps:
                members = set(nk.generator_set(r, n))
                assert not (members & seen)
                seen |= members
            assert seen == set(range(1 << n))

    def test_count_matches_burnside(self):
        for n in range(1, 16):
            assert nk.count_necklaces(n) == len(nk.necklace_representatives(n)) if n <= 14 else True

    def test_count_necklaces_known_values(self):
        # OEIS A000031
        known = {1: 2, 2: 3, 3: 4, 4: 6, 5: 8, 6: 14, 7: 20, 8: 36, 16: 4116}
        for n, v in known.items():
            assert nk.count_necklaces(n) == v, n

    def test_count_cyclic_matches_enumeration(self):
        for n in (4, 6, 8, 9):
            brute = sum(1 for x in range(1 << n) if nk.is_cyclic(x, n))
            assert nk.count_cyclic(n) == brute
