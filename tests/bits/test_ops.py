"""Unit tests for the bit-manipulation primitives."""

import numpy as np
import pytest

from repro.bits import ops


class TestMaskAndBits:
    def test_mask_values(self):
        assert ops.mask(0) == 0
        assert ops.mask(1) == 1
        assert ops.mask(4) == 15
        assert ops.mask(10) == 1023

    def test_mask_negative_rejected(self):
        with pytest.raises(ValueError):
            ops.mask(-1)

    def test_bit_extraction(self):
        x = 0b10110
        assert [ops.bit(x, j) for j in range(5)] == [0, 1, 1, 0, 1]

    def test_set_clear_flip(self):
        assert ops.set_bit(0b100, 0) == 0b101
        assert ops.clear_bit(0b101, 2) == 0b001
        assert ops.flip_bit(0b101, 1) == 0b111
        assert ops.flip_bit(ops.flip_bit(0b1011, 3), 3) == 0b1011

    def test_to_from_bits_roundtrip(self):
        for x in [0, 1, 5, 19, 31]:
            assert ops.from_bits(ops.to_bits(x, 5)) == x

    def test_to_bits_overflow_rejected(self):
        with pytest.raises(ValueError):
            ops.to_bits(32, 5)

    def test_from_bits_bad_value_rejected(self):
        with pytest.raises(ValueError):
            ops.from_bits([0, 2, 1])

    def test_bit_string_matches_paper_notation(self):
        # the paper writes a_{n-1} ... a_0, MSB first
        assert ops.bit_string(0b01101, 5) == "01101"
        assert ops.bit_string(1, 4) == "0001"

    def test_bit_string_overflow_rejected(self):
        with pytest.raises(ValueError):
            ops.bit_string(16, 4)


class TestPopcountAndDistance:
    def test_popcount_small(self):
        assert ops.popcount(0) == 0
        assert ops.popcount(0b1011) == 3
        assert ops.popcount((1 << 40) - 1) == 40

    def test_popcount_negative_rejected(self):
        with pytest.raises(ValueError):
            ops.popcount(-1)

    def test_hamming_distance_symmetry(self):
        assert ops.hamming_distance(0b1010, 0b0101) == 4
        assert ops.hamming_distance(7, 7) == 0
        for a, b in [(3, 5), (0, 15), (9, 12)]:
            assert ops.hamming_distance(a, b) == ops.hamming_distance(b, a)

    def test_highest_lowest_set_bit(self):
        assert ops.highest_set_bit(0) == -1
        assert ops.lowest_set_bit(0) == -1
        assert ops.highest_set_bit(0b1) == 0
        assert ops.highest_set_bit(0b10110) == 4
        assert ops.lowest_set_bit(0b10110) == 1
        assert ops.lowest_set_bit(1 << 17) == 17


class TestRotation:
    def test_rotate_right_example(self):
        # R(a5..a0) moves a0 to the top position
        assert ops.rotate_right(0b011010, 1, 6) == 0b001101
        assert ops.rotate_right(0b000001, 1, 6) == 0b100000

    def test_rotate_left_inverts_right(self):
        for x in range(64):
            for s in range(7):
                assert ops.rotate_left(ops.rotate_right(x, s, 6), s, 6) == x

    def test_rotation_full_period_is_identity(self):
        for x in range(32):
            assert ops.rotate_right(x, 5, 5) == x

    def test_rotation_preserves_popcount(self):
        for x in range(64):
            for s in range(6):
                assert ops.popcount(ops.rotate_right(x, s, 6)) == ops.popcount(x)

    def test_rotation_rejects_oversized(self):
        with pytest.raises(ValueError):
            ops.rotate_right(16, 1, 4)
        with pytest.raises(ValueError):
            ops.rotate_right(1, 1, 0)


class TestVectorized:
    def test_popcount_array_matches_scalar(self):
        xs = np.arange(0, 5000, dtype=np.int64)
        got = ops.popcount_array(xs)
        want = np.array([ops.popcount(int(x)) for x in xs])
        assert np.array_equal(got, want)

    def test_popcount_array_large_values(self):
        xs = np.array([(1 << 50) - 1, 1 << 60, 0], dtype=np.uint64)
        assert list(ops.popcount_array(xs)) == [50, 1, 0]

    def test_popcount_array_rejects_floats(self):
        with pytest.raises(TypeError):
            ops.popcount_array(np.array([1.5]))

    def test_popcount_array_rejects_negative(self):
        with pytest.raises(ValueError):
            ops.popcount_array(np.array([-1]))

    def test_rotate_right_array_matches_scalar(self):
        xs = np.arange(64, dtype=np.int64)
        for s in range(6):
            got = ops.rotate_right_array(xs, s, 6)
            want = np.array([ops.rotate_right(int(x), s, 6) for x in xs])
            assert np.array_equal(got, want), s

    def test_rotate_right_array_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            ops.rotate_right_array(np.array([64]), 1, 6)
