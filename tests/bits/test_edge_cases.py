"""Boundary cases across the bits substrate."""

import pytest

from repro.bits import (
    base,
    count_cyclic,
    count_necklaces,
    generator_set,
    gray_sequence,
    hamiltonian_path,
    necklace_representatives,
    period,
    rotate_right,
    transition_sequence,
)


class TestWidthOne:
    def test_period_and_base(self):
        assert period(0, 1) == 1
        assert period(1, 1) == 1
        assert base(0, 1) == 0
        assert base(1, 1) == 0

    def test_counts(self):
        assert count_necklaces(1) == 2
        assert count_cyclic(1) == 0  # no period < 1 possible
        assert necklace_representatives(1) == [0, 1]

    def test_rotation_identity(self):
        assert rotate_right(1, 5, 1) == 1

    def test_gray_and_path(self):
        assert gray_sequence(1) == [0, 1]
        assert transition_sequence(1) == [0]
        assert hamiltonian_path(1) == [0, 1]


class TestZeroWidth:
    def test_gray_sequence_zero(self):
        assert gray_sequence(0) == [0]
        assert transition_sequence(0) == []

    def test_bad_widths_rejected(self):
        with pytest.raises(ValueError):
            period(0, 0)
        with pytest.raises(ValueError):
            count_necklaces(0)
        with pytest.raises(ValueError):
            necklace_representatives(-1)


class TestAllOnesAndZero:
    @pytest.mark.parametrize("n", [2, 5, 8])
    def test_constant_words(self, n):
        ones = (1 << n) - 1
        assert period(ones, n) == 1
        assert base(ones, n) == 0
        assert generator_set(ones, n) == (ones,)
        assert period(0, n) == 1
        assert generator_set(0, n) == (0,)

    @pytest.mark.parametrize("n", [4, 6])
    def test_alternating_word(self, n):
        alt = sum(1 << j for j in range(0, n, 2))
        assert period(alt, n) == 2
        assert len(generator_set(alt, n)) == 2
