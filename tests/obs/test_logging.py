"""The structured-logging facade: sinks, context binding, JSON lines."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import configure_logging, get_logger, logging_enabled


@pytest.fixture(autouse=True)
def _no_sink():
    """Leave the module-global sink unconfigured around every test."""
    configure_logging(None)
    yield
    configure_logging(None)


def _records(buf: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in buf.getvalue().splitlines()]


class TestSinks:
    def test_disabled_by_default(self):
        assert not logging_enabled()
        get_logger().info("ignored")  # must not raise

    def test_stream_sink(self):
        buf = io.StringIO()
        configure_logging(buf)
        assert logging_enabled()
        get_logger().info("hello", x=1)
        (rec,) = _records(buf)
        assert rec["event"] == "hello"
        assert rec["level"] == "info"
        assert rec["x"] == 1
        assert "ts" in rec

    def test_path_sink_appends(self, tmp_path):
        path = tmp_path / "run.jsonl"
        configure_logging(path)
        get_logger().info("first")
        configure_logging(path)  # reopen: append, not truncate
        get_logger().info("second")
        configure_logging(None)
        events = [json.loads(x)["event"] for x in path.read_text().splitlines()]
        assert events == ["first", "second"]

    def test_stdout_sink(self, capsys):
        configure_logging("-")
        get_logger().info("to-stdout")
        assert json.loads(capsys.readouterr().out)["event"] == "to-stdout"

    def test_bad_target_rejected(self):
        with pytest.raises(TypeError):
            configure_logging(42)

    def test_sink_resolved_at_emit_time(self):
        log = get_logger(run="r1")  # created before any sink exists
        buf = io.StringIO()
        configure_logging(buf)
        log.info("late")
        assert _records(buf)[0]["run"] == "r1"


class TestContext:
    def test_bind_composes(self):
        buf = io.StringIO()
        configure_logging(buf)
        get_logger(run="r1").bind(node=3).warning("evt")
        (rec,) = _records(buf)
        assert rec["run"] == "r1" and rec["node"] == 3
        assert rec["level"] == "warning"

    def test_bind_does_not_mutate_parent(self):
        parent = get_logger(run="r1")
        parent.bind(node=3)
        assert parent.context == {"run": "r1"}

    def test_call_fields_override_context(self):
        buf = io.StringIO()
        configure_logging(buf)
        get_logger(phase="a").info("evt", phase="b")
        assert _records(buf)[0]["phase"] == "b"

    def test_unserializable_values_fall_back(self):
        buf = io.StringIO()
        configure_logging(buf)
        get_logger().info("evt", nodes={3, 1, 2}, obj=object())
        (rec,) = _records(buf)
        assert rec["nodes"] == [1, 2, 3]
        assert "object" in rec["obj"]
