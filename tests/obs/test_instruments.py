"""Built-in instruments and the per-subsystem flush helpers."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import pytest

from repro.obs import REGISTRY, MetricsRegistry
from repro.obs.instruments import (
    ENGINE_DEADLOCKS,
    ENGINE_EVENTS,
    ENGINE_TRANSFERS,
    RUNTIME_PACKETS,
    RUNTIME_TIMEOUTS,
    SWEEP_CACHE_OPS,
    SWEEP_POINTS,
    SWEEP_WORKER_UTILIZATION,
    engine_run_finished,
    runtime_run_finished,
    sweep_finished,
)
from repro.sim.ports import PortModel


@pytest.fixture(autouse=True)
def _enabled_registry():
    """Make sure the global registry records during these tests."""
    prev = REGISTRY.enabled
    REGISTRY.configure(enabled=True)
    yield
    REGISTRY.configure(enabled=prev)


class TestEngineFlush:
    def test_flush_populates_labeled_counters(self):
        before = ENGINE_TRANSFERS.labels(
            engine="async", port_model="all-ports"
        ).value
        engine_run_finished(
            "async",
            PortModel.ALL_PORT,
            transfers=7,
            elems=99,
            seconds=0.01,
            events=21,
            admission_blocks=2,
        )
        assert (
            ENGINE_TRANSFERS.labels(
                engine="async", port_model="all-ports"
            ).value
            == before + 7
        )

    def test_port_model_label_uses_enum_value(self):
        before = ENGINE_EVENTS.labels(engine="async").value
        engine_run_finished(
            "async",
            PortModel.ONE_PORT_FULL,
            transfers=1,
            elems=1,
            seconds=0.0,
            events=5,
        )
        assert ENGINE_EVENTS.labels(engine="async").value == before + 5
        series = ENGINE_TRANSFERS.labels(
            engine="async", port_model=PortModel.ONE_PORT_FULL.value
        )
        assert series.labels["port_model"] == "1-send-and-receive"

    def test_deadlock_marker(self):
        before = ENGINE_DEADLOCKS.labels(engine="async").value
        engine_run_finished(
            "async",
            PortModel.ALL_PORT,
            transfers=0,
            elems=0,
            seconds=0.0,
            deadlocked=True,
        )
        assert ENGINE_DEADLOCKS.labels(engine="async").value == before + 1

    def test_noop_while_disabled(self):
        with REGISTRY.disabled():
            before = ENGINE_TRANSFERS.value
            engine_run_finished(
                "async", PortModel.ALL_PORT, transfers=5, elems=5, seconds=0.0
            )
            assert ENGINE_TRANSFERS.value == before


class TestRuntimeFlush:
    def test_flush_populates_counters(self):
        packets0 = RUNTIME_PACKETS.value
        timeouts0 = RUNTIME_TIMEOUTS.value
        runtime_run_finished(
            packets=12, elems=48, seconds=0.02, timeouts=3, repair_rounds=1
        )
        assert RUNTIME_PACKETS.value == packets0 + 12
        assert RUNTIME_TIMEOUTS.value == timeouts0 + 3


@dataclass
class _FakePoint:
    wall_s: float = 0.1
    lru_hits: int = 0
    lru_misses: int = 0
    disk_hits: int = 0
    disk_misses: int = 0


@dataclass
class _FakeStats:
    """Duck-typed stand-in for ``repro.experiments.parallel.SweepStats``."""

    executor: str = "serial"
    jobs: int = 2
    wall_s: float = 1.0
    points: list = field(default_factory=list)

    @property
    def num_points(self) -> int:
        return len(self.points)

    @property
    def point_wall_s(self) -> float:
        return sum(p.wall_s for p in self.points)

    @property
    def lru_hits(self) -> int:
        return sum(p.lru_hits for p in self.points)

    @property
    def lru_misses(self) -> int:
        return sum(p.lru_misses for p in self.points)

    @property
    def disk_hits(self) -> int:
        return sum(p.disk_hits for p in self.points)

    @property
    def disk_misses(self) -> int:
        return sum(p.disk_misses for p in self.points)


class TestSweepFlush:
    def test_flush_folds_points_and_caches(self):
        points0 = SWEEP_POINTS.labels(executor="serial").value
        hits0 = SWEEP_CACHE_OPS.labels(layer="lru", op="hit").value
        stats = _FakeStats(
            points=[
                _FakePoint(wall_s=0.4, lru_hits=3, disk_misses=1),
                _FakePoint(wall_s=0.6, lru_hits=2),
            ]
        )
        sweep_finished(stats)
        assert SWEEP_POINTS.labels(executor="serial").value == points0 + 2
        assert SWEEP_CACHE_OPS.labels(layer="lru", op="hit").value == hits0 + 5
        # utilization = point_wall / (wall * jobs) = 1.0 / (1.0 * 2)
        assert SWEEP_WORKER_UTILIZATION.value == pytest.approx(0.5)

    def test_utilization_capped_at_one(self):
        sweep_finished(
            _FakeStats(jobs=1, wall_s=0.1, points=[_FakePoint(wall_s=5.0)])
        )
        assert SWEEP_WORKER_UTILIZATION.value == 1.0


class TestDisabledOverhead:
    def test_disabled_counter_inc_is_near_noop(self):
        """Smoke bound: a disabled increment is a flag check, nothing more.

        The bound is intentionally loose (shared CI runners); the test
        guards against accidentally putting allocation or locking on the
        disabled path, not against microsecond-level drift.
        """
        reg = MetricsRegistry(enabled=False)
        series = reg.counter("noop_total", labelnames=("k",)).labels(k="x")
        n = 200_000
        t0 = time.perf_counter()
        for _ in range(n):
            series.inc()
        elapsed = time.perf_counter() - t0
        assert series.value == 0
        assert elapsed < 1.0, f"{n} disabled incs took {elapsed:.3f}s"
