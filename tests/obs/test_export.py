"""Prometheus text exposition, parsing round-trip, JSON snapshots."""

from __future__ import annotations

import io
import json
import math

from repro.obs import (
    MetricsRegistry,
    parse_prometheus,
    snapshot,
    to_prometheus,
    write_metrics_json,
)


def _populated() -> MetricsRegistry:
    reg = MetricsRegistry(enabled=True)
    c = reg.counter("repro_ops_total", "operations", ("kind", "backend"))
    c.labels(kind="bcast", backend="sim").inc(12)
    c.labels(kind="scatter", backend="runtime").inc(3)
    reg.gauge("repro_util", "utilization").set(0.75)
    h = reg.histogram("repro_lat_seconds", "latency", buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)
    h.observe(5.0)
    return reg


class TestPrometheusText:
    def test_help_and_type_lines(self):
        text = to_prometheus(_populated())
        assert "# HELP repro_ops_total operations" in text
        assert "# TYPE repro_ops_total counter" in text
        assert "# TYPE repro_lat_seconds histogram" in text

    def test_labeled_sample_lines(self):
        text = to_prometheus(_populated())
        assert 'repro_ops_total{kind="bcast",backend="sim"} 12' in text

    def test_histogram_expansion(self):
        text = to_prometheus(_populated())
        assert 'repro_lat_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_lat_seconds_bucket{le="1"} 2' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_lat_seconds_count 3" in text

    def test_label_value_escaping(self):
        reg = MetricsRegistry(enabled=True)
        c = reg.counter("x_total", labelnames=("path",))
        c.labels(path='a"b\\c\nd').inc()
        parsed = parse_prometheus(to_prometheus(reg))
        assert parsed[("x_total", (("path", 'a"b\\c\nd'),))] == 1


class TestRoundTrip:
    def test_counters_and_gauges_round_trip(self):
        reg = _populated()
        parsed = parse_prometheus(to_prometheus(reg))
        assert parsed[
            ("repro_ops_total", (("backend", "sim"), ("kind", "bcast")))
        ] == 12
        assert parsed[
            ("repro_ops_total", (("backend", "runtime"), ("kind", "scatter")))
        ] == 3
        assert parsed[("repro_util", ())] == 0.75

    def test_histogram_round_trip(self):
        parsed = parse_prometheus(to_prometheus(_populated()))
        assert parsed[("repro_lat_seconds_bucket", (("le", "0.1"),))] == 1
        assert parsed[("repro_lat_seconds_bucket", (("le", "+Inf"),))] == 3
        assert parsed[("repro_lat_seconds_count", ())] == 3
        assert parsed[("repro_lat_seconds_sum", ())] == 5.55

    def test_inf_value_parses(self):
        assert parse_prometheus("x +Inf\n")[("x", ())] == math.inf

    def test_comments_and_blanks_skipped(self):
        parsed = parse_prometheus("# HELP x y\n\n# TYPE x counter\nx 1\n")
        assert parsed == {("x", ()): 1.0}

    def test_empty_registry_is_empty_text(self):
        assert to_prometheus(MetricsRegistry(enabled=True)) == ""
        assert parse_prometheus("") == {}


class TestSnapshot:
    def test_structure_and_values(self):
        snap = snapshot(_populated())
        fam = snap["repro_ops_total"]
        assert fam["type"] == "counter"
        values = {
            tuple(sorted(s["labels"].items())): s["value"]
            for s in fam["series"]
        }
        assert values[(("backend", "sim"), ("kind", "bcast"))] == 12

    def test_histogram_series_shape(self):
        snap = snapshot(_populated())
        series = snap["repro_lat_seconds"]["series"][0]
        assert series["count"] == 3
        assert series["sum"] == 5.55
        assert series["buckets"]["+Inf"] == 3
        assert series["buckets"]["0.1"] == 1

    def test_json_serializable(self):
        json.dumps(snapshot(_populated()))


class TestWriteMetricsJson:
    def test_write_to_path(self, tmp_path):
        path = tmp_path / "metrics.json"
        doc = write_metrics_json(
            path, extra={"command": "test"}, registry=_populated()
        )
        loaded = json.loads(path.read_text())
        assert loaded["command"] == "test"
        assert "repro_ops_total" in loaded["registry"]
        assert doc["command"] == "test"

    def test_write_to_stream(self):
        buf = io.StringIO()
        write_metrics_json(buf, registry=_populated())
        assert "repro_util" in json.loads(buf.getvalue())["registry"]
