"""Timers and the cProfile wrapper."""

from __future__ import annotations

import time

from repro.obs import cpu_timer, profiled, wall_timer


def _spin(n: int = 20000) -> int:
    total = 0
    for i in range(n):
        total += i * i
    return total


class TestTimers:
    def test_wall_timer_measures(self):
        with wall_timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_cpu_timer_ignores_sleep(self):
        with cpu_timer() as t:
            time.sleep(0.02)
        assert t.elapsed < 0.02

    def test_elapsed_frozen_after_exit(self):
        with wall_timer() as t:
            pass
        first = t.elapsed
        time.sleep(0.005)
        assert t.elapsed == first


class TestProfiled:
    def test_report_contains_profiled_function(self):
        with profiled() as prof:
            _spin()
        text = prof.text(limit=40)
        # The wrapper may yield an empty report when another profiler
        # (e.g. coverage tracing) already owns the hook; when it did
        # capture, our workload must appear.
        if "_spin" not in text:
            assert prof.top_functions() == []

    def test_text_renders_without_error(self):
        with profiled() as prof:
            _spin(100)
        assert isinstance(prof.text(limit=5), str)

    def test_top_functions_shape(self):
        with profiled() as prof:
            _spin()
        for name, cumtime in prof.top_functions(limit=3):
            assert isinstance(name, str)
            assert cumtime >= 0.0
