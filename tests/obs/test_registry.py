"""The metrics registry: family/series semantics, enablement, state."""

from __future__ import annotations

import pytest

from repro.obs import DEFAULT_BUCKETS, MetricsRegistry, ObsError


@pytest.fixture
def reg() -> MetricsRegistry:
    """A fresh, enabled registry isolated from the process default."""
    return MetricsRegistry(enabled=True)


class TestCounter:
    def test_unlabeled_inc(self, reg):
        c = reg.counter("events_total", "things that happened")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_labeled_series_are_independent(self, reg):
        c = reg.counter("ops_total", labelnames=("kind",))
        c.labels(kind="a").inc(2)
        c.labels(kind="b").inc(3)
        assert c.labels(kind="a").value == 2
        assert c.labels(kind="b").value == 3
        assert c.value == 5  # family value sums the series

    def test_labels_cached_identity(self, reg):
        c = reg.counter("ops_total", labelnames=("kind",))
        assert c.labels(kind="x") is c.labels(kind="x")

    def test_negative_inc_rejected(self, reg):
        c = reg.counter("events_total")
        with pytest.raises(ObsError):
            c.inc(-1)

    def test_wrong_labelnames_rejected(self, reg):
        c = reg.counter("ops_total", labelnames=("kind",))
        with pytest.raises(ObsError):
            c.labels(flavor="x")
        with pytest.raises(ObsError):
            c.labels()  # unlabeled access to a labeled family

    def test_label_values_coerced_to_str(self, reg):
        c = reg.counter("ops_total", labelnames=("dim",))
        c.labels(dim=4).inc()
        assert c.labels(dim="4").value == 1


class TestGauge:
    def test_set_inc_dec(self, reg):
        g = reg.gauge("depth")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12

    def test_gauge_may_go_negative(self, reg):
        g = reg.gauge("delta")
        g.dec(2)
        assert g.value == -2


class TestHistogram:
    def test_bucket_placement(self, reg):
        h = reg.histogram("lat", buckets=(0.1, 1.0, 10.0))
        s = h.labels()
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            s.observe(v)
        cum = dict(s.cumulative_buckets())
        assert cum[0.1] == 1
        assert cum[1.0] == 3
        assert cum[10.0] == 4
        assert cum[float("inf")] == 5
        assert s.count == 5
        assert s.sum == pytest.approx(56.05)

    def test_boundary_lands_in_its_bucket(self, reg):
        # Prometheus buckets are `le` (inclusive upper bounds).
        h = reg.histogram("lat", buckets=(1.0, 2.0))
        h.observe(1.0)
        assert dict(h.labels().cumulative_buckets())[1.0] == 1

    def test_default_buckets_used(self, reg):
        h = reg.histogram("lat")
        assert h.buckets == tuple(sorted(DEFAULT_BUCKETS))

    def test_empty_buckets_rejected(self, reg):
        with pytest.raises(ObsError):
            reg.histogram("lat", buckets=())


class TestRegistration:
    def test_reregistration_returns_same_family(self, reg):
        a = reg.counter("x_total", labelnames=("k",))
        b = reg.counter("x_total", labelnames=("k",))
        assert a is b

    def test_kind_mismatch_rejected(self, reg):
        reg.counter("x_total")
        with pytest.raises(ObsError):
            reg.gauge("x_total")

    def test_labelnames_mismatch_rejected(self, reg):
        reg.counter("x_total", labelnames=("k",))
        with pytest.raises(ObsError):
            reg.counter("x_total", labelnames=("k", "v"))

    def test_collect_sorted_and_get(self, reg):
        reg.counter("b_total")
        reg.gauge("a")
        assert [f.name for f in reg.collect()] == ["a", "b_total"]
        assert reg.get("a").kind == "gauge"
        assert reg.get("missing") is None


class TestEnablement:
    def test_disabled_registry_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("x_total")
        g = reg.gauge("y")
        h = reg.histogram("z", buckets=(1.0,))
        c.inc()
        g.set(9)
        h.observe(0.5)
        assert c.value == 0
        assert g.value == 0
        assert h.labels().count == 0

    def test_always_instruments_keep_counting(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("cache_total", always=True)
        c.inc(3)
        assert c.value == 3

    def test_disabled_context_manager(self, reg):
        c = reg.counter("x_total")
        with reg.disabled():
            c.inc()
        c.inc()
        assert c.value == 1
        assert reg.enabled

    def test_configure_toggles(self, reg):
        assert reg.configure(enabled=False) is False
        assert not reg.enabled
        assert reg.configure(enabled=True) is True

    def test_configure_argument_validation(self, reg):
        with pytest.raises(ValueError):
            reg.configure()
        with pytest.raises(ValueError):
            reg.configure(enabled=True, from_env=True)

    def test_configure_from_env(self, reg, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "off")
        assert reg.configure(from_env=True) is False
        monkeypatch.setenv("REPRO_OBS", "1")
        assert reg.configure(from_env=True) is True


class TestState:
    def test_reset_zeroes_everything(self, reg):
        c = reg.counter("x_total", labelnames=("k",))
        c.labels(k="a").inc(5)
        h = reg.histogram("z", buckets=(1.0,))
        h.observe(0.5)
        reg.reset()
        assert c.value == 0
        assert h.labels().count == 0

    def test_counter_values_snapshot(self, reg):
        c = reg.counter("x_total", labelnames=("k",))
        c.labels(k="a").inc(2)
        reg.gauge("y").set(9)  # gauges are not part of the delta snapshot
        values = reg.counter_values()
        assert values == {("x_total", ("a",)): 2}
