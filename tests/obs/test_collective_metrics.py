"""``CollectiveResult.metrics``: phases, canonical counts, backends."""

from __future__ import annotations

import pytest

from repro.collectives import broadcast, scatter
from repro.obs import REGISTRY
from repro.topology import Hypercube


@pytest.fixture(autouse=True)
def _enabled_registry():
    prev = REGISTRY.enabled
    REGISTRY.configure(enabled=True)
    yield
    REGISTRY.configure(enabled=prev)


#: the canonical traffic numbers both backends must agree on
CANONICAL = ("packets_sent", "elems_sent", "links_used")


class TestSimMetrics:
    def test_broadcast_metrics_populated(self):
        r = broadcast(Hypercube(4), 0, "msbt", 64, 8)
        m = r.metrics
        assert m["op"] == "broadcast"
        assert m["algorithm"] == "msbt"
        assert m["backend"] == "sim"
        assert m["packets_sent"] > 0
        assert m["elems_sent"] > 0
        assert m["links_used"] > 0
        assert m["cycles"] == r.cycles
        assert m["wall_s"] > 0
        assert not m["degraded"]

    def test_phases_cover_schedule_and_sync(self):
        m = broadcast(Hypercube(4), 0, "sbt", 16, 4).metrics
        assert set(m["phases"]) >= {"schedule", "sync"}
        assert all(v >= 0 for v in m["phases"].values())

    def test_event_sim_adds_async_phase(self):
        m = broadcast(
            Hypercube(4), 0, "sbt", 16, 4, run_event_sim=True
        ).metrics
        assert "async" in m["phases"]

    def test_counter_deltas_include_engine_traffic(self):
        m = broadcast(Hypercube(4), 0, "msbt", 64, 8).metrics
        engine_keys = [
            k for k in m["counters"]
            if k.startswith("repro_engine_transfers_total")
        ]
        assert engine_keys, sorted(m["counters"])
        assert sum(m["counters"][k] for k in engine_keys) == m["packets_sent"]

    def test_disabled_registry_leaves_metrics_empty(self):
        with REGISTRY.disabled():
            r = broadcast(Hypercube(4), 0, "msbt", 64, 8)
        assert r.metrics == {}

    def test_scatter_metrics(self):
        m = scatter(Hypercube(3), 0, message_elems=8, packet_elems=4).metrics
        assert m["op"] == "scatter"
        assert m["packets_sent"] > 0


class TestBackendDifferential:
    """The ``sim`` and ``runtime`` backends must report identical
    canonical traffic for the same operation — the counters describe
    the *schedule*, not the executor."""

    def test_broadcast_backends_agree(self):
        kwargs = dict(message_elems=64, packet_elems=8)
        sim = broadcast(Hypercube(4), 0, "msbt", **kwargs)
        rt = broadcast(Hypercube(4), 0, "msbt", backend="runtime", **kwargs)
        assert rt.metrics["backend"] == "runtime"
        for key in CANONICAL + ("cycles",):
            assert sim.metrics[key] == rt.metrics[key], key
        assert sim.metrics["packets_sent"] > 0

    def test_scatter_backends_agree(self):
        kwargs = dict(message_elems=8, packet_elems=4)
        sim = scatter(Hypercube(3), 0, **kwargs)
        rt = scatter(Hypercube(3), 0, backend="runtime", **kwargs)
        for key in CANONICAL + ("cycles",):
            assert sim.metrics[key] == rt.metrics[key], key

    def test_runtime_phase_timed(self):
        m = broadcast(
            Hypercube(3), 0, "sbt", 16, 4, backend="runtime"
        ).metrics
        assert "runtime" in m["phases"]
        runtime_keys = [
            k for k in m["counters"]
            if k.startswith("repro_runtime_packets_total")
        ]
        assert runtime_keys
        assert (
            sum(m["counters"][k] for k in runtime_keys)
            == m["packets_sent"]
        )
