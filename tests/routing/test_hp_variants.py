"""Tests for the dual-direction HP broadcast (§3.4)."""

import pytest

from repro.routing import dual_hp_broadcast_schedule, tree_broadcast_schedule
from repro.sim import PortModel, run_synchronous
from repro.topology import Hypercube
from repro.trees import HamiltonianPathTree


def _run(cube, sched, pm, source):
    res = run_synchronous(cube, sched, pm, {source: set(sched.chunk_sizes)})
    want = set(sched.chunk_sizes)
    for v in cube.nodes():
        assert res.holdings[v] >= want, v
    return res


class TestDualHpBroadcast:
    @pytest.mark.parametrize("pm", list(PortModel))
    @pytest.mark.parametrize("source", [0, 6])
    def test_delivers(self, cube4, pm, source):
        sched = dual_hp_broadcast_schedule(cube4, source, 12, 3, pm)
        _run(cube4, sched, pm, source)

    def test_all_port_steady_state_two_packets_per_cycle(self, cube4):
        # packet term halves vs the single path under all-port
        P = 32
        single = tree_broadcast_schedule(
            HamiltonianPathTree(cube4, 0), P, 1, PortModel.ALL_PORT
        )
        dual = dual_hp_broadcast_schedule(cube4, 0, P, 1, PortModel.ALL_PORT)
        rs = _run(cube4, single, PortModel.ALL_PORT, 0)
        rd = _run(cube4, dual, PortModel.ALL_PORT, 0)
        # single: P + N - 2; dual: P/2 + N - 2 (both rings pipelined)
        assert rd.cycles <= rs.cycles - P // 2 + 2

    def test_factor_at_most_two_claim(self, cube4):
        # §3.4: the variations change delays/cycles by at most 2x
        for pm in PortModel:
            single = tree_broadcast_schedule(
                HamiltonianPathTree(cube4, 0), 16, 2, pm
            )
            dual = dual_hp_broadcast_schedule(cube4, 0, 16, 2, pm)
            rs = _run(cube4, single, pm, 0)
            rd = _run(cube4, dual, pm, 0)
            assert rd.cycles <= 2 * rs.cycles
            assert rs.cycles <= 2 * rd.cycles

    def test_source_uses_two_ports(self, cube4):
        sched = dual_hp_broadcast_schedule(cube4, 0, 8, 1, PortModel.ALL_PORT)
        res = _run(cube4, sched, PortModel.ALL_PORT, 0)
        out_ports = res.link_stats.port_elems(0)
        assert len(out_ports) == 2  # one per ring direction

    def test_rings_split_packets_evenly(self, cube4):
        sched = dual_hp_broadcast_schedule(cube4, 0, 10, 1, PortModel.ALL_PORT)
        res = _run(cube4, sched, PortModel.ALL_PORT, 0)
        a, b = res.link_stats.port_elems(0).values()
        assert abs(a - b) <= 1
