"""Tests for the §5.2 routing tables: the root's rotation-shared table
and the internal-node DF/BF tables with the paper's size bounds."""

from math import log2

import pytest

from repro.bits.necklaces import is_cyclic, period
from repro.routing.tables import (
    breadth_first_level_table,
    breadth_first_table_bits,
    build_root_table,
    depth_first_port_counts,
    depth_first_table_bits,
)
from repro.topology import Hypercube
from repro.trees import BalancedSpanningTree


@pytest.fixture(params=[3, 4, 5, 6])
def tree(request):
    return BalancedSpanningTree(Hypercube(request.param))


class TestRootTable:
    def test_entries_are_subtree0_in_df_order(self, tree):
        table = build_root_table(tree)
        sub0 = set(tree.subtree_node_lists[0])
        assert {tree.root ^ c for c in table.entries} == sub0
        # parents precede descendants (valid DF)
        pos = {tree.root ^ c: i for i, c in enumerate(table.entries)}
        for v in sub0:
            p = tree.parents_map[v]
            if p != tree.root:
                assert pos[p] < pos[v], v

    def test_port_orders_cover_each_subtree(self, tree):
        # rotating the one table reproduces every subtree's node set
        table = build_root_table(tree)
        for j in range(tree.n):
            order = table.port_order(j)
            assert set(order) == set(tree.subtree_node_lists[j]), j

    def test_port_orders_are_valid_df_traversals(self, tree):
        # the rotation is a tree isomorphism, so the rotated order is
        # still parent-before-descendant within subtree j
        table = build_root_table(tree)
        for j in range(tree.n):
            order = table.port_order(j)
            pos = {v: i for i, v in enumerate(order)}
            for v in order:
                p = tree.parents_map[v]
                if p != tree.root:
                    assert p in pos and pos[p] < pos[v], (j, v)

    def test_cyclic_entries_skipped_beyond_period(self, tree):
        # entry c is transmitted on ports 0 .. period(c) - 1 only, so
        # across all ports it accounts for exactly period(c) messages
        table = build_root_table(tree)
        n = tree.n
        total_sent = sum(len(table.port_order(j)) for j in range(n))
        expected = sum(period(c, n) for c in table.entries)
        assert total_sent == expected == tree.cube.num_nodes - 1
        for c in table.entries:
            if is_cyclic(c, n):
                p = period(c, n)
                # sent on port p-1 but not on port p (rotating by the
                # period would duplicate an earlier destination)
                assert (tree.root ^ c) not in table.port_order(p)

    def test_size_matches_paper_estimate(self):
        # length ~ N / log N entries of log N bits each
        n = 8
        tree = BalancedSpanningTree(Hypercube(n))
        table = build_root_table(tree)
        ideal_len = (1 << n) / n
        assert len(table.entries) <= 1.2 * ideal_len
        assert table.size_bits() == len(table.entries) * n

    def test_bad_port_rejected(self, tree):
        with pytest.raises(ValueError):
            build_root_table(tree).port_order(tree.n)


class TestDepthFirstTables:
    def test_counts_match_subtree_sizes(self, tree):
        for v in tree.cube.nodes():
            if v == tree.root:
                continue
            counts = depth_first_port_counts(tree, v)
            assert sum(counts.values()) == tree.subtree_sizes[v] - 1

    def test_ports_used_at_most_half_log_n(self, tree):
        # §5.2: "the number of ports used in each subtree is at most log N / 2"
        # per node that is the BST fanout bound (property 2)
        import math

        for v in tree.cube.nodes():
            if v == tree.root:
                continue
            counts = depth_first_port_counts(tree, v)
            level = tree.levels[v]
            assert len(counts) <= math.ceil((tree.n - level) / 2)

    def test_size_bound_log_squared(self):
        # the paper's bound: ~ log^2 N bits per internal node
        for n in (4, 6, 8, 10):
            tree = BalancedSpanningTree(Hypercube(n))
            worst = max(
                depth_first_table_bits(tree, v)
                for v in tree.cube.nodes()
                if v != tree.root
            )
            assert worst <= n * n, (n, worst)

    def test_root_rejected(self, tree):
        with pytest.raises(ValueError):
            depth_first_port_counts(tree, tree.root)


class TestBreadthFirstTables:
    def test_level_counts_sum_to_subtrees(self, tree):
        for v in tree.cube.nodes():
            if v == tree.root:
                continue
            table = breadth_first_level_table(tree, v)
            total = sum(sum(levels.values()) for levels in table.values())
            assert total == tree.subtree_sizes[v] - 1

    def test_size_bound_log_cubed(self):
        for n in (4, 6, 8, 10):
            tree = BalancedSpanningTree(Hypercube(n))
            worst = max(
                breadth_first_table_bits(tree, v)
                for v in tree.cube.nodes()
                if v != tree.root
            )
            assert worst <= n ** 3, (n, worst)

    def test_df_tables_smaller_than_bf(self):
        # "the depth-first communication order is more effective with
        # respect to table space"
        tree = BalancedSpanningTree(Hypercube(8))
        df = sum(
            depth_first_table_bits(tree, v)
            for v in tree.cube.nodes() if v != tree.root
        )
        bf = sum(
            breadth_first_table_bits(tree, v)
            for v in tree.cube.nodes() if v != tree.root
        )
        assert df < bf

    def test_root_rejected(self, tree):
        with pytest.raises(ValueError):
            breadth_first_level_table(tree, tree.root)
