"""Tests for the generic (any-tree) reduce schedule."""

import pytest

from repro.routing import (
    reduce_initial_holdings,
    sbt_reduce_schedule,
    tree_reduce_initial_holdings,
    tree_reduce_schedule,
)
from repro.routing.reverse import ACC, DONE
from repro.sim import PortModel, run_synchronous
from repro.topology import Hypercube
from repro.trees import (
    BalancedSpanningTree,
    HamiltonianPathTree,
    SpanningBinomialTree,
    TwoRootedCompleteBinaryTree,
)

TREES = (
    SpanningBinomialTree,
    BalancedSpanningTree,
    TwoRootedCompleteBinaryTree,
    HamiltonianPathTree,
)


def _run(tree, M, B, pm):
    sched = tree_reduce_schedule(tree, M, B, pm)
    res = run_synchronous(
        tree.cube, sched, pm, tree_reduce_initial_holdings(tree, M, B)
    )
    return sched, res


class TestGenericReduce:
    @pytest.mark.parametrize("cls", TREES)
    @pytest.mark.parametrize("pm", list(PortModel))
    def test_root_sees_every_subtree_combined(self, cube4, cls, pm):
        tree = cls(cube4, 3)
        sched, res = _run(tree, 4, 2, pm)
        for v in cube4.nodes():
            assert (DONE, v, 0) in res.holdings[3]
            assert (DONE, v, 1) in res.holdings[3]

    @pytest.mark.parametrize("cls", TREES)
    def test_every_node_sends_once_per_packet(self, cube4, cls):
        tree = cls(cube4, 0)
        sched, _ = _run(tree, 4, 2, PortModel.ONE_PORT_FULL)
        senders = sorted(t.src for r in sched.rounds for t in r)
        assert senders == sorted(list(range(1, 16)) * 2)

    @pytest.mark.parametrize("cls", TREES)
    def test_combining_order_respected(self, cube4, cls):
        tree = cls(cube4, 0)
        sched, _ = _run(tree, 1, 1, PortModel.ALL_PORT)
        send_round = {t.src: ri for ri, r in enumerate(sched.rounds) for t in r}
        for v in cube4.nodes():
            for c in tree.children_map[v]:
                if v != 0:
                    assert send_round[c] < send_round[v], (cls, v, c)

    def test_matches_direct_sbt_generator_cycles(self, cube5):
        M, B = 12, 4
        tree = SpanningBinomialTree(cube5, 0)
        for pm in PortModel:
            generic = _run(tree, M, B, pm)[1].cycles
            direct_sched = sbt_reduce_schedule(cube5, 0, M, B, pm)
            direct = run_synchronous(
                cube5, direct_sched, pm, reduce_initial_holdings(cube5, M, B)
            ).cycles
            assert generic <= direct + 1, pm

    def test_payload_sizes_are_m_per_hop(self, cube4):
        # combining keeps edges at M elements regardless of subtree size
        tree = BalancedSpanningTree(cube4, 0)
        sched, res = _run(tree, 8, 8, PortModel.ALL_PORT)
        assert sched.max_transfer_elems() == 8
        assert res.link_stats.max_edge_elems() == 8

    def test_done_markers_are_free(self, cube4):
        tree = TwoRootedCompleteBinaryTree(cube4, 0)
        sched, _ = _run(tree, 8, 8, PortModel.ALL_PORT)
        for c, s in sched.chunk_sizes.items():
            if c[0] == DONE:
                assert s == 0
            else:
                assert c[0] == ACC and s == 8
