"""The allgather's dimension exchange IS N concurrent translated SBTs.

The paper (§1) says lower-bound all-to-all algorithms follow from
running ``N`` translated spanning trees concurrently.  For the
recursive-doubling allgather this is literally true: in step ``t``,
origin ``o``'s contribution moves across exactly the dimension-``t``
SBT edges of the tree rooted at ``o`` — so the ``N`` broadcasts all
proceed along their own SBTs, using every directed edge each step,
without ever colliding (each node sends one packet per step).  This
module verifies that equivalence.
"""

import pytest

from repro.routing import allgather_initial_holdings, allgather_schedule
from repro.routing.alltoall import GATHER_TAG
from repro.sim import PortModel, run_synchronous
from repro.topology import Hypercube
from repro.trees import SpanningBinomialTree


class TestAllgatherIsTranslatedSbts:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_each_origin_travels_its_own_sbt(self, n):
        cube = Hypercube(n)
        sched = allgather_schedule(cube, 1, PortModel.ONE_PORT_FULL)
        trees = {o: SpanningBinomialTree(cube, o) for o in cube.nodes()}
        tree_edges = {
            o: {(e.src, e.dst) for e in t.edges()} for o, t in trees.items()
        }
        for r in sched.rounds:
            for transfer in r:
                for chunk in transfer.chunks:
                    origin = chunk[1]
                    if transfer.dst == origin:
                        continue  # never happens, but keep the check tight
                    assert (transfer.src, transfer.dst) in tree_edges[origin], (
                        f"origin {origin} moved over a non-SBT edge "
                        f"{transfer.src}->{transfer.dst}"
                    )

    def test_every_step_uses_every_directed_link_of_its_dimension(self, cube4):
        sched = allgather_schedule(cube4, 1, PortModel.ONE_PORT_FULL)
        for t, r in enumerate(sched.rounds):
            dims = {(tr.src ^ tr.dst).bit_length() - 1 for tr in r}
            assert dims == {t}
            assert len(r) == cube4.num_nodes  # both directions of every link

    def test_full_bandwidth_and_minimum_steps(self, cube4):
        # N-1 contributions received per node in log N steps: only
        # possible because all N SBTs run concurrently edge-disjointly
        # per step
        sched = allgather_schedule(cube4, 1, PortModel.ONE_PORT_FULL)
        res = run_synchronous(
            cube4, sched, PortModel.ONE_PORT_FULL, allgather_initial_holdings(cube4)
        )
        assert res.cycles == 4
        for v in cube4.nodes():
            assert {c[1] for c in res.holdings[v] if c[0] == GATHER_TAG} == set(
                cube4.nodes()
            )

    def test_hop_count_matches_sbt_distance(self, cube4):
        # origin o's contribution reaches node v after exactly the SBT
        # path length (= Hamming distance) worth of hops
        sched = allgather_schedule(cube4, 1, PortModel.ONE_PORT_FULL)
        arrival: dict[tuple[int, int], int] = {}
        holdings = allgather_initial_holdings(cube4)
        for step, r in enumerate(sched.rounds):
            new = []
            for tr in r:
                for c in tr.chunks:
                    if (tr.dst, c) not in arrival and c not in holdings.get(tr.dst, set()):
                        new.append((tr.dst, c, step))
            for dst, c, step_ in new:
                arrival[(dst, c[1])] = step_
        for (dst, origin), step in arrival.items():
            # recursive doubling corrects ascending dimensions: origin's
            # data reaches dst in the step of their highest differing bit
            top_bit = (dst ^ origin).bit_length() - 1
            assert step == top_bit
