"""Tests for the N-translated-BST total exchange (the [8] extension)."""

import pytest

from repro.routing.alltoall import (
    alltoall_bst_schedule,
    alltoall_initial_holdings,
    alltoall_personalized_schedule,
)
from repro.sim import MachineParams, PortModel, run_synchronous
from repro.topology import Hypercube
from repro.trees import BalancedSpanningTree


def _run(cube, sched, machine=None):
    res = run_synchronous(
        cube, sched, PortModel.ALL_PORT, alltoall_initial_holdings(cube), machine
    )
    for v in cube.nodes():
        got = {c for c in res.holdings[v] if c[2] == v}
        assert len(got) == cube.num_nodes - 1, v
    return res


class TestAlltoallBst:
    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_total_exchange_completes(self, n):
        cube = Hypercube(n)
        _run(cube, alltoall_bst_schedule(cube, 3))

    def test_takes_height_steps(self, cube4):
        sched = alltoall_bst_schedule(cube4, 1)
        res = _run(cube4, sched)
        assert res.cycles == BalancedSpanningTree(cube4).height

    def test_messages_follow_translated_bst_paths(self, cube4):
        sched = alltoall_bst_schedule(cube4, 1)
        trees = {s: BalancedSpanningTree(cube4, s) for s in cube4.nodes()}
        edge_sets = {
            s: {(e.src, e.dst) for e in t.edges()} for s, t in trees.items()
        }
        for r in sched.rounds:
            for t in r:
                for chunk in t.chunks:
                    s = chunk[1]
                    assert (t.src, t.dst) in edge_sets[s], (s, t)

    def test_every_link_carries_traffic(self, cube4):
        # the point of the construction: all N log N directed links work
        sched = alltoall_bst_schedule(cube4, 1)
        res = _run(cube4, sched)
        assert len(res.link_stats.elems) == cube4.num_directed_edges

    def test_beats_dimension_exchange_by_about_log_n(self):
        machine = MachineParams(tau=1.0, t_c=1.0)
        for n, min_speedup in ((4, 2.2), (5, 3.0)):
            cube = Hypercube(n)
            M = 4
            t_bst = _run(cube, alltoall_bst_schedule(cube, M), machine).time
            dimex = alltoall_personalized_schedule(cube, M, PortModel.ONE_PORT_FULL)
            res_d = run_synchronous(
                cube, dimex, PortModel.ONE_PORT_FULL,
                alltoall_initial_holdings(cube), machine,
            )
            assert res_d.time / t_bst > min_speedup, n

    def test_near_bandwidth_lower_bound(self):
        # each node receives (N-1)M over n ports: time >= (N-1)M/n t_c;
        # the schedule should land within ~2x of it
        n, M = 5, 4
        cube = Hypercube(n)
        machine = MachineParams(tau=0.0, t_c=1.0)
        t = _run(cube, alltoall_bst_schedule(cube, M), machine).time
        bound = (cube.num_nodes - 1) * M / n
        assert t <= 4 * bound

    def test_packet_splitting(self, cube4):
        sched = alltoall_bst_schedule(cube4, 4, packet_elems=8)
        assert sched.max_transfer_elems() <= 8
        _run(cube4, sched)

    def test_bad_message_rejected(self, cube4):
        with pytest.raises(ValueError):
            alltoall_bst_schedule(cube4, 0)
