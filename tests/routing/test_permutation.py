"""Tests for store-and-forward permutation delivery, including the
e-cube-vs-Valiant congestion story from §1's related work."""

import random

import pytest

from repro.routing.permutation import (
    PERM,
    permutation_initial_holdings,
    permutation_schedule,
)
from repro.sim import PortModel, run_synchronous
from repro.topology import (
    Hypercube,
    route_permutation,
    transpose_permutation,
    valiant_route_permutation,
)


def _deliver(cube, paths, M, pm):
    sched = permutation_schedule(cube, paths, M, pm)
    res = run_synchronous(
        cube, sched, pm, permutation_initial_holdings(cube, paths, M)
    )
    for src, path in paths.items():
        assert (PERM, src) in res.holdings[path[-1]], src
    return res


class TestDelivery:
    @pytest.mark.parametrize("pm", list(PortModel))
    def test_shift_permutation_delivers(self, cube4, pm):
        perm = {v: v ^ 0b0110 for v in cube4.nodes()}
        paths = route_permutation(cube4, perm)
        _deliver(cube4, paths, 4, pm)

    @pytest.mark.parametrize("pm", list(PortModel))
    def test_valiant_paths_deliver(self, cube4, pm):
        perm = {v: (v + 1) % 16 for v in cube4.nodes()}
        paths = valiant_route_permutation(cube4, perm, random.Random(2))
        _deliver(cube4, paths, 2, pm)

    def test_bad_path_rejected(self, cube4):
        with pytest.raises(ValueError, match="non-edge"):
            permutation_schedule(cube4, {0: [0, 3]}, 1, PortModel.ALL_PORT)
        with pytest.raises(ValueError, match="starts at"):
            permutation_schedule(cube4, {0: [1, 0]}, 1, PortModel.ALL_PORT)


class TestCongestionStory:
    def test_shift_completes_in_distance_cycles(self, cube5):
        # a translation permutation has zero contention: cycles ==
        # Hamming weight of the shift under all-port
        shift = 0b10110
        perm = {v: v ^ shift for v in cube5.nodes()}
        paths = route_permutation(cube5, perm)
        res = _deliver(cube5, paths, 1, PortModel.ALL_PORT)
        assert res.cycles == 3

    def test_valiant_beats_ecube_on_transpose(self):
        cube = Hypercube(6)
        perm = transpose_permutation(cube)
        ecube = _deliver(
            cube, route_permutation(cube, perm), 1, PortModel.ALL_PORT
        ).cycles
        valiant = min(
            _deliver(
                cube,
                valiant_route_permutation(cube, perm, random.Random(seed)),
                1,
                PortModel.ALL_PORT,
            ).cycles
            for seed in range(3)
        )
        # e-cube serializes through congested links; randomization pays
        # longer paths but spreads the load
        assert ecube > cube.dimension  # congestion forces extra cycles
        assert valiant <= ecube + 2
