"""Integration tests for gather and reduce (the reverse operations)."""

import pytest

from repro.routing import (
    gather_from_scatter,
    reduce_combine_rule,
    reduce_initial_holdings,
    sbt_reduce_schedule,
    sbt_scatter_schedule,
)
from repro.routing.common import MSG
from repro.routing.reverse import ACC
from repro.sim import PortModel, run_synchronous
from repro.topology import Hypercube
from repro.trees import SpanningBinomialTree


class TestGather:
    @pytest.mark.parametrize("pm", list(PortModel))
    def test_collects_everything_at_root(self, cube4, pm):
        root = 6
        g = gather_from_scatter(sbt_scatter_schedule(cube4, root, 4, 8, pm))
        init = {
            v: {c for c in g.chunk_sizes if c[0] == MSG and c[1] == v}
            for v in cube4.nodes()
        }
        res = run_synchronous(cube4, g, pm, init)
        assert res.holdings[root] >= set(g.chunk_sizes)

    def test_same_cycle_count_as_scatter(self, cube4):
        pm = PortModel.ONE_PORT_FULL
        s = sbt_scatter_schedule(cube4, 0, 4, 8, pm)
        g = gather_from_scatter(s)
        init_s = {0: set(s.chunk_sizes)}
        init_g = {
            v: {c for c in g.chunk_sizes if c[1] == v} for v in cube4.nodes()
        }
        rs = run_synchronous(cube4, s, pm, init_s)
        rg = run_synchronous(cube4, g, pm, init_g)
        assert rs.cycles == rg.cycles

    def test_algorithm_renamed(self, cube4):
        g = gather_from_scatter(
            sbt_scatter_schedule(cube4, 0, 1, 1, PortModel.ALL_PORT)
        )
        assert "gather" in g.algorithm


class TestReduce:
    @pytest.mark.parametrize("pm", list(PortModel))
    @pytest.mark.parametrize("root", [0, 9])
    def test_root_collects_combined_partials(self, cube4, pm, root):
        M, B = 6, 2
        sched = sbt_reduce_schedule(cube4, root, M, B, pm)
        init = reduce_initial_holdings(cube4, M, B)
        res = run_synchronous(cube4, sched, pm, init)
        tree = SpanningBinomialTree(cube4, root)
        for child in tree.children(root):
            for p in range(3):
                assert (ACC, child, p) in res.holdings[root], (child, p)

    def test_every_node_sends_once_per_packet(self, cube4):
        sched = sbt_reduce_schedule(cube4, 0, 4, 4, PortModel.ONE_PORT_FULL)
        senders = [t.src for r in sched.rounds for t in r]
        assert sorted(senders) == list(range(1, 16))

    def test_combining_dataflow_complete(self, cube4):
        # every node's upward send happens after all its children sent
        sched = sbt_reduce_schedule(cube4, 0, 1, 1, PortModel.ONE_PORT_FULL)
        send_round = {}
        for ri, r in enumerate(sched.rounds):
            for t in r:
                send_round[t.src] = ri
        rule = reduce_combine_rule(cube4, 0)
        for node, children in rule.items():
            if node == 0:
                continue
            for c in children:
                assert send_round[c] < send_round[node], (node, c)

    def test_one_port_cycles(self, cube5):
        # mirror of broadcast: ceil(M/B) * log N rounds
        sched = sbt_reduce_schedule(cube5, 0, 12, 4, PortModel.ONE_PORT_FULL)
        res = run_synchronous(
            cube5, sched, PortModel.ONE_PORT_FULL,
            reduce_initial_holdings(cube5, 12, 4),
        )
        assert res.cycles == 3 * 5

    def test_all_port_cycles(self, cube5):
        # pipelined: ceil(M/B) + log N - 1 rounds
        sched = sbt_reduce_schedule(cube5, 0, 12, 4, PortModel.ALL_PORT)
        res = run_synchronous(
            cube5, sched, PortModel.ALL_PORT,
            reduce_initial_holdings(cube5, 12, 4),
        )
        assert res.cycles == 3 + 5 - 1

    def test_edges_climb_the_sbt(self, cube4):
        tree = SpanningBinomialTree(cube4, 5)
        up_edges = {(e.dst, e.src) for e in tree.edges()}
        for pm in PortModel:
            sched = sbt_reduce_schedule(cube4, 5, 2, 2, pm)
            for r in sched.rounds:
                for t in r:
                    assert (t.src, t.dst) in up_edges
