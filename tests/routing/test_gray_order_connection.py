"""§5.2's Gray-code observation, verified.

"the root processes the data in descending order starting with the
relative address N - 1.  This order implies that data is transmitted
over ports in an order corresponding to the transition sequence in a
binary-reflected Gray code.  Hence, port 0 is used every other cycle,
port 1 every fourth cycle, etc."
"""

import pytest

from repro.bits.gray import transition_sequence
from repro.bits.ops import lowest_set_bit
from repro.topology import Hypercube
from repro.trees import SpanningBinomialTree


class TestGrayOrderConnection:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6])
    def test_descending_order_ports_follow_gray_transitions(self, n):
        # the first hop of destination c (relative) leaves the root on
        # port lowest_set_bit(c); processing c = N-1 .. 1 produces
        # exactly the Gray transition sequence
        ports = [lowest_set_bit(c) for c in range((1 << n) - 1, 0, -1)]
        assert ports == transition_sequence(n)

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_port_usage_frequencies(self, n):
        ports = [lowest_set_bit(c) for c in range((1 << n) - 1, 0, -1)]
        # port j used every 2^(j+1) cycles
        for j in range(n):
            expected = (1 << n) >> (j + 1)
            assert ports.count(j) == expected, j

    def test_tree_descending_order_agrees(self):
        n = 4
        cube = Hypercube(n)
        tree = SpanningBinomialTree(cube, 9)
        order = tree.descending_relative_order()
        first_ports = [
            cube.port_towards(9, 9 ^ (1 << lowest_set_bit(v ^ 9)))
            for v in order
        ]
        assert first_ports == transition_sequence(n)
