"""Integration tests: broadcast schedules vs the paper's step counts.

Every schedule is executed on the lock-step engine, which validates the
port-model constraints and causality; delivery completeness and cycle
counts are asserted here.
"""

from math import ceil

import pytest

from repro.routing import (
    msbt_broadcast_schedule,
    sbt_broadcast_schedule,
    tree_broadcast_schedule,
)
from repro.sim import PortModel, run_synchronous
from repro.topology import Hypercube
from repro.trees import (
    HamiltonianPathTree,
    SpanningBinomialTree,
    TwoRootedCompleteBinaryTree,
)


def run_broadcast(cube, sched, pm):
    init = {sched.meta.get("source", 0): set(sched.chunk_sizes)}
    res = run_synchronous(cube, sched, pm, init)
    want = set(sched.chunk_sizes)
    for v in cube.nodes():
        assert res.holdings[v] >= want, f"node {v} missing data"
    return res


class TestSbtBroadcast:
    @pytest.mark.parametrize("pm", list(PortModel))
    @pytest.mark.parametrize("source", [0, 11])
    def test_delivers(self, cube4, pm, source):
        sched = sbt_broadcast_schedule(cube4, source, 20, 4, pm)
        run_broadcast(cube4, sched, pm)

    @pytest.mark.parametrize("M,B", [(1, 1), (10, 3), (64, 8)])
    def test_one_port_steps(self, cube4, M, B):
        for pm in (PortModel.ONE_PORT_HALF, PortModel.ONE_PORT_FULL):
            sched = sbt_broadcast_schedule(cube4, 0, M, B, pm)
            res = run_broadcast(cube4, sched, pm)
            assert res.cycles == ceil(M / B) * 4  # ceil(M/B) log N

    @pytest.mark.parametrize("M,B", [(1, 1), (10, 3), (64, 8)])
    def test_all_port_steps(self, cube4, M, B):
        sched = sbt_broadcast_schedule(cube4, 0, M, B, PortModel.ALL_PORT)
        res = run_broadcast(cube4, sched, PortModel.ALL_PORT)
        assert res.cycles == ceil(M / B) + 4 - 1  # ceil(M/B) + log N - 1

    def test_edges_are_sbt_edges(self, cube4):
        tree = SpanningBinomialTree(cube4, 6)
        tree_edges = {(e.src, e.dst) for e in tree.edges()}
        for pm in PortModel:
            sched = sbt_broadcast_schedule(cube4, 6, 12, 4, pm)
            for r in sched.rounds:
                for t in r:
                    assert (t.src, t.dst) in tree_edges

    def test_bad_args_rejected(self, cube4):
        with pytest.raises(ValueError):
            sbt_broadcast_schedule(cube4, 0, 0, 1, PortModel.ALL_PORT)
        with pytest.raises(ValueError):
            sbt_broadcast_schedule(cube4, 0, 4, 0, PortModel.ALL_PORT)
        with pytest.raises(ValueError):
            sbt_broadcast_schedule(cube4, 99, 4, 2, PortModel.ALL_PORT)

    @pytest.mark.parametrize("order", ["port", "packet"])
    def test_both_one_port_orders_valid_and_equal_cycles(self, cube4, order):
        sched = sbt_broadcast_schedule(
            cube4, 3, 12, 3, PortModel.ONE_PORT_FULL, order=order
        )
        res = run_broadcast(cube4, sched, PortModel.ONE_PORT_FULL)
        assert res.cycles == 4 * 4  # ceil(M/B) * log N either way

    def test_packet_order_reaches_all_nodes_sooner(self, cube4):
        def first_full_coverage(sched):
            seen = {0}
            for ri, r in enumerate(sched.rounds):
                seen |= {t.dst for t in r}
                if len(seen) == cube4.num_nodes:
                    return ri
            raise AssertionError("never covered the cube")

        port = sbt_broadcast_schedule(cube4, 0, 16, 2, PortModel.ONE_PORT_FULL, "port")
        packet = sbt_broadcast_schedule(cube4, 0, 16, 2, PortModel.ONE_PORT_FULL, "packet")
        assert first_full_coverage(packet) < first_full_coverage(port)


class TestMsbtBroadcast:
    @pytest.mark.parametrize("pm", list(PortModel))
    @pytest.mark.parametrize("source", [0, 7])
    def test_delivers(self, cube4, pm, source):
        sched = msbt_broadcast_schedule(cube4, source, 24, 4, pm)
        run_broadcast(cube4, sched, pm)

    @pytest.mark.parametrize("n,M,B", [(3, 12, 2), (4, 24, 4), (5, 40, 8)])
    def test_full_duplex_meets_lower_bound(self, n, M, B):
        # the headline: ceil(M/B) + log N routing steps (for M/B > 1)
        cube = Hypercube(n)
        sched = msbt_broadcast_schedule(cube, 0, M, B, PortModel.ONE_PORT_FULL)
        res = run_broadcast(cube, sched, PortModel.ONE_PORT_FULL)
        assert res.cycles == ceil(M / B) + n

    @pytest.mark.parametrize("n,M,B", [(3, 12, 2), (4, 24, 4)])
    def test_half_duplex_meets_bound(self, n, M, B):
        cube = Hypercube(n)
        sched = msbt_broadcast_schedule(cube, 0, M, B, PortModel.ONE_PORT_HALF)
        res = run_broadcast(cube, sched, PortModel.ONE_PORT_HALF)
        assert res.cycles <= 2 * ceil(M / B) + n - 1

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_all_port_meets_bound(self, n):
        cube = Hypercube(n)
        M, B = 8 * n, 2
        sched = msbt_broadcast_schedule(cube, 0, M, B, PortModel.ALL_PORT)
        res = run_broadcast(cube, sched, PortModel.ALL_PORT)
        assert res.cycles == ceil(M / (B * n)) + n

    def test_balanced_link_usage(self, cube4):
        # MSBT spreads the message over all root ports evenly
        sched = msbt_broadcast_schedule(cube4, 0, 64, 4, PortModel.ONE_PORT_FULL)
        res = run_broadcast(cube4, sched, PortModel.ONE_PORT_FULL)
        loads = res.link_stats.port_elems(0)
        assert len(loads) == 4
        assert max(loads.values()) == min(loads.values())

    def test_sbt_pushes_everything_down_each_port(self, cube4):
        # contrast: SBT sends the full message over every root port
        sched = sbt_broadcast_schedule(cube4, 0, 64, 4, PortModel.ONE_PORT_FULL)
        res = run_broadcast(cube4, sched, PortModel.ONE_PORT_FULL)
        loads = res.link_stats.port_elems(0)
        assert all(v == 64 for v in loads.values())


class TestGenericTreeBroadcast:
    @pytest.mark.parametrize("pm", list(PortModel))
    def test_tcbt_delivers(self, cube4, pm):
        tree = TwoRootedCompleteBinaryTree(cube4, 3)
        sched = tree_broadcast_schedule(tree, 20, 4, pm)
        sched.meta["source"] = 3
        run_broadcast(cube4, sched, pm)

    @pytest.mark.parametrize("pm", list(PortModel))
    def test_hp_delivers(self, cube4, pm):
        tree = HamiltonianPathTree(cube4, 9)
        sched = tree_broadcast_schedule(tree, 20, 4, pm)
        sched.meta["source"] = 9
        run_broadcast(cube4, sched, pm)

    def test_hp_pipelines_full_duplex(self, cube5):
        # ceil(M/B) + N - 2 rounds: one new packet per cycle down the path
        tree = HamiltonianPathTree(cube5, 0)
        P = 8
        sched = tree_broadcast_schedule(tree, P, 1, PortModel.ONE_PORT_FULL)
        res = run_broadcast(cube5, sched, PortModel.ONE_PORT_FULL)
        assert res.cycles == P + cube5.num_nodes - 2

    def test_tcbt_one_port_matches_table3(self, cube5):
        # 3 ceil(M/B) + 2 log N - 5 (half) and 2(ceil(M/B) + log N - 2) (full)
        tree = TwoRootedCompleteBinaryTree(cube5, 0)
        P = 6
        half = tree_broadcast_schedule(tree, P, 1, PortModel.ONE_PORT_HALF)
        full = tree_broadcast_schedule(tree, P, 1, PortModel.ONE_PORT_FULL)
        res_h = run_broadcast(cube5, half, PortModel.ONE_PORT_HALF)
        res_f = run_broadcast(cube5, full, PortModel.ONE_PORT_FULL)
        assert abs(res_h.cycles - (3 * P + 2 * 5 - 5)) <= 1
        assert abs(res_f.cycles - 2 * (P + 5 - 2)) <= 1

    def test_tcbt_all_port_matches_sbt(self, cube5):
        tree = TwoRootedCompleteBinaryTree(cube5, 0)
        P = 6
        sched = tree_broadcast_schedule(tree, P, 1, PortModel.ALL_PORT)
        res = run_broadcast(cube5, sched, PortModel.ALL_PORT)
        assert res.cycles == P + 5 - 1
