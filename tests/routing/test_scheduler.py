"""Unit tests for the greedy list scheduler and schedule transforms."""

import pytest

from repro.routing import greedy_partition, list_schedule, reschedule, split_oversized
from repro.sim import PortModel, Schedule, Transfer
from repro.topology import Hypercube


def _t(src, dst, *chunks):
    return Transfer(src, dst, frozenset(chunks))


class TestListSchedule:
    def test_packs_independent_transfers_together(self, cube4):
        transfers = [_t(0, 1, "a"), _t(2, 3, "b")]
        s = list_schedule(
            cube4, transfers, {"a": 1, "b": 1},
            PortModel.ONE_PORT_FULL, {0: {"a"}, 2: {"b"}},
        )
        assert s.num_rounds == 1

    def test_respects_causality(self, cube4):
        transfers = [_t(0, 1, "a"), _t(1, 3, "a"), _t(3, 7, "a")]
        s = list_schedule(
            cube4, transfers, {"a": 1}, PortModel.ALL_PORT, {0: {"a"}}
        )
        assert s.num_rounds == 3  # a chain cannot compress

    def test_respects_one_port(self, cube4):
        transfers = [_t(0, 1, "a"), _t(0, 2, "a"), _t(0, 4, "a")]
        s = list_schedule(
            cube4, transfers, {"a": 1}, PortModel.ONE_PORT_FULL, {0: {"a"}}
        )
        assert s.num_rounds == 3
        s2 = list_schedule(
            cube4, transfers, {"a": 1}, PortModel.ALL_PORT, {0: {"a"}}
        )
        assert s2.num_rounds == 1

    def test_half_duplex_forbids_concurrent_forward(self, cube4):
        # 0 -> 1 -> 3 while 0 -> 2: under half duplex node 1 cannot
        # receive "b" while sending "a"
        transfers = [_t(0, 1, "a"), _t(1, 3, "a"), _t(0, 1, "b")]
        s = list_schedule(
            cube4, transfers, {"a": 1, "b": 1},
            PortModel.ONE_PORT_HALF, {0: {"a", "b"}},
        )
        for r in s.rounds:
            nodes = [t.src for t in r] + [t.dst for t in r]
            assert len(nodes) == len(set(nodes))

    def test_unsourced_chunk_deadlocks(self, cube4):
        with pytest.raises(RuntimeError, match="deadlock"):
            list_schedule(
                cube4, [_t(0, 1, "ghost")], {"ghost": 1},
                PortModel.ALL_PORT, {},
            )

    def test_priority_respects_list_order(self, cube4):
        # both transfers leave node 0; the first one in the list wins round 0
        transfers = [_t(0, 2, "b"), _t(0, 1, "a")]
        s = list_schedule(
            cube4, transfers, {"a": 1, "b": 1},
            PortModel.ONE_PORT_FULL, {0: {"a", "b"}},
        )
        assert s.rounds[0][0].dst == 2


class TestReschedule:
    def test_stricter_model_stretches_schedule(self, cube4):
        from repro.routing import msbt_broadcast_schedule

        full = msbt_broadcast_schedule(cube4, 0, 16, 4, PortModel.ONE_PORT_FULL)
        half = reschedule(cube4, full, PortModel.ONE_PORT_HALF, {0: set(full.chunk_sizes)})
        assert half.num_rounds >= full.compact().num_rounds
        from repro.sim.synchronous import run_synchronous

        res = run_synchronous(
            cube4, half, PortModel.ONE_PORT_HALF, {0: set(full.chunk_sizes)}
        )
        assert all(res.holdings[v] >= set(full.chunk_sizes) for v in cube4.nodes())


class TestSplitOversized:
    def test_splits_and_preserves_payload(self, cube4):
        s = Schedule(
            rounds=[(_t(0, 1, "a", "b", "c"),)],
            chunk_sizes={"a": 4, "b": 4, "c": 4},
        )
        out = split_oversized(s, 8)
        assert out.num_rounds == 2
        delivered = set()
        for r in out.rounds:
            for t in r:
                assert sum(out.chunk_sizes[c] for c in t.chunks) <= 8
                delivered |= t.chunks
        assert delivered == {"a", "b", "c"}

    def test_no_split_needed_is_identity_shape(self, cube4):
        s = Schedule(rounds=[(_t(0, 1, "a"),)], chunk_sizes={"a": 4})
        out = split_oversized(s, 8)
        assert out.num_rounds == 1

    def test_oversized_single_chunk_goes_alone(self):
        s = Schedule(rounds=[(_t(0, 1, "big", "small"),)], chunk_sizes={"big": 100, "small": 1})
        out = split_oversized(s, 8)
        sizes = sorted(
            sum(out.chunk_sizes[c] for c in t.chunks)
            for r in out.rounds for t in r
        )
        assert sizes == [1, 100]

    def test_bad_limit_rejected(self):
        s = Schedule(rounds=[], chunk_sizes={})
        with pytest.raises(ValueError):
            split_oversized(s, 0)


class TestGreedyPartition:
    def test_respects_limit(self):
        sizes = {c: 3 for c in "abcdefg"}
        bins = greedy_partition(list("abcdefg"), sizes, 7)
        for b in bins:
            assert sum(sizes[c] for c in b) <= 7
        assert sorted(c for b in bins for c in b) == list("abcdefg")

    def test_preserves_order_for_equal_sizes(self):
        sizes = {c: 5 for c in "abcd"}
        bins = greedy_partition(list("abcd"), sizes, 10)
        assert bins == [["a", "b"], ["c", "d"]]

    def test_single_oversized_item(self):
        bins = greedy_partition(["x"], {"x": 99}, 10)
        assert bins == [["x"]]
