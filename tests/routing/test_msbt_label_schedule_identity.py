"""The full-duplex MSBT schedule is literally the labelling ``f``.

Packet ``p`` (tree ``j = p mod n``, batch ``q = p // n``) crosses node
``i``'s input edge in round ``f(i, j) + q * n`` — no slack, no
reordering.  This pins the implementation to §3.3.2's construction.
"""

import pytest

from repro.routing import msbt_broadcast_schedule
from repro.sim import PortModel
from repro.topology import Hypercube
from repro.trees import MSBTGraph


@pytest.mark.parametrize("n,source", [(3, 0), (4, 9), (5, 0)])
def test_round_equals_label_plus_batch(n, source):
    cube = Hypercube(n)
    packets = 3 * n  # three full batches
    sched = msbt_broadcast_schedule(
        cube, source, packets, 1, PortModel.ONE_PORT_FULL
    )
    graph = MSBTGraph(cube, source)
    for round_idx, r in enumerate(sched.rounds):
        for t in r:
            (tag, p) = next(iter(t.chunks))
            assert tag == "b"
            j, q = p % n, p // n
            label = graph.label(t.dst, j)
            assert label is not None
            assert round_idx == label + q * n, (t, p)


def test_source_emits_one_packet_per_round_until_done(cube4):
    n = 4
    packets = 2 * n
    sched = msbt_broadcast_schedule(cube4, 0, packets, 1, PortModel.ONE_PORT_FULL)
    emitted = []
    for round_idx, r in enumerate(sched.rounds):
        outs = [t for t in r if t.src == 0]
        assert len(outs) <= 1
        if outs:
            emitted.append(round_idx)
    # the source works back-to-back: rounds 0 .. packets-1
    assert emitted == list(range(packets))


def test_each_round_each_node_receives_at_most_once(cube4):
    sched = msbt_broadcast_schedule(cube4, 0, 16, 2, PortModel.ONE_PORT_FULL)
    for r in sched.rounds:
        dsts = [t.dst for t in r]
        srcs = [t.src for t in r]
        assert len(dsts) == len(set(dsts))
        assert len(srcs) == len(set(srcs))
