"""Unit tests for the chunking helpers shared by the generators."""

import pytest

from repro.routing.common import broadcast_chunks, scatter_chunks, validate_message_args


class TestBroadcastChunks:
    def test_even_split(self):
        sizes = broadcast_chunks(12, 4)
        assert sizes == {("b", 0): 4, ("b", 1): 4, ("b", 2): 4}

    def test_ragged_tail(self):
        sizes = broadcast_chunks(10, 4)
        assert sizes[("b", 2)] == 2
        assert sum(sizes.values()) == 10

    def test_single_packet(self):
        sizes = broadcast_chunks(5, 100)
        assert sizes == {("b", 0): 5}

    def test_bad_args(self):
        with pytest.raises(ValueError):
            broadcast_chunks(0, 1)
        with pytest.raises(ValueError):
            broadcast_chunks(1, 0)


class TestScatterChunks:
    def test_per_destination_pieces(self):
        sizes = scatter_chunks([3, 5], 6, 4)
        assert sizes[("m", 3, 0)] == 4 and sizes[("m", 3, 1)] == 2
        assert sizes[("m", 5, 0)] == 4 and sizes[("m", 5, 1)] == 2

    def test_total_conservation(self):
        dests = list(range(1, 8))
        sizes = scatter_chunks(dests, 10, 3)
        for d in dests:
            assert sum(s for c, s in sizes.items() if c[1] == d) == 10

    def test_piece_bound(self):
        sizes = scatter_chunks([1], 100, 7)
        assert all(s <= 7 for s in sizes.values())

    def test_empty_destinations(self):
        assert scatter_chunks([], 4, 4) == {}


class TestValidate:
    def test_messages(self):
        validate_message_args(1, 1)
        with pytest.raises(ValueError, match="message"):
            validate_message_args(-1, 1)
        with pytest.raises(ValueError, match="packet"):
            validate_message_args(1, -1)
