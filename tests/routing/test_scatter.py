"""Integration tests: personalized-communication schedules (§4)."""

import pytest

from repro.routing import (
    bst_scatter_schedule,
    sbt_scatter_schedule,
    tree_scatter_schedule,
)
from repro.routing.common import MSG
from repro.sim import MachineParams, PortModel, run_synchronous
from repro.topology import Hypercube
from repro.trees import BalancedSpanningTree, TwoRootedCompleteBinaryTree
from repro.trees.sbt import SpanningBinomialTree


def run_scatter(cube, sched, pm, source, machine=None):
    res = run_synchronous(cube, sched, pm, {source: set(sched.chunk_sizes)}, machine)
    for v in cube.nodes():
        if v == source:
            continue
        mine = {c for c in sched.chunk_sizes if c[0] == MSG and c[1] == v}
        assert mine, f"no chunks generated for destination {v}"
        assert res.holdings[v] >= mine, f"node {v} missing its message"
    return res


class TestSbtScatter:
    @pytest.mark.parametrize("pm", list(PortModel))
    @pytest.mark.parametrize("B", [2, 4, 64, 10_000])
    def test_delivers(self, cube4, pm, B):
        sched = sbt_scatter_schedule(cube4, 5, 4, B, pm)
        run_scatter(cube4, sched, pm, 5)

    def test_one_port_unbounded_packets_meets_table6(self, cube5):
        # T = (N-1) M t_c + log N tau with B >= NM/2
        M = 8
        machine = MachineParams(tau=1.0, t_c=1.0)
        sched = sbt_scatter_schedule(
            cube5, 0, M, cube5.num_nodes * M, PortModel.ONE_PORT_FULL
        )
        res = run_scatter(cube5, sched, PortModel.ONE_PORT_FULL, 0, machine)
        assert res.cycles == 5  # log N start-ups
        assert res.time == pytest.approx((cube5.num_nodes - 1) * M + 5)

    def test_all_port_unbounded_packets_meets_table6(self, cube5):
        # T = N/2 M t_c + log N tau (lemma 4.2)
        M = 8
        machine = MachineParams(tau=1.0, t_c=1.0)
        sched = sbt_scatter_schedule(
            cube5, 0, M, cube5.num_nodes * M, PortModel.ALL_PORT
        )
        res = run_scatter(cube5, sched, PortModel.ALL_PORT, 0, machine)
        assert res.time == pytest.approx(cube5.num_nodes // 2 * M + 5)

    def test_root_port0_carries_half_of_everything(self, cube4):
        M = 4
        sched = sbt_scatter_schedule(cube4, 0, M, 1000, PortModel.ONE_PORT_FULL)
        res = run_scatter(cube4, sched, PortModel.ONE_PORT_FULL, 0)
        loads = res.link_stats.port_elems(0)
        assert loads[0] == (cube4.num_nodes // 2) * M  # the §4 bottleneck

    def test_messages_follow_sbt_paths(self, cube4):
        tree = SpanningBinomialTree(cube4, 3)
        edges = {(e.src, e.dst) for e in tree.edges()}
        for pm in (PortModel.ONE_PORT_FULL, PortModel.ALL_PORT):
            sched = sbt_scatter_schedule(cube4, 3, 2, 6, pm)
            for r in sched.rounds:
                for t in r:
                    assert (t.src, t.dst) in edges


class TestBstScatter:
    @pytest.mark.parametrize("pm", list(PortModel))
    @pytest.mark.parametrize("B", [2, 4, 64, 10_000])
    def test_delivers(self, cube4, pm, B):
        sched = bst_scatter_schedule(cube4, 5, 4, B, pm)
        run_scatter(cube4, sched, pm, 5)

    @pytest.mark.parametrize("order", ["depth_first", "reversed_breadth_first"])
    def test_orders_deliver(self, cube4, order):
        sched = bst_scatter_schedule(
            cube4, 0, 4, 16, PortModel.ONE_PORT_FULL, subtree_order=order
        )
        run_scatter(cube4, sched, PortModel.ONE_PORT_FULL, 0)

    def test_unknown_order_rejected(self, cube4):
        with pytest.raises(ValueError, match="subtree order"):
            bst_scatter_schedule(cube4, 0, 4, 16, PortModel.ONE_PORT_FULL, "random")

    def test_all_port_root_load_is_max_subtree(self, cube5):
        # the BST promise: every root port carries ~ (N-1)/log N * M
        M = 8
        tree = BalancedSpanningTree(cube5, 0)
        sched = bst_scatter_schedule(
            cube5, 0, M, cube5.num_nodes * M, PortModel.ALL_PORT
        )
        res = run_scatter(cube5, sched, PortModel.ALL_PORT, 0)
        loads = res.link_stats.port_elems(0)
        for j in range(5):
            assert loads[j] == tree.subtree_size(j) * M

    def test_all_port_time_beats_sbt_by_half_log_n(self):
        # the §4.3 conclusion at n = 6
        n, M = 6, 4
        cube = Hypercube(n)
        machine = MachineParams(tau=1.0, t_c=1.0)
        big = cube.num_nodes * M
        t_sbt = run_scatter(
            cube, sbt_scatter_schedule(cube, 0, M, big, PortModel.ALL_PORT),
            PortModel.ALL_PORT, 0, machine,
        ).time
        t_bst = run_scatter(
            cube, bst_scatter_schedule(cube, 0, M, big, PortModel.ALL_PORT),
            PortModel.ALL_PORT, 0, machine,
        ).time
        # the structural ratio at finite n is (N/2) / max-subtree-size;
        # it approaches the asymptotic log N / 2 = 3 from below
        from repro.trees.bst import max_subtree_size

        structural = (cube.num_nodes / 2) / max_subtree_size(n)
        assert t_sbt / t_bst > structural * 0.9
        assert t_sbt / t_bst > 2.0

    def test_one_port_startups_at_most_2logn_minus_2(self, cube5):
        M = 4
        sched = bst_scatter_schedule(
            cube5, 0, M, cube5.num_nodes * M, PortModel.ONE_PORT_FULL
        )
        res = run_scatter(cube5, sched, PortModel.ONE_PORT_FULL, 0)
        assert res.cycles <= 2 * 5 - 2

    def test_root_sends_cyclically(self, cube5):
        # under one-port with small packets, consecutive root sends go
        # to different subtrees (port j in cycles == j mod n)
        sched = bst_scatter_schedule(cube5, 0, 4, 4, PortModel.ONE_PORT_FULL)
        root_ports = []
        for r in sched.rounds:
            for t in r:
                if t.src == 0:
                    root_ports.append((t.src ^ t.dst).bit_length() - 1)
        changes = sum(1 for a, b in zip(root_ports, root_ports[1:]) if a != b)
        assert changes >= 0.9 * (len(root_ports) - 1)

    def test_messages_follow_bst_paths(self, cube4):
        tree = BalancedSpanningTree(cube4, 0)
        edges = {(e.src, e.dst) for e in tree.edges()}
        for pm in PortModel:
            sched = bst_scatter_schedule(cube4, 0, 2, 8, pm)
            for r in sched.rounds:
                for t in r:
                    assert (t.src, t.dst) in edges


class TestTreeScatter:
    @pytest.mark.parametrize("pm", list(PortModel))
    def test_tcbt_delivers(self, cube4, pm):
        tree = TwoRootedCompleteBinaryTree(cube4, 0)
        sched = tree_scatter_schedule(tree, 4, 64, pm)
        run_scatter(cube4, sched, pm, 0)

    def test_tcbt_all_port_close_to_table6(self, cube5):
        # (3/4 N - 1) M t_c + log N tau
        M = 8
        machine = MachineParams(tau=1.0, t_c=1.0)
        tree = TwoRootedCompleteBinaryTree(cube5, 0)
        sched = tree_scatter_schedule(tree, M, cube5.num_nodes * M, PortModel.ALL_PORT)
        res = run_scatter(cube5, sched, PortModel.ALL_PORT, 0, machine)
        predicted = (0.75 * cube5.num_nodes - 1) * M + 5
        assert res.time <= predicted * 1.05
