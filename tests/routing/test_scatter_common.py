"""Unit tests for the shared scatter machinery."""

import pytest

from repro.routing.common import scatter_chunks
from repro.routing.scatter_common import (
    dest_pieces,
    distribute_packet,
    tree_path_from_root,
    wave_scatter_schedule,
)
from repro.sim import PortModel
from repro.topology import Hypercube
from repro.trees import BalancedSpanningTree, SpanningBinomialTree


class TestDestPieces:
    def test_ordered_pieces(self):
        sizes = scatter_chunks([5], 10, 4)
        pieces = dest_pieces(sizes, 5)
        assert pieces == [("m", 5, 0), ("m", 5, 1), ("m", 5, 2)]

    def test_missing_destination_empty(self):
        sizes = scatter_chunks([5], 10, 4)
        assert dest_pieces(sizes, 7) == []


class TestTreePath:
    def test_path_from_root(self, cube4):
        tree = SpanningBinomialTree(cube4, 0)
        path = tree_path_from_root(tree, 0b1011)
        assert path[0] == 0 and path[-1] == 0b1011
        for a, b in zip(path, path[1:]):
            assert tree.parents_map[b] == a

    def test_root_path_is_singleton(self, cube4):
        tree = SpanningBinomialTree(cube4, 3)
        assert tree_path_from_root(tree, 3) == [3]


class TestDistributePacket:
    def test_fans_out_bfs(self, cube4):
        tree = BalancedSpanningTree(cube4, 0)
        head = tree.children_map[0][0]
        members = tree.subtree_of(head)
        sizes = scatter_chunks(list(members), 2, 2)
        chunks = set(sizes)
        transfers = distribute_packet(tree, head, chunks)
        # every member beyond the head receives its pieces
        delivered = {}
        for t in transfers:
            for c in t.chunks:
                delivered.setdefault(c[1], []).append(t.dst)
        for d in members:
            if d == head:
                assert d not in delivered or head not in delivered.get(d, [])
            else:
                assert delivered[d][-1] == d

    def test_foreign_destination_rejected(self, cube4):
        tree = BalancedSpanningTree(cube4, 0)
        head = tree.children_map[0][0]
        other_head = tree.children_map[0][-1]
        foreign = tree.subtree_of(other_head)[-1]
        sizes = scatter_chunks([foreign], 1, 1)
        with pytest.raises(ValueError, match="not below"):
            distribute_packet(tree, head, set(sizes))

    def test_empty_payload(self, cube4):
        tree = BalancedSpanningTree(cube4, 0)
        assert distribute_packet(tree, tree.children_map[0][0], set()) == []


class TestWaveSchedule:
    def test_departures_deepest_first(self, cube4):
        tree = SpanningBinomialTree(cube4, 0)
        sched = wave_scatter_schedule(tree, 1, 1000, "x")
        # the first round's root transfers carry only deepest-level data
        first = sched.rounds[0]
        root_out = [t for t in first if t.src == 0]
        assert root_out
        for t in root_out:
            for c in t.chunks:
                assert tree.level(c[1]) == tree.height

    def test_valid_under_all_port(self, cube4):
        from repro.sim.validate import assert_schedule_valid

        tree = BalancedSpanningTree(cube4, 0)
        sched = wave_scatter_schedule(tree, 3, 5, "x")
        assert_schedule_valid(cube4, sched, PortModel.ALL_PORT)
