"""The dependency-indexed list scheduler is bit-identical to the
original full-rescan reference (and likewise for first-fit partition).

Mirrors the ``run_async`` / ``_engine_reference`` convention: the
optimized implementation in :mod:`repro.routing.scheduler` must produce
the *same rounds in the same order* as
:mod:`repro.routing._scheduler_reference` on every input, including the
deadlock diagnostics.
"""

from __future__ import annotations

import random

import pytest

from repro.cache import disabled
from repro.routing._scheduler_reference import (
    greedy_partition_reference,
    list_schedule_reference,
)
from repro.routing.broadcast_msbt import msbt_broadcast_schedule
from repro.routing.scatter_bst import bst_scatter_schedule
from repro.routing.scheduler import greedy_partition, list_schedule
from repro.sim.ports import PortModel
from repro.sim.schedule import Transfer
from repro.topology.hypercube import Hypercube

PORTS = (PortModel.ONE_PORT_HALF, PortModel.ONE_PORT_FULL, PortModel.ALL_PORT)


def random_transfer_list(cube: Hypercube, rng: random.Random, n_chunks: int):
    """A causally consistent random relay list plus chunk sizes."""
    sizes = {("b", p): rng.randint(1, 5) for p in range(n_chunks)}
    holders: dict[int, set] = {0: set(sizes)}
    transfers = []
    for _ in range(rng.randint(5, 60)):
        src = rng.choice([v for v in holders if holders[v]])
        port = rng.randrange(cube.dimension)
        dst = cube.neighbor(src, port)
        pool = sorted(holders[src])
        take = frozenset(rng.sample(pool, rng.randint(1, len(pool))))
        transfers.append(Transfer(src, dst, take))
        holders.setdefault(dst, set()).update(take)
    return transfers, sizes, {0: set(sizes)}


@pytest.mark.parametrize("port_model", PORTS)
@pytest.mark.parametrize("seed", range(8))
def test_list_schedule_matches_reference_random(port_model, seed):
    rng = random.Random(seed)
    cube = Hypercube(3)
    transfers, sizes, init = random_transfer_list(cube, rng, n_chunks=4)
    fast = list_schedule(cube, transfers, sizes, port_model, init)
    ref = list_schedule_reference(cube, transfers, sizes, port_model, init)
    assert fast.rounds == ref.rounds
    assert fast.chunk_sizes == ref.chunk_sizes


@pytest.mark.parametrize("port_model", PORTS)
def test_list_schedule_matches_reference_on_generators(port_model, monkeypatch):
    """The real consumers (MSBT half-duplex, BST scatter) agree too."""
    import repro.routing.broadcast_msbt as bm
    import repro.routing.scatter_bst as sb

    cube = Hypercube(4)
    with disabled():
        fast_m = msbt_broadcast_schedule(cube, 3, 40, 7, port_model)
        fast_b = bst_scatter_schedule(cube, 3, 17, 5, port_model)
        monkeypatch.setattr(bm, "reschedule", _reference_reschedule)
        monkeypatch.setattr(sb, "list_schedule", list_schedule_reference)
        ref_m = msbt_broadcast_schedule(cube, 3, 40, 7, port_model)
        ref_b = bst_scatter_schedule(cube, 3, 17, 5, port_model)
    assert fast_m.rounds == ref_m.rounds
    assert fast_b.rounds == ref_b.rounds


def _reference_reschedule(cube, schedule, port_model, initial_holdings):
    out = list_schedule_reference(
        cube,
        schedule.all_transfers(),
        schedule.chunk_sizes,
        port_model,
        initial_holdings,
        algorithm=f"{schedule.algorithm}@{port_model.value}",
        meta=dict(schedule.meta),
    )
    return out


def test_list_schedule_deadlock_message_matches():
    cube = Hypercube(2)
    bad = [Transfer(1, 3, frozenset({("b", 0)}))]  # node 1 never holds b0
    sizes = {("b", 0): 1}
    with pytest.raises(RuntimeError) as fast_err:
        list_schedule(cube, bad, sizes, PortModel.ONE_PORT_FULL, {0: {("b", 0)}})
    with pytest.raises(RuntimeError) as ref_err:
        list_schedule_reference(
            cube, bad, sizes, PortModel.ONE_PORT_FULL, {0: {("b", 0)}}
        )
    assert str(fast_err.value) == str(ref_err.value)


@pytest.mark.parametrize("seed", range(12))
def test_greedy_partition_matches_reference(seed):
    rng = random.Random(1000 + seed)
    limit = rng.choice((1, 3, 7, 16))
    chunks = [("m", d, p) for d in range(rng.randint(1, 6)) for p in range(rng.randint(1, 9))]
    rng.shuffle(chunks)
    sizes = {c: rng.randint(0, limit + 2) for c in chunks}
    assert greedy_partition(chunks, sizes, limit) == greedy_partition_reference(
        chunks, sizes, limit
    )


def test_greedy_partition_saturated_bins_fast():
    """B = 1 is linear now: 20k unit chunks partition instantly."""
    chunks = [("m", 1, p) for p in range(20_000)]
    sizes = {c: 1 for c in chunks}
    out = greedy_partition(chunks, sizes, 1)
    assert len(out) == 20_000
    assert out[0] == [("m", 1, 0)]
