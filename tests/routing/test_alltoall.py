"""Integration tests for the all-to-all extensions."""

import pytest

from repro.routing import (
    allgather_initial_holdings,
    allgather_schedule,
    alltoall_initial_holdings,
    alltoall_personalized_schedule,
)
from repro.sim import MachineParams, PortModel, run_synchronous
from repro.topology import Hypercube


class TestAllgather:
    @pytest.mark.parametrize("pm", list(PortModel))
    def test_everyone_gets_everything(self, cube4, pm):
        s = allgather_schedule(cube4, 3, pm)
        res = run_synchronous(cube4, s, pm, allgather_initial_holdings(cube4))
        for v in cube4.nodes():
            assert len(res.holdings[v]) == cube4.num_nodes

    def test_full_duplex_takes_log_n_steps(self, cube5):
        s = allgather_schedule(cube5, 2, PortModel.ONE_PORT_FULL)
        res = run_synchronous(
            cube5, s, PortModel.ONE_PORT_FULL, allgather_initial_holdings(cube5)
        )
        assert res.cycles == 5

    def test_half_duplex_doubles_steps(self, cube5):
        s = allgather_schedule(cube5, 2, PortModel.ONE_PORT_HALF)
        res = run_synchronous(
            cube5, s, PortModel.ONE_PORT_HALF, allgather_initial_holdings(cube5)
        )
        assert res.cycles == 10

    def test_payload_doubles_each_step(self, cube4):
        s = allgather_schedule(cube4, 1, PortModel.ONE_PORT_FULL)
        per_round_sizes = [
            {len(t.chunks) for t in r} for r in s.rounds
        ]
        assert per_round_sizes == [{1}, {2}, {4}, {8}]

    def test_time_matches_closed_form(self, cube4):
        # sum over steps of (tau + 2^t M tc) = n tau + (N-1) M tc
        M = 4
        machine = MachineParams(tau=1.0, t_c=1.0)
        s = allgather_schedule(cube4, M, PortModel.ONE_PORT_FULL)
        res = run_synchronous(
            cube4, s, PortModel.ONE_PORT_FULL,
            allgather_initial_holdings(cube4), machine,
        )
        assert res.time == pytest.approx(4 + 15 * M)

    def test_bad_message_size_rejected(self, cube4):
        with pytest.raises(ValueError):
            allgather_schedule(cube4, 0, PortModel.ALL_PORT)


class TestAlltoallPersonalized:
    @pytest.mark.parametrize("pm", list(PortModel))
    def test_total_exchange_completes(self, cube4, pm):
        s = alltoall_personalized_schedule(cube4, 2, pm)
        res = run_synchronous(cube4, s, pm, alltoall_initial_holdings(cube4))
        for v in cube4.nodes():
            mine = {c for c in res.holdings[v] if c[2] == v}
            assert len(mine) == cube4.num_nodes - 1

    def test_constant_volume_per_step(self, cube4):
        # every node ships exactly N/2 messages per step
        M = 3
        s = alltoall_personalized_schedule(cube4, M, PortModel.ONE_PORT_FULL)
        for r in s.rounds:
            for t in r:
                assert len(t.chunks) == cube4.num_nodes // 2

    def test_full_duplex_takes_log_n_steps(self, cube5):
        s = alltoall_personalized_schedule(cube5, 1, PortModel.ONE_PORT_FULL)
        res = run_synchronous(
            cube5, s, PortModel.ONE_PORT_FULL, alltoall_initial_holdings(cube5)
        )
        assert res.cycles == 5

    def test_time_matches_closed_form(self, cube4):
        # n steps of (tau + N/2 M tc)
        M = 4
        machine = MachineParams(tau=1.0, t_c=1.0)
        s = alltoall_personalized_schedule(cube4, M, PortModel.ONE_PORT_FULL)
        res = run_synchronous(
            cube4, s, PortModel.ONE_PORT_FULL,
            alltoall_initial_holdings(cube4), machine,
        )
        assert res.time == pytest.approx(4 * (1 + 8 * M))

    def test_uses_every_link_every_step(self, cube4):
        s = alltoall_personalized_schedule(cube4, 1, PortModel.ONE_PORT_FULL)
        for t_round, r in enumerate(s.rounds):
            assert len(r) == cube4.num_nodes  # one send per node per step
