"""Cached schedules are bit-identical to uncached generation.

Randomized ``(n, source, M, B, port_model)`` samples for every memoized
generator: the schedule produced through the cache (miss *and* hit)
must equal the one generated with caching disabled, and running both
through the engines must give identical results.  Also covers the
copy-on-hit isolation guarantee.
"""

from __future__ import annotations

import random

import pytest

from repro.cache import clear_caches, disabled
from repro.routing import (
    allgather_schedule,
    alltoall_personalized_schedule,
    bst_scatter_schedule,
    dual_hp_broadcast_schedule,
    msbt_broadcast_schedule,
    sbt_broadcast_schedule,
    sbt_reduce_schedule,
    sbt_scatter_schedule,
)
from repro.sim.engine import run_async
from repro.sim.machine import IPSC_D7
from repro.sim.ports import PortModel
from repro.topology.hypercube import Hypercube


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


def assert_same_schedule(a, b):
    assert a.rounds == b.rounds
    assert a.chunk_sizes == b.chunk_sizes
    assert a.algorithm == b.algorithm
    assert a.meta == b.meta


GENERATORS = [
    ("sbt-broadcast", lambda cube, s, M, B, pm: sbt_broadcast_schedule(cube, s, M, B, pm)),
    ("msbt-broadcast", lambda cube, s, M, B, pm: msbt_broadcast_schedule(cube, s, M, B, pm)),
    ("dual-hp-broadcast", lambda cube, s, M, B, pm: dual_hp_broadcast_schedule(cube, s, M, B, pm)),
    ("bst-scatter", lambda cube, s, M, B, pm: bst_scatter_schedule(cube, s, M, B, pm)),
    ("sbt-scatter", lambda cube, s, M, B, pm: sbt_scatter_schedule(cube, s, M, B, pm)),
    ("sbt-reduce", lambda cube, s, M, B, pm: sbt_reduce_schedule(cube, s, M, B, pm)),
    ("allgather", lambda cube, s, M, B, pm: allgather_schedule(cube, M, pm)),
    ("alltoall", lambda cube, s, M, B, pm: alltoall_personalized_schedule(cube, M, pm)),
]


@pytest.mark.parametrize("name,gen", GENERATORS, ids=[g[0] for g in GENERATORS])
def test_cached_schedule_identical_to_uncached_randomized(name, gen):
    rng = random.Random(hash(name) & 0xFFFF)
    for _ in range(6):
        n = rng.choice([3, 4, 5])
        cube = Hypercube(n)
        source = rng.randrange(cube.num_nodes)
        M = rng.choice([1, 5, 17, 64])
        B = rng.choice([1, 4, 16])
        pm = rng.choice(list(PortModel))
        with disabled():
            cold = gen(cube, source, M, B, pm)
        miss = gen(cube, source, M, B, pm)  # populates the cache
        hit = gen(cube, source, M, B, pm)  # served from it
        assert_same_schedule(miss, cold)
        assert_same_schedule(hit, cold)


def test_cached_schedule_runs_identically_on_the_engine():
    cube = Hypercube(4)
    pm = PortModel.ONE_PORT_FULL
    with disabled():
        cold = msbt_broadcast_schedule(cube, 6, 40, 8, pm)
    msbt_broadcast_schedule(cube, 6, 40, 8, pm)
    warm = msbt_broadcast_schedule(cube, 6, 40, 8, pm)
    res_cold = run_async(cube, cold, pm, {6: set(cold.chunk_sizes)}, IPSC_D7)
    res_warm = run_async(cube, warm, pm, {6: set(warm.chunk_sizes)}, IPSC_D7)
    assert res_cold.time == res_warm.time
    assert res_cold.holdings == res_warm.holdings
    assert res_cold.link_stats == res_warm.link_stats
    assert res_cold.start_times == res_warm.start_times


def test_cache_hit_returns_isolated_copies():
    cube = Hypercube(3)
    pm = PortModel.ONE_PORT_FULL
    first = sbt_broadcast_schedule(cube, 2, 16, 4, pm)
    first.meta["poison"] = True
    first.rounds.append(())
    again = sbt_broadcast_schedule(cube, 2, 16, 4, pm)
    assert "poison" not in again.meta
    assert again.rounds[-1] != ()
    # two hits are themselves independent
    a = sbt_broadcast_schedule(cube, 2, 16, 4, pm)
    b = sbt_broadcast_schedule(cube, 2, 16, 4, pm)
    assert a is not b
    assert a.meta is not b.meta
    assert a.rounds is not b.rounds


def test_positional_and_keyword_calls_share_an_entry():
    cube = Hypercube(3)
    pm = PortModel.ONE_PORT_HALF
    clear_caches()
    sbt_broadcast_schedule(cube, 1, 8, 2, pm)
    sbt_broadcast_schedule(
        cube, source=1, message_elems=8, packet_elems=2, port_model=pm
    )
    stats = sbt_broadcast_schedule.cache.stats()
    assert stats["misses"] == 1
    assert stats["hits"] == 1


def test_source_is_part_of_the_key():
    """Schedules are not translation-equivariant; distinct sources must
    be distinct entries, not translated hits."""
    cube = Hypercube(4)
    pm = PortModel.ONE_PORT_FULL
    s0 = bst_scatter_schedule(cube, 0, 12, 4, pm)
    s5 = bst_scatter_schedule(cube, 5, 12, 4, pm)
    assert s0.meta["source"] == 0
    assert s5.meta["source"] == 5
    assert s0.rounds != s5.rounds
