"""Cached (translated) trees are structurally identical to direct builds.

The cache builds each family once at root 0 and XOR-translates the
structural maps for any other root; these tests assert that for
randomized ``(n, root)`` samples the translated instance is
indistinguishable from one constructed directly.
"""

from __future__ import annotations

import random

import pytest

from repro.cache import cached_msbt_graph, cached_tree, clear_caches, disabled
from repro.topology.hypercube import Hypercube
from repro.trees.bst import BalancedSpanningTree
from repro.trees.hamiltonian import HamiltonianPathTree
from repro.trees.hp_variants import CenteredHamiltonianPathTree
from repro.trees.msbt import EdgeReversedSBT, MSBTGraph
from repro.trees.sbt import SpanningBinomialTree
from repro.trees.tcbt import TwoRootedCompleteBinaryTree

FAMILIES = [
    SpanningBinomialTree,
    BalancedSpanningTree,
    TwoRootedCompleteBinaryTree,
    HamiltonianPathTree,
    CenteredHamiltonianPathTree,
]


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


def assert_same_structure(a, b):
    assert a.parents_map == b.parents_map
    assert a.children_map == b.children_map
    assert a.levels == b.levels
    assert a.subtree_sizes == b.subtree_sizes
    assert a.root == b.root


@pytest.mark.parametrize("cls", FAMILIES, ids=lambda c: c.__name__)
def test_cached_tree_matches_direct_build_randomized(cls):
    rng = random.Random(20260805)
    for n in (2, 3, 4, 5):
        cube = Hypercube(n)
        roots = {0, cube.num_nodes - 1}
        roots.update(rng.randrange(cube.num_nodes) for _ in range(4))
        for root in sorted(roots):
            cached = cached_tree(cls, cube, root)
            direct = cls(cube, root)
            assert_same_structure(cached, direct)
            cached.validate()


@pytest.mark.parametrize("cls", FAMILIES, ids=lambda c: c.__name__)
def test_cached_tree_is_type_faithful_and_memoized(cls):
    cube = Hypercube(4)
    t1 = cached_tree(cls, cube, 9)
    t2 = cached_tree(cls, cube, 9)
    assert type(t1) is cls
    assert t1 is t2  # repeat lookups share the instance


def test_cached_tree_bypasses_when_disabled():
    cube = Hypercube(3)
    with disabled():
        t1 = cached_tree(SpanningBinomialTree, cube, 5)
        t2 = cached_tree(SpanningBinomialTree, cube, 5)
    assert t1 is not t2
    assert_same_structure(t1, t2)


def test_cached_ersbt_keeps_tree_index_identity():
    cube = Hypercube(4)
    for j in range(cube.dimension):
        for root in (0, 6, 15):
            cached = cached_tree(EdgeReversedSBT, cube, root, j)
            direct = EdgeReversedSBT(cube, j, root)
            assert cached.tree_index == j
            assert_same_structure(cached, direct)
            # the ERSBT overrides children() with a closed form; it must
            # agree with the injected translated maps
            for node in cube.nodes():
                assert tuple(sorted(cached.children(node))) == tuple(
                    sorted(cached.children_map[node])
                )


def test_cached_msbt_graph_matches_direct_build():
    rng = random.Random(7)
    for n in (2, 3, 4):
        cube = Hypercube(n)
        for source in {0, rng.randrange(cube.num_nodes)}:
            cached = cached_msbt_graph(cube, source)
            direct = MSBTGraph(cube, source)
            assert cached.source == direct.source
            for j in range(n):
                assert_same_structure(cached.trees[j], direct.trees[j])
            cached.validate()
            cached.validate_labelling()
            assert cached is cached_msbt_graph(cube, source)
