"""Cache state is per-process: what pool workers see and can touch.

The sweep executor hands points to worker processes, so it matters that
``cache_stats()`` / ``clear_caches()`` act on exactly one process's
registry.  A forked worker inherits a *copy* of the parent's caches
(clearing there must not reach back); a spawned worker imports fresh
and starts empty.  Both start methods are exercised explicitly.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro import cache
from repro.routing import sbt_broadcast_schedule
from repro.sim.ports import PortModel
from repro.topology import Hypercube

_METHODS = [
    m for m in ("fork", "spawn") if m in multiprocessing.get_all_start_methods()
]

_LRU_NAME = "schedules.sbt_broadcast_schedule"


def _generate():
    return sbt_broadcast_schedule(Hypercube(3), 0, 32, 8, PortModel.ONE_PORT_FULL)


# --- probe functions (module level: picklable by reference for spawn) ---

def _probe_lru_size():
    """(pid, entries currently in the schedule LRU)."""
    stats = cache.cache_stats()[_LRU_NAME]
    return os.getpid(), stats["size"]


def _clear_and_generate():
    """Clear this process's caches, regenerate, report the miss count."""
    cache.clear_caches()
    _generate()
    return cache.cache_stats()[_LRU_NAME]["misses"]


def _generate_and_stats():
    _generate()
    stats = cache.cache_stats()[_LRU_NAME]
    return stats["size"], stats["misses"]


@pytest.fixture(autouse=True)
def _fresh():
    cache.clear_caches()
    yield
    cache.clear_caches()


def _pool(method):
    return ProcessPoolExecutor(
        max_workers=1, mp_context=multiprocessing.get_context(method)
    )


@pytest.mark.parametrize("method", _METHODS)
def test_worker_stats_are_process_local(method):
    _generate()
    assert cache.cache_stats()[_LRU_NAME]["size"] == 1
    with _pool(method) as pool:
        pid, size = pool.submit(_probe_lru_size).result()
    assert pid != os.getpid()
    if method == "fork":
        # a forked worker inherits a snapshot of the parent's entries
        assert size == 1
    else:
        # a spawned worker imports fresh: its registry starts empty
        assert size == 0


@pytest.mark.parametrize("method", _METHODS)
def test_worker_clear_does_not_reach_parent(method):
    _generate()
    before = cache.cache_stats()[_LRU_NAME]
    assert before["size"] == 1 and before["misses"] == 1
    with _pool(method) as pool:
        worker_misses = pool.submit(_clear_and_generate).result()
    assert worker_misses == 1  # the worker really did clear + regenerate
    after = cache.cache_stats()[_LRU_NAME]
    # ...but the parent's entries and counters are untouched
    assert after["size"] == 1
    assert after["misses"] == 1
    _generate()
    assert cache.cache_stats()[_LRU_NAME]["hits"] == 1


@pytest.mark.parametrize("method", _METHODS)
def test_worker_population_does_not_reach_parent(method):
    with _pool(method) as pool:
        size, misses = pool.submit(_generate_and_stats).result()
    assert size == 1 and misses >= 1
    parent = cache.cache_stats()[_LRU_NAME]
    assert parent["size"] == 0
    assert parent["hits"] == 0 and parent["misses"] == 0


@pytest.mark.parametrize("method", _METHODS)
def test_sweep_executor_respects_start_method_default(method):
    """run_sweep's pool works regardless of the configured start method:
    per-point telemetry still reports worker-local cache counters."""
    from repro.experiments import run_sweep

    ctx_before = multiprocessing.get_start_method(allow_none=True)
    try:
        multiprocessing.set_start_method(method, force=True)
        result = run_sweep(
            _sweep_point, [{"n": 2}, {"n": 3}, {"n": 2}, {"n": 3}], jobs=2
        )
    finally:
        multiprocessing.set_start_method(ctx_before, force=True)
    assert [r[0] for r in result.values] == [2, 3, 2, 3]
    # repeated points hit the worker-local LRU somewhere in the pool
    total_hits = sum(p.lru_hits for p in result.stats.points)
    total_misses = sum(p.lru_misses for p in result.stats.points)
    assert total_misses >= 2
    assert total_hits + total_misses >= 4
    # and none of that leaked into the parent registry
    assert cache.cache_stats()[_LRU_NAME]["misses"] == 0


def _sweep_point(n):
    sched = sbt_broadcast_schedule(Hypercube(n), 0, 32, 8, PortModel.ONE_PORT_FULL)
    return (n, sched.rounds)
