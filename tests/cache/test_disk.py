"""The on-disk cache layer: layering, atomicity, versioning, recovery."""

from __future__ import annotations

import pickle

import pytest

from repro import cache
from repro.cache import (
    MISSING,
    cached_tree,
    clear_caches,
    configure_disk,
    disabled,
    disk_cache,
    disk_cache_dir,
    schedule_disk,
    tree_disk,
)
from repro.cache import disk as disk_mod
from repro.routing import msbt_broadcast_schedule, sbt_broadcast_schedule
from repro.sim.ports import PortModel
from repro.topology import Hypercube
from repro.trees.tcbt import TwoRootedCompleteBinaryTree


@pytest.fixture(autouse=True)
def _clean_state():
    """Fresh counters and a disabled disk layer around every test."""
    clear_caches()
    prev = disk_mod._override
    yield
    disk_mod._override = prev
    clear_caches()


def _generate(n=4):
    return msbt_broadcast_schedule(Hypercube(n), 0, 64, 16, PortModel.ONE_PORT_FULL)


class TestConfiguration:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        configure_disk(from_env=True)
        assert disk_cache_dir() is None

    def test_env_var_read_live(self, monkeypatch, tmp_path):
        configure_disk(from_env=True)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert disk_cache_dir() == tmp_path
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert disk_cache_dir() is None

    def test_explicit_overrides_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        assert configure_disk(tmp_path / "explicit") == tmp_path / "explicit"
        assert disk_cache_dir() == tmp_path / "explicit"
        configure_disk(None)
        assert disk_cache_dir() is None  # explicit disable beats env
        configure_disk(from_env=True)
        assert disk_cache_dir() == tmp_path / "env"

    def test_both_args_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            configure_disk(tmp_path, from_env=True)

    def test_context_manager_restores(self, tmp_path):
        configure_disk(None)
        with disk_cache(tmp_path) as active:
            assert active == tmp_path
        assert disk_cache_dir() is None


class TestScheduleRoundtrip:
    def test_warm_process_reads_schedules_from_disk(self, tmp_path):
        with disk_cache(tmp_path):
            first = _generate()
            assert schedule_disk.stores == 1
            assert schedule_disk.misses == 1
            clear_caches()  # simulate a cold process: LRUs empty, disk warm
            second = _generate()
            assert schedule_disk.hits == 1
            assert schedule_disk.misses == 0
        assert first.rounds == second.rounds
        assert first.chunk_sizes == second.chunk_sizes
        assert first.algorithm == second.algorithm
        assert first.meta == second.meta

    def test_disk_hit_feeds_lru(self, tmp_path):
        with disk_cache(tmp_path):
            _generate()
            clear_caches()
            _generate()  # disk hit, promoted into the LRU
            _generate()  # now a pure LRU hit
            assert schedule_disk.hits == 1
            lru = cache.cache_stats()["schedules.msbt_broadcast_schedule"]
            assert lru["hits"] == 1

    def test_distinct_keys_get_distinct_files(self, tmp_path):
        with disk_cache(tmp_path):
            sbt_broadcast_schedule(Hypercube(3), 0, 8, 2, PortModel.ONE_PORT_FULL)
            sbt_broadcast_schedule(Hypercube(3), 0, 8, 4, PortModel.ONE_PORT_FULL)
            files = list((tmp_path / "schedules").glob("*.pkl"))
            assert len(files) == 2

    def test_disabled_context_bypasses_disk(self, tmp_path):
        with disk_cache(tmp_path):
            with disabled():
                _generate()
            assert schedule_disk.stores == 0
            assert schedule_disk.misses == 0

    def test_no_dir_means_no_io_and_no_counters(self):
        configure_disk(None)
        _generate()
        assert schedule_disk.stats() == {
            "hits": 0, "misses": 0, "stores": 0, "errors": 0, "evictions": 0,
        }


class TestRobustness:
    def test_corrupt_file_is_dropped_and_regenerated(self, tmp_path):
        with disk_cache(tmp_path):
            sched = _generate()
            (path,) = (tmp_path / "schedules").glob("*.pkl")
            path.write_bytes(b"not a pickle")
            clear_caches()
            again = _generate()
            assert schedule_disk.errors == 1
            assert not path.exists() or path.read_bytes() != b"not a pickle"
        assert sched.rounds == again.rounds

    def test_truncated_pickle_counts_as_miss(self, tmp_path):
        with disk_cache(tmp_path):
            _generate()
            (path,) = (tmp_path / "schedules").glob("*.pkl")
            path.write_bytes(path.read_bytes()[:10])
            clear_caches()
            _generate()
            assert schedule_disk.hits == 0
            assert schedule_disk.misses == 1

    def test_no_tmp_files_left_behind(self, tmp_path):
        with disk_cache(tmp_path):
            _generate()
            cached_tree(TwoRootedCompleteBinaryTree, Hypercube(3), 0)
        leftovers = list(tmp_path.rglob("*.tmp"))
        assert leftovers == []

    def test_unwritable_dir_degrades_gracefully(self, tmp_path):
        blocked = tmp_path / "blocked"
        blocked.write_text("a file, not a directory")
        with disk_cache(blocked):
            sched = _generate()  # must not raise
        assert sched.num_transfers > 0
        assert schedule_disk.errors >= 1

    def test_version_partitions_the_keyspace(self, tmp_path, monkeypatch):
        with disk_cache(tmp_path):
            _generate()
            assert schedule_disk.hits == 0
            clear_caches()
            monkeypatch.setattr(disk_mod, "__version__", "999.0.0-test")
            _generate()
            # the old artifact is invisible under the new version
            assert schedule_disk.hits == 0
            assert schedule_disk.misses == 1


class TestTreeRoundtrip:
    def test_canonical_tree_served_from_disk(self, tmp_path):
        cube = Hypercube(4)
        with disk_cache(tmp_path):
            built = cached_tree(TwoRootedCompleteBinaryTree, cube, 0)
            assert tree_disk.stores == 1
            clear_caches()
            loaded = cached_tree(TwoRootedCompleteBinaryTree, cube, 0)
            assert tree_disk.hits == 1
        assert loaded.parents_map == built.parents_map
        assert loaded.children_map == built.children_map

    def test_translation_from_disk_canonical(self, tmp_path):
        cube = Hypercube(4)
        fresh = TwoRootedCompleteBinaryTree(cube, 5)
        with disk_cache(tmp_path):
            cached_tree(TwoRootedCompleteBinaryTree, cube, 0)
            clear_caches()
            translated = cached_tree(TwoRootedCompleteBinaryTree, cube, 5)
        assert translated.parents_map == fresh.parents_map
        assert translated.levels == fresh.levels

    def test_pickle_roundtrip_preserves_token(self, tmp_path):
        cube = Hypercube(3)
        tree = TwoRootedCompleteBinaryTree(cube, 0)
        clone = pickle.loads(pickle.dumps(tree))
        assert clone.cache_token() == tree.cache_token()


class TestStatsIntegration:
    def test_disk_caches_report_in_cache_stats(self):
        stats = cache.cache_stats()
        assert "cache.disk.schedules" in stats
        assert "cache.disk.trees" in stats
        assert set(stats["cache.disk.schedules"]) == {
            "hits", "misses", "stores", "errors", "evictions",
        }

    def test_clear_caches_resets_counters_but_keeps_files(self, tmp_path):
        with disk_cache(tmp_path):
            _generate()
            files_before = list(tmp_path.rglob("*.pkl"))
            clear_caches()
            assert schedule_disk.stores == 0
            assert list(tmp_path.rglob("*.pkl")) == files_before
            _generate()
            assert schedule_disk.hits == 1  # files survived the clear


class TestWarmFigureRun:
    def test_warm_run_regenerates_nothing(self, tmp_path):
        from repro.experiments import run_fig6

        with disk_cache(tmp_path):
            cold = run_fig6(dims=(2, 3), message_bytes=2048, jobs=1)
            clear_caches()
            warm = run_fig6(dims=(2, 3), message_bytes=2048, jobs=1)
        # byte-identical results...
        assert cold.render() == warm.render()
        # ...with every schedule served from disk: zero generator calls
        assert warm.sweep.disk_misses == 0
        assert warm.sweep.disk_hits > 0
        assert warm.sweep.disk_hits == warm.sweep.lru_misses
        assert cache.cache_stats()["cache.disk.schedules"]["misses"] == 0


class TestClearFilesAndEviction:
    def _cache(self, tmp_path, **kwargs):
        configure_disk(tmp_path)
        return disk_mod.DiskCache("test.disk.evict", "evict", **kwargs)

    def test_clear_files_purges_the_store(self, tmp_path):
        c = self._cache(tmp_path)
        for k in range(4):
            assert c.store(("k", k), k)
        assert len(c._entries()) == 4
        c.clear(files=True)
        assert c._entries() == []
        assert c.stats() == {
            "hits": 0, "misses": 0, "stores": 0, "errors": 0, "evictions": 0,
        }
        assert c.fetch(("k", 0)) is MISSING

    def test_default_clear_keeps_files(self, tmp_path):
        c = self._cache(tmp_path)
        c.store(("k", 0), "v")
        c.clear()
        assert c.fetch(("k", 0)) == "v"

    def test_max_entries_evicts_oldest(self, tmp_path):
        import os
        import time

        c = self._cache(tmp_path, max_entries=3)
        for k in range(5):
            c.store(("k", k), k)
            # distinct mtimes even on coarse-grained filesystems
            path = c._path(("k", k))
            past = time.time() - 100 + k
            os.utime(path, (past, past))
            c._evict()
        assert len(c._entries()) <= 3
        assert c.evictions >= 2
        assert c.fetch(("k", 0)) is MISSING  # oldest gone
        assert c.fetch(("k", 4)) == 4  # newest kept

    def test_fetch_refreshes_recency(self, tmp_path):
        import os

        c = self._cache(tmp_path, max_entries=2)
        c.store(("k", 0), 0)
        c.store(("k", 1), 1)
        for k in (0, 1):
            p = c._path(("k", k))
            os.utime(p, (1000.0 + k, 1000.0 + k))
        assert c.fetch(("k", 0)) == 0  # touches k0, now newest
        c.store(("k", 2), 2)
        assert c.fetch(("k", 0)) == 0  # survived: k1 was evicted
        assert c.fetch(("k", 1)) is MISSING

    def test_env_bound_applies_when_unset(self, tmp_path, monkeypatch):
        c = self._cache(tmp_path)
        monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "2")
        for k in range(4):
            c.store(("k", k), k)
        assert len(c._entries()) <= 2
        monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "not-a-number")
        c.store(("k", 9), 9)  # ignored bound: no crash, no eviction
        assert c.fetch(("k", 9)) == 9

    def test_max_entries_validation(self):
        with pytest.raises(ValueError):
            disk_mod.DiskCache("test.disk.bad", "bad", max_entries=0)
