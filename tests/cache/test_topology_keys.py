"""Cache identity must separate topologies of equal dimension.

Regression tests for the torus/hypercube key-collision class of bug:
a ``Torus(n, k)`` and a ``Hypercube(n)`` (or two tori of different
arity) must never share an LRU / disk-cache entry — not in the
schedule memoizer, not in the tree cache, and not through a
:class:`FaultPlan` pinned to a topology.
"""

from __future__ import annotations

import pytest

from repro.cache.schedules import _normalize
from repro.cache.trees import cached_tree
from repro.sim.faults import FaultPlan
from repro.sim.ports import PortModel
from repro.topology import Hypercube, Torus, topology_token
from repro.trees import RingDecompositionTree


class TestTopologyTokens:
    def test_cache_tokens_distinct_same_dimension(self):
        assert Hypercube(3).cache_token() == ("hypercube", 3)
        assert Torus(3, 2).cache_token() == ("torus", 3, 2)
        assert Torus(3, 3).cache_token() != Torus(3, 2).cache_token()

    def test_topology_token_uses_cache_token(self):
        assert topology_token(Hypercube(4)) == ("hypercube", 4)
        assert topology_token(Torus(4, 3)) == ("torus", 4, 3)

    def test_normalize_splits_topologies(self):
        """The schedule memoizer's key component per topology argument."""
        keys = {
            _normalize(Hypercube(2)),
            _normalize(Torus(2, 2)),
            _normalize(Torus(2, 3)),
        }
        assert len(keys) == 3

    def test_normalize_other_types_unchanged(self):
        assert _normalize(PortModel.ALL_PORT) == ("port", PortModel.ALL_PORT.value)
        assert _normalize(7) == 7


class TestTreeCacheKeys:
    def test_same_class_different_arity_not_shared(self):
        """RingDecompositionTree instances on Torus(2, 3) and
        Torus(2, 4) have the same qualname, root and extras — only the
        topology token separates them."""
        t3 = cached_tree(RingDecompositionTree, Torus(2, 3), 0)
        t4 = cached_tree(RingDecompositionTree, Torus(2, 4), 0)
        assert set(t3.parents_map) == set(range(9))
        assert set(t4.parents_map) == set(range(16))

    def test_translated_instance_matches_direct_build(self):
        t = Torus(2, 4)
        cached = cached_tree(RingDecompositionTree, t, 7)
        direct = RingDecompositionTree(t, 7)
        assert cached.parents_map == direct.parents_map
        assert cached.children_map == direct.children_map
        assert cached.levels == direct.levels

    def test_tree_cache_token_includes_topology(self):
        a = RingDecompositionTree(Torus(2, 3), 0).cache_token()
        b = RingDecompositionTree(Torus(2, 4), 0).cache_token()
        assert a != b
        assert ("torus", 2, 3) in a


class TestFaultPlanTopologyPinning:
    def test_unpinned_plans_keep_old_token_shape(self):
        plan = FaultPlan(dead_links=[(0, 1)])
        assert plan.topology_token is None
        assert plan.cache_token()[0] == "faultplan"

    def test_pinned_plans_split_by_topology(self):
        links = [(0, 1)]
        on_cube = FaultPlan(dead_links=links, topology=Hypercube(3))
        on_torus = FaultPlan(dead_links=links, topology=Torus(3, 2))
        assert on_cube.topology_token == ("hypercube", 3)
        assert on_torus.topology_token == ("torus", 3, 2)
        assert on_cube.cache_token() != on_torus.cache_token()

    def test_equal_pinned_plans_share_token(self):
        a = FaultPlan(dead_links=[(0, 1)], topology=Torus(2, 4))
        b = FaultPlan(dead_links=[(1, 0)], topology=Torus(2, 4))
        assert a.cache_token() == b.cache_token()
