"""Unit tests for the keyed LRU primitive and the global cache controls."""

from __future__ import annotations

import pytest

from repro.cache import (
    LRUCache,
    MISSING,
    cache_stats,
    caching_enabled,
    clear_caches,
    configure,
    disabled,
)


def test_get_put_and_missing_sentinel():
    c = LRUCache("test.basic", maxsize=4)
    assert c.get("k") is MISSING
    c.put("k", 42)
    assert c.get("k") == 42
    assert c.get("other") is MISSING
    # None is a legal cached value, distinct from a miss
    c.put("none", None)
    assert c.get("none") is None


def test_lru_eviction_order():
    c = LRUCache("test.evict", maxsize=2)
    c.put("a", 1)
    c.put("b", 2)
    assert c.get("a") == 1  # refresh a; b is now least recent
    c.put("c", 3)
    assert c.get("b") is MISSING
    assert c.get("a") == 1
    assert c.get("c") == 3
    assert len(c) == 2


def test_unbounded_cache():
    c = LRUCache("test.unbounded", maxsize=None)
    for i in range(1000):
        c.put(i, i)
    assert len(c) == 1000
    assert c.get(0) == 0


def test_stats_and_registry():
    c = LRUCache("test.stats", maxsize=8)
    c.get("miss")
    c.put("k", 1)
    c.get("k")
    stats = c.stats()
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["size"] == 1
    assert cache_stats()["test.stats"]["hits"] == 1


def test_clear():
    c = LRUCache("test.clear", maxsize=8)
    c.put("k", 1)
    c.clear()
    assert c.get("k") is MISSING
    assert len(c) == 0


def test_clear_caches_empties_registered_caches():
    c = LRUCache("test.clearall", maxsize=8)
    c.put("k", 1)
    clear_caches()
    assert len(c) == 0


def test_configure_and_disabled_context():
    assert caching_enabled()
    try:
        configure(enabled=False)
        assert not caching_enabled()
    finally:
        configure(enabled=True)
    assert caching_enabled()
    with disabled():
        assert not caching_enabled()
        with disabled():  # reentrant
            assert not caching_enabled()
        assert not caching_enabled()
    assert caching_enabled()


def test_disabled_restores_on_exception():
    with pytest.raises(RuntimeError):
        with disabled():
            raise RuntimeError("boom")
    assert caching_enabled()


class TestConfigureFromEnv:
    """REPRO_CACHE is snapshotted at import; from_env=True re-reads it."""

    @pytest.fixture(autouse=True)
    def _restore(self):
        yield
        configure(enabled=True)

    def test_env_change_alone_has_no_effect(self, monkeypatch):
        assert caching_enabled()
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert caching_enabled()  # import-time snapshot still rules

    def test_from_env_adopts_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "off")
        assert configure(from_env=True) is False
        assert not caching_enabled()

    def test_from_env_adopts_enabled(self, monkeypatch):
        configure(enabled=False)
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert configure(from_env=True) is True
        assert caching_enabled()

    @pytest.mark.parametrize("value", ["0", "off", "false", "no", " FALSE "])
    def test_disabling_spellings(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_CACHE", value)
        assert configure(from_env=True) is False

    def test_explicit_call_wins_after_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        configure(from_env=True)
        assert configure(enabled=True) is True  # most recent call wins
        assert caching_enabled()

    def test_both_args_rejected(self):
        with pytest.raises(ValueError):
            configure(enabled=True, from_env=True)

    def test_neither_arg_rejected(self):
        with pytest.raises(ValueError):
            configure()
