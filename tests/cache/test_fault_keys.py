"""Cache correctness under faults: damaged cubes never reuse clean keys.

The schedule cache keys on normalized generator arguments, so a
``dead_links``/``FaultPlan`` argument must split the key space — a
fault-free cached schedule must never be served for a damaged cube,
and vice versa.  Survivor trees carry their full parent map in their
cache token for the same reason.
"""

from __future__ import annotations

import pytest

from repro.cache import cache_stats, clear_caches
from repro.cache.schedules import _normalize
from repro.routing import msbt_broadcast_schedule, tree_broadcast_schedule
from repro.routing.fault_aware import survivor_broadcast_tree
from repro.sim import FaultPlan, PortModel
from repro.topology import Hypercube
from repro.trees import SurvivorTree

CUBE = Hypercube(3)
PM = PortModel.ONE_PORT_FULL


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestNormalization:
    def test_fault_plan_normalizes_to_its_token(self):
        plan = FaultPlan(dead_links=[(1, 0)], dead_nodes=[(4, 2.0)])
        assert _normalize(plan) == plan.cache_token()
        # spelled differently but equal -> same key component
        assert _normalize(plan) == _normalize(
            FaultPlan(dead_links=[(0, 1, 0.0)], dead_nodes=[(4, 2.0)])
        )

    def test_distinct_plans_normalize_apart(self):
        a = FaultPlan(dead_links=[(0, 1)])
        b = FaultPlan(dead_links=[(0, 1, 5.0)])  # same link, later onset
        assert _normalize(a) != _normalize(b)
        assert _normalize(a) != _normalize(FaultPlan())

    def test_sets_normalize_order_free(self):
        assert _normalize({(0, 1), (2, 3)}) == _normalize(
            frozenset({(2, 3), (0, 1)})
        )


class TestScheduleKeys:
    def test_dead_links_split_the_key(self):
        clean = msbt_broadcast_schedule(CUBE, 0, 6, 2, PM)
        damaged = msbt_broadcast_schedule(CUBE, 0, 6, 2, PM, dead_links=((0, 1),))
        assert clean.algorithm == "msbt-broadcast"
        assert damaged.algorithm == "msbt-broadcast-degraded"
        # the degraded schedule genuinely avoids the dead link
        assert FaultPlan(dead_links=[(0, 1)]).schedule_is_clean(damaged)
        assert not FaultPlan(dead_links=[(0, 1)]).schedule_is_clean(clean)
        # and asking for the clean cube again returns the clean schedule
        again = msbt_broadcast_schedule(CUBE, 0, 6, 2, PM)
        assert again.algorithm == "msbt-broadcast"
        assert again.rounds == clean.rounds

    def test_cache_stats_reflect_new_fault_keys(self):
        name = "schedules.msbt_broadcast_schedule"
        msbt_broadcast_schedule(CUBE, 0, 6, 2, PM)
        base = cache_stats()[name]
        assert base["misses"] >= 1

        # a new fault set is a miss, repeating it is a hit
        msbt_broadcast_schedule(CUBE, 0, 6, 2, PM, dead_links=((2, 6),))
        after_miss = cache_stats()[name]
        assert after_miss["misses"] == base["misses"] + 1
        msbt_broadcast_schedule(CUBE, 0, 6, 2, PM, dead_links=((2, 6),))
        after_hit = cache_stats()[name]
        assert after_hit["hits"] == after_miss["hits"] + 1
        assert after_hit["misses"] == after_miss["misses"]

    def test_different_fault_sets_get_different_schedules(self):
        a = msbt_broadcast_schedule(CUBE, 0, 6, 2, PM, dead_links=((0, 1),))
        b = msbt_broadcast_schedule(CUBE, 0, 6, 2, PM, dead_links=((0, 2),))
        assert not FaultPlan(dead_links=[(0, 2)]).schedule_is_clean(a) or (
            a.rounds != b.rounds
        )
        assert FaultPlan(dead_links=[(0, 2)]).schedule_is_clean(b)


class TestSurvivorTreeTokens:
    def test_token_encodes_the_parent_map(self):
        t1 = survivor_broadcast_tree(CUBE, 0, FaultPlan(dead_links=[(0, 1)]))
        t2 = survivor_broadcast_tree(CUBE, 0, FaultPlan(dead_links=[(0, 2)]))
        t3 = survivor_broadcast_tree(CUBE, 0, FaultPlan(dead_links=[(0, 1)]))
        assert t1.cache_token() != t2.cache_token()
        assert t1.cache_token() == t3.cache_token()

    def test_generic_broadcast_not_cross_served(self):
        t1 = survivor_broadcast_tree(CUBE, 0, FaultPlan(dead_links=[(0, 1)]))
        t2 = survivor_broadcast_tree(CUBE, 0, FaultPlan(dead_links=[(0, 2)]))
        s1 = tree_broadcast_schedule(t1, 4, 2, PM)
        s2 = tree_broadcast_schedule(t2, 4, 2, PM)
        assert FaultPlan(dead_links=[(0, 1)]).schedule_is_clean(s1)
        assert FaultPlan(dead_links=[(0, 2)]).schedule_is_clean(s2)
        # the cached s1 must not leak into the t2 call
        assert not FaultPlan(dead_links=[(0, 2)]).schedule_is_clean(s1)

    def test_partial_tree_covered_set(self):
        plan = FaultPlan(dead_nodes=[7])
        tree = survivor_broadcast_tree(CUBE, 0, plan, partial=True)
        assert isinstance(tree, SurvivorTree)
        assert tree.covered == frozenset(range(7))
        with pytest.raises(ValueError, match="not covered"):
            tree.parent(7)
