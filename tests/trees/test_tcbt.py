"""Unit tests for the two-rooted complete binary tree embedding."""

import pytest

from repro.topology import Hypercube
from repro.trees import TwoRootedCompleteBinaryTree, build_drcbt


class TestConstruction:
    @pytest.mark.parametrize("n", list(range(1, 11)))
    def test_spans_with_dilation_one(self, n):
        cube = Hypercube(n)
        t = TwoRootedCompleteBinaryTree(cube)
        t.validate()  # includes the every-edge-is-a-cube-edge check

    @pytest.mark.parametrize("root", [0, 1, 9, 15])
    def test_arbitrary_roots(self, root):
        t = TwoRootedCompleteBinaryTree(Hypercube(4), root)
        t.validate()
        assert t.root == root

    def test_build_drcbt_returns_adjacent_roots(self):
        for n in range(1, 9):
            r1, r2, parents = build_drcbt(n)
            assert r1 == 0
            assert bin(r1 ^ r2).count("1") == 1
            assert len(parents) == (1 << n) - 2

    def test_bad_dimension_rejected(self):
        with pytest.raises(ValueError):
            build_drcbt(0)


class TestShape:
    @pytest.mark.parametrize("n", [2, 3, 4, 6, 8])
    def test_double_rooted_complete_binary_shape(self, n):
        t = TwoRootedCompleteBinaryTree(Hypercube(n))
        r1 = t.root
        r2 = t.second_root
        kids1 = [c for c in t.children(r1) if c != r2]
        kids2 = t.children(r2)
        # each root has exactly one child besides the root edge
        assert len(kids1) == (1 if n >= 2 else 0)
        assert len(kids2) == (1 if n >= 2 else 0)
        if n < 2:
            return
        # each root's child heads a complete binary tree on 2^(n-1)-1 nodes
        for head in (kids1[0], kids2[0]):
            sub = t.subtree_of(head)
            assert len(sub) == (1 << (n - 1)) - 1
            _assert_complete_binary(t, head)

    def test_height_is_n(self):
        for n in range(2, 9):
            assert TwoRootedCompleteBinaryTree(Hypercube(n)).height == n

    def test_max_fanout_is_two(self):
        for n in range(2, 9):
            assert TwoRootedCompleteBinaryTree(Hypercube(n)).max_fanout() == 2


def _assert_complete_binary(tree, head) -> None:
    """Every internal node has exactly 2 children; all leaves at one depth."""
    depths = []
    stack = [(head, 0)]
    while stack:
        node, d = stack.pop()
        kids = tree.children(node)
        assert len(kids) in (0, 2), (node, kids)
        if not kids:
            depths.append(d)
        for c in kids:
            stack.append((c, d + 1))
    assert len(set(depths)) == 1, depths
