"""Root-subtree bookkeeping across all tree types."""

import pytest

from repro.topology import Hypercube
from repro.trees import (
    BalancedSpanningTree,
    CenteredHamiltonianPathTree,
    HamiltonianPathTree,
    SpanningBinomialTree,
    TwoRootedCompleteBinaryTree,
)

ALL_TREES = (
    SpanningBinomialTree,
    BalancedSpanningTree,
    TwoRootedCompleteBinaryTree,
    HamiltonianPathTree,
    CenteredHamiltonianPathTree,
)


class TestRootSubtrees:
    @pytest.mark.parametrize("cls", ALL_TREES)
    def test_partition_non_root_nodes(self, cube4, cls):
        tree = cls(cube4, 0)
        seen: set[int] = set()
        for child, members in tree.root_subtrees.items():
            assert child in members
            assert not (set(members) & seen)
            seen |= set(members)
        assert seen == set(cube4.nodes()) - {0}

    @pytest.mark.parametrize("cls", ALL_TREES)
    def test_sizes_sum(self, cube4, cls):
        tree = cls(cube4, 0)
        assert sum(len(m) for m in tree.root_subtrees.values()) == 15

    def test_subtree_counts_by_type(self, cube4):
        assert len(SpanningBinomialTree(cube4, 0).root_subtrees) == 4
        assert len(BalancedSpanningTree(cube4, 0).root_subtrees) == 4
        # the TCBT routing root R1 has two children: the co-root R2 and
        # its own complete-binary-subtree head
        assert len(TwoRootedCompleteBinaryTree(cube4, 0).root_subtrees) == 2
        assert len(HamiltonianPathTree(cube4, 0).root_subtrees) == 1
        assert len(CenteredHamiltonianPathTree(cube4, 0).root_subtrees) == 2

    @pytest.mark.parametrize("cls", ALL_TREES)
    def test_members_live_below_their_child(self, cube4, cls):
        tree = cls(cube4, 0)
        for child, members in tree.root_subtrees.items():
            below = set(tree.subtree_of(child))
            assert set(members) == below
