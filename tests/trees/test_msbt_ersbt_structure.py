"""Deeper structural checks on the ERSBTs (§3.2)."""

import pytest

from repro.bits.ops import bit, popcount
from repro.topology import Hypercube
from repro.trees import MSBTGraph


class TestErsbtStructure:
    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_internal_node_count_is_half(self, n):
        # internal nodes of tree j = nodes with relative bit j set
        g = MSBTGraph(Hypercube(n))
        for j, t in enumerate(g.trees):
            internal = [
                v for v in range(1 << n)
                if v != 0 and t.children(v)
            ]
            assert all(bit(v, j) for v in internal)
            with_bit = [v for v in range(1 << n) if bit(v, j)]
            leaves_with_bit = [v for v in with_bit if not t.children(v)]
            # only the deepest chain nodes with bit j set may be
            # childless; count: internal + leaves_with_bit == N/2
            assert len(internal) + len(leaves_with_bit) == (1 << n) // 2

    @pytest.mark.parametrize("n", [3, 4, 5, 6])
    def test_leaf_depth_at_most_height(self, n):
        g = MSBTGraph(Hypercube(n))
        for t in g.trees:
            assert t.height <= n + 1
            # leaves with c_j = 0 hang exactly one hop below an internal node
            for v in range(1 << n):
                if v == 0:
                    continue
                if not bit(v, t.tree_index):
                    parent = t.parent(v)
                    assert parent == v ^ (1 << t.tree_index)

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_trees_related_by_rotation(self, n):
        # tree j at source 0 is tree 0 with all addresses rotated left
        # by j (the construction "rotates" the SBTs)
        from repro.bits.ops import rotate_left

        g = MSBTGraph(Hypercube(n))
        t0 = g.trees[0]
        for j in range(1, n):
            tj = g.trees[j]
            for v in range(1 << n):
                p0 = t0.parent(v)
                rotated = rotate_left(v, j, n)
                pj = tj.parent(rotated)
                assert pj == (None if p0 is None else rotate_left(p0, j, n)), (j, v)

    def test_source_out_degree_one_per_tree(self, cube5):
        g = MSBTGraph(cube5, 7)
        for j, t in enumerate(g.trees):
            kids = t.children(7)
            assert len(kids) == 1
            assert kids[0] == 7 ^ (1 << j)

    def test_ersbt_root_subtree_is_whole_cube(self, cube4):
        g = MSBTGraph(cube4, 0)
        for j, t in enumerate(g.trees):
            root_child = 1 << j
            assert len(t.subtree_of(root_child)) == cube4.num_nodes - 1
