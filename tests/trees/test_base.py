"""Unit tests for the shared SpanningTree machinery."""

import pytest

from repro.topology import Hypercube
from repro.trees import SpanningBinomialTree
from repro.trees.base import SpanningTree


class _BrokenTree(SpanningTree):
    """Parent function that skips half the cube (for validation tests)."""

    def parent(self, node):
        if node == self.root:
            return None
        if node % 2 == 0:
            return node ^ (node & -node)
        return None  # a second root -> invalid


class TestDerivedStructure:
    def test_children_map_inverts_parents(self, cube4):
        t = SpanningBinomialTree(cube4, 7)
        for v in cube4.nodes():
            for c in t.children_map[v]:
                assert t.parents_map[c] == v
        n_edges = sum(len(k) for k in t.children_map.values())
        assert n_edges == cube4.num_nodes - 1

    def test_edges_count(self, cube4):
        t = SpanningBinomialTree(cube4)
        assert len(t.edges()) == 15

    def test_levels_and_height(self, cube4):
        t = SpanningBinomialTree(cube4, 0)
        assert t.levels[0] == 0
        assert t.height == 4
        assert sum(t.level_counts()) == 16

    def test_relative(self, cube4):
        t = SpanningBinomialTree(cube4, 9)
        assert t.relative(9) == 0
        assert t.relative(0) == 9

    def test_subtree_of_and_sizes(self, cube4):
        t = SpanningBinomialTree(cube4, 0)
        for v in cube4.nodes():
            assert len(t.subtree_of(v)) == t.subtree_sizes[v]
        assert t.subtree_sizes[0] == 16
        leaf = 0b1000
        assert t.subtree_of(leaf) == (leaf,)

    def test_descendant_counts(self, cube4):
        t = SpanningBinomialTree(cube4, 0)
        counts = t.descendant_counts_by_distance(0)
        assert counts == [1, 4, 6, 4, 1]
        assert sum(counts) == 16


class TestTraversals:
    def test_preorder_visits_all_once(self, cube4):
        t = SpanningBinomialTree(cube4, 0)
        order = t.preorder()
        assert sorted(order) == list(range(16))
        assert order[0] == 0
        # parents precede children
        pos = {v: i for i, v in enumerate(order)}
        for v in cube4.nodes():
            p = t.parents_map[v]
            if p is not None:
                assert pos[p] < pos[v]

    def test_preorder_subtree(self, cube4):
        t = SpanningBinomialTree(cube4, 0)
        sub = t.preorder(1)
        assert set(sub) == set(t.subtree_of(1))
        assert sub[0] == 1

    def test_breadth_first_levels_monotone(self, cube4):
        t = SpanningBinomialTree(cube4, 0)
        order = t.breadth_first()
        lv = [t.levels[v] for v in order]
        assert lv == sorted(lv)

    def test_reversed_breadth_first_deepest_first(self, cube4):
        t = SpanningBinomialTree(cube4, 0)
        order = t.reversed_breadth_first()
        lv = [t.levels[v] for v in order]
        assert lv == sorted(lv, reverse=True)
        assert order[0] == 0b1111


class TestValidation:
    def test_broken_tree_rejected(self, cube4):
        with pytest.raises(ValueError):
            _BrokenTree(cube4, 0).validate()

    def test_repr(self, cube4):
        assert "SpanningBinomialTree" in repr(SpanningBinomialTree(cube4))
