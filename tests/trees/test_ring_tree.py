"""Tests for the torus ring-decomposition spanning tree."""

from __future__ import annotations

import pytest

from repro.topology import Hypercube, Torus
from repro.trees import RingDecompositionTree

GRID = [(1, 3), (1, 4), (2, 2), (2, 3), (2, 4), (3, 2), (3, 3), (2, 5)]


@pytest.mark.parametrize("n,k", GRID)
class TestRingDecompositionTree:
    def test_is_spanning_tree(self, n, k):
        tree = RingDecompositionTree(Torus(n, k))
        tree.validate()
        assert set(tree.parents_map) == set(tree.cube.nodes())

    def test_edges_are_torus_edges(self, n, k):
        t = Torus(n, k)
        tree = RingDecompositionTree(t, root=1 % t.num_nodes)
        for v, p in tree.parents_map.items():
            if p is not None:
                assert t.are_adjacent(v, p)

    def test_shortest_path_depth(self, n, k):
        """Every node sits at its ring distance: the tree is a
        shortest-path tree, so its height is the torus diameter."""
        t = Torus(n, k)
        tree = RingDecompositionTree(t)
        for v, lvl in tree.levels.items():
            assert lvl == t.distance(tree.root, v)
        assert tree.height == t.diameter

    def test_translation_equivariance(self, n, k):
        """parent_s(v) == translate(parent_0(v - s), s) — the property
        the tree cache relies on."""
        t = Torus(n, k)
        base = RingDecompositionTree(t, 0)
        for s in {1, t.num_nodes - 1, t.num_nodes // 2} - {0}:
            shifted = RingDecompositionTree(t, s)
            # map the root-0 tree through translate-by-s
            expected = {
                t.translate(v, s): (
                    None if p is None else t.translate(p, s)
                )
                for v, p in base.parents_map.items()
            }
            assert shifted.parents_map == expected


def test_requires_torus_host():
    with pytest.raises(TypeError):
        RingDecompositionTree(Hypercube(3))


def test_matches_generic_tree_api():
    tree = RingDecompositionTree(Torus(2, 4), root=5)
    assert tree.root == 5
    assert sum(tree.level_counts()) == 16
    assert tree.subtree_sizes[5] == 16
    # children lists are consistent with parents
    for v, kids in tree.children_map.items():
        for c in kids:
            assert tree.parent(c) == v
