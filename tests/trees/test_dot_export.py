"""Tests for the Graphviz DOT export."""

from repro.topology import Hypercube
from repro.trees import BalancedSpanningTree, SpanningBinomialTree


class TestToDot:
    def test_contains_all_edges(self, cube4):
        tree = SpanningBinomialTree(cube4, 0)
        dot = tree.to_dot()
        assert dot.startswith("digraph tree {")
        assert dot.count("->") == 15
        assert '"0000" [shape=doublecircle]' in dot

    def test_decimal_labels(self, cube4):
        dot = BalancedSpanningTree(cube4, 5).to_dot(label_bits=False)
        assert '"5" [shape=doublecircle]' in dot

    def test_valid_edges_only(self, cube4):
        tree = BalancedSpanningTree(cube4, 0)
        dot = tree.to_dot(label_bits=False)
        for line in dot.splitlines():
            if "->" in line:
                a, b = line.strip().strip(";").split(" -> ")
                u, v = int(a.strip('"')), int(b.strip('"'))
                assert cube4.are_adjacent(u, v)
