"""Unit tests for the Spanning Binomial Tree (§3.1)."""

from math import comb

import pytest

from repro.bits.ops import popcount
from repro.topology import Hypercube
from repro.trees import SpanningBinomialTree, sbt_children, sbt_parent


class TestStructure:
    def test_figure1_tree(self):
        # Figure 1: the SBT rooted at 0 in a 4-cube
        t = SpanningBinomialTree(Hypercube(4), 0)
        assert t.children(0) == (1, 2, 4, 8)
        assert t.children(1) == (3, 5, 9)
        assert t.children(3) == (7, 11)
        assert t.children(7) == (15,)
        assert t.children(8) == ()
        assert t.parent(15) == 7
        assert t.parent(10) == 2

    def test_spans_and_validates(self, cube):
        for root in (0, cube.num_nodes - 1, 5 % cube.num_nodes):
            t = SpanningBinomialTree(cube, root)
            t.validate()

    def test_height_is_n(self, cube):
        assert SpanningBinomialTree(cube).height == cube.dimension

    def test_level_counts_are_binomial(self, cube):
        t = SpanningBinomialTree(cube, 3 % cube.num_nodes)
        counts = t.level_counts()
        n = cube.dimension
        assert counts == [comb(n, i) for i in range(n + 1)]

    def test_level_equals_relative_popcount(self, cube4):
        t = SpanningBinomialTree(cube4, 6)
        for v in cube4.nodes():
            assert t.level(v) == popcount(v ^ 6)
            assert t.levels[v] == t.level(v)

    def test_parent_strips_highest_relative_bit(self, cube4):
        t = SpanningBinomialTree(cube4, 0)
        assert t.parent(0b1101) == 0b0101
        assert t.parent(0b0001) == 0
        assert t.parent(0) is None

    def test_children_flip_leading_zeroes(self):
        n = 5
        assert sbt_children(0b00100, 0, n) == (0b01100, 0b10100)
        assert sbt_children(0, 0, n) == (1, 2, 4, 8, 16)
        assert sbt_parent(0b01100, 0, n) == 0b00100


class TestSubtrees:
    def test_subtree_sizes_halve(self, cube):
        # subtree j holds 2^(n-1-j) nodes: half the cube on port 0 (§4)
        t = SpanningBinomialTree(cube, 0)
        n = cube.dimension
        for j in range(n):
            assert t.subtree_size(j) == 1 << (n - 1 - j)

    def test_subtree_index_is_lowest_set_bit(self, cube4):
        t = SpanningBinomialTree(cube4, 0)
        assert t.subtree_index(0b0110) == 1
        assert t.subtree_index(0b1000) == 3
        with pytest.raises(ValueError):
            t.subtree_index(0)

    def test_subtree_membership_consistent(self, cube4):
        t = SpanningBinomialTree(cube4, 9)
        for child, members in t.root_subtrees.items():
            j = t.subtree_index(child)
            assert len(members) == t.subtree_size(j)
            for v in members:
                assert t.subtree_index(v) == j

    def test_root_subtree_of_port0_has_half_the_nodes(self, cube):
        t = SpanningBinomialTree(cube, 0)
        big = t.root_subtrees[1]  # child across port 0
        assert len(big) == cube.num_nodes // 2


class TestTranslation:
    def test_translation_maps_trees(self, cube4):
        # the tree at source s is the XOR-translate of the tree at 0 (§3.1)
        t0 = SpanningBinomialTree(cube4, 0)
        s = 11
        ts = SpanningBinomialTree(cube4, s)
        for v in cube4.nodes():
            p0 = t0.parent(v)
            assert ts.parent(v ^ s) == (None if p0 is None else p0 ^ s)

    def test_descending_relative_order(self, cube4):
        t = SpanningBinomialTree(cube4, 3)
        order = t.descending_relative_order()
        assert len(order) == 15
        assert order[0] == 3 ^ 15
        assert order[-1] == 3 ^ 1
        rels = [v ^ 3 for v in order]
        assert rels == sorted(rels, reverse=True)
