"""Unit tests for the Hamiltonian-path spanning tree."""

import pytest

from repro.topology import Hypercube
from repro.trees import HamiltonianPathTree


class TestHamiltonianPathTree:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 7])
    def test_spans_and_validates(self, n):
        HamiltonianPathTree(Hypercube(n)).validate()

    def test_height_is_N_minus_one(self, cube):
        t = HamiltonianPathTree(cube)
        assert t.height == cube.num_nodes - 1

    def test_path_structure(self, cube4):
        t = HamiltonianPathTree(cube4, 5)
        p = t.path
        assert p[0] == 5
        assert sorted(p) == list(range(16))
        # a path: every node except the last has exactly one child
        for v in p[:-1]:
            assert len(t.children(v)) == 1
        assert t.children(p[-1]) == ()

    def test_position_equals_level(self, cube4):
        t = HamiltonianPathTree(cube4, 3)
        for i, v in enumerate(t.path):
            assert t.position(v) == i == t.levels[v]

    def test_parent_follows_path(self, cube4):
        t = HamiltonianPathTree(cube4, 0)
        p = t.path
        for a, b in zip(p, p[1:]):
            assert t.parent(b) == a
        assert t.parent(p[0]) is None
