"""SurvivorTree: parent-map-backed trees over a (possibly partial) cube."""

from __future__ import annotations

import pytest

from repro.topology import Hypercube
from repro.topology.fault import fault_avoiding_spanning_tree
from repro.trees import SurvivorTree

CUBE = Hypercube(3)


def _full_tree(root: int = 0, **kw) -> SurvivorTree:
    return SurvivorTree(CUBE, root, fault_avoiding_spanning_tree(CUBE, root, **kw))


class TestConstruction:
    def test_full_bfs_tree_spans_and_validates(self):
        tree = _full_tree()
        assert tree.covered == frozenset(CUBE.nodes())
        tree.validate()  # full coverage: the generic check applies
        assert tree.parent(0) is None
        assert tree.height <= CUBE.dimension

    def test_derived_maps_restricted_to_covered(self):
        parents = fault_avoiding_spanning_tree(
            CUBE, 0, dead_nodes=[7], partial=True
        )
        tree = SurvivorTree(CUBE, 0, parents)
        assert tree.covered == frozenset(range(7))
        assert set(tree.levels) == tree.covered
        assert set(tree.subtree_sizes) == tree.covered
        assert tree.subtree_sizes[0] == 7
        assert sum(len(tree.children_map[v]) for v in tree.covered) == 6

    def test_uncovered_node_queries_raise(self):
        parents = fault_avoiding_spanning_tree(
            CUBE, 0, dead_nodes=[7], partial=True
        )
        tree = SurvivorTree(CUBE, 0, parents)
        with pytest.raises(ValueError, match="not covered"):
            tree.parent(7)

    def test_rejects_root_mismatch(self):
        with pytest.raises(ValueError, match="root"):
            SurvivorTree(CUBE, 1, {0: None, 1: 0})

    def test_rejects_non_cube_edges(self):
        with pytest.raises(ValueError, match="not a cube edge"):
            SurvivorTree(CUBE, 0, {0: None, 3: 0})

    def test_rejects_parent_outside_map(self):
        with pytest.raises(ValueError, match="not itself in the tree"):
            SurvivorTree(CUBE, 0, {0: None, 3: 1})

    def test_rejects_cycles(self):
        # 2 -> 6 -> 2 is a cycle disconnected from the root
        with pytest.raises(ValueError, match="not a tree"):
            SurvivorTree(CUBE, 0, {0: None, 2: 6, 6: 2})

    def test_repr_shows_coverage(self):
        parents = fault_avoiding_spanning_tree(
            CUBE, 0, dead_nodes=[7], partial=True
        )
        assert "covered=7/8" in repr(SurvivorTree(CUBE, 0, parents))


class TestTokens:
    def test_equal_maps_equal_tokens(self):
        assert _full_tree().cache_token() == _full_tree().cache_token()

    def test_token_sensitive_to_structure(self):
        a = _full_tree(dead_links=[(0, 1)])
        b = _full_tree(dead_links=[(0, 2)])
        assert a.cache_token() != b.cache_token()
