"""Unit tests for the §3.4 Hamiltonian-path variations."""

import pytest

from repro.bits.ops import hamming_distance
from repro.topology import Hypercube
from repro.trees import CenteredHamiltonianPathTree, HamiltonianPathTree, hamiltonian_cycle


class TestHamiltonianCycle:
    @pytest.mark.parametrize("n", [2, 3, 5, 7])
    def test_is_a_cycle(self, n):
        c = hamiltonian_cycle(n)
        assert sorted(c) == list(range(1 << n))
        for a, b in zip(c, c[1:]):
            assert hamming_distance(a, b) == 1
        assert hamming_distance(c[-1], c[0]) == 1

    def test_translated_start(self):
        c = hamiltonian_cycle(4, start=9)
        assert c[0] == 9
        assert sorted(c) == list(range(16))

    def test_small_n_rejected(self):
        with pytest.raises(ValueError):
            hamiltonian_cycle(1)
        with pytest.raises(ValueError):
            hamiltonian_cycle(3, start=8)


class TestCenteredTree:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6])
    def test_spans_and_validates(self, n):
        CenteredHamiltonianPathTree(Hypercube(n)).validate()

    @pytest.mark.parametrize("root", [0, 5, 15])
    def test_arbitrary_roots(self, root):
        t = CenteredHamiltonianPathTree(Hypercube(4), root)
        t.validate()
        assert t.root == root

    def test_root_has_two_arms(self, cube4):
        t = CenteredHamiltonianPathTree(cube4)
        assert len(t.children(0)) == 2
        a, b = t.arms
        assert len(a) + len(b) == 15
        assert abs(len(a) - len(b)) <= 1

    def test_height_halves_the_path(self, cube5):
        plain = HamiltonianPathTree(cube5)
        centered = CenteredHamiltonianPathTree(cube5)
        assert plain.height == 31
        assert centered.height == 16  # N/2 (the paper's factor of two)

    def test_arms_are_paths(self, cube4):
        t = CenteredHamiltonianPathTree(cube4)
        for v in cube4.nodes():
            assert len(t.children_map[v]) <= (2 if v == t.root else 1)

    def test_broadcast_delay_halved(self, cube5):
        # propagation delay N/2 vs N-1 for a single packet, all models
        from repro.routing import tree_broadcast_schedule
        from repro.sim import PortModel, run_synchronous

        for pm in PortModel:
            plain = tree_broadcast_schedule(
                HamiltonianPathTree(cube5), 1, 1, pm
            )
            centered = tree_broadcast_schedule(
                CenteredHamiltonianPathTree(cube5), 1, 1, pm
            )
            rp = run_synchronous(cube5, plain, pm, {0: set(plain.chunk_sizes)})
            rc = run_synchronous(cube5, centered, pm, {0: set(centered.chunk_sizes)})
            assert rc.cycles <= rp.cycles / 2 + 2, pm
