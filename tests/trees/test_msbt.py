"""Unit tests for the MSBT graph and its edge labelling (§3.2-3.3)."""

import pytest

from repro.bits.ops import bit, flip_bit
from repro.topology import DirectedEdge, Hypercube
from repro.trees import MSBTGraph, msbt_k, msbt_label, msbt_zero_span


class TestMsbtK:
    def test_k_of_zero_is_minus_one(self):
        assert msbt_k(0, 2, 4) == -1

    def test_k_of_single_bit_j_is_j(self):
        # "k = j, if every bit but j is 0"
        for n in (3, 5):
            for j in range(n):
                assert msbt_k(1 << j, j, n) == j

    def test_k_scans_cyclically_right(self):
        # first 1-bit at positions j-1, j-2, ..., wrapping
        assert msbt_k(0b0110, 3, 4) == 2
        assert msbt_k(0b0110, 1, 4) == 2  # wraps: 0 is clear, 3 clear, 2 set
        assert msbt_k(0b1000, 1, 4) == 3

    def test_zero_span_between_k_and_j(self):
        assert msbt_zero_span(0b0001, 3, 4) == (2, 1)
        assert msbt_zero_span(0, 2, 4) == ()
        # c = 2^j: span covers every other position
        assert set(msbt_zero_span(0b0100, 2, 4)) == {0, 1, 3}


class TestGraphStructure:
    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    @pytest.mark.parametrize("source", [0, 1])
    def test_validate(self, n, source):
        g = MSBTGraph(Hypercube(n), source)
        g.validate()

    def test_each_tree_spans(self, cube4):
        g = MSBTGraph(cube4, 3)
        for t in g.trees:
            t.validate()
            assert len(t.levels) == 16

    def test_trees_are_edge_disjoint_using_all_but_n_edges(self, cube4):
        g = MSBTGraph(cube4, 0)
        all_edges = g.all_edges()
        assert len(all_edges) == (16 - 1) * 4
        unused = g.unused_edges()
        assert unused == {DirectedEdge(1 << j, 0) for j in range(4)}

    def test_height_is_log_n_plus_one(self):
        for n in (2, 3, 4, 5, 6):
            assert MSBTGraph(Hypercube(n)).height == n + 1, n

    def test_internal_nodes_have_bit_j_set(self, cube4):
        # all nodes with relative bit j = 0 are leaves of the j-th ERSBT
        g = MSBTGraph(cube4, 6)
        for j, t in enumerate(g.trees):
            for v in cube4.nodes():
                c = v ^ 6
                if c == 0:
                    continue
                if bit(c, j):
                    assert not t.is_leaf(v) or t.children(v) == ()
                else:
                    assert t.is_leaf(v), (j, v)

    def test_ersbt_root_is_source_neighbor(self, cube4):
        g = MSBTGraph(cube4, 9)
        for j, t in enumerate(g.trees):
            assert t.children(9) == (flip_bit(9, j),)

    def test_figure2_three_cube(self):
        # Figure 2: tree 0 of the MSBT at source 0 in a 3-cube
        g = MSBTGraph(Hypercube(3), 0)
        t0 = g.trees[0]
        assert t0.children(0) == (1,)
        assert set(t0.children(1)) == {3, 5}       # zero span of 001 from j=0
        assert t0.parent(3) == 1
        assert t0.parent(7) in (3, 5)


class TestLabelling:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6])
    def test_three_conditions(self, n):
        MSBTGraph(Hypercube(n)).validate_labelling()

    def test_three_conditions_translated(self):
        MSBTGraph(Hypercube(4), 13).validate_labelling()

    def test_max_label_is_2n_minus_1(self):
        for n in (2, 3, 4, 5):
            assert MSBTGraph(Hypercube(n)).max_label() == 2 * n - 1

    def test_label_cases(self):
        n = 3
        # source has no input edge
        assert msbt_label(0, 0, 0, n) is None
        # ERSBT root (c = 2^j): k = j >= j -> label j
        for j in range(n):
            assert msbt_label(1 << j, j, 0, n) == j
        # leaf (c_j = 0): label j + n
        assert msbt_label(0b010, 0, 0, n) == 0 + n

    def test_figure3_labels(self):
        # Labels of tree 0 in the 3-cube MSBT at source 0, from the
        # definition of f: root (c=001) -> k=j=0 -> 0; internal 011 ->
        # k=1>=j -> 1; internal 101 -> k=2>=j -> 2; internal 111 ->
        # k=1 -> 1?  No: c=111, j=0: scan 2,1 -> k=2 >= 0 -> 2.
        g = MSBTGraph(Hypercube(3), 0)
        labels = {v: g.label(v, 0) for v in range(8)}
        assert labels[0b000] is None   # source
        assert labels[0b001] == 0      # tree root
        assert labels[0b011] == 1
        assert labels[0b101] == 2
        assert labels[0b111] == 2      # c=111: first 1 right of 0 is pos 2
        assert labels[0b010] == 3      # leaf: j + n
        assert labels[0b100] == 3      # leaf: j + n
        assert labels[0b110] == 3      # leaf: j + n

    def test_labels_strictly_increase_along_paths(self, cube5):
        g = MSBTGraph(cube5, 17)
        for j, t in enumerate(g.trees):
            for v in cube5.nodes():
                lab = t.label(v)
                for child in t.children(v):
                    child_lab = t.label(child)
                    if lab is not None:
                        assert child_lab > lab
