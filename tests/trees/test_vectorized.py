"""Tests for the vectorized tree computations against scalar truth."""

import numpy as np
import pytest

from repro.bits.necklaces import base, is_cyclic
from repro.topology import Hypercube
from repro.trees import BalancedSpanningTree, SpanningBinomialTree, max_subtree_size
from repro.trees.vectorized import (
    bst_bases_array,
    bst_parents_array,
    bst_subtree_sizes_array,
    cyclic_mask_array,
    sbt_levels_array,
    sbt_parents_array,
)


@pytest.mark.parametrize("n,source", [(3, 0), (5, 0), (6, 17), (8, 255)])
class TestAgainstScalar:
    def test_sbt_parents(self, n, source):
        tree = SpanningBinomialTree(Hypercube(n), source)
        got = sbt_parents_array(n, source)
        for v in range(1 << n):
            want = tree.parent(v)
            assert got[v] == (-1 if want is None else want)

    def test_sbt_levels(self, n, source):
        tree = SpanningBinomialTree(Hypercube(n), source)
        got = sbt_levels_array(n, source)
        for v in range(1 << n):
            assert got[v] == tree.level(v)

    def test_bst_bases(self, n, source):
        got = bst_bases_array(n, source)
        for v in range(1 << n):
            c = v ^ source
            if c:
                assert got[v] == base(c, n), v

    def test_bst_parents(self, n, source):
        tree = BalancedSpanningTree(Hypercube(n), source)
        got = bst_parents_array(n, source)
        for v in range(1 << n):
            want = tree.parent(v)
            assert got[v] == (-1 if want is None else want), v

    def test_cyclic_mask(self, n, source):
        got = cyclic_mask_array(n, source)
        for v in range(1 << n):
            c = v ^ source
            assert got[v] == (is_cyclic(c, n)), v


class TestSubtreeSizes:
    @pytest.mark.parametrize("n", [2, 4, 6, 9])
    def test_matches_object_tree(self, n):
        tree = BalancedSpanningTree(Hypercube(n))
        want = np.array([len(s) for s in tree.subtree_node_lists])
        got = bst_subtree_sizes_array(n)
        assert np.array_equal(got, want)

    @pytest.mark.parametrize("n", list(range(2, 21)))
    def test_table5_at_full_scale(self, n):
        # the vectorized path makes the full Table 5 range constructible
        sizes = bst_subtree_sizes_array(n)
        assert int(sizes.max()) == max_subtree_size(n)
        assert int(sizes.sum()) == (1 << n) - 1

    def test_large_n_is_fast(self):
        import time

        t0 = time.perf_counter()
        bst_subtree_sizes_array(18)
        assert time.perf_counter() - t0 < 5.0


class TestMsbtLabels:
    @pytest.mark.parametrize("n,source", [(3, 0), (5, 0), (6, 17)])
    def test_matches_scalar(self, n, source):
        from repro.trees.msbt import msbt_label
        from repro.trees.vectorized import msbt_labels_array

        for j in range(n):
            got = msbt_labels_array(n, j, source)
            for v in range(1 << n):
                want = msbt_label(v, j, source, n)
                assert got[v] == (-1 if want is None else want), (j, v)

    def test_label_range(self):
        from repro.trees.vectorized import msbt_labels_array

        n = 8
        for j in (0, 3, 7):
            labels = msbt_labels_array(n, j)
            assert labels[0] == -1
            assert labels[1:].min() >= 0
            assert labels.max() <= 2 * n - 1

    def test_bad_tree_index_rejected(self):
        from repro.trees.vectorized import msbt_labels_array

        with pytest.raises(ValueError):
            msbt_labels_array(4, 4)


class TestValidation:
    def test_bad_dimension_rejected(self):
        with pytest.raises(ValueError):
            sbt_parents_array(0)
        with pytest.raises(ValueError):
            bst_bases_array(25)
