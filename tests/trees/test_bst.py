"""Unit tests for the Balanced Spanning Tree (§4.1), including every
numbered property the paper lists."""

from math import ceil

import pytest

from repro.bits.necklaces import is_cyclic, period
from repro.topology import Hypercube
from repro.trees import BalancedSpanningTree, bst_subtree_index, max_subtree_size
from repro.trees.sbt import SpanningBinomialTree


class TestStructure:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6, 7])
    def test_spans_and_validates(self, n):
        BalancedSpanningTree(Hypercube(n)).validate()

    def test_translated_roots_validate(self, cube5):
        for root in (7, 21, 31):
            BalancedSpanningTree(cube5, root).validate()

    def test_root_has_n_children(self, cube):
        t = BalancedSpanningTree(cube)
        assert len(t.children(t.root)) == cube.dimension

    def test_translation_maps_trees(self, cube4):
        t0 = BalancedSpanningTree(cube4, 0)
        s = 13
        ts = BalancedSpanningTree(cube4, s)
        for v in cube4.nodes():
            p0 = t0.parent(v)
            assert ts.parent(v ^ s) == (None if p0 is None else p0 ^ s)

    def test_parent_preserves_base(self):
        # the key lemma: complementing bit k cannot change the base
        for n in (4, 5, 6, 7):
            t = BalancedSpanningTree(Hypercube(n))
            for v in range(1, 1 << n):
                p = t.parent(v)
                assert p is not None
                if p != 0:
                    assert t.subtree_index(p) == t.subtree_index(v), (n, v)


class TestTable5:
    def test_closed_form_matches_paper(self):
        from repro.experiments.tables import PAPER_TABLE5

        for n, want in PAPER_TABLE5.items():
            assert max_subtree_size(n) == want, n

    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6, 7, 8, 9, 10])
    def test_constructed_max_matches_closed_form(self, n):
        t = BalancedSpanningTree(Hypercube(n))
        assert max(map(len, t.subtree_node_lists)) == max_subtree_size(n)

    def test_subtree_sizes_sum_to_n_minus_one(self, cube):
        t = BalancedSpanningTree(cube)
        assert sum(map(len, t.subtree_node_lists)) == cube.num_nodes - 1

    def test_balance_ratio_approaches_one(self):
        r6 = BalancedSpanningTree(Hypercube(6)).balance_ratio()
        r10 = BalancedSpanningTree(Hypercube(10)).balance_ratio()
        assert r10 < r6
        assert r10 < 1.06

    def test_subtree_j_counts_necklaces_of_period_above_j(self):
        # structural reason behind Table 5: subtree j holds one member
        # of every necklace with period > j
        from repro.bits.necklaces import necklace_representatives

        n = 6
        t = BalancedSpanningTree(Hypercube(n))
        reps = [r for r in necklace_representatives(n) if r != 0]
        for j in range(n):
            expected = sum(1 for r in reps if period(r, n) > j)
            assert len(t.subtree_node_lists[j]) == expected, j


class TestPaperProperties:
    """Properties 1-6 of §4.1."""

    @pytest.mark.parametrize("n", [3, 4, 5, 6, 7])
    def test_property1_heights(self, n):
        # one subtree of height log N, the others log N - 1
        t = BalancedSpanningTree(Hypercube(n))
        heights = []
        for j in range(n):
            members = t.subtree_node_lists[j]
            heights.append(max(t.levels[v] for v in members))
        assert sorted(heights)[-1] == n
        assert all(h == n - 1 for h in sorted(heights)[:-1])

    @pytest.mark.parametrize("n", [3, 4, 5, 6, 7])
    def test_property2_fanout_bound(self, n):
        # max fanout at level i is ceil((log N - i) / 2) for 1 <= i
        t = BalancedSpanningTree(Hypercube(n))
        for v in range(1, 1 << n):
            i = t.levels[v]
            assert len(t.children(v)) <= ceil((n - i) / 2), (v, i)

    @pytest.mark.parametrize("n", [4, 5, 6])
    def test_property3_phi_monotone(self, n):
        # phi(i, d) >= phi(child, d): the root-ward node always has at
        # least as many descendants at each depth offset
        t = BalancedSpanningTree(Hypercube(n))
        for v in range(1 << n):
            mine = t.descendant_counts_by_distance(v)
            for child in t.children(v):
                theirs = t.descendant_counts_by_distance(child)
                for d, count in enumerate(theirs):
                    assert mine[d] >= count if d < len(mine) else count == 0

    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_property4_isomorphic_subtrees_for_prime_n(self, n):
        # excluding the all-ones node, subtrees are isomorphic when n prime
        t = BalancedSpanningTree(Hypercube(n))
        shapes = []
        ones = (1 << n) - 1
        for j in range(n):
            members = [v for v in t.subtree_node_lists[j] if v != ones]
            profile = sorted(
                (t.levels[v], len([c for c in t.children(v) if c != ones]))
                for v in members
            )
            shapes.append(profile)
        assert all(s == shapes[0] for s in shapes[1:])

    @pytest.mark.parametrize("n", [4, 6, 8])
    def test_property5_no_short_period_in_high_subtrees(self, n):
        # subtrees P..n-1 contain no cyclic node of period P
        t = BalancedSpanningTree(Hypercube(n))
        for j in range(n):
            for v in t.subtree_node_lists[j]:
                p = period(v, n)
                if p < n:  # cyclic
                    assert j < p, (v, p, j)

    @pytest.mark.parametrize("n", [4, 5, 6, 8])
    def test_property6_cyclic_nodes_are_leaves(self, n):
        t = BalancedSpanningTree(Hypercube(n))
        for v in range(1, 1 << n):
            if is_cyclic(v, n):
                assert t.is_leaf(v), v


class TestBalanceVsSbt:
    def test_bst_root_ports_balanced_sbt_not(self):
        # the whole point of §4: SBT subtree 0 has N/2 nodes, BST ~ N/log N
        n = 6
        cube = Hypercube(n)
        sbt = SpanningBinomialTree(cube)
        bst = BalancedSpanningTree(cube)
        sbt_max = max(len(v) for v in sbt.root_subtrees.values())
        bst_max = max(map(len, bst.subtree_node_lists))
        assert sbt_max == cube.num_nodes // 2
        assert bst_max < sbt_max / 2

    def test_subtree_index_helpers(self, cube4):
        t = BalancedSpanningTree(cube4, 0)
        for v in range(1, 16):
            assert t.subtree_index(v) == bst_subtree_index(v, 0, 4)
        with pytest.raises(ValueError):
            t.subtree_index(0)

    def test_cyclic_node_helpers(self, cube4):
        t = BalancedSpanningTree(cube4, 0)
        assert t.is_cyclic_node(0b0101)
        assert not t.is_cyclic_node(0b0001)
        assert t.node_period(0b0101) == 2
        with pytest.raises(ValueError):
            t.node_period(0)
