"""The workload DAG model: validation, ordering, structure queries."""

from __future__ import annotations

import pytest

from repro.workloads import PhaseSpec, Workload, WorkloadDAG


def _chain(*names: str, op: str | None = None) -> WorkloadDAG:
    phases = []
    prev: tuple[str, ...] = ()
    for n in names:
        phases.append(PhaseSpec(n, op=op, deps=prev))
        prev = (n,)
    return WorkloadDAG(tuple(phases))


class TestPhaseSpec:
    def test_compute_phase_kind(self):
        p = PhaseSpec("fwd", compute=5.0)
        assert p.kind == "compute"
        assert not p.rooted

    def test_collective_phase_kind(self):
        p = PhaseSpec("b", op="broadcast")
        assert p.kind == "collective"
        assert p.rooted

    def test_rootless_ops_are_not_rooted(self):
        assert not PhaseSpec("a", op="alltoall").rooted
        assert not PhaseSpec("g", op="allgather").rooted

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="op must be None or one of"):
            PhaseSpec("x", op="allscatter")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            PhaseSpec("")

    def test_negative_compute_rejected(self):
        with pytest.raises(ValueError, match="compute must be >= 0"):
            PhaseSpec("x", compute=-1.0)

    def test_bad_message_elems_rejected(self):
        with pytest.raises(ValueError, match="message_elems"):
            PhaseSpec("x", op="broadcast", message_elems=0)

    def test_duplicate_deps_rejected(self):
        with pytest.raises(ValueError, match="duplicate dependencies"):
            PhaseSpec("x", deps=("a", "a"))


class TestWorkloadDAG:
    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one phase"):
            WorkloadDAG(())

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate phase name"):
            WorkloadDAG((PhaseSpec("a"), PhaseSpec("a")))

    def test_unknown_dep_rejected(self):
        with pytest.raises(ValueError, match="unknown phase 'ghost'"):
            WorkloadDAG((PhaseSpec("a", deps=("ghost",)),))

    def test_cycle_rejected(self):
        with pytest.raises(ValueError, match="dependency cycle"):
            WorkloadDAG((
                PhaseSpec("a", deps=("b",)),
                PhaseSpec("b", deps=("a",)),
            ))

    def test_topological_respects_deps_and_declaration_order(self):
        dag = WorkloadDAG((
            PhaseSpec("late", deps=("r1", "r2")),
            PhaseSpec("r2"),
            PhaseSpec("r1"),
        ))
        assert [p.name for p in dag.topological()] == ["r2", "r1", "late"]

    def test_successors(self):
        dag = WorkloadDAG((
            PhaseSpec("a"),
            PhaseSpec("b", deps=("a",)),
            PhaseSpec("c", deps=("a",)),
        ))
        assert dag.successors() == {"a": ("b", "c"), "b": (), "c": ()}

    def test_phase_lookup(self):
        dag = _chain("a", "b")
        assert dag.phase("b").deps == ("a",)
        with pytest.raises(KeyError):
            dag.phase("zzz")

    def test_serial_chain(self):
        dag = _chain("a", "b", "c", op="broadcast")
        assert dag.serial

    def test_serial_through_compute_bridge(self):
        # collective -> compute -> collective is still a serial chain
        dag = WorkloadDAG((
            PhaseSpec("b1", op="broadcast"),
            PhaseSpec("mid", compute=1.0, deps=("b1",)),
            PhaseSpec("b2", op="broadcast", deps=("mid",)),
        ))
        assert dag.serial

    def test_concurrent_collectives_not_serial(self):
        dag = WorkloadDAG((
            PhaseSpec("b1", op="broadcast"),
            PhaseSpec("b2", op="broadcast", source=1),
        ))
        assert not dag.serial

    def test_collective_phases_filter(self):
        dag = WorkloadDAG((
            PhaseSpec("c", compute=1.0),
            PhaseSpec("b", op="broadcast", deps=("c",)),
        ))
        assert [p.name for p in dag.collective_phases] == ["b"]


class TestWorkload:
    def test_dag_builder_invoked_per_step(self):
        steps = []

        def build(step: int) -> WorkloadDAG:
            steps.append(step)
            return _chain(f"s{step}")

        w = Workload(name="w", dimension=3, dag_builder=build)
        assert w.dag(0).phases[0].name == "s0"
        assert w.dag(2).phases[0].name == "s2"
        assert steps == [0, 2]

    def test_negative_step_rejected(self):
        w = Workload(name="w", dimension=3, dag_builder=lambda s: _chain("a"))
        with pytest.raises(ValueError, match="step must be >= 0"):
            w.dag(-1)
