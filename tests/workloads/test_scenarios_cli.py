"""The workload scenario registry and the ``repro workload`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.workloads import (
    WORKLOAD_SCENARIOS,
    Workload,
    get_workload_scenario,
    run_workload,
)

EXPECTED = {
    "dp-train-n10",
    "pipeline-4stage",
    "moe-alltoall",
    "train-with-mice",
    "train-under-faults",
}


class TestRegistry:
    def test_expected_scenarios_registered(self):
        assert set(WORKLOAD_SCENARIOS) == EXPECTED

    def test_listing_is_sorted(self):
        assert list(WORKLOAD_SCENARIOS) == sorted(WORKLOAD_SCENARIOS)

    def test_unknown_name_is_helpful(self):
        with pytest.raises(ValueError, match="unknown workload scenario"):
            get_workload_scenario("nope")

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_builders_produce_consistent_workloads(self, name):
        scenario = WORKLOAD_SCENARIOS[name]
        workload = scenario.build(seed=0)
        assert isinstance(workload, Workload)
        assert workload.name == name
        assert workload.dimension == scenario.dimension
        dag = workload.dag(0)
        assert len(dag) > 0
        assert dag.collective_phases  # every scenario moves data
        for p in dag.collective_phases:
            if p.rooted:
                assert 0 <= p.source < (1 << workload.dimension)

    def test_fault_scenario_degrades_but_completes(self):
        workload = get_workload_scenario("train-under-faults").build(seed=0)
        report = run_workload(workload, steps=1)
        assert report.degraded
        assert report.steps[0].duration > 0
        degraded = [p for p in report.steps[0].phases if p.degraded]
        assert degraded  # the fault shows up in the step report


class TestCLI:
    def test_list(self, capsys):
        assert main(["workload", "list"]) == 0
        out = capsys.readouterr().out
        for name in EXPECTED:
            assert name in out

    def test_run_writes_report_and_metrics(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        code = main([
            "workload", "run", "--scenario", "train-under-faults",
            "--steps", "1", "--report-json", str(report_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "train-under-faults" in out
        assert "degraded" in out
        payload = json.loads(report_path.read_text())
        assert payload["workload"] == "train-under-faults"
        assert payload["summary"]["degraded_steps"] == 1
        assert payload["steps"][0]["critical_path"]["phases"]

    def test_metrics_json_contains_workload_block(self, tmp_path):
        path = tmp_path / "metrics.json"
        code = main([
            "workload", "run", "--scenario", "pipeline-4stage",
            "--steps", "1", "--metrics-json", str(path),
        ])
        assert code == 0
        payload = json.loads(path.read_text())
        block = payload["workload"]
        assert block["dimension"] == 8
        assert block["summary"]["steps"] == 1
        assert len(block["steps"][0]["phases"]) == 8

    def test_unknown_scenario_exits_2(self, capsys):
        assert main(["workload", "run", "--scenario", "nope"]) == 2
        assert "pick one of" in capsys.readouterr().err

    def test_bad_engine_exits_2(self, capsys):
        code = main([
            "workload", "run", "--scenario", "pipeline-4stage",
            "--engine", "indexed",
        ])
        assert code == 2
        assert "vectorized" in capsys.readouterr().err
