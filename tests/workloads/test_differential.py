"""Differential: a single-phase workload must reproduce the standalone
collective bit for bit — same finish time, same traffic — because the
merged-program lowering of one entry with release 0 is exactly the
schedule the standalone vectorized run executes."""

from __future__ import annotations

import pytest

from repro.collectives import (
    allgather,
    allreduce,
    alltoall_personalized,
    broadcast,
    gather,
    reduce,
    scatter,
)
from repro.topology import Hypercube
from repro.workloads import PhaseSpec, Workload, WorkloadDAG, run_workload

DIM = 4

#: (phase spec kwargs, standalone runner)
GRID = [
    (
        dict(op="broadcast", algorithm="msbt", source=3,
             message_elems=16, packet_elems=4),
        lambda cube: broadcast(cube, 3, "msbt", 16, 4,
                               run_event_sim=True, engine="vectorized"),
    ),
    (
        dict(op="broadcast", algorithm="sbt", source=0, message_elems=8),
        lambda cube: broadcast(cube, 0, "sbt", 8,
                               run_event_sim=True, engine="vectorized"),
    ),
    (
        dict(op="scatter", algorithm="bst", source=5,
             message_elems=4, packet_elems=2),
        lambda cube: scatter(cube, 5, "bst", 4, 2,
                             run_event_sim=True, engine="vectorized"),
    ),
    (
        dict(op="gather", algorithm="bst", source=2, message_elems=4),
        lambda cube: gather(cube, 2, "bst", 4,
                            run_event_sim=True, engine="vectorized"),
    ),
    (
        dict(op="reduce", source=1, message_elems=4, packet_elems=2),
        lambda cube: reduce(cube, 1, 4, 2,
                            run_event_sim=True, engine="vectorized"),
    ),
    (
        dict(op="allgather", message_elems=2),
        lambda cube: allgather(cube, 2,
                               run_event_sim=True, engine="vectorized"),
    ),
    (
        dict(op="alltoall", message_elems=2),
        lambda cube: alltoall_personalized(
            cube, 2, run_event_sim=True, engine="vectorized"),
    ),
]


def _single_phase_report(kwargs):
    dag = WorkloadDAG((PhaseSpec("only", **kwargs),))
    w = Workload(name="diff", dimension=DIM, dag_builder=lambda s: dag)
    return run_workload(w).steps[0].phase("only")


class TestSinglePhaseMatchesStandalone:
    @pytest.mark.parametrize(
        "kwargs,runner", GRID,
        ids=[f"{k['op']}-{k.get('algorithm', 'default')}" for k, _ in GRID],
    )
    def test_time_and_traffic_bit_identical(self, kwargs, runner):
        std = runner(Hypercube(DIM))
        phase = _single_phase_report(kwargs)
        assert phase.finish == std.time  # bit-for-bit, no tolerance
        assert phase.transfers_executed == std.schedule.num_transfers
        assert phase.elems == std.link_stats.total_elems()
        assert not phase.degraded


class TestSerialChainMatchesComposition:
    def test_reduce_then_broadcast_equals_allreduce(self):
        """The dp-train gradient pattern — an SBT reduce phase feeding
        an SBT broadcast phase — must cost exactly what the allreduce
        composition reports (its phases run back to back)."""
        cube = Hypercube(DIM)
        std = allreduce(cube, 8, 4, run_event_sim=True,
                        engine="vectorized", root=0)
        dag = WorkloadDAG((
            PhaseSpec("red", op="reduce", source=0,
                      message_elems=8, packet_elems=4),
            PhaseSpec("bc", op="broadcast", algorithm="sbt", source=0,
                      message_elems=8, packet_elems=4, deps=("red",)),
        ))
        w = Workload(name="ar", dimension=DIM, dag_builder=lambda s: dag)
        step = run_workload(w).steps[0]
        assert step.duration == std.time
        assert step.phase("red").finish == std.reduce.time
        assert (
            step.phase("bc").finish - step.phase("bc").release
            == std.broadcast.time
        )
