"""The repro_workload_* instruments and their flush helper."""

from __future__ import annotations

import pytest

from repro.obs import REGISTRY
from repro.obs.instruments import (
    WORKLOAD_LINK_UTILIZATION,
    WORKLOAD_PHASES,
    WORKLOAD_STEP_TIME,
    WORKLOAD_STEPS,
    WORKLOAD_STRAGGLER_RATIO,
)
from repro.workloads import PhaseSpec, Workload, WorkloadDAG, run_workload


@pytest.fixture(autouse=True)
def _enabled_registry():
    prev = REGISTRY.enabled
    REGISTRY.configure(enabled=True)
    yield
    REGISTRY.configure(enabled=prev)


def _run():
    dag = WorkloadDAG((
        PhaseSpec("c", compute=4.0),
        PhaseSpec("b", op="broadcast", message_elems=8, packet_elems=4,
                  deps=("c",)),
    ))
    w = Workload(name="obs-test", dimension=3, dag_builder=lambda s: dag)
    return run_workload(w, steps=2)


class TestWorkloadFlush:
    def test_steps_and_phases_counted(self):
        steps_before = WORKLOAD_STEPS.labels(
            workload="obs-test", backend="sim", outcome="completed"
        ).value
        bcast_before = WORKLOAD_PHASES.labels(
            workload="obs-test", kind="broadcast"
        ).value
        compute_before = WORKLOAD_PHASES.labels(
            workload="obs-test", kind="compute"
        ).value
        _run()
        assert WORKLOAD_STEPS.labels(
            workload="obs-test", backend="sim", outcome="completed"
        ).value == steps_before + 2
        assert WORKLOAD_PHASES.labels(
            workload="obs-test", kind="broadcast"
        ).value == bcast_before + 2
        assert WORKLOAD_PHASES.labels(
            workload="obs-test", kind="compute"
        ).value == compute_before + 2

    def test_step_time_histogram_observes(self):
        hist = WORKLOAD_STEP_TIME.labels(workload="obs-test")
        count_before = hist.count
        report = _run()
        assert hist.count == count_before + 2
        assert hist.sum >= sum(report.step_durations()) * 0.99

    def test_gauges_track_worst_step(self):
        report = _run()
        util_max = max(s.link_utilization.max for s in report.steps)
        assert WORKLOAD_LINK_UTILIZATION.labels(
            workload="obs-test", stat="max"
        ).value == util_max
        ratio = max(s.stragglers.ratio for s in report.steps)
        assert WORKLOAD_STRAGGLER_RATIO.labels(
            workload="obs-test"
        ).value == ratio

    def test_disabled_registry_is_untouched(self):
        REGISTRY.configure(enabled=False)
        before = WORKLOAD_STEPS.labels(
            workload="obs-test", backend="sim", outcome="completed"
        ).value
        _run()
        after = WORKLOAD_STEPS.labels(
            workload="obs-test", backend="sim", outcome="completed"
        ).value
        assert after == before
