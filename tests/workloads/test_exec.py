"""Workload execution: dependency timing, contention, faults, backends."""

from __future__ import annotations

import math

import pytest

from repro.sim.faults import FaultError, FaultPlan
from repro.workloads import (
    PhaseSpec,
    Workload,
    WorkloadDAG,
    run_workload,
)


def _workload(phases, dimension=3, **kw) -> Workload:
    dag = WorkloadDAG(tuple(phases))
    return Workload(
        name="test", dimension=dimension, dag_builder=lambda s: dag, **kw
    )


class TestComputeOnly:
    def test_chain_times_add_up(self):
        w = _workload([
            PhaseSpec("a", compute=10.0),
            PhaseSpec("b", compute=5.0, deps=("a",)),
        ])
        rep = run_workload(w)
        step = rep.steps[0]
        assert step.phase("a").finish == 10.0
        assert step.phase("b").ready == 10.0
        assert step.phase("b").finish == 15.0
        assert step.duration == 15.0
        assert step.critical_path.phases == ("a", "b")
        assert step.critical_path.compute_time == 15.0
        assert step.critical_path.comm_time == 0.0

    def test_parallel_branches_take_the_max(self):
        w = _workload([
            PhaseSpec("fast", compute=1.0),
            PhaseSpec("slow", compute=9.0),
            PhaseSpec("join", deps=("fast", "slow")),
        ])
        step = run_workload(w).steps[0]
        assert step.phase("join").ready == 9.0
        assert step.duration == 9.0
        assert step.critical_path.phases == ("slow", "join")


class TestCollectiveTiming:
    def test_dependent_phase_starts_at_dep_finish(self):
        w = _workload([
            PhaseSpec("b1", op="broadcast", algorithm="sbt",
                      message_elems=8, packet_elems=4),
            PhaseSpec("b2", op="broadcast", algorithm="sbt", source=7,
                      message_elems=8, packet_elems=4, deps=("b1",)),
        ])
        step = run_workload(w).steps[0]
        b1, b2 = step.phase("b1"), step.phase("b2")
        assert b1.finish > 0
        assert b2.ready == b1.finish
        assert b2.release == b2.ready
        assert b2.finish > b2.release
        assert step.critical_path.phases == ("b1", "b2")

    def test_compute_gap_delays_communication(self):
        w = _workload([
            PhaseSpec("c", compute=100.0),
            PhaseSpec("b", op="broadcast", compute=7.0, deps=("c",),
                      message_elems=4),
        ])
        step = run_workload(w).steps[0]
        b = step.phase("b")
        assert b.ready == 100.0
        assert b.release == 107.0
        assert b.finish > 107.0

    def test_causality_under_mixed_durations(self):
        """A successor of a *small* phase must not wait for a large
        concurrent phase — the event-ordered loop admits it at its own
        dep's finish, and the big phase's finish stays untouched."""
        w = _workload([
            PhaseSpec("big", op="broadcast", algorithm="sbt",
                      message_elems=64, packet_elems=4),
            PhaseSpec("small", compute=1.0),
            PhaseSpec("after-small", op="broadcast", algorithm="sbt",
                      source=1, message_elems=2, deps=("small",)),
        ])
        step = run_workload(w).steps[0]
        assert step.phase("after-small").release == 1.0
        assert step.phase("after-small").release < step.phase("big").finish
        # the dependent phase's transfers really did run before the big
        # phase finished (they contend on the same cube)
        assert step.phase("after-small").transfers_executed > 0

    def test_all_ops_lower(self):
        w = _workload([
            PhaseSpec("r", op="reduce", message_elems=4, packet_elems=2),
            PhaseSpec("b", op="broadcast", message_elems=4, deps=("r",)),
            PhaseSpec("s", op="scatter", message_elems=2, deps=("b",)),
            PhaseSpec("g", op="gather", message_elems=2, deps=("s",)),
            PhaseSpec("ag", op="allgather", deps=("g",)),
            PhaseSpec("aa", op="alltoall", deps=("ag",)),
        ])
        step = run_workload(w).steps[0]
        assert not step.degraded
        for p in step.phases:
            assert p.transfers_executed == p.transfers_scheduled
            assert p.finish > p.release

    def test_multi_step_offsets(self):
        w = _workload([
            PhaseSpec("b", op="broadcast", message_elems=4, compute=3.0),
        ])
        rep = run_workload(w, steps=3)
        assert rep.num_steps == 3
        for prev, cur in zip(rep.steps, rep.steps[1:]):
            assert cur.start == prev.end
        # identical DAGs => identical per-step durations
        durs = rep.step_durations()
        assert durs[0] == durs[1] == durs[2]
        assert rep.makespan == rep.steps[-1].end


class TestAnalyses:
    def test_link_utilization_bounded(self):
        w = _workload([
            PhaseSpec("b", op="broadcast", algorithm="msbt",
                      message_elems=16, packet_elems=4),
        ])
        step = run_workload(w).steps[0]
        util = step.link_utilization
        assert util.links_used > 0
        assert 0 < util.mean <= util.max <= 1.0
        assert len(util.busiest) <= 3
        assert util.busiest[0][1] == util.max

    def test_stragglers_cover_receiving_nodes(self):
        w = _workload([
            PhaseSpec("b", op="broadcast", message_elems=8, packet_elems=4),
        ])
        step = run_workload(w).steps[0]
        s = step.stragglers
        assert s.nodes_observed == 7  # everyone but the source receives
        assert s.max_lag >= s.median_lag > 0
        assert s.ratio >= 1.0
        assert s.max_lag <= step.duration

    def test_critical_path_tiles_the_step(self):
        w = _workload([
            PhaseSpec("c", compute=10.0),
            PhaseSpec("b", op="broadcast", compute=2.0, deps=("c",),
                      message_elems=4),
        ])
        step = run_workload(w).steps[0]
        cp = step.critical_path
        assert cp.phases == ("c", "b")
        assert cp.compute_time + cp.comm_time == pytest.approx(step.duration)


class TestFaults:
    def test_report_mode_degrades_without_crashing(self):
        w = _workload(
            [PhaseSpec("b", op="broadcast", algorithm="sbt",
                       message_elems=4)],
            faults=FaultPlan(dead_links=[(0, 1)]),
            on_fault="report",
        )
        rep = run_workload(w)
        assert rep.degraded
        b = rep.steps[0].phase("b")
        assert b.degraded
        assert b.transfers_executed < b.transfers_scheduled
        assert b.undelivered_nodes  # the cut-off subtree missed chunks

    def test_raise_mode_raises(self):
        w = _workload(
            [PhaseSpec("b", op="broadcast", algorithm="sbt",
                       message_elems=4)],
            faults=FaultPlan(dead_links=[(0, 1)]),
        )
        with pytest.raises(FaultError):
            run_workload(w)

    def test_unaffected_phase_stays_clean(self):
        # the dead link cuts node 1 off broadcasts from 0, but a
        # broadcast rooted elsewhere routes around nothing — it never
        # uses the dead edge in its SBT either way; use msbt from the
        # far corner so no tree edge crosses (0, 1)
        w = _workload(
            [
                PhaseSpec("hit", op="broadcast", algorithm="sbt",
                          message_elems=4),
                PhaseSpec("clean", compute=1.0),
            ],
            faults=FaultPlan(dead_links=[(0, 1)]),
            on_fault="report",
        )
        rep = run_workload(w)
        assert rep.steps[0].phase("hit").degraded
        assert not rep.steps[0].phase("clean").degraded


class TestBackendsAndValidation:
    def test_bad_steps(self):
        w = _workload([PhaseSpec("a", compute=1.0)])
        with pytest.raises(ValueError, match="steps must be >= 1"):
            run_workload(w, steps=0)

    def test_bad_backend(self):
        w = _workload([PhaseSpec("a", compute=1.0)])
        with pytest.raises(ValueError, match="backend must be one of"):
            run_workload(w, backend="quantum")

    def test_non_vectorized_engine_rejected(self):
        w = _workload([PhaseSpec("a", compute=1.0)])
        with pytest.raises(ValueError, match="vectorized"):
            run_workload(w, engine="indexed")

    def test_vectorized_engine_accepted(self):
        w = _workload([PhaseSpec("a", compute=1.0)])
        assert run_workload(w, engine="vectorized").makespan == 1.0

    def test_runtime_backend_serial_chain(self):
        w = _workload([
            PhaseSpec("c", compute=2.0),
            PhaseSpec("b", op="broadcast", algorithm="sbt",
                      message_elems=4, deps=("c",)),
        ])
        rep = run_workload(w, backend="runtime")
        b = rep.steps[0].phase("b")
        assert b.release == 2.0
        assert b.finish > 2.0
        assert rep.backend == "runtime"

    def test_runtime_backend_rejects_concurrency(self):
        w = _workload([
            PhaseSpec("b1", op="broadcast", message_elems=2),
            PhaseSpec("b2", op="broadcast", source=1, message_elems=2),
        ])
        with pytest.raises(ValueError, match="concurrent"):
            run_workload(w, backend="runtime")

    def test_runtime_backend_rejects_unsupported_op(self):
        w = _workload([PhaseSpec("aa", op="alltoall")])
        with pytest.raises(ValueError, match="broadcast and scatter"):
            run_workload(w, backend="runtime")

    def test_report_roundtrips_to_dict(self):
        w = _workload([
            PhaseSpec("c", compute=1.0),
            PhaseSpec("b", op="broadcast", message_elems=4, deps=("c",)),
        ])
        d = run_workload(w, steps=2).to_dict()
        assert d["workload"] == "test"
        assert d["summary"]["steps"] == 2
        assert len(d["steps"]) == 2
        assert not math.isnan(d["summary"]["straggler_ratio_max"])
        phase_names = [p["name"] for p in d["steps"][0]["phases"]]
        assert phase_names == ["c", "b"]
