"""Determinism regression: a workload report is a pure function of
(scenario, seed, steps) — repeats, pregeneration worker counts and
multiprocessing start methods must yield byte-identical reports."""

from __future__ import annotations

import json
import multiprocessing

from repro.workloads import get_workload_scenario, run_workload

SCENARIO = "train-with-mice"
SEED = 3


def _fingerprint(**kw) -> str:
    workload = get_workload_scenario(SCENARIO).build(SEED)
    report = run_workload(workload, steps=2, **kw)
    return json.dumps(report.to_dict(), sort_keys=True)


class TestBuilderDeterminism:
    def test_same_seed_same_dags(self):
        scenario = get_workload_scenario(SCENARIO)
        a = scenario.build(SEED)
        b = scenario.build(SEED)
        assert a.dag(0) == b.dag(0)
        assert a.dag(1) == b.dag(1)

    def test_different_seed_different_dags(self):
        scenario = get_workload_scenario(SCENARIO)
        assert (
            scenario.build(SEED).dag(0)
            != scenario.build(SEED + 1).dag(0)
        )

    def test_steps_vary_within_a_seed(self):
        w = get_workload_scenario(SCENARIO).build(SEED)
        assert w.dag(0) != w.dag(1)  # per-step jitter + mice draws


class TestRunDeterminism:
    def test_repeat_runs_byte_identical(self):
        assert _fingerprint() == _fingerprint()

    def test_worker_count_is_invisible(self):
        assert _fingerprint(jobs=1) == _fingerprint(jobs=2)

    def test_start_method_is_invisible(self):
        methods = [
            m for m in ("fork", "spawn")
            if m in multiprocessing.get_all_start_methods()
        ]
        want = _fingerprint(jobs=1)
        for method in methods:
            assert _fingerprint(jobs=2, mp_context=method) == want
