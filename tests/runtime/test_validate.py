"""Differential harness: runtime execution must equal engine replay.

The tier-1 grid here is reduced for CI latency; set
``REPRO_RUNTIME_FULL_GRID=1`` to run the full acceptance grid
(n up to 8, M up to 1000) — minutes, not seconds.
"""

from __future__ import annotations

import os

import pytest

from repro.runtime import differential_check, differential_grid
from repro.runtime.validate import RUNTIME_OPS
from repro.sim.machine import MachineParams
from repro.sim.ports import PortModel
from repro.topology import Hypercube

PMS = tuple(PortModel)

FULL = os.environ.get("REPRO_RUNTIME_FULL_GRID") == "1"


class TestDifferentialReduced:
    @pytest.mark.parametrize("pm", PMS)
    @pytest.mark.parametrize("op,algorithm", RUNTIME_OPS)
    @pytest.mark.parametrize("M,B", [(1, 1), (17, 4), (64, 32)])
    @pytest.mark.parametrize("n", [3, 4])
    def test_point(self, n, op, algorithm, M, B, pm):
        differential_check(Hypercube(n), op, algorithm, 0, M, B, pm)

    @pytest.mark.parametrize("op,algorithm", RUNTIME_OPS)
    def test_nonzero_source(self, op, algorithm):
        differential_check(
            Hypercube(4), op, algorithm, 11, 17, 4,
            PortModel.ONE_PORT_FULL,
        )

    def test_nonunit_machine(self):
        machine = MachineParams(tau=2.5, t_c=0.75)
        for op, algorithm in RUNTIME_OPS:
            differential_check(
                Hypercube(3), op, algorithm, 0, 9, 4,
                PortModel.ONE_PORT_HALF, machine=machine,
            )

    def test_grid_report_collects(self):
        report = differential_grid(
            dims=(3,), messages=(5,), packets=(2,),
            port_models=(PortModel.ALL_PORT,), fail_fast=False,
        )
        assert report.ok
        assert report.points == len(RUNTIME_OPS)
        assert report.failures == []


@pytest.mark.skipif(
    not FULL, reason="set REPRO_RUNTIME_FULL_GRID=1 for the full grid"
)
class TestDifferentialFull:
    """The ISSUE acceptance grid, verbatim."""

    @pytest.mark.parametrize("n", [3, 4, 5, 6, 7, 8])
    def test_full_grid_dimension(self, n):
        report = differential_grid(
            dims=(n,), messages=(1, 64, 1000), packets=(1, 32),
            fail_fast=True,
        )
        assert report.ok
        assert report.points == 72  # 4 ops x 3 port models x 3 M x 2 B

    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("n", [3, 4, 5, 6, 7, 8])
    def test_full_grid_sharded(self, n, workers):
        # the same acceptance grid against the sharded runtime: every
        # tree x port model point, K workers, still engine-identical
        report = differential_grid(
            dims=(n,), messages=(1, 64, 1000), packets=(1, 32),
            fail_fast=True, workers=workers, start_method="thread",
        )
        assert report.ok
        assert report.points == 72
