"""Unit tests for the virtual clock and port-admission channels."""

from __future__ import annotations

from repro.runtime.channels import Channel, PortAdmission
from repro.runtime.clock import VirtualClock
from repro.sim.ports import PortModel


class TestChannel:
    def test_same_port_serializes(self):
        ch = Channel(overlap=0.0)
        ch.occupy(0, 0.0, 4.0)
        assert ch.earliest_start(0, 0.0) == 4.0

    def test_cross_port_overlap_release(self):
        ch = Channel(overlap=0.25)
        ch.occupy(0, 0.0, 4.0)
        # other ports wait until start + (1 - 0.25) * 4 = 3.0
        assert ch.earliest_start(1, 0.0) == 3.0

    def test_occupy_prunes_finished_actions(self):
        ch = Channel(overlap=0.0)
        ch.occupy(0, 0.0, 1.0)
        ch.occupy(1, 2.0, 3.0)  # the port-0 action (ended 1.0) is pruned
        assert ch._actions == [(1, 2.0, 3.0)]

    def test_earliest_start_floors_at_now(self):
        ch = Channel(overlap=0.0)
        assert ch.earliest_start(0, 7.5) == 7.5


class TestPortAdmission:
    def test_half_duplex_shares_one_channel(self):
        adm = PortAdmission(PortModel.ONE_PORT_HALF, overlap=0.0)
        assert adm.send_channel(3) is adm.recv_channel(3)

    def test_full_duplex_separates_directions(self):
        adm = PortAdmission(PortModel.ONE_PORT_FULL, overlap=0.0)
        assert adm.send_channel(3) is not adm.recv_channel(3)

    def test_all_port_only_link_serializes(self):
        adm = PortAdmission(PortModel.ALL_PORT, overlap=0.0)
        assert adm.all_port
        adm.occupy(("k",), 0, 1, 0, 0.0, 5.0)
        # node capacity unconstrained; the directed link is not
        assert adm.earliest_start(0, 2, 1, 0.0) == 0.0
        assert adm.earliest_start(0, 1, 0, 0.0) == 5.0
        # the reverse direction is a different link
        assert adm.earliest_start(1, 0, 0, 0.0) == 0.0

    def test_one_port_send_blocks_other_ports(self):
        adm = PortAdmission(PortModel.ONE_PORT_FULL, overlap=0.0)
        dirtied = adm.occupy(("k",), 0, 1, 0, 0.0, 5.0)
        assert len(dirtied) == 2
        assert adm.earliest_start(0, 2, 1, 0.0) == 5.0  # sender busy
        assert adm.earliest_start(2, 1, 0, 0.0) == 5.0  # receiver busy
        assert adm.earliest_start(2, 3, 0, 0.0) == 0.0  # bystanders free

    def test_block_registers_for_sweep(self):
        adm = PortAdmission(PortModel.ONE_PORT_FULL, overlap=0.0)
        adm.block(("k",), 0, 1)
        assert ("k",) in adm.send_channel(0).blocked
        assert ("k",) in adm.recv_channel(1).blocked
        adm.occupy(("k",), 0, 1, 0, 0.0, 1.0)
        assert ("k",) not in adm.send_channel(0).blocked


class TestVirtualClock:
    def test_exam_dedup_keeps_earliest(self):
        clk = VirtualClock()
        clk.push_exam((5,), 3.0)
        clk.push_exam((5,), 7.0)  # later request is absorbed
        assert clk.advance()
        assert clk.now == 3.0
        assert clk.pop_batch() == ((5,), 3.0)
        assert clk.pop_batch() is None

    def test_earlier_exam_supersedes(self):
        clk = VirtualClock()
        clk.push_exam((5,), 7.0)
        clk.push_exam((5,), 3.0)
        assert clk.advance()
        assert clk.now == 3.0
        assert clk.pop_batch() == ((5,), 3.0)
        # the stale 7.0 entry is dropped on its instant
        clk.mark_done((5,))
        assert not clk.advance()

    def test_instant_coalescing_orders_by_key(self):
        clk = VirtualClock()
        clk.push_exam((2,), 1.0)
        clk.push_exam((1,), 1.0 + 1e-13)  # same instant within _EPS
        assert clk.advance()
        keys = [clk.pop_batch()[0], clk.pop_batch()[0]]
        assert keys == [(1,), (2,)]  # key order, not arrival order

    def test_pure_wakes_never_live(self):
        clk = VirtualClock()
        clk.push_wake(1.0)
        clk.push_wake(2.0)
        assert not clk.advance()

    def test_wake_time_represents_the_instant(self):
        clk = VirtualClock()
        clk.push_wake(5.0)
        clk.push_exam((1,), 5.0 + 1e-13)
        assert clk.advance()
        assert clk.now == 5.0  # the wake's float, as in the engine

    def test_deliveries_are_live_and_counted(self):
        clk = VirtualClock()
        clk.push_delivery(4.0)
        clk.push_delivery(4.0)
        clk.push_exam((1,), 9.0)
        assert clk.advance()
        assert clk.now == 4.0
        assert clk.due_deliveries == 2
        assert clk.pop_batch() is None  # instant had only deliveries
        assert clk.advance()
        assert clk.now == 9.0
        assert clk.due_deliveries == 0

    def test_done_keys_never_pop(self):
        clk = VirtualClock()
        clk.push_exam((1,), 2.0)
        clk.push_exam((2,), 2.0)
        clk.mark_done((1,))
        assert clk.advance()
        assert clk.pop_batch() == ((2,), 2.0)
        assert clk.pop_batch() is None

    def test_submission_enters_current_instant(self):
        clk = VirtualClock()
        clk.push_exam((3,), 2.0)
        assert clk.advance()
        assert clk.now == 2.0
        clk.push_submission((1,))
        # the submitted key ranks by key order within the open instant
        assert clk.pop_batch() == ((1,), 2.0)
        assert clk.pop_batch() == ((3,), 2.0)

    def test_same_instant_push_respects_cursor(self):
        clk = VirtualClock()
        clk.push_exam((1,), 2.0)
        clk.push_exam((2,), 2.0)
        assert clk.advance()
        assert clk.pop_batch() == ((1,), 2.0)  # cursor now at (1,)
        # re-examining a key at or before the cursor waits a pass;
        # later keys join the current pass
        clk.push_exam((1,), 2.0)
        clk.push_exam((3,), 2.0)
        assert clk.pop_batch() == ((2,), 2.0)
        assert clk.pop_batch() == ((3,), 2.0)
        assert clk.pop_batch() == ((1,), 2.0)  # next pass
