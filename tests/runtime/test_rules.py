"""Local routing rules: the per-node programs and their priority keys.

The load-bearing property is *global order reconstruction*: sorting
every node's locally derived sends by priority key must reproduce the
exact transfer order of the central schedule generator — that is what
lets the kernel resolve contention identically to the engine without
any node reading a schedule.  Central MSBT ``ONE_PORT_HALF`` and the
one-port BST scatter are excluded here by design (the central
generator post-processes those orders); their equivalence is asserted
at execution level in ``test_validate.py``.
"""

from __future__ import annotations

import pytest

from repro.routing import (
    bst_scatter_schedule,
    msbt_broadcast_schedule,
    sbt_broadcast_schedule,
    sbt_scatter_schedule,
)
from repro.runtime import build_cluster_program
from repro.sim.ports import PortModel
from repro.topology import Hypercube

PMS = tuple(PortModel)


def _local_order(program):
    sends = []
    for prog in program.programs.values():
        for s in prog.sends:
            sends.append((s.key, prog.node, s.dst, s.chunks))
    sends.sort(key=lambda x: x[0])
    return [(src, dst, ch) for _, src, dst, ch in sends]


def _central_order(sched):
    return [(t.src, t.dst, t.chunks) for t in sched.all_transfers()]


class TestOrderReconstruction:
    @pytest.mark.parametrize("pm", PMS)
    @pytest.mark.parametrize("order", ["port", "packet"])
    @pytest.mark.parametrize("n,M,B", [(3, 5, 2), (4, 17, 3), (5, 8, 8)])
    def test_sbt_broadcast(self, n, M, B, pm, order):
        cube = Hypercube(n)
        sched = sbt_broadcast_schedule(cube, 1, M, B, pm, order=order)
        prog = build_cluster_program(
            cube, "broadcast", "sbt", 1, M, B, pm, order=order
        )
        assert _local_order(prog) == _central_order(sched)

    @pytest.mark.parametrize(
        "pm", [PortModel.ONE_PORT_FULL, PortModel.ALL_PORT]
    )
    @pytest.mark.parametrize("n,M,B", [(3, 5, 2), (4, 17, 3), (5, 8, 8)])
    def test_msbt_broadcast(self, n, M, B, pm):
        cube = Hypercube(n)
        sched = msbt_broadcast_schedule(cube, 1, M, B, pm)
        prog = build_cluster_program(cube, "broadcast", "msbt", 1, M, B, pm)
        assert _local_order(prog) == _central_order(sched)

    @pytest.mark.parametrize("pm", PMS)
    @pytest.mark.parametrize("n,M,B", [(3, 5, 2), (4, 7, 3)])
    def test_sbt_scatter(self, n, M, B, pm):
        cube = Hypercube(n)
        sched = sbt_scatter_schedule(cube, 1, M, B, pm)
        prog = build_cluster_program(cube, "scatter", "sbt", 1, M, B, pm)
        assert _local_order(prog) == _central_order(sched)

    @pytest.mark.parametrize("n,M,B", [(3, 5, 2), (4, 7, 3)])
    def test_bst_scatter_all_port(self, n, M, B):
        cube = Hypercube(n)
        pm = PortModel.ALL_PORT
        sched = bst_scatter_schedule(cube, 1, M, B, pm)
        prog = build_cluster_program(cube, "scatter", "bst", 1, M, B, pm)
        assert _local_order(prog) == _central_order(sched)


class TestProgramStructure:
    def test_broadcast_initial_and_expected(self):
        cube = Hypercube(3)
        prog = build_cluster_program(
            cube, "broadcast", "sbt", 2, 10, 4, PortModel.ONE_PORT_FULL
        )
        chunks = set(prog.chunk_sizes)
        assert len(chunks) == 3  # ceil(10/4) packets
        assert sum(prog.chunk_sizes.values()) == 10
        assert prog.programs[2].initial == frozenset(chunks)
        assert prog.programs[2].expected == frozenset()
        for v in cube.nodes():
            if v != 2:
                assert prog.programs[v].initial == frozenset()
                assert prog.programs[v].expected == frozenset(chunks)

    def test_scatter_expected_is_own_slice(self):
        cube = Hypercube(3)
        prog = build_cluster_program(
            cube, "scatter", "bst", 0, 5, 2, PortModel.ONE_PORT_FULL
        )
        assert prog.programs[0].initial == frozenset(prog.chunk_sizes)
        for v in cube.nodes():
            if v == 0:
                continue
            exp = prog.programs[v].expected
            assert exp == {c for c in prog.chunk_sizes if c[1] == v}
            assert sum(prog.chunk_sizes[c] for c in exp) == 5

    def test_keys_sorted_and_unique_per_cluster(self):
        cube = Hypercube(4)
        for op, alg in [
            ("broadcast", "sbt"),
            ("broadcast", "msbt"),
            ("scatter", "sbt"),
            ("scatter", "bst"),
        ]:
            for pm in PortModel:
                prog = build_cluster_program(cube, op, alg, 0, 9, 2, pm)
                seen = set()
                for node_prog in prog.programs.values():
                    keys = [s.key for s in node_prog.sends]
                    assert keys == sorted(keys)
                    for k in keys:
                        assert k not in seen, (op, alg, pm, k)
                        seen.add(k)

    def test_total_sends_counts_everything(self):
        cube = Hypercube(3)
        prog = build_cluster_program(
            cube, "broadcast", "sbt", 0, 4, 4, PortModel.ALL_PORT
        )
        assert prog.total_sends() == sum(
            len(p.sends) for p in prog.programs.values()
        )
        assert prog.total_sends() == cube.num_nodes - 1  # one packet, SBT

    def test_rejects_unknown_inputs(self):
        cube = Hypercube(3)
        with pytest.raises(ValueError):
            build_cluster_program(
                cube, "gather", "sbt", 0, 4, 2, PortModel.ALL_PORT
            )
        with pytest.raises(ValueError):
            build_cluster_program(
                cube, "broadcast", "bst", 0, 4, 2, PortModel.ALL_PORT
            )
        with pytest.raises(ValueError):
            build_cluster_program(
                cube, "scatter", "msbt", 0, 4, 2, PortModel.ALL_PORT
            )
        with pytest.raises(ValueError):
            build_cluster_program(
                cube, "broadcast", "sbt", 0, 4, 2,
                PortModel.ONE_PORT_FULL, order="zigzag",
            )
        with pytest.raises(ValueError):
            build_cluster_program(
                cube, "scatter", "bst", 0, 4, 2,
                PortModel.ONE_PORT_FULL, subtree_order="random",
            )
