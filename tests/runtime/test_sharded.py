"""The sharded multi-process runtime: equivalence, protocol, faults.

The load-bearing claim is *bit-identity*: partitioning the cube across
worker processes coordinated by the distributed virtual clock must
produce exactly the observables of the single-process runtime (which
the differential harness separately proves equal to the event engine).
Most tests here run workers as in-process threads — same protocol,
same frames, same coordinator — so the full grid stays fast and
coverage-tracked; dedicated integration tests exercise real ``fork``
and ``spawn`` processes.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import run_collective
from repro.runtime.clock import _EPS
from repro.runtime.sharded import START_METHODS, run_sharded
from repro.runtime.trace import merge_shard_traces
from repro.runtime.validate import RUNTIME_OPS, differential_check, sharded_check
from repro.sim.faults import FaultError, FaultPlan
from repro.sim.machine import MachineParams
from repro.sim.ports import PortModel
from repro.topology.hypercube import Hypercube

PMS = (PortModel.ONE_PORT_HALF, PortModel.ONE_PORT_FULL, PortModel.ALL_PORT)


def _run(cube, op="broadcast", alg="msbt", source=0, M=17, B=4,
         pm=PortModel.ONE_PORT_FULL, workers=2, **kw):
    kw.setdefault("start_method", "thread")
    return run_collective(cube, op, alg, source, M, B, pm,
                          workers=workers, **kw)


class TestDifferentialEquivalence:
    @pytest.mark.parametrize("op,alg", RUNTIME_OPS)
    @pytest.mark.parametrize("pm", PMS, ids=lambda p: p.name)
    def test_sharded_matches_engine_and_single_process(self, op, alg, pm):
        sharded_check(Hypercube(4), op, alg, 0, 17, 4, pm,
                      workers_grid=(2, 4), start_method="thread")

    @pytest.mark.parametrize("source", [5, 15])
    def test_nonzero_source(self, source):
        sharded_check(Hypercube(4), "scatter", "bst", source, 33, 8,
                      PortModel.ONE_PORT_HALF, workers_grid=(2, 4),
                      start_method="thread")

    def test_overlap_machine(self):
        m = MachineParams(tau=2.5, t_c=0.75, overlap=0.5, name="custom")
        sharded_check(Hypercube(4), "broadcast", "sbt", 3, 29, 4,
                      PortModel.ONE_PORT_FULL, machine=m,
                      workers_grid=(2, 4), start_method="thread")

    def test_internal_packetization_machine(self):
        m = MachineParams(internal_packet_elems=8)
        sharded_check(Hypercube(4), "scatter", "sbt", 0, 64, 16,
                      PortModel.ALL_PORT, machine=m,
                      workers_grid=(2, 4), start_method="thread")

    def test_every_node_its_own_shard(self):
        sharded_check(Hypercube(3), "broadcast", "msbt", 0, 9, 2,
                      PortModel.ONE_PORT_FULL, workers_grid=(8,),
                      start_method="thread")

    def test_workers_one_is_the_single_process_runtime(self):
        # K=1 short-circuits: no coordinator, no sharding stats
        res = run_collective(Hypercube(3), "broadcast", "sbt", 0, 8, 2,
                             PortModel.ONE_PORT_FULL, workers=1)
        assert res.sharding is None and res.shard_traces is None

    def test_differential_check_accepts_workers(self):
        differential_check(Hypercube(3), "broadcast", "msbt", 0, 9, 3,
                           PortModel.ONE_PORT_HALF, workers=2,
                           start_method="thread")


class TestProcessIntegration:
    def test_fork_workers(self):
        sharded_check(Hypercube(4), "broadcast", "msbt", 0, 17, 4,
                      PortModel.ONE_PORT_FULL, workers_grid=(2,),
                      start_method="fork")

    def test_spawn_workers(self):
        sharded_check(Hypercube(3), "scatter", "bst", 0, 16, 4,
                      PortModel.ONE_PORT_FULL, workers_grid=(2,),
                      start_method="spawn")

    def test_fork_report_mode_faults(self):
        plan = FaultPlan(dead_links=[(1, 9, 3.0)])
        base = run_collective(Hypercube(4), "broadcast", "sbt", 0, 33, 4,
                              PortModel.ONE_PORT_FULL, faults=plan,
                              on_fault="report")
        sh = run_collective(Hypercube(4), "broadcast", "sbt", 0, 33, 4,
                            PortModel.ONE_PORT_FULL, faults=plan,
                            on_fault="report", workers=2,
                            start_method="fork")
        assert sh.holdings == base.holdings
        assert sh.fault_events == base.fault_events


class TestFaults:
    # link 1<->9 crosses the K=2 boundary of a 4-cube: the executor,
    # not a worker, detects the fault and must ship it home correctly
    PLAN = FaultPlan(dead_links=[(1, 9, 3.0)])

    def _base(self, on_fault):
        return run_collective(Hypercube(4), "broadcast", "sbt", 0, 33, 4,
                              PortModel.ONE_PORT_FULL, faults=self.PLAN,
                              on_fault=on_fault)

    @pytest.mark.parametrize("k", [2, 4])
    def test_report_mode_matches_single_process(self, k):
        base = self._base("report")
        sh = _run(Hypercube(4), alg="sbt", M=33, pm=PortModel.ONE_PORT_FULL,
                  workers=k, faults=self.PLAN, on_fault="report")
        assert type(sh).__name__ == "DegradedResult"
        assert abs(sh.time - base.time) < 1e-9
        assert sh.holdings == base.holdings
        assert sh.undelivered == base.undelivered
        assert sh.transfers_lost == base.transfers_lost
        assert sh.fault_events == base.fault_events

    def test_raise_mode_reconstructs_fault_error(self):
        with pytest.raises(FaultError) as base_exc:
            self._base("raise")
        with pytest.raises(FaultError) as sh_exc:
            _run(Hypercube(4), alg="sbt", M=33, faults=self.PLAN,
                 on_fault="raise")
        assert sh_exc.value.edge == base_exc.value.edge
        assert str(sh_exc.value) == str(base_exc.value)

    def test_node_fault_report_mode(self):
        plan = FaultPlan(dead_nodes=[(6, 2.0)])
        base = run_collective(Hypercube(4), "scatter", "sbt", 0, 32, 4,
                              PortModel.ONE_PORT_HALF, faults=plan,
                              on_fault="report")
        sh = _run(Hypercube(4), op="scatter", alg="sbt", M=32,
                  pm=PortModel.ONE_PORT_HALF, workers=4, faults=plan,
                  on_fault="report")
        assert sh.holdings == base.holdings
        assert sh.undelivered == base.undelivered
        assert sh.fault_events == base.fault_events

    def test_repair_requires_single_process(self):
        with pytest.raises(ValueError, match="repair"):
            _run(Hypercube(4), faults=self.PLAN, on_fault="repair")


class TestValidationErrors:
    @pytest.mark.parametrize("workers", [3, 5, -1])
    def test_non_power_of_two_workers_rejected(self, workers):
        with pytest.raises(ValueError):
            run_collective(Hypercube(4), "broadcast", "sbt", 0, 8, 2,
                           PortModel.ONE_PORT_FULL, workers=workers)

    def test_workers_beyond_node_count_rejected(self):
        with pytest.raises(ValueError):
            run_collective(Hypercube(2), "broadcast", "sbt", 0, 4, 1,
                           PortModel.ONE_PORT_FULL, workers=8)

    def test_bad_start_method_rejected(self):
        with pytest.raises(ValueError, match="start_method"):
            _run(Hypercube(3), start_method="greenlet")
        assert "thread" in START_METHODS


class TestProtocolProperties:
    def test_lookahead_never_overruns_a_worker(self):
        """No round advances past any worker's announced horizon."""
        res = _run(Hypercube(5), alg="msbt", M=64, B=8, workers=4)
        stats = res.sharding
        assert stats is not None and stats.rounds == len(stats.reps)
        for rep, lives in zip(stats.reps, stats.horizons):
            alive = [t for t in lives if t is not None]
            assert alive, "a round ran with every worker quiescent"
            assert rep <= min(alive) + _EPS

    def test_reps_strictly_increase(self):
        res = _run(Hypercube(4), op="scatter", alg="bst", M=32, B=8)
        reps = res.sharding.reps
        assert all(b > a for a, b in zip(reps, reps[1:]))

    def test_aggregation_metrics_recorded(self):
        res = _run(Hypercube(5), alg="msbt", M=64, B=8, workers=4)
        stats = res.sharding
        assert stats.workers == 4 and stats.start_method == "thread"
        assert stats.cross_records > 0
        assert 0 < stats.cross_frames <= stats.cross_records
        assert stats.aggregation_ratio >= 1.0
        assert set(stats.stalls) <= set(range(4))

    @settings(max_examples=8, deadline=None)
    @given(
        data=st.data(),
        n=st.integers(3, 4),
        k_bits=st.integers(1, 2),
        M=st.integers(1, 40),
        pm=st.sampled_from(PMS),
    )
    def test_lookahead_property_random_points(self, data, n, k_bits, M, pm):
        op, alg = data.draw(st.sampled_from(RUNTIME_OPS))
        source = data.draw(st.integers(0, (1 << n) - 1))
        B = data.draw(st.integers(1, max(1, M)))
        res = _run(Hypercube(n), op=op, alg=alg, source=source, M=M, B=B,
                   pm=pm, workers=1 << k_bits)
        stats = res.sharding
        for rep, lives in zip(stats.reps, stats.horizons):
            alive = [t for t in lives if t is not None]
            assert rep <= min(alive) + _EPS


class TestTraces:
    def test_merged_trace_matches_single_process(self):
        base = run_collective(Hypercube(4), "broadcast", "msbt", 0, 17, 4,
                              PortModel.ONE_PORT_FULL, trace=True)
        sh = _run(Hypercube(4), workers=4, trace=True)
        key = lambda e: (e.time, e.src, e.dst, e.end, e.elems, e.chunks)
        assert sorted(map(key, sh.trace.transfers())) == sorted(
            map(key, base.trace.transfers())
        )
        # per-shard traces only contain that shard's sending nodes
        part_shift = 4 - 2
        for shard, tr in sh.shard_traces.items():
            assert all(e.src >> part_shift == shard for e in tr.transfers())
        merged = merge_shard_traces(sh.shard_traces)
        assert len(merged) == len(sh.trace)

    def test_trace_disabled_by_default(self):
        res = _run(Hypercube(3))
        assert res.trace is None and res.shard_traces is None


class TestCollectivesIntegration:
    def test_broadcast_api_threads_workers_through(self):
        from repro.collectives import broadcast

        base = broadcast(Hypercube(4), 0, "msbt", 33, 4, backend="runtime")
        sh = broadcast(Hypercube(4), 0, "msbt", 33, 4, backend="runtime",
                       workers=2, start_method="thread")
        assert abs(sh.async_.time - base.async_.time) < 1e-9
        assert sh.async_.holdings == base.async_.holdings
        assert sh.async_.sharding.workers == 2

    def test_scatter_api_threads_workers_through(self):
        from repro.collectives import scatter

        sh = scatter(Hypercube(3), 0, "bst", 16, 4, backend="runtime",
                     workers=2, start_method="thread")
        assert sh.async_.sharding.workers == 2

    def test_sim_backend_rejects_workers(self):
        from repro.collectives import broadcast, scatter

        with pytest.raises(ValueError, match="backend"):
            broadcast(Hypercube(3), 0, "sbt", 8, workers=2)
        with pytest.raises(ValueError, match="backend"):
            scatter(Hypercube(3), 0, "bst", 8, workers=2)


def test_run_sharded_direct_entry_point():
    from repro.runtime.rules import build_cluster_program

    cube = Hypercube(3)
    program = build_cluster_program(
        cube, "broadcast", "sbt", 0, 8, 2, PortModel.ONE_PORT_FULL
    )
    res = run_sharded(cube, program, workers=2, start_method="thread")
    base = run_collective(cube, "broadcast", "sbt", 0, 8, 2,
                          PortModel.ONE_PORT_FULL)
    assert abs(res.time - base.time) < 1e-9
    assert res.holdings == base.holdings
