"""Wire codec: unit coverage plus Hypothesis round-trip properties."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.runtime.aggregate import ShardAggregator
from repro.runtime.wire import (
    WireError,
    decode,
    decode_frame,
    encode,
    encode_frame,
)


class TestRoundTripUnit:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -1,
            2**100,
            -(2**100),
            0.0,
            -0.0,
            1.5,
            math.inf,
            "",
            "héllo",
            b"",
            b"\x00\xae\xff",
            (),
            (1, (2, "x")),
            [],
            [1, [2], {3: 4}],
            {},
            {"a": 1, 2: (3.0,)},
            frozenset(),
            frozenset({1, 2, 3}),
            {("b", 3), ("m", 5, 0)},
        ],
    )
    def test_round_trip(self, value):
        assert decode(encode(value)) == value

    def test_nan_round_trips(self):
        out = decode(encode(float("nan")))
        assert math.isnan(out)

    def test_types_survive(self):
        assert type(decode(encode((1, 2)))) is tuple
        assert type(decode(encode([1, 2]))) is list
        assert type(decode(encode(frozenset({1})))) is frozenset
        assert type(decode(encode({1}))) is set
        assert decode(encode(True)) is True
        assert type(decode(encode(1))) is int

    def test_set_encoding_is_canonical(self):
        # equal sets encode identically whatever the build order
        a = frozenset([("b", i) for i in range(20)])
        b = frozenset([("b", i) for i in reversed(range(20))])
        assert encode(a) == encode(b)

    def test_heterogeneous_set_falls_back_to_repr_order(self):
        v = frozenset({("b", 1), 7})
        assert decode(encode(v)) == v

    def test_rejects_unencodable(self):
        with pytest.raises(WireError):
            encode(object())

    def test_rejects_trailing_bytes(self):
        with pytest.raises(WireError):
            decode(encode(1) + b"\x00")

    def test_rejects_truncation(self):
        data = encode((1, "abc", 2.5))
        for cut in range(1, len(data)):
            with pytest.raises(WireError):
                decode(data[:cut])

    def test_rejects_unknown_tag(self):
        with pytest.raises(WireError):
            decode(b"\xf0")


class TestFrames:
    def test_frame_round_trip(self):
        data = encode_frame(3, 17, {"sends": [(0, 8, frozenset({("b", 1)}))]})
        kind, tick, payload = decode_frame(data)
        assert (kind, tick) == (3, 17)
        assert payload == {"sends": [(0, 8, frozenset({("b", 1)}))]}

    def test_bad_magic_rejected(self):
        with pytest.raises(WireError):
            decode_frame(b"\x00" + encode_frame(1, 0, None)[1:])
        with pytest.raises(WireError):
            decode_frame(b"")

    def test_frame_trailing_bytes_rejected(self):
        with pytest.raises(WireError):
            decode_frame(encode_frame(1, 0, None) + b"x")


# -- Hypothesis: arbitrary protocol payloads survive the trip ----------

chunk = st.one_of(
    st.tuples(st.just("b"), st.integers(0, 1 << 16)),
    st.tuples(st.just("m"), st.integers(0, 1 << 16), st.integers(0, 63)),
)
chunkset = st.frozensets(chunk, max_size=8)
times = st.one_of(
    st.floats(allow_nan=False, allow_infinity=False),
    st.integers(-(2**63), 2**63),
)
#: the shape the sharded protocol actually ships: cross-send records
send_record = st.tuples(
    st.integers(0, 4),                  # pass
    st.tuples(times, st.integers()),    # key
    st.integers(0, 1 << 14),            # src
    st.integers(0, 1 << 14),            # dst
    chunkset,                           # chunks
    st.integers(0, 1 << 20),            # elems
    times,                              # cost
    st.integers(0, 13),                 # port
)

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),
    st.floats(allow_nan=False),
    st.text(max_size=20),
    st.binary(max_size=20),
)
nested = st.recursive(
    scalars,
    lambda inner: st.one_of(
        st.lists(inner, max_size=5),
        st.tuples(inner, inner),
        st.dictionaries(st.text(max_size=5), inner, max_size=4),
    ),
    max_leaves=25,
)


class TestRoundTripProperties:
    @given(st.lists(send_record, max_size=12))
    def test_packet_batches_round_trip(self, batch):
        assert decode(encode(batch)) == batch

    @given(nested)
    def test_arbitrary_payloads_round_trip(self, value):
        assert decode(encode(value)) == value

    @given(st.integers(0, 255), st.integers(-1, 1 << 30), st.lists(send_record, max_size=6))
    def test_frames_round_trip(self, kind, tick, payload):
        assert decode_frame(encode_frame(kind, tick, payload)) == (
            kind, tick, payload,
        )

    @given(st.frozensets(chunk, max_size=10))
    def test_chunk_sets_encode_canonically(self, s):
        # rebuilding the set in a different insertion order must not
        # change the bytes — the protocol relies on this for dedup
        rebuilt = frozenset(sorted(s, key=repr, reverse=True))
        assert encode(s) == encode(rebuilt)


class TestShardAggregator:
    def test_one_frame_per_destination(self):
        agg = ShardAggregator()
        agg.add(1, ("x", 1))
        agg.add(2, ("y", 2))
        agg.add(1, ("z", 3))
        assert agg.pending == 3
        frames = agg.flush(kind=3, tick=7)
        assert sorted(frames) == [1, 2]
        assert decode_frame(frames[1]) == (3, 7, [("x", 1), ("z", 3)])
        assert decode_frame(frames[2]) == (3, 7, [("y", 2)])
        assert agg.pending == 0
        assert agg.records == 3 and agg.frames == 2

    def test_aggregation_ratio(self):
        agg = ShardAggregator()
        assert agg.aggregation_ratio == 0.0
        agg.extend(0, [1, 2, 3, 4])
        agg.flush(1, 0)
        assert agg.aggregation_ratio == 4.0

    def test_empty_flush_emits_nothing(self):
        agg = ShardAggregator()
        assert agg.flush(1, 0) == {}
        agg.extend(3, [])
        assert agg.flush(1, 0) == {}
        assert agg.frames == 0
