"""End-to-end execution on the virtual cluster: delivery, determinism,
result shape, tracing, and failure surfaces."""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.runtime import (
    RuntimeResult,
    VirtualCluster,
    build_cluster_program,
    run_collective,
)
from repro.sim.faults import FaultError, FaultPlan
from repro.sim.machine import MachineParams
from repro.sim.ports import PortModel
from repro.topology import Hypercube

PMS = tuple(PortModel)


class TestDelivery:
    @pytest.mark.parametrize("pm", PMS)
    @pytest.mark.parametrize("algorithm", ["sbt", "msbt"])
    def test_broadcast_reaches_every_node(self, algorithm, pm):
        cube = Hypercube(4)
        res = run_collective(cube, "broadcast", algorithm, 3, 17, 4, pm)
        chunks = set(res.holdings[3])
        assert len(chunks) == 5  # ceil(17/4)
        for v in cube.nodes():
            assert res.holdings[v] == chunks, f"node {v} incomplete"
        assert res.time > 0
        assert res.fault_events == []
        assert res.repair_rounds == 0

    @pytest.mark.parametrize("pm", PMS)
    @pytest.mark.parametrize("algorithm", ["sbt", "bst"])
    def test_scatter_delivers_each_slice(self, algorithm, pm):
        cube = Hypercube(3)
        res = run_collective(cube, "scatter", algorithm, 1, 19, 4, pm)
        # every destination ends up holding its whole slice (relay
        # nodes also keep copies of what they forwarded, as in the
        # engine's holdings semantics)
        all_chunks = set(res.holdings[1])
        for v in cube.nodes():
            if v == 1:
                continue
            slice_v = {c for c in all_chunks if c[1] == v}
            assert slice_v, f"scatter produced no chunks for node {v}"
            assert slice_v <= res.holdings[v], f"node {v} missing its slice"

    def test_smallest_cube_single_hop(self):
        cube = Hypercube(1)
        res = run_collective(
            cube, "broadcast", "sbt", 0, 4, 4, PortModel.ONE_PORT_HALF
        )
        assert res.transfers_executed == 1
        assert res.holdings[1] == res.holdings[0]


class TestResultShape:
    def test_duck_types_async_result(self):
        cube = Hypercube(3)
        res = run_collective(
            cube, "broadcast", "sbt", 0, 8, 2, PortModel.ONE_PORT_FULL
        )
        assert isinstance(res, RuntimeResult)
        assert res.transfers_executed == len(res.start_times)
        assert res.start_times == sorted(res.start_times)
        assert set(res.holdings) == set(cube.nodes())

    def test_per_node_stats_merge_to_link_stats(self):
        cube = Hypercube(4)
        res = run_collective(
            cube, "broadcast", "msbt", 0, 12, 3, PortModel.ALL_PORT
        )
        total_elems: dict = {}
        total_packets: dict = {}
        for stats in res.per_node_stats.values():
            for edge, n in stats.elems.items():
                total_elems[edge] = total_elems.get(edge, 0) + n
            for edge, n in stats.packets.items():
                total_packets[edge] = total_packets.get(edge, 0) + n
        assert dict(res.link_stats.elems) == total_elems
        assert dict(res.link_stats.packets) == total_packets
        # each actor only ever records its own outgoing edges
        for node, stats in res.per_node_stats.items():
            assert all(edge.src == node for edge in stats.elems)

    def test_determinism_across_runs(self):
        cube = Hypercube(4)
        args = (cube, "scatter", "sbt", 5, 23, 4, PortModel.ONE_PORT_HALF)
        a = run_collective(*args, trace=True)
        b = run_collective(*args, trace=True)
        assert a.time == b.time
        assert a.start_times == b.start_times
        assert a.holdings == b.holdings
        assert list(a.trace) == list(b.trace)


class TestTracing:
    def test_trace_records_every_transfer(self, tmp_path):
        cube = Hypercube(3)
        res = run_collective(
            cube, "broadcast", "sbt", 0, 10, 4,
            PortModel.ONE_PORT_FULL, trace=True,
        )
        transfers = res.trace.transfers()
        assert len(transfers) == res.transfers_executed
        assert sorted(e.time for e in transfers) == res.start_times
        for e in transfers:
            assert e.end > e.time
            assert cube.port_towards(e.src, e.dst) == e.port

    def test_jsonl_and_chrome_exports(self, tmp_path):
        cube = Hypercube(3)
        res = run_collective(
            cube, "broadcast", "sbt", 0, 6, 2,
            PortModel.ALL_PORT, trace=True,
        )
        jl = tmp_path / "trace.jsonl"
        res.trace.write_jsonl(jl)
        lines = jl.read_text().strip().splitlines()
        assert len(lines) == len(res.trace)
        for line in lines:
            rec = json.loads(line)
            assert rec["kind"] == "transfer"
            assert rec["end"] > rec["time"]
        ch = tmp_path / "trace.json"
        res.trace.write_chrome(ch)
        doc = json.loads(ch.read_text())
        evs = doc["traceEvents"]
        assert len(evs) == len(res.trace)
        assert all(e["ph"] == "X" and e["dur"] > 0 for e in evs)

    def test_trace_off_by_default(self):
        cube = Hypercube(2)
        res = run_collective(
            cube, "broadcast", "sbt", 0, 2, 2, PortModel.ONE_PORT_HALF
        )
        assert res.trace is None


class TestMachines:
    def test_machine_params_scale_time(self):
        cube = Hypercube(3)
        unit = run_collective(
            cube, "broadcast", "sbt", 0, 4, 4, PortModel.ONE_PORT_HALF
        )
        slow = run_collective(
            cube, "broadcast", "sbt", 0, 4, 4, PortModel.ONE_PORT_HALF,
            machine=MachineParams(tau=3.0, t_c=2.0),
        )
        assert slow.time > unit.time
        assert slow.transfers_executed == unit.transfers_executed


class TestFailureSurfaces:
    def test_deadlocked_program_raises(self):
        cube = Hypercube(3)
        program = build_cluster_program(
            cube, "broadcast", "sbt", 0, 4, 4, PortModel.ONE_PORT_HALF
        )
        # sabotage: drop the source's first send; its subtree starves
        src_prog = program.programs[0]
        program.programs[0] = replace(src_prog, sends=src_prog.sends[1:])
        with pytest.raises(RuntimeError, match="starved"):
            VirtualCluster(cube, program).run()

    def test_fault_with_raise_mode_raises(self):
        cube = Hypercube(3)
        with pytest.raises(FaultError, match="dead"):
            run_collective(
                cube, "broadcast", "sbt", 0, 4, 4,
                PortModel.ONE_PORT_HALF,
                faults=FaultPlan(dead_links=[(0, 1)]),
                on_fault="raise",
            )

    def test_bad_fault_mode_rejected(self):
        cube = Hypercube(2)
        with pytest.raises(ValueError, match="on_fault"):
            run_collective(
                cube, "broadcast", "sbt", 0, 2, 2,
                PortModel.ONE_PORT_HALF, on_fault="ignore",
            )
