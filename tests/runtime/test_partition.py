"""Subcube partition-map arithmetic."""

import pytest

from repro.runtime.partition import PartitionMap, resolve_workers


class TestPartitionMap:
    def test_shards_tile_the_cube(self):
        part = PartitionMap(4, 4)
        seen = []
        for w in range(4):
            seen.extend(part.nodes_of(w))
        assert seen == list(range(16))
        for w in range(4):
            for v in part.nodes_of(w):
                assert part.shard_of(v) == w

    def test_single_worker_owns_everything(self):
        part = PartitionMap(3, 1)
        assert list(part.nodes_of(0)) == list(range(8))
        assert not any(
            part.is_cross(u, u ^ (1 << j)) for u in range(8) for j in range(3)
        )

    def test_one_node_per_shard(self):
        part = PartitionMap(2, 4)
        assert [list(part.nodes_of(w)) for w in range(4)] == [[0], [1], [2], [3]]
        assert all(part.is_cross(u, u ^ (1 << j)) for u in range(4) for j in range(2))

    def test_cross_links_are_exactly_the_high_dims(self):
        part = PartitionMap(4, 2)
        assert list(part.cross_dims()) == [3]
        for u in range(16):
            for j in range(4):
                v = u ^ (1 << j)
                assert part.is_cross(u, v) == (j >= 3)

    def test_cross_links_enumeration(self):
        part = PartitionMap(3, 4)
        links = set(part.cross_links())
        assert links == {
            (u, u ^ (1 << j)) for u in range(8) for j in (1, 2)
        }
        # each node has exactly shard_bits cross neighbors
        assert len(links) == 8 * part.shard_bits

    def test_shard_graph_is_a_cube(self):
        # cross link u -> u^(1<<j) connects shard w to shard w ^ (1 << (j-shift))
        part = PartitionMap(5, 8)
        for u, v in part.cross_links():
            w, x = part.shard_of(u), part.shard_of(v)
            assert (w ^ x).bit_count() == 1

    @pytest.mark.parametrize("workers", [0, 3, 5, 6, -2])
    def test_rejects_non_power_of_two(self, workers):
        with pytest.raises(ValueError):
            PartitionMap(4, workers)

    def test_rejects_more_workers_than_nodes(self):
        with pytest.raises(ValueError):
            PartitionMap(2, 8)

    def test_rejects_out_of_range_shard(self):
        with pytest.raises(ValueError):
            PartitionMap(3, 2).nodes_of(2)


class TestResolveWorkers:
    def test_none_means_single_process(self):
        assert resolve_workers(8, None) == 1

    def test_explicit_value_validated(self):
        assert resolve_workers(4, 4) == 4
        with pytest.raises(ValueError):
            resolve_workers(4, 3)
        with pytest.raises(ValueError):
            resolve_workers(2, 8)

    def test_zero_auto_sizes_to_machine(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 6)
        assert resolve_workers(8, 0) == 4  # largest power of two <= 6
        monkeypatch.setattr("os.cpu_count", lambda: 1)
        assert resolve_workers(8, 0) == 1

    def test_zero_caps_at_node_count(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 64)
        assert resolve_workers(2, 0) == 4
