"""Fault injection on the runtime: report-mode degradation and the
repair-mode survivor-tree recovery (the paper's degraded operation)."""

from __future__ import annotations

import pytest

from repro.runtime import RuntimeResult, run_collective
from repro.sim.faults import DegradedResult, FaultPlan
from repro.sim.ports import PortModel
from repro.topology import Hypercube

PMS = tuple(PortModel)


def _full_message(res, source):
    return set(res.holdings[source])


class TestReportMode:
    def test_dead_link_degrades_honestly(self):
        cube = Hypercube(4)
        res = run_collective(
            cube, "broadcast", "sbt", 0, 8, 4,
            PortModel.ONE_PORT_HALF,
            faults=FaultPlan(dead_links=[(0, 8)]),
            on_fault="report",
        )
        assert isinstance(res, DegradedResult)
        assert not res.complete
        assert res.fault_events
        assert all(e.kind == "link" for e in res.fault_events)
        # every node the tree reaches through the dead edge is reported
        assert res.undelivered_nodes
        for node in res.undelivered_nodes:
            missing = res.undelivered[node]
            assert missing
            assert not (set(missing) & res.holdings[node])

    def test_clean_plan_stays_healthy(self):
        cube = Hypercube(3)
        res = run_collective(
            cube, "broadcast", "sbt", 0, 4, 2,
            PortModel.ONE_PORT_FULL,
            # link not on the SBT from source 0
            faults=FaultPlan(dead_links=[(4, 6)]),
            on_fault="report",
        )
        assert isinstance(res, RuntimeResult)
        assert res.fault_events == []
        chunks = _full_message(res, 0)
        assert all(res.holdings[v] == chunks for v in cube.nodes())


class TestRepairMode:
    @pytest.mark.parametrize("pm", PMS)
    @pytest.mark.parametrize("algorithm", ["sbt", "msbt"])
    def test_dead_link_broadcast_still_delivers_everywhere(
        self, algorithm, pm
    ):
        cube = Hypercube(4)
        res = run_collective(
            cube, "broadcast", algorithm, 0, 8, 4, pm,
            faults=FaultPlan(dead_links=[(0, 1)]),
            on_fault="repair",
            trace=True,
        )
        assert isinstance(res, RuntimeResult)
        assert res.fault_events  # the fault really fired
        assert res.repair_rounds >= 1
        chunks = _full_message(res, 0)
        for v in cube.nodes():
            assert res.holdings[v] == chunks, f"node {v} incomplete"
        # repair took longer than a clean run would have
        kinds = {e.kind for e in res.trace}
        assert "timeout" in kinds and "fault" in kinds

    def test_dead_node_delivers_to_all_live_nodes(self):
        cube = Hypercube(4)
        dead = 5
        res = run_collective(
            cube, "broadcast", "sbt", 0, 12, 4,
            PortModel.ONE_PORT_FULL,
            faults=FaultPlan(dead_nodes=[dead]),
            on_fault="repair",
        )
        # the dead node can never be repaired, so the result is
        # degraded — but every *live* node must hold the full message
        assert isinstance(res, DegradedResult)
        chunks = _full_message(res, 0)
        for v in cube.nodes():
            if v == dead:
                continue
            assert res.holdings[v] == chunks, f"live node {v} incomplete"
        assert res.undelivered_nodes == (dead,)

    def test_mid_schedule_link_death(self):
        cube = Hypercube(3)
        # the 0->4 edge dies after the first packet crosses it
        res = run_collective(
            cube, "broadcast", "sbt", 0, 8, 2,
            PortModel.ONE_PORT_HALF,
            faults=FaultPlan(dead_links=[(0, 4, 1.5)]),
            on_fault="repair",
        )
        assert isinstance(res, RuntimeResult)
        assert res.repair_rounds >= 1
        chunks = _full_message(res, 0)
        assert all(res.holdings[v] == chunks for v in cube.nodes())

    def test_multiple_dead_links(self):
        cube = Hypercube(4)
        res = run_collective(
            cube, "broadcast", "sbt", 0, 8, 4,
            PortModel.ONE_PORT_FULL,
            faults=FaultPlan(dead_links=[(0, 1), (0, 2), (4, 5)]),
            on_fault="repair",
        )
        assert isinstance(res, RuntimeResult)
        chunks = _full_message(res, 0)
        assert all(res.holdings[v] == chunks for v in cube.nodes())

    def test_scatter_repair(self):
        cube = Hypercube(3)
        res = run_collective(
            cube, "scatter", "sbt", 0, 16, 4,
            PortModel.ONE_PORT_FULL,
            faults=FaultPlan(dead_links=[(0, 4)]),
            on_fault="repair",
        )
        assert isinstance(res, RuntimeResult)
        for v in cube.nodes():
            if v == 0:
                continue
            assert {c for c in res.holdings[v] if c[1] == v}, (
                f"node {v} missing its slice"
            )

    def test_repair_time_accounts_for_timeouts(self):
        cube = Hypercube(3)
        clean = run_collective(
            cube, "broadcast", "sbt", 0, 4, 4, PortModel.ONE_PORT_HALF
        )
        repaired = run_collective(
            cube, "broadcast", "sbt", 0, 4, 4, PortModel.ONE_PORT_HALF,
            faults=FaultPlan(dead_links=[(0, 1)]),
            on_fault="repair",
            detect_timeout=10.0,
        )
        assert repaired.time > clean.time + 10.0
