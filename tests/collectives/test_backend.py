"""The ``backend="runtime"`` switch on the collective API."""

from __future__ import annotations

import pytest

from repro.collectives import BACKENDS, broadcast, scatter
from repro.runtime import RuntimeResult
from repro.sim.faults import FaultPlan
from repro.sim.ports import PortModel
from repro.topology import Hypercube


class TestRuntimeBackend:
    def test_backends_constant(self):
        assert BACKENDS == ("sim", "runtime")

    @pytest.mark.parametrize("pm", list(PortModel))
    @pytest.mark.parametrize("algorithm", ["sbt", "msbt"])
    def test_broadcast_times_match_event_engine(self, cube4, algorithm, pm):
        sim = broadcast(
            cube4, 0, algorithm, 17, 4, pm, run_event_sim=True
        )
        rt = broadcast(cube4, 0, algorithm, 17, 4, pm, backend="runtime")
        assert isinstance(rt.async_, RuntimeResult)
        assert rt.time == sim.time
        assert rt.cycles == sim.cycles
        assert rt.async_.holdings == sim.async_.holdings

    @pytest.mark.parametrize("algorithm", ["sbt", "bst"])
    def test_scatter_times_match_event_engine(self, cube4, algorithm):
        pm = PortModel.ONE_PORT_FULL
        sim = scatter(cube4, 3, algorithm, 9, 4, pm, run_event_sim=True)
        rt = scatter(cube4, 3, algorithm, 9, 4, pm, backend="runtime")
        assert rt.time == sim.time
        assert rt.async_.holdings == sim.async_.holdings

    def test_trace_lands_on_result(self, cube4):
        rt = broadcast(
            cube4, 0, "sbt", 8, 4, backend="runtime", trace=True
        )
        assert rt.async_.trace is not None
        assert len(rt.async_.trace.transfers()) == rt.async_.transfers_executed

    def test_repair_mode_completes_under_faults(self, cube4):
        rt = broadcast(
            cube4, 0, "sbt", 8, 4,
            backend="runtime",
            faults=FaultPlan(dead_links=[(0, 1)]),
            on_fault="repair",
        )
        assert isinstance(rt.async_, RuntimeResult)
        assert rt.async_.repair_rounds >= 1
        assert rt.undelivered_nodes == frozenset()
        want = set(rt.schedule.chunk_sizes)
        assert all(
            rt.async_.holdings[v] == want for v in cube4.nodes()
        )

    def test_unsupported_algorithm_rejected(self, cube4):
        with pytest.raises(ValueError, match="runtime backend"):
            broadcast(cube4, 0, "tcbt", 4, 2, backend="runtime")
        with pytest.raises(ValueError, match="runtime backend"):
            scatter(cube4, 0, "tcbt", 4, 2, backend="runtime")

    def test_unknown_backend_rejected(self, cube4):
        with pytest.raises(ValueError, match="backend"):
            broadcast(cube4, 0, "sbt", 4, 2, backend="mpi")
        with pytest.raises(ValueError, match="backend"):
            scatter(cube4, 0, "sbt", 4, 2, backend="mpi")
