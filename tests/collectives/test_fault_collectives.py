"""Fault plumbing of the high-level collectives (broadcast/scatter).

The collectives must (a) route around a FaultPlan, (b) run the engines
*under* that plan as proof the schedule avoids every fault, (c) raise a
structured FaultError when faults disconnect live nodes and raising was
requested, and (d) in report mode serve the surviving component and
name everyone else.
"""

from __future__ import annotations

import pytest

from repro.collectives import broadcast, scatter
from repro.routing.common import MSG
from repro.sim import FaultError, FaultPlan, PortModel
from repro.topology import Hypercube

CUBE = Hypercube(4)
N = CUBE.dimension


def _isolating(victim: int, n: int) -> FaultPlan:
    return FaultPlan(
        dead_links=[(victim, victim ^ (1 << d)) for d in range(n)]
    )


class TestBroadcastFaults:
    @pytest.mark.parametrize("port_model", list(PortModel), ids=lambda p: p.value)
    def test_msbt_keeps_pipelining_on_link_faults(self, port_model):
        plan = FaultPlan(dead_links=[(0, 1), (2, 6), (8, 12)])
        result = broadcast(
            CUBE, 0, "msbt", 4 * N, 4, port_model, faults=plan,
            run_event_sim=True,
        )
        assert result.algorithm == "msbt-broadcast-degraded"
        assert result.faults == plan
        assert not result.degraded and not result.undelivered_nodes
        want = set(result.schedule.chunk_sizes)
        for v in CUBE.nodes():
            assert result.sync.holdings[v] >= want
            assert result.async_.holdings[v] >= want

    def test_dead_node_falls_back_to_survivor_tree(self):
        plan = FaultPlan(dead_links=[(0, 1)], dead_nodes=[6])
        result = broadcast(CUBE, 0, "msbt", 8, 4, faults=plan)
        assert result.algorithm == "survivortree-broadcast"
        assert result.undelivered_nodes == frozenset({6})
        assert result.degraded
        want = set(result.schedule.chunk_sizes)
        for v in CUBE.nodes():
            if v != 6:
                assert result.sync.holdings[v] >= want

    @pytest.mark.parametrize("algorithm", ["sbt", "tcbt", "hp"])
    def test_other_algorithms_fall_back(self, algorithm):
        plan = FaultPlan(dead_links=[(0, 1)])
        result = broadcast(CUBE, 0, algorithm, 4, 2, faults=plan)
        assert result.algorithm == "survivortree-broadcast"
        assert plan.schedule_is_clean(result.schedule)
        assert not result.undelivered_nodes

    def test_disconnection_raises_by_default(self):
        with pytest.raises(FaultError) as excinfo:
            broadcast(CUBE, 0, "msbt", 4, 2, faults=_isolating(9, N))
        assert 9 in excinfo.value.undelivered

    def test_disconnection_reported_on_request(self):
        result = broadcast(
            CUBE, 0, "msbt", 4, 2, faults=_isolating(9, N), on_fault="report"
        )
        assert result.undelivered_nodes == frozenset({9})
        want = set(result.schedule.chunk_sizes)
        for v in CUBE.nodes():
            if v != 9:
                assert result.sync.holdings[v] >= want

    def test_dead_source_raises(self):
        with pytest.raises(FaultError) as excinfo:
            broadcast(CUBE, 6, "msbt", 4, 2, faults=FaultPlan(dead_nodes=[6]))
        assert excinfo.value.node == 6

    def test_unknown_algorithm_still_rejected_with_faults(self):
        with pytest.raises(ValueError, match="unknown broadcast algorithm"):
            broadcast(CUBE, 0, "nope", 4, 2, faults=FaultPlan(dead_nodes=[1]))

    def test_bad_on_fault_mode_rejected(self):
        with pytest.raises(ValueError, match="on_fault"):
            broadcast(
                CUBE, 0, "msbt", 4, 2,
                faults=FaultPlan(dead_links=[(0, 1)]), on_fault="maybe",
            )

    def test_fault_free_result_unaffected_after_faulted_calls(self):
        plan = FaultPlan(dead_links=[(0, 2)])
        broadcast(CUBE, 0, "msbt", 8, 4, faults=plan)
        clean = broadcast(CUBE, 0, "msbt", 8, 4)
        assert clean.algorithm == "msbt-broadcast"
        assert clean.faults is None and not clean.degraded
        # the clean schedule is free to use the previously-dead link
        assert not plan.schedule_is_clean(clean.schedule)


class TestScatterFaults:
    @pytest.mark.parametrize("port_model", list(PortModel), ids=lambda p: p.value)
    def test_scatter_routes_around_links(self, port_model):
        plan = FaultPlan(dead_links=[(0, 1), (4, 12)])
        result = scatter(
            CUBE, 0, "bst", 4, 2, port_model, faults=plan, run_event_sim=True
        )
        assert result.algorithm == "fault-avoiding-scatter"
        assert plan.schedule_is_clean(result.schedule)
        assert not result.undelivered_nodes
        for v in CUBE.nodes():
            if v == 0:
                continue
            mine = {
                c for c in result.schedule.chunk_sizes
                if c[0] == MSG and c[1] == v
            }
            assert mine and result.sync.holdings[v] >= mine

    def test_dead_destination_reported(self):
        plan = FaultPlan(dead_nodes=[11])
        result = scatter(CUBE, 0, "bst", 2, 2, faults=plan, on_fault="report")
        assert result.undelivered_nodes == frozenset({11})
        # no message chunk was even cut for the dead node
        assert not any(
            c[0] == MSG and c[1] == 11 for c in result.schedule.chunk_sizes
        )

    def test_scatter_disconnection_raises(self):
        with pytest.raises(FaultError):
            scatter(CUBE, 0, "bst", 2, 2, faults=_isolating(5, N))
