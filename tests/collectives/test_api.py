"""Tests for the high-level collective API."""

import pytest

from repro.collectives import (
    allgather,
    alltoall_personalized,
    broadcast,
    gather,
    reduce,
    scatter,
)
from repro.sim import IPSC_D7, PortModel
from repro.topology import Hypercube


class TestBroadcast:
    @pytest.mark.parametrize("algo", ["sbt", "msbt", "tcbt", "hp"])
    @pytest.mark.parametrize("pm", list(PortModel))
    def test_all_algorithms_all_models(self, cube4, algo, pm):
        res = broadcast(cube4, 3, algo, 16, 4, pm)
        assert res.cycles > 0
        assert res.algorithm.endswith("broadcast")

    def test_default_packet_is_whole_message(self, cube4):
        res = broadcast(cube4, 0, "sbt", message_elems=32)
        assert res.schedule.max_transfer_elems() == 32

    def test_unknown_algorithm_rejected(self, cube4):
        with pytest.raises(ValueError, match="unknown broadcast"):
            broadcast(cube4, 0, "bogus")

    def test_event_sim_populates_time(self, cube4):
        res = broadcast(cube4, 0, "msbt", 16, 4, run_event_sim=True)
        assert res.async_ is not None
        assert res.time == res.async_.time

    def test_sync_time_used_without_event_sim(self, cube4):
        res = broadcast(cube4, 0, "msbt", 16, 4)
        assert res.async_ is None
        assert res.time == res.sync.time

    def test_machine_parameters_flow_through(self, cube4):
        res = broadcast(
            cube4, 0, "sbt", 2048, 2048,
            machine=IPSC_D7, run_event_sim=True,
        )
        # 4 sequential hops of ceil(2048/1024) startups + 2048 tc
        per_hop = 2 * IPSC_D7.tau + 2048 * IPSC_D7.t_c
        assert res.time == pytest.approx(4 * per_hop, rel=0.25)


class TestScatter:
    @pytest.mark.parametrize("algo", ["sbt", "bst", "tcbt"])
    @pytest.mark.parametrize("pm", list(PortModel))
    def test_all_algorithms_all_models(self, cube4, algo, pm):
        res = scatter(cube4, 5, algo, 4, 8, pm)
        assert res.cycles > 0

    def test_unknown_algorithm_rejected(self, cube4):
        with pytest.raises(ValueError, match="unknown scatter"):
            scatter(cube4, 0, "bogus")

    def test_subtree_order_flag(self, cube4):
        r1 = scatter(cube4, 0, "bst", 2, 4, subtree_order="depth_first")
        r2 = scatter(cube4, 0, "bst", 2, 4, subtree_order="reversed_breadth_first")
        assert r1.schedule.meta["subtree_order"] == "depth_first"
        assert r2.schedule.meta["subtree_order"] == "reversed_breadth_first"


class TestReverseOps:
    @pytest.mark.parametrize("algo", ["sbt", "bst"])
    def test_gather(self, cube4, algo):
        res = gather(cube4, 7, algo, 4, 16)
        assert res.cycles > 0

    @pytest.mark.parametrize("pm", list(PortModel))
    def test_reduce(self, cube4, pm):
        res = reduce(cube4, 7, 8, 4, pm)
        assert res.cycles > 0


class TestAllToAll:
    @pytest.mark.parametrize("pm", list(PortModel))
    def test_allgather(self, cube4, pm):
        res = allgather(cube4, 4, pm)
        assert res.cycles in (4, 8)

    @pytest.mark.parametrize("pm", list(PortModel))
    def test_alltoall(self, cube4, pm):
        res = alltoall_personalized(cube4, 2, pm)
        assert res.cycles in (4, 8)


class TestResultObject:
    def test_link_stats_and_repr(self, cube4):
        res = broadcast(cube4, 0, "sbt", 8, 8)
        assert res.link_stats.total_elems() > 0
        assert "sbt-broadcast" in repr(res)

    def test_top_level_reexports(self):
        import repro

        assert repro.broadcast is broadcast
        assert repro.PortModel is PortModel
