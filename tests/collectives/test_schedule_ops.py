"""Schedule-level tests for collective_schedule / check_delivery.

Exercises the gather and reduce schedule ops directly — build the
schedule, run the lock-step engine, audit delivery with
``check_delivery`` — plus the delivery auditor's negative paths
(tampered holdings must be reported, not silently passed).
"""

from __future__ import annotations

import pytest

from repro.collectives import (
    SCHEDULE_OPS,
    check_delivery,
    collective_schedule,
    default_algorithm,
)
from repro.collectives.api import DEFAULT_ALGORITHMS
from repro.sim.ports import PortModel
from repro.sim.synchronous import run_synchronous
from repro.topology import Hypercube, Torus

TOPOLOGIES = [
    pytest.param(Hypercube(3), id="hypercube-3"),
    pytest.param(Torus(2, 3), id="torus-2x3"),
]


@pytest.mark.parametrize("pm", list(PortModel))
@pytest.mark.parametrize("topo", TOPOLOGIES)
class TestGatherScheduleOp:
    def test_complete_delivery(self, topo, pm):
        root = 1
        sched, initial = collective_schedule(
            topo, "gather", source=root, message_elems=4, packet_elems=2,
            port_model=pm,
        )
        res = run_synchronous(topo, sched, pm, initial)
        assert check_delivery(topo, "gather", root, sched, res.holdings) == {}
        # the root really holds every node's message
        assert res.holdings[root] >= set(sched.chunk_sizes)

    def test_tampered_root_reported(self, topo, pm):
        root = 1
        sched, initial = collective_schedule(
            topo, "gather", source=root, message_elems=4, packet_elems=2,
            port_model=pm,
        )
        res = run_synchronous(topo, sched, pm, initial)
        broken = dict(res.holdings)
        dropped = next(iter(broken[root]))
        broken[root] = broken[root] - {dropped}
        missing = check_delivery(topo, "gather", root, sched, broken)
        assert missing == {root: {dropped}}

    def test_non_root_nodes_have_no_obligation(self, topo, pm):
        root = 1
        sched, initial = collective_schedule(
            topo, "gather", source=root, message_elems=2, port_model=pm,
        )
        res = run_synchronous(topo, sched, pm, initial)
        empty_elsewhere = {root: res.holdings[root]}
        assert check_delivery(
            topo, "gather", root, sched, empty_elsewhere
        ) == {}


@pytest.mark.parametrize("pm", list(PortModel))
@pytest.mark.parametrize("topo", TOPOLOGIES)
class TestReduceScheduleOp:
    def test_complete_delivery(self, topo, pm):
        root = 2
        sched, initial = collective_schedule(
            topo, "reduce", source=root, message_elems=4, packet_elems=2,
            port_model=pm,
        )
        res = run_synchronous(topo, sched, pm, initial)
        assert check_delivery(topo, "reduce", root, sched, res.holdings) == {}

    def test_root_obligation_includes_child_partials(self, topo, pm):
        """The root must hold its own operand plus the partial each
        tree child sends in; dropping an incoming partial is caught."""
        root = 2
        sched, initial = collective_schedule(
            topo, "reduce", source=root, message_elems=4, packet_elems=2,
            port_model=pm,
        )
        res = run_synchronous(topo, sched, pm, initial)
        incoming = set()
        for r in sched.rounds:
            for t in r:
                if t.dst == root:
                    incoming.update(t.chunks)
        assert incoming, "reduce schedule has no transfers into the root"
        broken = dict(res.holdings)
        dropped = next(iter(incoming))
        broken[root] = broken[root] - {dropped}
        missing = check_delivery(topo, "reduce", root, sched, broken)
        assert missing == {root: {dropped}}

    def test_sbt_equivalent_owner_formula(self, topo, pm):
        """On the hypercube SBT the generalized obligation reduces to
        the classic owners formula: root plus ``root ^ 2**j``."""
        if not isinstance(topo, Hypercube):
            pytest.skip("owner formula is hypercube-specific")
        root = 2
        sched, _ = collective_schedule(
            topo, "reduce", source=root, message_elems=4, packet_elems=2,
            port_model=pm,
        )
        owners = {root} | {root ^ (1 << j) for j in range(topo.dimension)}
        want_old = {c for c in sched.chunk_sizes if c[1] in owners}
        want_new = {c for c in sched.chunk_sizes if c[1] == root}
        for r in sched.rounds:
            for t in r:
                if t.dst == root:
                    want_new.update(t.chunks)
        assert want_new == want_old


class TestScheduleOpSurface:
    def test_all_broadcast_registered(self):
        assert "all_broadcast" in SCHEDULE_OPS
        assert DEFAULT_ALGORITHMS["all_broadcast"] == "dimension-exchange"

    def test_default_algorithm_per_topology(self):
        assert default_algorithm(Hypercube(3), "broadcast") == "msbt"
        assert default_algorithm(Hypercube(3), "reduce") == "sbt"
        assert default_algorithm(Torus(2, 3), "broadcast") == "ring"
        assert default_algorithm(Torus(2, 3), "reduce") == "ring"
        assert default_algorithm(Torus(2, 3), "all_broadcast") == "ring"

    def test_torus_has_no_alltoall(self):
        with pytest.raises(ValueError):
            default_algorithm(Torus(2, 3), "alltoall")

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            collective_schedule(Hypercube(3), "bogus")

    def test_reduce_rejects_unknown_algorithm(self):
        with pytest.raises(ValueError):
            collective_schedule(Hypercube(3), "reduce", algorithm="msbt")
