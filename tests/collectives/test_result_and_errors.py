"""Collective API error paths and CollectiveResult behaviour."""

import pytest

from repro.collectives import allreduce, broadcast, scatter
from repro.collectives.result import CollectiveResult
from repro.sim import PortModel
from repro.topology import Hypercube


class TestErrorPaths:
    def test_bad_source_rejected(self, cube4):
        with pytest.raises(ValueError):
            broadcast(cube4, 99, "sbt", 4, 4)
        with pytest.raises(ValueError):
            scatter(cube4, -1, "bst", 4, 4)

    def test_bad_message_sizes_rejected(self, cube4):
        with pytest.raises(ValueError):
            broadcast(cube4, 0, "sbt", 0)
        with pytest.raises(ValueError):
            scatter(cube4, 0, "bst", 4, 0)

    def test_bad_subtree_order_rejected(self, cube4):
        with pytest.raises(ValueError, match="subtree order"):
            scatter(cube4, 0, "bst", 4, 4, subtree_order="sideways")

    def test_bad_sbt_order_rejected(self, cube4):
        from repro.routing import sbt_broadcast_schedule

        with pytest.raises(ValueError, match="SBT order"):
            sbt_broadcast_schedule(cube4, 0, 4, 4, PortModel.ALL_PORT, order="zigzag")

    def test_bad_alltoall_algorithm_rejected(self, cube4):
        from repro.collectives import alltoall_personalized

        with pytest.raises(ValueError, match="total-exchange"):
            alltoall_personalized(cube4, 1, algorithm="bogus")


class TestAllreduce:
    def test_two_phases_returned(self, cube4):
        p1, p2 = allreduce(cube4, 8, 4)
        assert isinstance(p1, CollectiveResult)
        assert isinstance(p2, CollectiveResult)
        assert p1.algorithm == "sbt-reduce"
        assert "broadcast" in p2.algorithm

    def test_total_time_is_sum(self, cube4):
        p1, p2 = allreduce(cube4, 8, 4)
        assert p1.time + p2.time > 0

    def test_broadcast_algorithm_choice(self, cube4):
        _, p2 = allreduce(cube4, 8, 4, broadcast_algorithm="msbt")
        assert p2.algorithm == "msbt-broadcast"


class TestResultProperties:
    def test_cycles_and_time_delegation(self, cube4):
        res = broadcast(cube4, 0, "msbt", 16, 4)
        assert res.cycles == res.sync.cycles
        assert res.time == res.sync.time
        res2 = broadcast(cube4, 0, "msbt", 16, 4, run_event_sim=True)
        assert res2.time == res2.async_.time

    def test_schedule_meta_preserved(self, cube4):
        res = scatter(cube4, 3, "bst", 2, 8, PortModel.ALL_PORT)
        assert res.schedule.meta["source"] == 3
        assert res.schedule.meta["port_model"] == PortModel.ALL_PORT.value
