"""Differential grid: every (topology, collective, port model) point.

The tentpole guarantee of the topology abstraction: each schedule a
collective generates on any topology must

* satisfy the port model in every round (link serialization, checked
  structurally with :func:`assert_schedule_valid`);
* deliver completely on the synchronous lock-step engine
  (:func:`check_delivery` returns nothing missing);
* execute bit-identically on the event-driven engines — both the
  indexed and the vectorized implementation must agree with each other
  and with the synchronous engine on final holdings, and their link
  statistics (per-edge packets *and* elements — the total busy time
  each link serializes) must equal the synchronous engine's.
"""

from __future__ import annotations

import pytest

from repro.collectives import (
    allreduce,
    broadcast,
    check_delivery,
    collective_schedule,
    reduce,
)
from repro.sim.dispatch import get_engine
from repro.sim.ports import PortModel
from repro.sim.synchronous import run_synchronous
from repro.sim.validate import assert_schedule_valid
from repro.topology import Hypercube, Torus

TOPOLOGIES = [
    pytest.param(Hypercube(3), id="hypercube-3"),
    pytest.param(Torus(1, 5), id="torus-1x5"),
    pytest.param(Torus(2, 3), id="torus-2x3"),
    pytest.param(Torus(2, 4), id="torus-2x4"),
    pytest.param(Torus(3, 2), id="torus-3x2"),
]
OPS = ["broadcast", "scatter", "gather", "reduce", "all_broadcast"]
ENGINES = ["indexed", "vectorized"]


@pytest.mark.parametrize("pm", list(PortModel))
@pytest.mark.parametrize("op", OPS)
@pytest.mark.parametrize("topo", TOPOLOGIES)
def test_point_matches_synchronous_engine(topo, op, pm):
    source = topo.num_nodes // 2
    sched, initial = collective_schedule(
        topo, op, source=source, message_elems=6, packet_elems=3,
        port_model=pm,
    )
    # 1. link serialization: every round respects the port model
    assert_schedule_valid(topo, sched, pm)

    # 2. complete delivery on the lock-step engine
    sync = run_synchronous(topo, sched, pm, initial)
    assert check_delivery(topo, op, source, sched, sync.holdings) == {}

    # 3. the event engines agree with the lock-step engine
    results = []
    for engine in ENGINES:
        run = get_engine(engine)
        res = run(topo, sched, pm, initial)
        assert res.holdings == sync.holdings
        # busy-time conservation: identical per-edge packets/elements
        assert res.link_stats.packets == sync.link_stats.packets
        assert res.link_stats.elems == sync.link_stats.elems
        results.append(res)
    # and bit-identically with each other (time to the last ulp)
    assert results[0].time == results[1].time
    assert results[0].holdings == results[1].holdings


@pytest.mark.parametrize("pm", list(PortModel))
@pytest.mark.parametrize("topo", TOPOLOGIES)
def test_allreduce_is_reduce_plus_broadcast(topo, pm):
    """allreduce == reduce + broadcast, bit for bit, on any topology."""
    root = topo.num_nodes - 1
    combined = allreduce(
        topo, message_elems=4, packet_elems=2, port_model=pm,
        run_event_sim=True, root=root,
    )
    alone_reduce = reduce(
        topo, root, message_elems=4, packet_elems=2, port_model=pm,
        run_event_sim=True,
    )
    alone_bcast = broadcast(
        topo, root,
        algorithm="sbt" if isinstance(topo, Hypercube) else "ring",
        message_elems=4, packet_elems=2, port_model=pm,
        run_event_sim=True,
    )
    assert combined.reduce.schedule.rounds == alone_reduce.schedule.rounds
    assert combined.broadcast.schedule.rounds == alone_bcast.schedule.rounds
    assert combined.reduce.time == alone_reduce.time
    assert combined.broadcast.time == alone_bcast.time
    assert combined.time == alone_reduce.time + alone_bcast.time
    assert combined.cycles == alone_reduce.cycles + alone_bcast.cycles
    assert (
        combined.reduce.sync.holdings == alone_reduce.sync.holdings
    )
    assert (
        combined.broadcast.sync.holdings == alone_bcast.sync.holdings
    )


def test_torus_k2_matches_hypercube_all_broadcast():
    """Torus(n, 2) is the hypercube (same nodes, same port numbering),
    so the ring all-broadcast degenerates to the dimension-exchange
    allgather: same round count and completion time."""
    from repro.collectives import all_broadcast

    t, h = Torus(3, 2), Hypercube(3)
    for pm in PortModel:
        rt = all_broadcast(t, message_elems=2, port_model=pm,
                           run_event_sim=True)
        rh = all_broadcast(h, message_elems=2, port_model=pm,
                           run_event_sim=True)
        assert rt.cycles == rh.cycles
        assert rt.time == rh.time


@pytest.mark.parametrize("topo", TOPOLOGIES)
def test_metrics_carry_topology(topo):
    res = broadcast(topo, 0, message_elems=2)
    assert res.metrics["topology"] == topo.kind
    assert res.metrics["op"] == "broadcast"
