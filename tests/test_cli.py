"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table_numbers_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "9"])

    def test_broadcast_defaults(self):
        args = build_parser().parse_args(["broadcast"])
        assert args.dim == 5 and args.ports == "full"
        # algorithm defaults to per-topology resolution, not a fixed name
        assert args.algorithm is None
        assert args.topology == "hypercube" and args.k == 3


class TestCommands:
    def test_table5(self, capsys):
        assert main(["table", "5"]) == 0
        out = capsys.readouterr().out
        assert "BST maximum subtree sizes" in out
        assert "52487" in out

    def test_table1(self, capsys):
        assert main(["table", "1"]) == 0
        assert "propagation delays" in capsys.readouterr().out

    def test_broadcast_summary(self, capsys):
        code = main([
            "broadcast", "--dim", "4", "-a", "msbt", "-M", "64", "-B", "8",
            "--ports", "full",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "routing steps     : 12" in out  # 8 packets + log N
        assert "msbt-broadcast" in out

    def test_scatter_summary(self, capsys):
        code = main(["scatter", "--dim", "4", "-a", "bst", "-M", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "scatter on Hypercube" in out
        assert "source port skew" in out

    def test_scatter_sbt_shows_imbalance(self, capsys):
        main(["scatter", "--dim", "5", "-a", "sbt", "-M", "4", "-B", "9999"])
        out = capsys.readouterr().out
        skew = float(out.split("source port skew  :")[1].split("x")[0])
        assert skew == pytest.approx(16.0)

    def test_ipsc_flag(self, capsys):
        code = main([
            "broadcast", "--dim", "3", "-a", "sbt", "-M", "2048", "--ipsc",
        ])
        assert code == 0
        assert "iPSC/d7" in capsys.readouterr().out

    def test_dead_link_degraded_broadcast(self, capsys):
        code = main([
            "broadcast", "--dim", "3", "-a", "msbt", "-M", "8", "-B", "4",
            "--dead-link", "0:1", "--dead-link", "2:6",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "msbt-broadcast-degraded" in out
        assert "faults            : 2 links, 0 nodes dead" in out
        assert "unreachable" not in out

    def test_dead_node_report_mode(self, capsys):
        code = main([
            "broadcast", "--dim", "3", "-a", "msbt", "-M", "4",
            "--dead-node", "5", "--on-fault", "report",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "unreachable nodes : [5]" in out

    def test_disconnecting_faults_fail_loudly(self, capsys):
        code = main([
            "broadcast", "--dim", "3", "-M", "4",
            "--dead-link", "0:1", "--dead-link", "0:2", "--dead-link", "0:4",
        ])
        assert code == 1
        assert "fault:" in capsys.readouterr().err

    def test_scatter_with_dead_link(self, capsys):
        code = main([
            "scatter", "--dim", "3", "-a", "bst", "-M", "4",
            "--dead-link", "1:3",
        ])
        assert code == 0
        assert "fault-avoiding-scatter" in capsys.readouterr().out

    def test_malformed_dead_link_rejected(self):
        with pytest.raises(SystemExit):
            main(["broadcast", "--dim", "3", "--dead-link", "zero:one"])

    def test_runtime_backend_broadcast(self, capsys):
        code = main([
            "broadcast", "--dim", "3", "-a", "sbt", "-M", "8", "-B", "4",
            "--backend", "runtime",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "backend           : runtime" in out
        assert "runtime time" in out

    def test_runtime_backend_repair_with_trace(self, capsys, tmp_path):
        jsonl = tmp_path / "trace.jsonl"
        chrome = tmp_path / "trace.json"
        code = main([
            "broadcast", "--dim", "3", "-a", "sbt", "-M", "8", "-B", "4",
            "--backend", "runtime", "--dead-link", "0:1",
            "--on-fault", "repair",
            "--trace-jsonl", str(jsonl), "--trace-chrome", str(chrome),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "repair rounds     : 1" in out
        assert jsonl.exists() and chrome.exists()

    def test_repair_requires_runtime_backend(self, capsys):
        code = main([
            "broadcast", "--dim", "3", "--dead-link", "0:1",
            "--on-fault", "repair",
        ])
        assert code == 2
        assert "requires --backend runtime" in capsys.readouterr().err

    def test_trace_requires_runtime_backend(self, capsys):
        code = main([
            "broadcast", "--dim", "3", "--trace-jsonl", "/tmp/x.jsonl",
        ])
        assert code == 2
        assert "require --backend runtime" in capsys.readouterr().err

    def test_sharded_runtime_broadcast(self, capsys, tmp_path):
        chrome = tmp_path / "trace.json"
        code = main([
            "broadcast", "--dim", "4", "-a", "msbt", "-M", "16", "-B", "4",
            "--backend", "runtime", "--workers", "2",
            "--start-method", "thread", "--trace-chrome", str(chrome),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "shard workers     : 2 (thread)" in out
        assert "one lane per shard" in out
        doc = json.loads(chrome.read_text())
        assert {e["pid"] for e in doc["traceEvents"]} == {0, 1}

    def test_workers_requires_runtime_backend(self, capsys):
        code = main(["broadcast", "--dim", "3", "--workers", "2"])
        assert code == 2
        assert "--workers requires --backend runtime" in capsys.readouterr().err

    def test_figure_command_dispatches(self, capsys, monkeypatch):
        # patch in a tiny stand-in so the test stays fast
        from repro import experiments
        from repro.experiments.harness import TableReport

        stub = TableReport("Figure 7 — stub", ["x"], [[1]])
        monkeypatch.setattr(
            experiments, "run_fig7", lambda jobs=None, cache_dir=None: stub
        )
        assert main(["figure", "7"]) == 0
        assert "Figure 7 — stub" in capsys.readouterr().out


class TestSweepCommand:
    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "fig9"])

    def test_target_group_expansion(self):
        from repro.cli import _expand_sweep_targets

        figs = _expand_sweep_targets(["figures"])
        assert figs == ["fig5", "fig6", "fig7", "fig8"]
        tables = _expand_sweep_targets(["tables"])
        assert tables == [f"table{i}" for i in range(1, 7)]
        everything = _expand_sweep_targets(["all"])
        assert set(everything) == set(figs) | set(tables) | {"scatter"}
        # dedupe keeps first occurrence order
        assert _expand_sweep_targets(["fig6", "figures"]) == [
            "fig6", "fig5", "fig7", "fig8",
        ]

    def test_sweep_runs_and_writes_stats(self, capsys, tmp_path):
        import json

        stats_path = tmp_path / "stats.json"
        code = main([
            "sweep", "table1", "--jobs", "1",
            "--stats-json", str(stats_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "propagation delays" in out
        assert "[table1]" in out
        stats = json.loads(stats_path.read_text())
        assert set(stats) == {"table1"}
        assert stats["table1"]["executor"] == "serial"
        assert stats["table1"]["num_points"] >= 1
        assert all("wall_s" in p for p in stats["table1"]["points"])

    def test_sweep_with_cache_dir_and_parallel(self, capsys, tmp_path):
        code = main([
            "sweep", "table6", "--jobs", "2",
            "--cache-dir", str(tmp_path / "cache"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "[table6]" in out
        assert "process-pool" in out
        assert list((tmp_path / "cache").rglob("*.pkl"))  # disk cache populated


class TestObservabilityFlags:
    def _metrics_doc(self, out: str) -> dict:
        """The JSON document ``--metrics-json -`` appends to stdout."""
        import json

        return json.loads(out[out.index("{"):])

    def test_metrics_json_to_stdout(self, capsys):
        code = main([
            "broadcast", "--dim", "4", "-a", "msbt", "-M", "64", "-B", "8",
            "--metrics-json", "-",
        ])
        assert code == 0
        doc = self._metrics_doc(capsys.readouterr().out)
        assert doc["command"] == "broadcast"
        assert doc["collective"]["packets_sent"] > 0
        assert doc["collective"]["phases"]["schedule"] >= 0
        engine = doc["registry"]["repro_engine_transfers_total"]
        assert sum(s["value"] for s in engine["series"]) > 0
        cache_ops = doc["registry"]["repro_cache_ops_total"]["series"]
        assert any(s["labels"]["op"] in ("hit", "miss") for s in cache_ops)

    def test_metrics_json_to_file(self, capsys, tmp_path):
        import json

        path = tmp_path / "metrics.json"
        code = main([
            "scatter", "--dim", "3", "-M", "8", "-B", "4",
            "--metrics-json", str(path),
        ])
        assert code == 0
        assert "metrics written to" in capsys.readouterr().out
        doc = json.loads(path.read_text())
        assert doc["command"] == "scatter"
        assert doc["collective"]["op"] == "scatter"

    def test_metrics_json_on_sweep(self, tmp_path):
        import json

        path = tmp_path / "metrics.json"
        code = main([
            "sweep", "table1", "--jobs", "1", "--metrics-json", str(path),
        ])
        assert code == 0
        doc = json.loads(path.read_text())
        assert doc["command"] == "sweep"
        assert doc["targets"] == ["table1"]
        sweeps = doc["registry"]["repro_sweep_points_total"]["series"]
        assert sum(s["value"] for s in sweeps) >= 1

    def test_log_json_writes_run_journal(self, tmp_path):
        import json

        path = tmp_path / "run.jsonl"
        code = main([
            "broadcast", "--dim", "3", "-M", "16", "-B", "4",
            "--log-json", str(path),
        ])
        assert code == 0
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        finished = [r for r in records if r["event"] == "collective.finished"]
        assert finished and finished[0]["op"] == "broadcast"

    def test_log_json_sink_released_after_main(self, tmp_path):
        from repro.obs import logging_enabled

        main([
            "broadcast", "--dim", "3", "-M", "16", "-B", "4",
            "--log-json", str(tmp_path / "run.jsonl"),
        ])
        assert not logging_enabled()

    def test_profile_prints_table(self, capsys):
        code = main([
            "broadcast", "--dim", "3", "-M", "16", "-B", "4", "--profile",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "cumulative" in out or "function calls" in out

    def test_phase_timings_line(self, capsys):
        main(["broadcast", "--dim", "3", "-M", "16", "-B", "4"])
        assert "phase timings" in capsys.readouterr().out
