"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table_numbers_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "9"])

    def test_broadcast_defaults(self):
        args = build_parser().parse_args(["broadcast"])
        assert args.dim == 5 and args.algorithm == "sbt" and args.ports == "full"


class TestCommands:
    def test_table5(self, capsys):
        assert main(["table", "5"]) == 0
        out = capsys.readouterr().out
        assert "BST maximum subtree sizes" in out
        assert "52487" in out

    def test_table1(self, capsys):
        assert main(["table", "1"]) == 0
        assert "propagation delays" in capsys.readouterr().out

    def test_broadcast_summary(self, capsys):
        code = main([
            "broadcast", "--dim", "4", "-a", "msbt", "-M", "64", "-B", "8",
            "--ports", "full",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "routing steps     : 12" in out  # 8 packets + log N
        assert "msbt-broadcast" in out

    def test_scatter_summary(self, capsys):
        code = main(["scatter", "--dim", "4", "-a", "bst", "-M", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "scatter on Hypercube" in out
        assert "source port skew" in out

    def test_scatter_sbt_shows_imbalance(self, capsys):
        main(["scatter", "--dim", "5", "-a", "sbt", "-M", "4", "-B", "9999"])
        out = capsys.readouterr().out
        skew = float(out.split("source port skew  :")[1].split("x")[0])
        assert skew == pytest.approx(16.0)

    def test_ipsc_flag(self, capsys):
        code = main([
            "broadcast", "--dim", "3", "-a", "sbt", "-M", "2048", "--ipsc",
        ])
        assert code == 0
        assert "iPSC/d7" in capsys.readouterr().out

    def test_figure_command_dispatches(self, capsys, monkeypatch):
        # patch in a tiny stand-in so the test stays fast
        from repro import experiments
        from repro.experiments.harness import TableReport

        stub = TableReport("Figure 7 — stub", ["x"], [[1]])
        monkeypatch.setattr(experiments, "run_fig7", lambda: stub)
        assert main(["figure", "7"]) == 0
        assert "Figure 7 — stub" in capsys.readouterr().out
