"""Tests for the lower bounds and their consistency with the models."""

import pytest

from repro.analysis import (
    broadcast_model,
    broadcast_step_lower_bound,
    broadcast_time_lower_bound,
    personalized_time_lower_bound,
    personalized_tmin,
    source_traffic_personalized,
)
from repro.sim.ports import PortModel


class TestBroadcastBounds:
    def test_msbt_meets_step_bound(self):
        # the MSBT model equals the lower bound — that is the paper's point
        for n in (3, 5, 7):
            for P in (4, 32):
                M, B = P * 4, 4
                for pm in (PortModel.ONE_PORT_FULL, PortModel.ALL_PORT):
                    bound = broadcast_step_lower_bound(M, B, n, pm)
                    msbt = broadcast_model("msbt", pm).steps(M, B, n)
                    assert msbt == bound, (n, P, pm)

    def test_sbt_exceeds_bound_by_factor_log_n(self):
        n, M, B = 6, 256, 1
        bound = broadcast_step_lower_bound(M, B, n, PortModel.ONE_PORT_FULL)
        sbt = broadcast_model("sbt", PortModel.ONE_PORT_FULL).steps(M, B, n)
        assert sbt / bound > 0.8 * n

    def test_single_packet_bound_is_log_n(self):
        for pm in PortModel:
            assert broadcast_step_lower_bound(1, 1, 5, pm) == 5

    def test_time_bound_below_all_models(self):
        M, n, tau, tc = 4096, 6, 8.0, 1.0
        for pm in PortModel:
            bound = broadcast_time_lower_bound(M, n, tau, tc, pm)
            for algo in ("sbt", "msbt", "tcbt", "hp"):
                t = broadcast_model(algo, pm).t_min(M, n, tau, tc)
                assert t >= bound * 0.999, (algo, pm)


class TestPersonalizedBounds:
    def test_source_traffic(self):
        assert source_traffic_personalized(4, 3) == 45

    def test_bst_meets_all_port_bound_asymptotically(self):
        n, M, tau, tc = 10, 4, 1.0, 1.0
        bound = personalized_time_lower_bound(n, M, tau, tc, PortModel.ALL_PORT)
        bst = personalized_tmin("bst", PortModel.ALL_PORT, n, M, tau, tc)
        assert bst == pytest.approx(bound, rel=0.01)

    def test_sbt_meets_one_port_bound(self):
        n, M, tau, tc = 6, 4, 1.0, 1.0
        bound = personalized_time_lower_bound(n, M, tau, tc, PortModel.ONE_PORT_FULL)
        sbt = personalized_tmin("sbt", PortModel.ONE_PORT_FULL, n, M, tau, tc)
        assert sbt == pytest.approx(bound)

    def test_all_models_at_or_above_bounds(self):
        n, M, tau, tc = 6, 4, 1.0, 1.0
        for pm in (PortModel.ONE_PORT_FULL, PortModel.ALL_PORT):
            bound = personalized_time_lower_bound(n, M, tau, tc, pm)
            for algo in ("sbt", "tcbt", "bst"):
                t = personalized_tmin(algo, pm, n, M, tau, tc)
                assert t >= bound * 0.95, (algo, pm, t, bound)
