"""Symbolic formula registry sanity: strings agree with the numeric models."""

import math
import re

import pytest

from repro.analysis.models import broadcast_model
from repro.analysis.symbolic import (
    render_table3,
    render_table6,
    table3_formulas,
    table6_formulas,
)
from repro.sim.ports import PortModel


def _eval_formula(expr: str, M: int, B: int, n: int, tau: float, tc: float) -> float:
    """Evaluate a transcribed formula string numerically."""
    N = 1 << n
    s = expr
    s = s.replace("^2", "**2")
    s = s.replace(")(", ")*(")
    s = re.sub(r"(\d)N", r"\1*N", s)
    env = {
        "ceil": math.ceil,
        "sqrt": math.sqrt,
        "log": math.log2,
        "logN": n,
        "N": N,
        "M": M,
        "B": B,
        "tau": tau,
        "tc": tc,
    }
    return float(eval(s, {"__builtins__": {}}, env))  # noqa: S307 - test-local


class TestTable3Symbolic:
    @pytest.mark.parametrize(
        "algo,pm",
        [(a, p) for a in ("hp", "sbt", "tcbt", "msbt") for p in PortModel
         if not (a == "hp" and p is PortModel.ALL_PORT)],
    )
    def test_t_formula_matches_numeric_model(self, algo, pm):
        t_expr, _, tmin_expr = table3_formulas(algo, pm)
        M, B, n, tau, tc = 960, 60, 5, 8.0, 1.0
        model = broadcast_model(algo, pm)
        assert _eval_formula(t_expr, M, B, n, tau, tc) == pytest.approx(
            model.time(M, B, n, tau, tc)
        )
        assert _eval_formula(tmin_expr, M, B, n, tau, tc) == pytest.approx(
            model.t_min(M, n, tau, tc)
        )

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            table3_formulas("bogus", PortModel.ALL_PORT)
        with pytest.raises(ValueError):
            table6_formulas("bogus", PortModel.ALL_PORT)

    def test_renderings(self):
        t3 = render_table3()
        assert "Table 3" in t3 and "sqrt(M*tc)" in t3
        t6 = render_table6()
        assert "Table 6" in t6 and "(N-1)*M*tc + logN*tau" in t6
