"""Tests for the closed-form complexity models (Tables 1-3, 6)."""

from math import ceil, sqrt

import pytest

from repro.analysis import (
    broadcast_model,
    broadcast_time,
    cycles_per_packet,
    personalized_time_one_port,
    personalized_tmin,
    propagation_delay,
)
from repro.sim.ports import PortModel


class TestBroadcastModels:
    def test_sbt_one_port(self):
        m = broadcast_model("sbt", PortModel.ONE_PORT_FULL)
        assert m.steps(960, 60, 5) == 16 * 5
        assert m.b_opt(960, 5, 8, 1) == 960
        assert m.t_min(960, 5, 8, 1) == 5 * (960 + 8)

    def test_msbt_full_duplex_lower_bound_form(self):
        m = broadcast_model("msbt", PortModel.ONE_PORT_FULL)
        assert m.steps(960, 60, 5) == 16 + 5
        assert m.t_min(960, 5, 8, 1) == pytest.approx(
            (sqrt(960) + sqrt(8 * 5)) ** 2
        )

    def test_msbt_all_port(self):
        m = broadcast_model("msbt", PortModel.ALL_PORT)
        assert m.steps(960, 60, 5) == ceil(960 / (60 * 5)) + 5
        assert m.b_opt(960, 5, 8, 1) == pytest.approx(sqrt(960 * 8) / 5)

    def test_time_is_steps_times_packet_cost(self):
        m = broadcast_model("hp", PortModel.ONE_PORT_FULL)
        assert m.time(100, 10, 4, 2.0, 0.5) == (10 + 16 - 3) * (2.0 + 5.0)
        assert broadcast_time("hp", PortModel.ONE_PORT_FULL, 100, 10, 4, 2.0, 0.5) == m.time(
            100, 10, 4, 2.0, 0.5
        )

    def test_unknown_pair_rejected(self):
        with pytest.raises(ValueError):
            broadcast_model("bogus", PortModel.ALL_PORT)

    def test_msbt_always_at_most_sbt_steps(self):
        # MSBT's step count never exceeds SBT's (for multi-packet runs)
        for n in (3, 5, 8):
            for MB in (4, 16, 256):
                M, B = MB * 8, 8
                for pm in PortModel:
                    msbt = broadcast_model("msbt", pm).steps(M, B, n)
                    sbt = broadcast_model("sbt", pm).steps(M, B, n)
                    assert msbt <= sbt + n, (n, MB, pm)


class TestTable1And2:
    def test_propagation_delays_known_values(self):
        n = 4
        assert propagation_delay("hp", PortModel.ALL_PORT, n) == 15
        assert propagation_delay("sbt", PortModel.ONE_PORT_HALF, n) == 4
        assert propagation_delay("tcbt", PortModel.ONE_PORT_FULL, n) == 6
        assert propagation_delay("msbt", PortModel.ONE_PORT_HALF, n) == 11
        assert propagation_delay("msbt", PortModel.ONE_PORT_FULL, n) == 8
        assert propagation_delay("msbt", PortModel.ALL_PORT, n) == 5

    def test_cycles_per_packet_known_values(self):
        n = 4
        assert cycles_per_packet("hp", PortModel.ONE_PORT_HALF, n) == 2
        assert cycles_per_packet("sbt", PortModel.ONE_PORT_FULL, n) == 4
        assert cycles_per_packet("msbt", PortModel.ALL_PORT, n) == 0.25

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            propagation_delay("bogus", PortModel.ALL_PORT, 4)
        with pytest.raises(ValueError):
            cycles_per_packet("bogus", PortModel.ALL_PORT, 4)


class TestTable6:
    def test_sbt_rows(self):
        n, M, tau, tc = 5, 8, 1.0, 1.0
        assert personalized_tmin("sbt", PortModel.ONE_PORT_FULL, n, M, tau, tc) == 31 * 8 + 5
        assert personalized_tmin("sbt", PortModel.ALL_PORT, n, M, tau, tc) == 16 * 8 + 5

    def test_bst_allport_beats_sbt_by_about_half_log_n(self):
        n, M = 10, 1
        sbt = personalized_tmin("sbt", PortModel.ALL_PORT, n, M, 0.0, 1.0)
        bst = personalized_tmin("bst", PortModel.ALL_PORT, n, M, 0.0, 1.0)
        assert sbt / bst == pytest.approx(n / 2, rel=0.01)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            personalized_tmin("bogus", PortModel.ALL_PORT, 4, 1, 1, 1)


class TestOnePortTB:
    def test_sbt_small_packets(self):
        # (NM/B - 1)(B tc + tau) for B <= M
        n, M, B = 4, 8, 4
        t = personalized_time_one_port("sbt", n, M, B, 1.0, 1.0)
        assert t == (16 * 8 / 4 - 1) * (4 + 1)

    def test_bst_unbounded(self):
        n, M = 4, 8
        t = personalized_time_one_port("bst", n, M, 16 * 8, 1.0, 1.0)
        assert t == 4 + 15 * 8

    def test_bst_b_equals_m_matches_sbt_form(self):
        # for B = M both are (N-1)(tau + M tc) (§4.3)
        n, M = 5, 8
        bst = personalized_time_one_port("bst", n, M, M, 1.0, 1.0)
        assert bst == (31) * (1 + 8)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            personalized_time_one_port("bogus", 4, 1, 1, 1, 1)
