"""Structural sanity of the Table 3 models themselves."""

import pytest

from repro.analysis.models import BROADCAST_ALGOS, broadcast_model
from repro.sim.ports import PortModel


class TestModelShapes:
    @pytest.mark.parametrize("algo", BROADCAST_ALGOS)
    @pytest.mark.parametrize("pm", list(PortModel))
    def test_steps_decrease_with_packet_size(self, algo, pm):
        m = broadcast_model(algo, pm)
        M, n = 4096, 6
        prev = None
        for B in (1, 4, 16, 64, 256, 1024):
            steps = m.steps(M, B, n)
            if prev is not None:
                assert steps <= prev, (algo, pm, B)
            prev = steps

    @pytest.mark.parametrize("algo", BROADCAST_ALGOS)
    @pytest.mark.parametrize("pm", list(PortModel))
    def test_time_extremes_worse_than_b_opt(self, algo, pm):
        # T(B) blows up at both ends: B = 1 pays maximal start-ups,
        # B = M maximal pipeline stalls (except one-port SBT, whose
        # optimum IS B = M)
        m = broadcast_model(algo, pm)
        M, n, tau, tc = 4096, 6, 64.0, 1.0
        b_opt = max(1, min(M, round(m.b_opt(M, n, tau, tc))))
        t_opt = m.time(M, b_opt, n, tau, tc)
        assert m.time(M, 1, n, tau, tc) >= t_opt
        assert m.time(M, M, n, tau, tc) >= t_opt * 0.999

    @pytest.mark.parametrize("algo", BROADCAST_ALGOS)
    @pytest.mark.parametrize("pm", list(PortModel))
    def test_t_min_below_all_sampled_times(self, algo, pm):
        # T_min is the continuous-relaxation optimum: no sampled
        # discrete B does better by more than discretization noise
        m = broadcast_model(algo, pm)
        M, n, tau, tc = 4096, 6, 64.0, 1.0
        best = min(m.time(M, B, n, tau, tc) for B in range(1, M + 1, 8))
        assert m.t_min(M, n, tau, tc) <= best * 1.05

    @pytest.mark.parametrize("algo", BROADCAST_ALGOS)
    def test_more_ports_never_hurt(self, algo):
        M, n, tau, tc = 4096, 6, 16.0, 1.0
        t_half = broadcast_model(algo, PortModel.ONE_PORT_HALF).t_min(M, n, tau, tc)
        t_full = broadcast_model(algo, PortModel.ONE_PORT_FULL).t_min(M, n, tau, tc)
        t_all = broadcast_model(algo, PortModel.ALL_PORT).t_min(M, n, tau, tc)
        assert t_all <= t_full * 1.001
        assert t_full <= t_half * 1.001
