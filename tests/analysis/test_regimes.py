"""Tests for the crossover analysis — §3.4's HP-vs-SBT observation."""

import pytest

from repro.analysis.regimes import (
    crossover_message_size,
    fastest_algorithm,
    optimal_times,
)
from repro.sim.ports import PortModel


class TestOptimalTimes:
    def test_all_algorithms_reported(self):
        times = optimal_times(5, 1024, 1.0, 1.0, PortModel.ONE_PORT_FULL)
        assert set(times) == {"hp", "sbt", "tcbt", "msbt"}
        assert all(t > 0 for t in times.values())

    def test_msbt_is_fastest_in_normal_regimes(self):
        for M in (64, 4096):
            assert fastest_algorithm(6, M, 10.0, 1.0, PortModel.ONE_PORT_FULL) == "msbt"


class TestHpCrossover:
    def test_hp_beats_sbt_for_huge_messages_cheap_startups(self):
        # the §3.4 observation: HP steady state is 1 cycle/packet vs
        # log N for the SBT, so with tiny tau and big M the path wins
        n, tau, tc = 6, 0.001, 1.0
        M = 1 << 20
        times = optimal_times(n, M, tau, tc, PortModel.ONE_PORT_FULL)
        assert times["hp"] < times["sbt"]

    def test_sbt_beats_hp_for_small_messages(self):
        n, tau, tc = 6, 1.0, 1.0
        times = optimal_times(n, 4, tau, tc, PortModel.ONE_PORT_FULL)
        assert times["sbt"] < times["hp"]

    def test_crossover_found_and_consistent(self):
        n, tau, tc = 6, 1.0, 1.0
        m_star = crossover_message_size("hp", "sbt", n, tau, tc, PortModel.ONE_PORT_FULL)
        assert m_star is not None and m_star > 1
        times_before = optimal_times(n, max(m_star // 2, 1), tau, tc, PortModel.ONE_PORT_FULL)
        times_after = optimal_times(n, m_star * 2, tau, tc, PortModel.ONE_PORT_FULL)
        assert times_before["sbt"] <= times_before["hp"]
        assert times_after["hp"] < times_after["sbt"]

    def test_crossover_grows_with_startup_cost(self):
        # more expensive start-ups push the HP's break-even point out
        n, tc = 6, 1.0
        m_cheap = crossover_message_size("hp", "sbt", n, 0.01, tc, PortModel.ONE_PORT_FULL)
        m_dear = crossover_message_size("hp", "sbt", n, 1.0, tc, PortModel.ONE_PORT_FULL)
        assert m_cheap is not None and m_dear is not None
        assert m_dear > m_cheap

    def test_no_crossover_against_msbt(self):
        # HP never beats the MSBT under one send and receive: both move
        # one packet per cycle in steady state but the MSBT's fill is
        # log N, the HP's is N
        assert crossover_message_size(
            "hp", "msbt", 6, 1.0, 1.0, PortModel.ONE_PORT_FULL, m_max=1 << 30
        ) is None

    def test_hp_can_beat_tcbt_too(self):
        # "...or even the TCBT": TCBT pays 2 cycles/packet full duplex
        n, tau, tc = 5, 0.001, 1.0
        m_star = crossover_message_size("hp", "tcbt", n, tau, tc, PortModel.ONE_PORT_FULL)
        assert m_star is not None
        times = optimal_times(n, m_star * 4, tau, tc, PortModel.ONE_PORT_FULL)
        assert times["hp"] < times["tcbt"]
