"""Tests for the Table 1/2/4 comparison builders."""

import pytest

from repro.analysis import (
    TABLE4_REGIMES,
    TABLE4_ROWS,
    cycles_per_packet_table,
    numeric_b_opt,
    propagation_delay_table,
    table4_paper_entry,
    table4_ratio,
)
from repro.analysis.models import broadcast_model
from repro.sim.ports import PortModel


class TestTableBuilders:
    def test_propagation_table_shape(self):
        t = propagation_delay_table(5)
        assert set(t) == {"hp", "sbt", "tcbt", "msbt"}
        assert t["hp"][PortModel.ALL_PORT] == 31
        assert t["msbt"][PortModel.ONE_PORT_FULL] == 10

    def test_cycles_table_shape(self):
        t = cycles_per_packet_table(5)
        assert t["msbt"][PortModel.ALL_PORT] == pytest.approx(0.2)
        assert t["sbt"][PortModel.ONE_PORT_HALF] == 5


class TestTable4:
    def test_exact_columns_match_paper(self):
        for n in (5, 8):
            for algo, pm in TABLE4_ROWS:
                for regime in ("one_packet", "many_packets"):
                    got = table4_ratio(algo, pm, regime, n)
                    want = table4_paper_entry(algo, pm, regime, n)
                    assert got == pytest.approx(want, rel=0.02), (algo, pm, regime, n)

    def test_bandwidth_column_matches_paper(self):
        for algo, pm in TABLE4_ROWS:
            got = table4_ratio(algo, pm, "b_opt_bandwidth_dominated", 8)
            want = table4_paper_entry(algo, pm, "b_opt_bandwidth_dominated", 8)
            assert got == pytest.approx(want, rel=0.05), (algo, pm)

    def test_unknown_regime_rejected(self):
        with pytest.raises(ValueError):
            table4_ratio("sbt", PortModel.ALL_PORT, "bogus", 4)
        with pytest.raises(ValueError):
            table4_paper_entry("sbt", PortModel.ALL_PORT, "bogus", 4)

    def test_all_regimes_enumerated(self):
        assert len(TABLE4_REGIMES) == 4


class TestNumericBOpt:
    def test_matches_closed_form_sbt_all_port(self):
        m = broadcast_model("sbt", PortModel.ALL_PORT)
        M, n, tau, tc = 960, 5, 8.0, 1.0
        b_num, t_num = numeric_b_opt(m, M, n, tau, tc)
        b_model = m.b_opt(M, n, tau, tc)
        assert abs(b_num - b_model) <= max(4, 0.2 * b_model)
        assert t_num <= m.t_min(M, n, tau, tc) * 1.1

    def test_bad_message_rejected(self):
        m = broadcast_model("sbt", PortModel.ALL_PORT)
        with pytest.raises(ValueError):
            numeric_b_opt(m, 0, 4, 1, 1)
