"""Tests for CSV/JSON report export."""

import csv
import json

import pytest

from repro.experiments import run_table1
from repro.experiments.export import to_csv, to_json, write_report


@pytest.fixture(scope="module")
def report():
    return run_table1(3)


class TestExport:
    def test_csv_roundtrip(self, report):
        rows = list(csv.reader(to_csv(report).splitlines()))
        assert rows[0] == report.headers
        assert len(rows) == len(report.rows) + 1
        assert rows[1][0] == "HP"

    def test_json_roundtrip(self, report):
        doc = json.loads(to_json(report))
        assert doc["name"].startswith("Table 1")
        assert doc["headers"] == report.headers
        assert len(doc["rows"]) == len(report.rows)

    def test_write_csv_and_json(self, report, tmp_path):
        p1 = write_report(report, tmp_path / "t1.csv")
        p2 = write_report(report, tmp_path / "t1.json")
        assert p1.read_text().startswith("algorithm")
        assert json.loads(p2.read_text())["headers"] == report.headers

    def test_unknown_suffix_rejected(self, report, tmp_path):
        with pytest.raises(ValueError, match="unsupported"):
            write_report(report, tmp_path / "t1.xlsx")
