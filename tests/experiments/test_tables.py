"""Smoke tests for the table experiments (small sizes; full sizes run
in benchmarks/)."""

from repro.experiments import (
    PAPER_TABLE5,
    run_table1,
    run_table2,
    run_table4,
    run_table5,
    run_table6,
)


class TestTableExperiments:
    def test_table1_small(self):
        report = run_table1(3)
        assert len(report.rows) == 12
        for algo, pm, measured, paper in report.rows:
            assert measured == paper, (algo, pm)

    def test_table2_small(self):
        report = run_table2(3, packets=12)
        for algo, pm, measured, paper in report.rows:
            assert abs(float(measured) - float(paper)) < 1e-3

    def test_table4_small(self):
        report = run_table4(5)
        assert len(report.rows) == 20

    def test_table5_small(self):
        report = run_table5(max_n=8, construct_up_to=8)
        for n, computed, paper, *_ in report.rows:
            assert computed == paper == PAPER_TABLE5[n]

    def test_table6_small(self):
        report = run_table6(4, 4)
        kinds = {row[4] for row in report.rows}
        assert kinds == {"=", "<="}
        for algo, pm, measured, paper, kind in report.rows:
            if kind == "=" and algo == "SBT":
                assert abs(measured - paper) < 1e-6


class TestHarness:
    def test_report_rendering(self):
        report = run_table1(2)
        text = report.render()
        assert "Table 1" in text
        assert "SBT" in text

    def test_max_relative_error(self):
        report = run_table1(3)
        assert report.max_relative_error(2, 3) == 0.0

    def test_format_table_floats(self):
        from repro.experiments import format_table

        out = format_table(["a"], [[0.00001], [12345.6], [1.5]])
        assert "1e-05" in out and "1.5" in out
