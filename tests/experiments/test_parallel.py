"""The sweep executor: determinism, chunking, telemetry, fallbacks.

The headline guarantee is byte-identical output: every figure/table
experiment run with ``jobs > 1`` must render exactly what the serial
run renders.  The differential tests below assert that for *every*
experiment at reduced sizes.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import (
    resolve_jobs,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_scatter_packet_sweep,
    run_sweep,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
    sweep_grid,
    to_csv,
    to_json,
)
from repro.experiments.parallel import CHUNKS_PER_WORKER, SweepStats


def _square(x):
    return x * x


def _pair(a, b):
    return (a, b)


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs() == 5

    def test_zero_means_all_cores(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-2)

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError):
            resolve_jobs()


class TestSweepGrid:
    def test_row_major_order(self):
        grid = sweep_grid(n=(2, 3), B=(1, 2))
        assert grid == [
            {"n": 2, "B": 1},
            {"n": 2, "B": 2},
            {"n": 3, "B": 1},
            {"n": 3, "B": 2},
        ]

    def test_single_axis(self):
        assert sweep_grid(x=(1, 2, 3)) == [{"x": 1}, {"x": 2}, {"x": 3}]


class TestRunSweep:
    def test_serial_matches_inputs_in_order(self):
        result = run_sweep(_square, [{"x": i} for i in range(10)], jobs=1)
        assert result.values == [i * i for i in range(10)]
        assert result.stats.executor == "serial"
        assert result.stats.num_points == 10

    def test_parallel_preserves_order(self):
        result = run_sweep(_square, [{"x": i} for i in range(23)], jobs=3)
        assert result.values == [i * i for i in range(23)]
        assert result.stats.executor == "process-pool"
        # point stats are sorted and complete
        assert [p.index for p in result.stats.points] == list(range(23))

    def test_single_point_runs_in_process(self):
        result = run_sweep(_square, [{"x": 4}], jobs=8)
        assert result.values == [16]
        assert result.stats.executor == "serial"
        assert result.stats.workers == (os.getpid(),)

    def test_default_chunksize_amortizes(self):
        result = run_sweep(_square, [{"x": i} for i in range(64)], jobs=2)
        assert result.stats.chunksize == 64 // (2 * CHUNKS_PER_WORKER)

    def test_explicit_chunksize(self):
        result = run_sweep(_square, [{"x": i} for i in range(7)], jobs=2, chunksize=5)
        assert result.stats.chunksize == 5
        assert result.values == [i * i for i in range(7)]

    def test_multi_kwarg_points(self):
        result = run_sweep(_pair, [{"a": 1, "b": 2}, {"a": 3, "b": 4}], jobs=2)
        assert result.values == [(1, 2), (3, 4)]

    def test_worker_exception_propagates(self):
        with pytest.raises(ZeroDivisionError):
            run_sweep(_reciprocal, [{"x": 1}, {"x": 0}, {"x": 2}], jobs=2)

    def test_stats_serialization(self):
        result = run_sweep(_square, [{"x": i} for i in range(4)], jobs=2)
        d = result.stats.to_dict()
        assert d["num_points"] == 4
        assert len(d["points"]) == 4
        assert {p["index"] for p in d["points"]} == {0, 1, 2, 3}
        assert "lru_hits" in d and "disk_misses" in d
        assert isinstance(result.stats.summary(), str)

    def test_env_jobs_drives_sweep(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        result = run_sweep(_square, [{"x": i} for i in range(4)])
        assert result.stats.jobs == 2
        assert result.stats.executor == "process-pool"


def _reciprocal(x):
    return 1 / x


#: every experiment at sizes small enough for the test suite, with the
#: worker count to compare against serial
_DIFFERENTIAL_CASES = [
    ("fig5", lambda jobs: run_fig5(
        dims=(2, 3), packet_sizes=(512, 1024), message_bytes=(2048, 4096),
        jobs=jobs)),
    ("fig6", lambda jobs: run_fig6(dims=(2, 3), message_bytes=4096, jobs=jobs)),
    ("fig7", lambda jobs: run_fig7(dims=(2, 3), message_bytes=4096, jobs=jobs)),
    ("fig8", lambda jobs: run_fig8(dims=(2, 3), message_bytes=256, jobs=jobs)),
    ("table1", lambda jobs: run_table1(n=3, jobs=jobs)),
    ("table2", lambda jobs: run_table2(n=3, packets=8, jobs=jobs)),
    ("table3", lambda jobs: run_table3(
        n=3, M=48, packet_sizes=(8, 16), jobs=jobs)),
    ("table4", lambda jobs: run_table4(n=4, jobs=jobs)),
    ("table5", lambda jobs: run_table5(max_n=8, construct_up_to=5, jobs=jobs)),
    ("table6", lambda jobs: run_table6(n=3, M=4, jobs=jobs)),
    ("scatter", lambda jobs: run_scatter_packet_sweep(
        n=4, M=4, packet_sizes=(2, 4, 100), jobs=jobs)),
]


class TestSerialParallelIdentity:
    """Parallel output must be byte-identical to serial, per experiment."""

    @pytest.mark.parametrize(
        "name,runner", _DIFFERENTIAL_CASES, ids=[c[0] for c in _DIFFERENTIAL_CASES]
    )
    def test_byte_identical(self, name, runner):
        serial = runner(1)
        parallel = runner(2)
        assert serial.render() == parallel.render()
        assert to_csv(serial) == to_csv(parallel)
        assert to_json(serial) == to_json(parallel)

    def test_parallel_run_attaches_stats(self):
        report = run_fig6(dims=(2, 3), message_bytes=2048, jobs=2)
        assert isinstance(report.sweep, SweepStats)
        assert report.sweep.num_points == 2
        assert report.sweep.executor == "process-pool"
        assert len(report.sweep.workers) >= 1

    def test_table5_constructed_mismatch_propagates_from_worker(self):
        # sanity: worker-side AssertionErrors surface, not silent Nones
        report = run_table5(max_n=6, construct_up_to=6, jobs=2)
        assert len(report.rows) == 5


class TestMergedLinkStats:
    def test_merges_link_stats_and_result_values(self):
        from repro.experiments.parallel import SweepResult, merged_link_stats
        from repro.sim.trace import LinkStats
        from repro.topology.hypercube import DirectedEdge

        class _Res:  # duck-types AsyncResult/CollectiveResult
            def __init__(self, stats):
                self.link_stats = stats

        bare = LinkStats()
        bare.record(0, 1, 5)
        wrapped = LinkStats()
        wrapped.record(0, 1, 2)
        wrapped.record(1, 3, 4)
        values = [bare, _Res(wrapped), "no stats here", None]
        merged = merged_link_stats(values)
        assert merged.elems[DirectedEdge(0, 1)] == 7
        assert merged.elems[DirectedEdge(1, 3)] == 4
        assert bare.elems[DirectedEdge(0, 1)] == 5  # inputs untouched

        result = SweepResult(values=values, stats=SweepStats(
            jobs=1, chunksize=1, executor="serial",
        ))
        assert result.merged_link_stats().elems == merged.elems
