"""The shared scenario-registry helper (name rules, duplicates, order)."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.experiments.registry import ScenarioRegistry


@dataclass(frozen=True)
class _Item:
    name: str
    description: str = "an item"


class TestNames:
    @pytest.mark.parametrize("name", ["a", "dp-train-n10", "x9", "0day"])
    def test_kebab_case_accepted(self, name):
        reg = ScenarioRegistry("thing")
        reg.register(_Item(name))
        assert name in reg

    @pytest.mark.parametrize(
        "name", ["", "-lead", "Big", "under_score", "sp ace", "dot.名"]
    )
    def test_invalid_names_rejected(self, name):
        reg = ScenarioRegistry("thing")
        with pytest.raises(ValueError, match="invalid thing name"):
            reg.register(_Item(name))

    def test_duplicate_rejected(self):
        reg = ScenarioRegistry("thing", (_Item("dup"),))
        with pytest.raises(ValueError, match="duplicate thing name 'dup'"):
            reg.register(_Item("dup"))


class TestLookup:
    def test_get_or_raise_lists_choices(self):
        reg = ScenarioRegistry("thing", (_Item("b"), _Item("a")))
        assert reg.get_or_raise("a").name == "a"
        with pytest.raises(ValueError, match=r"pick one of \['a', 'b'\]"):
            reg.get_or_raise("c")

    def test_mapping_interface(self):
        reg = ScenarioRegistry("thing", (_Item("z"), _Item("a")))
        assert reg["z"].name == "z"
        assert len(reg) == 2
        assert "a" in reg and "q" not in reg


class TestDeterministicListing:
    def test_iteration_sorted_regardless_of_insertion(self):
        reg = ScenarioRegistry("thing", (_Item("zz"), _Item("aa"), _Item("mm")))
        assert list(reg) == ["aa", "mm", "zz"]
        assert reg.names() == ["aa", "mm", "zz"]

    def test_describe_rows(self):
        reg = ScenarioRegistry(
            "thing", (_Item("b", "second"), _Item("a", "first"))
        )
        assert reg.describe() == [("a", "first"), ("b", "second")]

    def test_repr_mentions_kind_and_names(self):
        reg = ScenarioRegistry("gizmo", (_Item("one"),))
        assert "gizmo" in repr(reg) and "one" in repr(reg)
