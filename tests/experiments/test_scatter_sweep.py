"""Smoke test for the §4.2 T(B) sweep experiment."""

from repro.experiments import run_scatter_packet_sweep


class TestScatterSweep:
    def test_reduced_sweep(self):
        report = run_scatter_packet_sweep(
            n=4, M=4, packet_sizes=(2, 4, 1000)
        )
        assert len(report.rows) == 3
        rows = {r[0]: r[1:] for r in report.rows}
        # SBT improves with B
        assert rows[1000][0] <= rows[4][0] <= rows[2][0]
        # at B = M, SBT and BST agree with (N-1)(tau + M tc)
        assert rows[4][0] == 15 * 5
        assert abs(rows[4][2] - 15 * 5) <= 0.1 * 15 * 5

    def test_models_close_to_sim_for_sbt(self):
        report = run_scatter_packet_sweep(n=4, M=4, packet_sizes=(2, 8, 64))
        for B, sbt_sim, sbt_model, *_ in report.rows:
            assert abs(sbt_sim - sbt_model) <= 0.15 * sbt_model + 4, B
