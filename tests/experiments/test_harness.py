"""Edge cases of the report harness."""

from repro.experiments.harness import TableReport, format_table, relative_error


class TestRelativeError:
    def test_zero_predicted_uses_floor(self):
        assert relative_error(3.0, 0.0) == 3.0

    def test_exact(self):
        assert relative_error(5.0, 5.0) == 0.0

    def test_small_values(self):
        import pytest

        assert relative_error(0.5, 0.4) == pytest.approx(0.1)


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["col", "x"], [["a", 1], ["longer", 22]])
        lines = out.splitlines()
        assert len({len(l) for l in lines}) <= 2  # header may differ by title

    def test_float_rendering(self):
        out = format_table(["v"], [[0.0], [1.5], [123456.0], [0.001]])
        assert "0" in out and "1.5" in out
        assert "1.23e+05" in out
        assert "0.001" in out

    def test_title(self):
        out = format_table(["v"], [[1]], title="T")
        assert out.splitlines()[0] == "T"


class TestTableReport:
    def test_add_and_render(self):
        r = TableReport("demo", ["a", "b"])
        r.add(1, 2)
        r.add(3, 4)
        assert "demo" in r.render()
        assert r.max_relative_error(0, 1) == 0.5

    def test_empty_report_renders(self):
        r = TableReport("empty", ["a"])
        assert "empty" in r.render()

    def test_max_relative_error_empty_rows(self):
        r = TableReport("empty", ["m", "p"])
        assert r.max_relative_error(0, 1) == 0.0

    def test_max_relative_error_zero_predicted(self):
        # a zero prediction must not divide by zero: the denominator
        # floors at 1, so the error equals the measured value
        r = TableReport("zeros", ["m", "p"])
        r.add(3.0, 0.0)
        r.add(0.0, 0.0)
        assert r.max_relative_error(0, 1) == 3.0

    def test_max_relative_error_all_zero_rows(self):
        r = TableReport("allzero", ["m", "p"])
        r.add(0.0, 0.0)
        assert r.max_relative_error(0, 1) == 0.0

    def test_sweep_attachment_not_rendered_or_compared(self):
        a = TableReport("t", ["x"], rows=[[1]])
        b = TableReport("t", ["x"], rows=[[1]], sweep=object())
        assert a == b
        assert a.render() == b.render()
        assert "sweep" not in repr(b)
