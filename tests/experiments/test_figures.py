"""Smoke tests for the figure experiments at reduced sizes."""

from repro.experiments import run_fig5, run_fig6, run_fig7, run_fig8
from repro.sim.machine import IPSC_D7


class TestFigureExperiments:
    def test_fig5_reduced(self):
        report = run_fig5(dims=(2, 3), packet_sizes=(512, 1024), message_bytes=(2048, 8192))
        t = {(d, b, m): v for d, b, m, v in report.rows}
        # time grows with message size, dimension, and smaller packets
        assert t[(2, 1024, 8192)] > t[(2, 1024, 2048)]
        assert t[(3, 1024, 8192)] > t[(2, 1024, 8192)]
        assert t[(2, 512, 8192)] > t[(2, 1024, 8192)]

    def test_fig6_reduced(self):
        report = run_fig6(dims=(2, 4), message_bytes=8192, packet_bytes=1024)
        rows = {d: (s, m) for d, s, m in report.rows}
        assert rows[4][0] > rows[2][0]          # SBT grows with n
        assert rows[4][1] <= rows[4][0]         # MSBT never slower

    def test_fig7_reduced(self):
        report = run_fig7(dims=(2, 4), message_bytes=8192, packet_bytes=1024)
        speedups = {d: s for d, s, _ in report.rows}
        assert speedups[4] > speedups[2] * 0.95
        assert speedups[4] > 1.5

    def test_fig8_reduced(self):
        report = run_fig8(dims=(3, 5), message_bytes=512)
        rows = {d: (s, b) for d, s, b, _ in report.rows}
        assert rows[5][0] > rows[3][0]
        # BST wins at d=5 under the one-port + overlap model
        assert rows[5][1] < rows[5][0]

    def test_fig8_no_overlap_machine(self):
        report = run_fig8(dims=(4,), message_bytes=256, machine=IPSC_D7.with_overlap(0.0))
        assert len(report.rows) == 1
