"""Exhaustive small-cube integration: every source, every algorithm.

On a 3-cube the full cross-product is cheap, so run it completely —
any translation bug in any generator shows up here.
"""

import pytest

from repro.collectives import broadcast, gather, reduce, scatter
from repro.sim import PortModel
from repro.topology import Hypercube

CUBE = Hypercube(3)


class TestEveryBroadcastSource:
    @pytest.mark.parametrize("source", list(CUBE.nodes()))
    @pytest.mark.parametrize("algo", ["sbt", "msbt", "tcbt", "hp", "hp-centered", "hp-dual"])
    def test_broadcast(self, source, algo):
        for pm in PortModel:
            res = broadcast(CUBE, source, algo, 6, 2, pm)
            assert res.cycles > 0


class TestEveryScatterSource:
    @pytest.mark.parametrize("source", list(CUBE.nodes()))
    @pytest.mark.parametrize("algo", ["sbt", "bst", "tcbt"])
    def test_scatter(self, source, algo):
        for pm in PortModel:
            res = scatter(CUBE, source, algo, 3, 4, pm)
            assert res.cycles > 0

    @pytest.mark.parametrize("root", list(CUBE.nodes()))
    def test_gather_and_reduce(self, root):
        assert gather(CUBE, root, "bst", 2, 4).cycles > 0
        assert reduce(CUBE, root, 4, 2).cycles > 0


class TestCycleCountsAreTranslationInvariant:
    @pytest.mark.parametrize("algo", ["sbt", "msbt", "bst-scatter"])
    def test_invariance(self, algo):
        counts = set()
        for source in CUBE.nodes():
            if algo == "bst-scatter":
                res = scatter(CUBE, source, "bst", 3, 4, PortModel.ONE_PORT_FULL)
            else:
                res = broadcast(CUBE, source, algo, 6, 2, PortModel.ONE_PORT_FULL)
            counts.add(res.cycles)
        assert len(counts) == 1, counts
