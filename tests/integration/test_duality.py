"""Duality of distribution and collection (§1, §4's reverse operations).

Reversing a schedule transposes every link's load and preserves the
cycle count and lock-step time — gather is exactly as expensive as
scatter, reduction as broadcast."""

import pytest

from repro.collectives import gather, scatter
from repro.sim import MachineParams, PortModel
from repro.topology import DirectedEdge, Hypercube


class TestGatherScatterSymmetry:
    @pytest.mark.parametrize("algo", ["sbt", "bst", "tcbt"])
    @pytest.mark.parametrize("pm", list(PortModel))
    def test_same_cycles_and_time(self, cube4, algo, pm):
        machine = MachineParams(tau=1.0, t_c=1.0)
        s = scatter(cube4, 6, algo, 4, 16, pm, machine=machine)
        g = gather(cube4, 6, algo, 4, 16, pm, machine=machine)
        assert g.cycles == s.cycles, (algo, pm)
        assert g.sync.time == pytest.approx(s.sync.time), (algo, pm)

    @pytest.mark.parametrize("algo", ["sbt", "bst"])
    def test_link_loads_transpose(self, cube4, algo):
        pm = PortModel.ONE_PORT_FULL
        s = scatter(cube4, 0, algo, 4, 16, pm)
        g = gather(cube4, 0, algo, 4, 16, pm)
        for edge, load in s.link_stats.elems.items():
            assert g.link_stats.elems[DirectedEdge(edge.dst, edge.src)] == load

    def test_broadcast_reduce_same_cycles(self, cube5):
        from repro.collectives import broadcast, reduce

        for pm in PortModel:
            b = broadcast(cube5, 0, "sbt", 12, 4, pm)
            r = reduce(cube5, 0, 12, 4, pm)
            # the reduce mirror pipelines one round shallower under
            # all-port (n + P - 1 vs P + n - 1: identical), equal under
            # one-port
            assert r.cycles == b.cycles, pm
