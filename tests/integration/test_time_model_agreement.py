"""Lock-step times vs the closed-form ``T = steps * (tau + B t_c)``.

Tables 1-3 are about *steps*; this module closes the loop on *time*:
for uniform packet sizes the simulated lock-step time must equal the
analytic product exactly.
"""

import pytest

from repro.analysis import broadcast_model
from repro.collectives import broadcast
from repro.sim import MachineParams, PortModel
from repro.topology import Hypercube


class TestBroadcastTimeAgreement:
    @pytest.mark.parametrize("algo", ["sbt", "msbt"])
    @pytest.mark.parametrize("pm", list(PortModel))
    @pytest.mark.parametrize("tau,tc", [(1.0, 1.0), (8.0, 0.5)])
    def test_lockstep_time_equals_model(self, algo, pm, tau, tc):
        n, B = 4, 4
        M = 48  # divisible by B and by n*B: every packet is exactly B
        cube = Hypercube(n)
        machine = MachineParams(tau=tau, t_c=tc)
        res = broadcast(cube, 0, algo, M, B, pm, machine=machine)
        model = broadcast_model(algo, pm)
        expected = model.steps(M, B, n) * (tau + B * tc)
        assert res.sync.time == pytest.approx(expected), (algo, pm)

    def test_uneven_final_packet_costs_less(self):
        # M not divisible by B: the final round carries a smaller packet
        cube = Hypercube(3)
        machine = MachineParams(tau=1.0, t_c=1.0)
        full = broadcast(cube, 0, "sbt", 12, 4, PortModel.ONE_PORT_FULL, machine=machine)
        ragged = broadcast(cube, 0, "sbt", 10, 4, PortModel.ONE_PORT_FULL, machine=machine)
        assert ragged.sync.time < full.sync.time
        assert ragged.cycles == full.cycles

    @pytest.mark.parametrize("pm", list(PortModel))
    def test_msbt_beats_sbt_time_for_many_packets(self, pm):
        cube = Hypercube(5)
        machine = MachineParams(tau=1.0, t_c=1.0)
        M, B = 320, 4
        t_sbt = broadcast(cube, 0, "sbt", M, B, pm, machine=machine).sync.time
        t_msbt = broadcast(cube, 0, "msbt", M, B, pm, machine=machine).sync.time
        assert t_msbt < t_sbt


class TestAsyncVsLockstepOnIpsc:
    def test_async_within_lockstep_bound_msbt(self):
        from repro.sim import IPSC_D7

        cube = Hypercube(5)
        res = broadcast(
            cube, 0, "msbt", 30720, 1024, PortModel.ONE_PORT_FULL,
            machine=IPSC_D7.with_overlap(0.0), run_event_sim=True,
        )
        assert res.async_ is not None
        assert res.async_.time <= res.sync.time * 1.001

    def test_overlap_only_helps(self):
        from repro.sim import IPSC_D7

        cube = Hypercube(4)
        base = broadcast(
            cube, 0, "msbt", 8192, 1024, PortModel.ONE_PORT_FULL,
            machine=IPSC_D7.with_overlap(0.0), run_event_sim=True,
        ).time
        faster = broadcast(
            cube, 0, "msbt", 8192, 1024, PortModel.ONE_PORT_FULL,
            machine=IPSC_D7, run_event_sim=True,
        ).time
        assert faster <= base * 1.001
