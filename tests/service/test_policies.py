"""Policy behavior: fifo, strict priority, and fair-share ordering."""

from __future__ import annotations

import pytest

from repro.collectives.api import collective_schedule
from repro.service import JobSpec, POLICIES, resolve_policy, run_service
from repro.service.policies import (
    FairSharePolicy,
    FifoPolicy,
    PriorityPolicy,
)
from repro.sim.ports import PortModel
from repro.sim.vectorized import run_async_vectorized
from repro.topology import Hypercube


class TestRegistry:
    def test_names(self):
        assert set(POLICIES) == {"fifo", "priority", "fair-share"}

    def test_resolve_by_name_and_instance(self):
        assert isinstance(resolve_policy("fifo"), FifoPolicy)
        p = FairSharePolicy()
        assert resolve_policy(p) is p

    def test_resolve_unknown(self):
        with pytest.raises(ValueError, match="unknown policy"):
            resolve_policy("round-robin")


class TestKeys:
    def test_fifo_is_admission_order(self):
        p = FifoPolicy()
        lo = JobSpec(tenant="a", priority=99)
        hi = JobSpec(tenant="b")
        assert p.admission_key(lo, 0, 50.0) < p.admission_key(hi, 1, 0.0)

    def test_priority_outranks_admission_order(self):
        p = PriorityPolicy()
        urgent = JobSpec(tenant="a", priority=5)
        bulk = JobSpec(tenant="b", priority=0)
        assert p.admission_key(urgent, 9, 0.0) < p.admission_key(bulk, 0, 0.0)

    def test_fair_share_favors_light_tenant(self):
        p = FairSharePolicy()
        hog = JobSpec(tenant="hog")
        mouse = JobSpec(tenant="mouse")
        assert p.admission_key(mouse, 5, 0.0) < p.admission_key(hog, 0, 120.0)

    def test_static_keys_flags(self):
        assert FifoPolicy.static_keys and PriorityPolicy.static_keys
        assert not FairSharePolicy.static_keys


def _contended_specs():
    """Two same-root broadcasts arriving together: pure contention."""
    return [
        JobSpec(tenant="bulk", message_elems=64, packet_elems=8, priority=0),
        JobSpec(tenant="urgent", message_elems=8, packet_elems=8, priority=5),
    ]


class TestEndToEnd:
    def test_priority_policy_speeds_up_urgent_job(self):
        cube = Hypercube(4)
        fifo = run_service(cube, _contended_specs(), policy="fifo")
        prio = run_service(cube, _contended_specs(), policy="priority")
        urgent_fifo = next(j for j in fifo.jobs if j.tenant == "urgent")
        urgent_prio = next(j for j in prio.jobs if j.tenant == "urgent")
        # priority cannot hurt the urgent job, and on this contended
        # mix it strictly helps; it never runs *faster* than alone
        # (rounds interleave, so packets of earlier bulk rounds may
        # still be in flight — priority is non-preemptive per packet)
        assert urgent_prio.finish_time < urgent_fifo.finish_time
        sched, init = collective_schedule(
            cube, "broadcast", None, 0, 8, 8, PortModel.ONE_PORT_FULL
        )
        alone = run_async_vectorized(
            cube, sched, PortModel.ONE_PORT_FULL, init
        )
        assert urgent_prio.finish_time >= alone.time

    def test_fair_share_lets_light_tenant_cut_ahead(self):
        """After the hog burns link-time, a fresh tenant's job admitted
        at the same instant as the hog's next job outranks it."""
        cube = Hypercube(3)
        sched, init = collective_schedule(
            cube, "broadcast", None, 0, 64, 8, PortModel.ONE_PORT_FULL
        )
        t1 = run_async_vectorized(
            cube, sched, PortModel.ONE_PORT_FULL, init
        ).time
        later = t1 + 1.0
        specs = [
            JobSpec(tenant="hog", message_elems=64, packet_elems=8),
            JobSpec(tenant="hog", message_elems=64, packet_elems=8,
                    arrival=later),
            JobSpec(tenant="mouse", message_elems=64, packet_elems=8,
                    arrival=later),
        ]
        fifo = run_service(cube, specs, policy="fifo")
        fair = run_service(cube, specs, policy="fair-share")
        mouse_fifo = next(j for j in fifo.jobs if j.tenant == "mouse")
        mouse_fair = next(j for j in fair.jobs if j.tenant == "mouse")
        # fifo ranks the hog's second job first (earlier submission);
        # fair-share ranks the mouse first (zero consumption so far)
        assert mouse_fair.finish_time < mouse_fifo.finish_time
        # everything still completes under both policies
        assert not fifo.degraded and not fair.degraded
        assert len(fair.accepted) == 3

    def test_policies_only_reorder_never_lose_work(self):
        specs = [
            JobSpec(tenant="a", message_elems=16, packet_elems=4),
            JobSpec(tenant="b", op="scatter", message_elems=4,
                    arrival=2.0, priority=3),
            JobSpec(tenant="c", op="allgather", message_elems=2,
                    arrival=4.0),
        ]
        totals = set()
        for name in sorted(POLICIES):
            result = run_service(Hypercube(3), specs, policy=name)
            assert all(j.complete for j in result.jobs)
            totals.add(sum(j.elems for j in result.accepted))
        assert len(totals) == 1  # same traffic volume under every policy
