"""Scenario registry and the ``repro service`` CLI surface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.experiments import SCENARIOS, get_scenario
from repro.service import POLICIES


class TestScenarioRegistry:
    def test_expected_names(self):
        assert {"smoke-mix", "three-tenant-n10", "priority-tiers",
                "hog-vs-mice"} <= set(SCENARIOS)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            get_scenario("nope")

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_builders_yield_sorted_multi_tenant_jobs(self, name):
        scenario = SCENARIOS[name]
        specs = scenario.build(0)
        assert specs, name
        assert len({s.tenant for s in specs}) >= 2
        arrivals = [s.arrival for s in specs]
        assert arrivals == sorted(arrivals)
        top = 1 << scenario.dimension
        assert all(0 <= s.source < top for s in specs)


class TestServiceParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["service"])

    def test_run_defaults(self):
        args = build_parser().parse_args(
            ["service", "run", "--scenario", "smoke-mix"]
        )
        assert args.policy == "fifo" and args.seed == 0
        assert args.ports == "full" and args.on_fault == "raise"

    def test_policy_choices_track_registry(self):
        for name in POLICIES:
            args = build_parser().parse_args(
                ["service", "run", "--scenario", "x", "--policy", name]
            )
            assert args.policy == name


class TestServiceCommands:
    def test_list(self, capsys):
        assert main(["service", "list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out
        for name in POLICIES:
            assert name in out

    def test_unknown_scenario_fails_cleanly(self, capsys):
        assert main(["service", "run", "--scenario", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    @pytest.mark.parametrize("policy", ["fifo", "fair-share"])
    def test_run_smoke_mix_emits_quantiles(self, policy, capsys, tmp_path):
        metrics = tmp_path / "metrics.json"
        code = main([
            "service", "run", "--scenario", "smoke-mix",
            "--policy", policy, "--seed", "7",
            "--metrics-json", str(metrics),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "jobs submitted" in out
        assert "cmpl p99" in out

        blob = json.loads(metrics.read_text())
        assert blob["scenario"] == "smoke-mix"
        service = blob["service"]
        assert service["policy"] == policy
        assert service["jobs_accepted"] >= 2
        for tenant in ("ant", "bee"):
            stats = service["tenants"][tenant]
            assert stats["completion_time"]["p99"] > 0
            assert stats["queueing_delay"]["p99"] >= 0
        # the obs registry carries the histogram + exact-quantile series
        reg = blob["registry"]
        assert "repro_service_quantiles" in reg
        assert "repro_service_completion_time" in reg

    def test_run_with_queue_cap_reports_rejections(self, capsys):
        code = main([
            "service", "run", "--scenario", "smoke-mix", "--seed", "7",
            "--max-in-flight", "1", "--queue-cap", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "jobs rejected" in out
