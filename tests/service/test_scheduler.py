"""Scheduler semantics: admission control, queueing, accounting."""

from __future__ import annotations

import json
import math

import pytest

from repro.service import (
    AdmissionControl,
    CollectiveService,
    JobSpec,
    run_service,
)
from repro.sim.ports import PortModel
from repro.topology import Hypercube


def _jobs(*specs):
    return [JobSpec(**s) for s in specs]


class TestJobSpec:
    def test_rejects_unknown_op(self):
        with pytest.raises(ValueError, match="op must be one of"):
            JobSpec(tenant="t", op="allscatter")

    def test_rejects_negative_arrival(self):
        with pytest.raises(ValueError, match="arrival"):
            JobSpec(tenant="t", arrival=-1.0)

    def test_rejects_empty_message(self):
        with pytest.raises(ValueError, match="message_elems"):
            JobSpec(tenant="t", message_elems=0)


class TestAdmissionControl:
    def test_validates_limits(self):
        with pytest.raises(ValueError):
            AdmissionControl(max_in_flight_total=0)
        with pytest.raises(ValueError):
            AdmissionControl(queue_cap=-1)

    def test_unconstrained_property(self):
        assert AdmissionControl().unconstrained
        assert AdmissionControl(queue_cap=5).unconstrained
        assert not AdmissionControl(max_in_flight_total=1).unconstrained


class TestEmptyRun:
    def test_no_jobs(self):
        result = run_service(Hypercube(3), [])
        assert result.jobs == [] and result.makespan == 0.0
        assert result.view is None and result.latency_summary() == {}


class TestSerializedCube:
    def test_max_in_flight_one_serializes(self):
        """Cap 1: admit/finish windows of consecutive jobs never
        overlap, later arrivals wait in queue."""
        specs = _jobs(
            dict(tenant="a", message_elems=32, packet_elems=8),
            dict(tenant="b", message_elems=32, packet_elems=8),
            dict(tenant="a", message_elems=32, packet_elems=8),
        )
        result = run_service(
            Hypercube(3), specs,
            admission=AdmissionControl(max_in_flight_total=1),
        )
        done = sorted(result.accepted, key=lambda j: j.admit_time)
        assert len(done) == 3
        for early, late in zip(done, done[1:]):
            assert late.admit_time >= early.finish_time
        assert done[1].queueing_delay > 0.0
        assert all(not j.degraded for j in done)

    def test_per_tenant_cap(self):
        """Tenant cap 1: tenant a's second job waits for its first,
        tenant b sails through."""
        specs = _jobs(
            dict(tenant="a", message_elems=32, packet_elems=8),
            dict(tenant="a", message_elems=32, packet_elems=8),
            dict(tenant="b", message_elems=4),
        )
        result = run_service(
            Hypercube(3), specs,
            admission=AdmissionControl(max_in_flight_per_tenant=1),
        )
        a1, a2, b = result.jobs
        assert a2.admit_time >= a1.finish_time
        assert b.admit_time == 0.0

    def test_queue_cap_rejects_with_reason(self):
        """One on the cube, one waiting; arrivals three and four bounce."""
        specs = _jobs(
            dict(tenant="t", message_elems=64, packet_elems=8, arrival=0.0),
            dict(tenant="t", message_elems=64, packet_elems=8, arrival=1.0),
            dict(tenant="t", message_elems=64, packet_elems=8, arrival=2.0),
            dict(tenant="t", message_elems=64, packet_elems=8, arrival=3.0),
        )
        result = run_service(
            Hypercube(3), specs,
            admission=AdmissionControl(max_in_flight_total=1, queue_cap=1),
        )
        assert [j.accepted for j in result.jobs] == [True, True, False, False]
        for j in result.rejected:
            assert j.reject_reason == "queue full (1 waiting)"
            assert math.isnan(j.finish_time)
        assert len(result.accepted) == 2


class TestAccounting:
    def test_latency_summary_shape(self):
        specs = _jobs(
            dict(tenant="x", message_elems=8, arrival=0.0),
            dict(tenant="x", message_elems=8, arrival=5.0),
            dict(tenant="y", op="scatter", message_elems=4, arrival=2.0),
        )
        result = run_service(Hypercube(3), specs)
        summary = result.latency_summary()
        assert set(summary) == {"x", "y"}
        for tenant, metrics in summary.items():
            for metric in ("completion_time", "queueing_delay"):
                stats = metrics[metric]
                assert stats["p50"] <= stats["p99"] <= stats["max"]
                assert stats["count"] == (2.0 if tenant == "x" else 1.0)

    def test_to_dict_is_json_ready(self):
        result = run_service(
            Hypercube(3), _jobs(dict(tenant="t", message_elems=8))
        )
        blob = json.loads(json.dumps(result.to_dict()))
        assert blob["policy"] == "fifo"
        assert blob["jobs_accepted"] == 1
        assert blob["tenants"]["t"]["completion_time"]["p99"] > 0

    def test_submit_validates_source(self):
        service = CollectiveService(Hypercube(3))
        with pytest.raises(ValueError):
            service.submit(JobSpec(tenant="t", source=99))

    def test_all_port_models_run(self):
        specs = _jobs(
            dict(tenant="t", message_elems=8, packet_elems=4),
            dict(tenant="u", op="scatter", message_elems=2, arrival=1.0),
        )
        for pm in PortModel:
            result = run_service(Hypercube(3), specs, port_model=pm)
            assert len(result.accepted) == 2
            assert not result.degraded
