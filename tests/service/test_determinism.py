"""Determinism regression: a service run is a pure function of
(scenario, seed, policy) — worker counts and multiprocessing start
methods for schedule pregeneration must never leak into results."""

from __future__ import annotations

import multiprocessing

import pytest

from repro.experiments import get_scenario, poisson_jobs, TenantProfile
from repro.service import run_service
from repro.topology import Hypercube

SCENARIO = "smoke-mix"
SEED = 3


def _fingerprint(result):
    """Everything observable about a run, in a comparable shape."""
    return (
        result.policy,
        result.makespan,
        [
            (
                j.job_id, j.tenant, j.accepted, j.reject_reason,
                j.admit_time, j.start_time, j.finish_time,
                j.transfers, j.elems, j.link_time,
            )
            for j in result.jobs
        ],
    )


def _run(policy="fifo", **kw):
    scenario = get_scenario(SCENARIO)
    return run_service(
        Hypercube(scenario.dimension), scenario.build(SEED),
        policy=policy, **kw,
    )


class TestInjectorDeterminism:
    def test_same_seed_same_jobs(self):
        scenario = get_scenario(SCENARIO)
        assert scenario.build(SEED) == scenario.build(SEED)

    def test_different_seed_different_jobs(self):
        scenario = get_scenario(SCENARIO)
        assert scenario.build(SEED) != scenario.build(SEED + 1)

    def test_tenant_streams_are_independent(self):
        """Adding a tenant never perturbs another tenant's draws."""
        base = TenantProfile(tenant="ant", rate=1 / 200.0)
        extra = TenantProfile(tenant="newcomer", rate=1 / 300.0)
        solo = poisson_jobs([base], horizon=1000.0, dimension=4, seed=9)
        both = poisson_jobs([base, extra], horizon=1000.0, dimension=4, seed=9)
        assert [j for j in both if j.tenant == "ant"] == solo


class TestRunDeterminism:
    @pytest.mark.parametrize("policy", ["fifo", "priority", "fair-share"])
    def test_repeat_runs_identical(self, policy):
        assert _fingerprint(_run(policy)) == _fingerprint(_run(policy))

    def test_worker_count_is_invisible(self):
        serial = _fingerprint(_run(jobs=1))
        fanned = _fingerprint(_run(jobs=2))
        assert serial == fanned

    def test_start_method_is_invisible(self):
        methods = [
            m for m in ("fork", "spawn")
            if m in multiprocessing.get_all_start_methods()
        ]
        want = _fingerprint(_run(jobs=1))
        for method in methods:
            assert _fingerprint(_run(jobs=2, mp_context=method)) == want
