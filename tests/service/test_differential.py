"""Differential layer: the service is the engine, bit for bit.

A single-job service run must be indistinguishable from running the
same schedule standalone on the vectorized engine — same completion
time, same sorted start times, same per-edge traffic, same final
holdings — for **every** tree algorithm and every port model.  Any
drift here means the merge/untag/provenance plumbing changed the
simulation, which would invalidate every multi-tenant result built on
top of it.
"""

from __future__ import annotations

import math

import pytest

from repro.collectives.api import (
    BROADCAST_ALGORITHMS,
    SCATTER_ALGORITHMS,
    collective_schedule,
)
from repro.service import JobSpec, run_service
from repro.sim.machine import IPSC_D7
from repro.sim.ports import PortModel
from repro.sim.vectorized import run_async_vectorized
from repro.topology import Hypercube

N = 4
SOURCE = 3
M = 12
B = 4

GRID = [
    (op, algo, pm)
    for op, algos in (
        ("broadcast", BROADCAST_ALGORITHMS),
        ("scatter", SCATTER_ALGORITHMS),
        ("allgather", (None,)),
        ("alltoall", (None,)),
    )
    for algo in algos
    for pm in PortModel
]


def _ids(case):
    op, algo, pm = case
    return f"{op}-{algo or 'default'}-{pm.name.lower()}"


@pytest.mark.parametrize("case", GRID, ids=_ids)
def test_single_job_service_matches_standalone(case):
    op, algo, pm = case
    cube = Hypercube(N)
    sched, initial = collective_schedule(cube, op, algo, SOURCE, M, B, pm)
    standalone = run_async_vectorized(cube, sched, pm, initial)

    result = run_service(
        cube,
        [JobSpec(tenant="solo", op=op, algorithm=algo, source=SOURCE,
                 message_elems=M, packet_elems=B)],
        port_model=pm,
    )
    assert result.view is not None
    job = result.jobs[0]
    sl = result.view.slices[0]

    # times: bit-identical, not approximately equal
    assert result.makespan == standalone.time
    assert job.finish_time == standalone.time
    assert sl.start_times == standalone.start_times
    assert sl.executed == standalone.transfers_executed

    # traffic: identical per-edge packet and element counters
    assert sl.link_stats.packets == standalone.link_stats.packets
    assert sl.link_stats.elems == standalone.link_stats.elems

    # data: untagged holdings equal the standalone run's holdings
    assert result.view.job_holdings(0) == standalone.holdings
    assert not job.undelivered
    assert not job.degraded


@pytest.mark.parametrize("pm", list(PortModel), ids=lambda p: p.name.lower())
def test_single_job_matches_standalone_under_ipsc_machine(pm):
    """The equivalence holds under a real machine model too."""
    cube = Hypercube(N)
    sched, initial = collective_schedule(
        cube, "broadcast", "msbt", SOURCE, M, B, pm
    )
    standalone = run_async_vectorized(cube, sched, pm, initial, IPSC_D7)
    result = run_service(
        cube,
        [JobSpec(tenant="solo", op="broadcast", algorithm="msbt",
                 source=SOURCE, message_elems=M, packet_elems=B)],
        port_model=pm,
        machine=IPSC_D7,
    )
    assert result.makespan == standalone.time
    assert result.view.slices[0].start_times == standalone.start_times
    assert result.view.job_holdings(0) == standalone.holdings


def test_deferred_job_is_a_time_shifted_standalone_run():
    """A job admitted onto an idle cube at t is the standalone run
    shifted by exactly t — floats included (unit costs keep the shift
    exact)."""
    cube = Hypercube(N)
    sched, initial = collective_schedule(
        cube, "broadcast", "msbt", SOURCE, M, B, PortModel.ONE_PORT_FULL
    )
    standalone = run_async_vectorized(
        cube, sched, PortModel.ONE_PORT_FULL, initial
    )
    shift = 1000.0
    result = run_service(
        cube,
        [JobSpec(tenant="late", op="broadcast", algorithm="msbt",
                 source=SOURCE, message_elems=M, packet_elems=B,
                 arrival=shift)],
        port_model=PortModel.ONE_PORT_FULL,
    )
    job = result.jobs[0]
    assert job.admit_time == shift
    assert math.isclose(job.finish_time, shift + standalone.time)
    assert job.queueing_delay == 0.0
    got = result.view.slices[0].start_times
    want = [s + shift for s in standalone.start_times]
    assert got == pytest.approx(want, abs=1e-9)
