"""Documentation hygiene: files exist, public API is documented."""

import inspect
from pathlib import Path

import pytest

ROOT = Path(__file__).parent.parent

PACKAGES = [
    "repro",
    "repro.bits",
    "repro.topology",
    "repro.trees",
    "repro.sim",
    "repro.routing",
    "repro.collectives",
    "repro.analysis",
    "repro.experiments",
    "repro.obs",
    "repro.service",
]


class TestDocsExist:
    @pytest.mark.parametrize(
        "name", ["README.md", "DESIGN.md", "EXPERIMENTS.md", "docs/API.md",
                 "docs/SERVICE.md"]
    )
    def test_file_present_and_substantial(self, name):
        path = ROOT / name
        assert path.exists(), name
        assert len(path.read_text()) > 1500, name

    def test_design_references_real_modules(self):
        text = (ROOT / "DESIGN.md").read_text()
        for mod in ("repro.trees.sbt", "repro.trees.msbt", "repro.trees.bst",
                    "repro.sim", "repro.routing", "repro.analysis.models"):
            assert mod.split(".")[-1] in text, mod

    def test_experiments_covers_all_tables_and_figures(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for i in range(1, 7):
            assert f"Table {i}" in text
        for i in range(5, 9):
            assert f"Figure {i}" in text


class TestDocstringCoverage:
    @pytest.mark.parametrize("pkg", PACKAGES)
    def test_every_public_symbol_documented(self, pkg):
        import importlib

        module = importlib.import_module(pkg)
        missing = []
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                if not (obj.__doc__ or "").strip():
                    missing.append(name)
        assert not missing, f"{pkg}: undocumented public symbols {missing}"

    @pytest.mark.parametrize("pkg", PACKAGES)
    def test_module_has_docstring(self, pkg):
        import importlib

        module = importlib.import_module(pkg)
        assert (module.__doc__ or "").strip(), pkg

    def test_public_classes_document_their_methods(self):
        from repro.topology import Hypercube
        from repro.trees import SpanningTree

        for cls in (Hypercube, SpanningTree):
            for name, member in inspect.getmembers(cls):
                if name.startswith("_") or not callable(member):
                    continue
                assert (member.__doc__ or "").strip(), f"{cls.__name__}.{name}"


class TestPackagingMetadata:
    def test_version_consistent(self):
        import repro

        pyproject = (ROOT / "pyproject.toml").read_text()
        assert f'version = "{repro.__version__}"' in pyproject

    def test_pyproject_lists_only_numpy_runtime_dep(self):
        pyproject = (ROOT / "pyproject.toml").read_text()
        assert 'dependencies = ["numpy' in pyproject
