"""Shared fixtures and hypothesis profiles for the test suite."""

from __future__ import annotations

import os

import pytest

from repro.topology import Hypercube

try:
    from hypothesis import HealthCheck, settings

    # CI runs derandomized so a red build is reproducible locally by
    # loading the same profile (HYPOTHESIS_PROFILE=ci); dev keeps
    # hypothesis's random exploration but drops the per-example
    # deadline, which flakes on loaded CI runners and slow laptops.
    settings.register_profile(
        "ci",
        derandomize=True,
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.register_profile("dev", deadline=None)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
except ImportError:  # pragma: no cover - hypothesis is a test extra
    pass


@pytest.fixture(params=[2, 3, 4, 5])
def cube(request) -> Hypercube:
    """Cubes of several dimensions for parameterized structural tests."""
    return Hypercube(request.param)


@pytest.fixture
def cube4() -> Hypercube:
    """A 4-cube, the workhorse size for routing tests."""
    return Hypercube(4)


@pytest.fixture
def cube5() -> Hypercube:
    """A 5-cube for the heavier routing tests."""
    return Hypercube(5)
