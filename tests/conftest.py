"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.topology import Hypercube


@pytest.fixture(params=[2, 3, 4, 5])
def cube(request) -> Hypercube:
    """Cubes of several dimensions for parameterized structural tests."""
    return Hypercube(request.param)


@pytest.fixture
def cube4() -> Hypercube:
    """A 4-cube, the workhorse size for routing tests."""
    return Hypercube(4)


@pytest.fixture
def cube5() -> Hypercube:
    """A 5-cube for the heavier routing tests."""
    return Hypercube(5)
