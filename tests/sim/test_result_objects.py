"""Result-object behaviour of both engines."""

import pytest

from repro.sim import PortModel, Schedule, Transfer
from repro.sim.engine import run_async
from repro.sim.synchronous import run_synchronous
from repro.topology import Hypercube


def _t(src, dst, *chunks):
    return Transfer(src, dst, frozenset(chunks))


class TestSyncResult:
    def test_holds_accessor(self, cube4):
        sched = Schedule(rounds=[(_t(0, 1, "a"),)], chunk_sizes={"a": 1})
        res = run_synchronous(cube4, sched, PortModel.ALL_PORT, {0: {"a"}})
        assert res.holds(1, "a")
        assert res.holds(0, "a")
        assert not res.holds(2, "a")
        assert not res.holds(1, "zzz")

    def test_step_costs_align_with_time(self, cube4):
        sched = Schedule(
            rounds=[(_t(0, 1, "a"),), (_t(1, 3, "a"),)],
            chunk_sizes={"a": 3},
        )
        res = run_synchronous(cube4, sched, PortModel.ALL_PORT, {0: {"a"}})
        assert len(res.step_costs) == res.cycles == 2
        assert sum(res.step_costs) == res.time

    def test_initial_holdings_not_mutated(self, cube4):
        init = {0: {"a"}}
        sched = Schedule(rounds=[(_t(0, 1, "a"),)], chunk_sizes={"a": 1})
        run_synchronous(cube4, sched, PortModel.ALL_PORT, init)
        assert init == {0: {"a"}}


class TestAsyncResult:
    def test_holdings_complete(self, cube4):
        sched = Schedule(
            rounds=[(_t(0, 1, "a"),), (_t(1, 3, "a"),)],
            chunk_sizes={"a": 3},
        )
        res = run_async(cube4, sched, PortModel.ALL_PORT, {0: {"a"}})
        assert "a" in res.holdings[0]
        assert "a" in res.holdings[1]
        assert "a" in res.holdings[3]
        assert "a" not in res.holdings[2]

    def test_empty_schedule(self, cube4):
        res = run_async(cube4, Schedule(rounds=[], chunk_sizes={}), PortModel.ALL_PORT, {})
        assert res.time == 0.0
        assert res.transfers_executed == 0

    def test_link_stats_match_sync(self, cube4):
        from repro.routing import msbt_broadcast_schedule

        sched = msbt_broadcast_schedule(cube4, 0, 16, 4, PortModel.ONE_PORT_FULL)
        init = {0: set(sched.chunk_sizes)}
        s = run_synchronous(cube4, sched, PortModel.ONE_PORT_FULL, init)
        a = run_async(cube4, sched, PortModel.ONE_PORT_FULL, init)
        assert s.link_stats.elems == a.link_stats.elems
        assert s.link_stats.packets == a.link_stats.packets
