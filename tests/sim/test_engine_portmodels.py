"""Deeper asynchronous-engine tests: contention chains, overlap stacks,
receive-side blocking, and cross-model orderings."""

import pytest

from repro.sim import MachineParams, PortModel, Schedule, Transfer
from repro.sim.engine import run_async
from repro.topology import Hypercube


def _t(src, dst, *chunks):
    return Transfer(src, dst, frozenset(chunks))


def _m(tau=0.0, t_c=1.0, overlap=0.0):
    return MachineParams(tau=tau, t_c=t_c, overlap=overlap)


class TestReceiveContention:
    def test_receiver_serializes_inbound_under_one_port(self, cube4):
        # two different senders target node 3: one-port recv serializes
        sched = Schedule(
            rounds=[(_t(1, 3, "a"), _t(2, 3, "b"))],
            chunk_sizes={"a": 10, "b": 10},
        )
        init = {1: {"a"}, 2: {"b"}}
        one = run_async(cube4, sched, PortModel.ONE_PORT_FULL, init, _m())
        allp = run_async(cube4, sched, PortModel.ALL_PORT, init, _m())
        assert one.time == pytest.approx(20.0)
        assert allp.time == pytest.approx(10.0)

    def test_sender_blocked_by_busy_receiver_half_duplex(self, cube4):
        # node 1 is sending (busy); an inbound transfer to node 1 must
        # wait under half duplex but not under full duplex
        sched = Schedule(
            rounds=[(_t(1, 3, "a"),), (_t(0, 1, "b"),)],
            chunk_sizes={"a": 10, "b": 10},
        )
        init = {1: {"a"}, 0: {"b"}}
        half = run_async(cube4, sched, PortModel.ONE_PORT_HALF, init, _m())
        full = run_async(cube4, sched, PortModel.ONE_PORT_FULL, init, _m())
        assert half.time == pytest.approx(20.0)
        assert full.time == pytest.approx(10.0)


class TestOverlapChains:
    def test_three_port_chain_accumulates_overlap(self, cube4):
        # sends on ports 0, 1, 2 from node 0: each successive send may
        # start at 80% of the previous one
        sched = Schedule(
            rounds=[(_t(0, 1, "a"),), (_t(0, 2, "b"),), (_t(0, 4, "c"),)],
            chunk_sizes={"a": 10, "b": 10, "c": 10},
        )
        init = {0: {"a", "b", "c"}}
        res = run_async(cube4, sched, PortModel.ONE_PORT_FULL, init, _m(overlap=0.2))
        # starts at 0, 8, 16 -> finish 26 (not 30)
        assert res.time == pytest.approx(26.0)

    def test_overlap_does_not_apply_to_reuse_of_same_port(self, cube4):
        sched = Schedule(
            rounds=[(_t(0, 1, "a"),), (_t(0, 2, "b"),), (_t(0, 1, "c"),)],
            chunk_sizes={"a": 10, "b": 10, "c": 10},
        )
        init = {0: {"a", "b", "c"}}
        res = run_async(cube4, sched, PortModel.ONE_PORT_FULL, init, _m(overlap=0.2))
        # third send reuses port 0: must wait for the first to END (10),
        # and for 80% of the second (8 + 8 = 16) -> starts at 16
        assert res.time == pytest.approx(26.0)


class TestCrossModelOrdering:
    @pytest.mark.parametrize("gen", ["msbt", "sbt"])
    def test_more_ports_never_slower(self, cube5, gen):
        from repro.routing import msbt_broadcast_schedule, sbt_broadcast_schedule

        gen_fn = msbt_broadcast_schedule if gen == "msbt" else sbt_broadcast_schedule
        times = {}
        for pm in PortModel:
            sched = gen_fn(cube5, 0, 48, 4, pm)
            init = {0: set(sched.chunk_sizes)}
            times[pm] = run_async(cube5, sched, pm, init, _m(tau=1.0)).time
        assert times[PortModel.ALL_PORT] <= times[PortModel.ONE_PORT_FULL] + 1e-9
        assert times[PortModel.ONE_PORT_FULL] <= times[PortModel.ONE_PORT_HALF] + 1e-9

    def test_start_times_are_reported(self, cube4):
        sched = Schedule(
            rounds=[(_t(0, 1, "a"),), (_t(1, 3, "a"),)],
            chunk_sizes={"a": 5},
        )
        res = run_async(cube4, sched, PortModel.ALL_PORT, {0: {"a"}}, _m())
        assert res.start_times == [0.0, 5.0]
        assert res.transfers_executed == 2


class TestZeroSizeTransfers:
    def test_marker_chunks_cost_one_startup(self, cube4):
        sched = Schedule(
            rounds=[(_t(0, 1, ("done", 0, 0)),)],
            chunk_sizes={("done", 0, 0): 0},
        )
        res = run_async(
            cube4, sched, PortModel.ONE_PORT_FULL,
            {0: {("done", 0, 0)}}, MachineParams(tau=2.0, t_c=1.0),
        )
        assert res.time == pytest.approx(2.0)
