"""Tests for schedule composition (concurrent multi-source collectives)."""

import pytest

from repro.routing import msbt_broadcast_schedule, reschedule, sbt_broadcast_schedule
from repro.sim import PortModel, run_synchronous
from repro.sim.schedule import merge_schedules
from repro.topology import Hypercube


class TestMergeSchedules:
    def test_two_broadcasts_compose_and_deliver(self, cube4):
        pm = PortModel.ONE_PORT_FULL
        s0 = msbt_broadcast_schedule(cube4, 0, 8, 2, pm)
        s1 = msbt_broadcast_schedule(cube4, 15, 8, 2, pm)
        merged = merge_schedules([s0, s1])
        init = {
            0: {(0, c) for c in s0.chunk_sizes},
            15: {(1, c) for c in s1.chunk_sizes},
        }
        packed = reschedule(cube4, merged, pm, init)
        res = run_synchronous(cube4, packed, pm, init)
        for v in cube4.nodes():
            assert res.holdings[v] >= set(merged.chunk_sizes), v

    def test_concurrent_broadcasts_cheaper_than_sequential(self, cube4):
        # two sources far apart can share the cube: packed rounds are
        # fewer than the sum of the individual runs
        pm = PortModel.ONE_PORT_FULL
        s0 = sbt_broadcast_schedule(cube4, 0, 8, 2, pm)
        s1 = sbt_broadcast_schedule(cube4, 15, 8, 2, pm)
        merged = merge_schedules([s0, s1])
        init = {
            0: {(0, c) for c in s0.chunk_sizes},
            15: {(1, c) for c in s1.chunk_sizes},
        }
        packed = reschedule(cube4, merged, pm, init)
        individual = s0.compact().num_rounds + s1.compact().num_rounds
        assert packed.num_rounds < individual

    def test_chunk_tagging_prevents_aliasing(self, cube4):
        s0 = sbt_broadcast_schedule(cube4, 0, 4, 4, PortModel.ONE_PORT_FULL)
        s1 = sbt_broadcast_schedule(cube4, 3, 4, 4, PortModel.ONE_PORT_FULL)
        merged = merge_schedules([s0, s1])
        # both used ("b", 0); tagged apart they are distinct chunks
        assert (0, ("b", 0)) in merged.chunk_sizes
        assert (1, ("b", 0)) in merged.chunk_sizes

    def test_untagged_merge_keeps_chunk_ids(self, cube4):
        s0 = sbt_broadcast_schedule(cube4, 0, 4, 4, PortModel.ONE_PORT_FULL)
        merged = merge_schedules([s0], tag_chunks=False)
        assert set(merged.chunk_sizes) == set(s0.chunk_sizes)

    def test_conflicting_sizes_rejected(self, cube4):
        s0 = sbt_broadcast_schedule(cube4, 0, 4, 4, PortModel.ONE_PORT_FULL)
        s1 = sbt_broadcast_schedule(cube4, 0, 8, 8, PortModel.ONE_PORT_FULL)
        with pytest.raises(ValueError, match="conflicting"):
            merge_schedules([s0, s1], tag_chunks=False)

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            merge_schedules([])
