"""The vectorized array-core engine is bit-identical to the indexed one.

``repro.sim.vectorized.run_async_vectorized`` lowers the schedule to
flat NumPy tables (:mod:`repro.sim.lowering`) and batches admission
through the :mod:`repro.sim._kernels` prefilter, but its results must
match the indexed engine — and hence the reference oracle — to the
last ulp: completion time, holdings, link statistics, start times,
fault errors and degraded results alike.

Also covers the engine dispatch layer (:mod:`repro.sim.dispatch`), the
``engine=`` plumbing through the collectives API and the sweep
executor, the prefilter kernel's NumPy fallback, and the
``repro_engine_table_bytes_peak`` gauge.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.api import broadcast
from repro.experiments.parallel import run_sweep
from repro.obs import REGISTRY
from repro.obs.instruments import ENGINE_TABLE_BYTES_PEAK
from repro.routing import (
    allgather_schedule,
    bst_scatter_schedule,
    dual_hp_broadcast_schedule,
    msbt_broadcast_schedule,
    sbt_broadcast_schedule,
    sbt_scatter_schedule,
    tree_broadcast_schedule,
)
from repro.sim import ENGINES, get_engine, resolve_engine
from repro.sim._engine_reference import run_async_reference
from repro.sim._kernels import HAVE_NUMBA, _prefilter_numpy, prefilter
from repro.sim.engine import run_async
from repro.sim.faults import DegradedResult, FaultError, FaultPlan
from repro.sim.lowering import lower_schedule
from repro.sim.machine import IPSC_D7, UNIT_COST, MachineParams
from repro.sim.ports import PortModel
from repro.sim.schedule import Schedule, Transfer
from repro.sim.vectorized import run_async_vectorized
from repro.topology.hypercube import Hypercube
from repro.trees.hamiltonian import HamiltonianPathTree
from repro.trees.tcbt import TwoRootedCompleteBinaryTree

MACHINES = [
    IPSC_D7,
    UNIT_COST,
    MachineParams(tau=0.5, t_c=2.0, overlap=0.3, name="overlap-heavy"),
]

CUBE = Hypercube(4)


def _schedules(source: int, port_model: PortModel):
    """(name, schedule, initial holdings) for every algorithm family."""
    out = []
    for name, sched in [
        ("sbt-broadcast", sbt_broadcast_schedule(CUBE, source, 37, 8, port_model)),
        ("msbt-broadcast", msbt_broadcast_schedule(CUBE, source, 37, 8, port_model)),
        (
            "tcbt-broadcast",
            tree_broadcast_schedule(
                TwoRootedCompleteBinaryTree(CUBE, source), 37, 8, port_model
            ),
        ),
        (
            "hp-broadcast",
            tree_broadcast_schedule(
                HamiltonianPathTree(CUBE, source), 37, 8, port_model
            ),
        ),
        (
            "dual-hp-broadcast",
            dual_hp_broadcast_schedule(CUBE, source, 37, 8, port_model),
        ),
        ("bst-scatter", bst_scatter_schedule(CUBE, source, 37, 8, port_model)),
        ("sbt-scatter", sbt_scatter_schedule(CUBE, source, 37, 8, port_model)),
    ]:
        out.append((name, sched, {source: set(sched.chunk_sizes)}))
    ag = allgather_schedule(CUBE, 11, port_model)
    out.append(
        (
            "allgather",
            ag,
            {v: {c for c in ag.chunk_sizes if c[1] == v} for v in CUBE.nodes()},
        )
    )
    return out


@pytest.mark.parametrize("machine", MACHINES, ids=lambda m: m.name)
@pytest.mark.parametrize("port_model", list(PortModel), ids=lambda p: p.value)
@pytest.mark.parametrize("source", [0, 5])
def test_vectorized_matches_indexed_and_reference(source, port_model, machine):
    for name, sched, init in _schedules(source, port_model):
        vec = run_async_vectorized(
            CUBE, sched, port_model, {k: set(v) for k, v in init.items()}, machine
        )
        idx = run_async(
            CUBE, sched, port_model, {k: set(v) for k, v in init.items()}, machine
        )
        ref = run_async_reference(
            CUBE, sched, port_model, {k: set(v) for k, v in init.items()}, machine
        )
        assert vec.time == idx.time == ref.time, name
        assert vec.holdings == idx.holdings == ref.holdings, name
        assert vec.link_stats == idx.link_stats == ref.link_stats, name
        assert vec.transfers_executed == idx.transfers_executed, name
        # the reference appends in execution order; both production
        # engines sort ascending
        assert vec.start_times == idx.start_times == sorted(ref.start_times), name


#: fault plans for the differential matrix — immediate links/nodes,
#: combinations, and time-activated variants (cube-4 addresses)
FAULT_PLANS = [
    FaultPlan(dead_links=[(0, 1)]),
    FaultPlan(dead_links=[(2, 6), (4, 5)]),
    FaultPlan(dead_nodes=[6]),
    FaultPlan(dead_links=[(0, 8)], dead_nodes=[9]),
    FaultPlan(dead_links=[(0, 1, 40.0)]),
    FaultPlan(dead_nodes=[(3, 25.0)]),
]


def _run_or_fault(engine, sched, port_model, init, machine, plan, mode):
    try:
        return engine(
            CUBE, sched, port_model, {k: set(v) for k, v in init.items()},
            machine, faults=plan, on_fault=mode,
        )
    except FaultError as err:
        return err


@pytest.mark.parametrize("mode", ["raise", "report"])
@pytest.mark.parametrize("port_model", list(PortModel), ids=lambda p: p.value)
def test_fault_matrix_vectorized_agrees(port_model, mode):
    """Under every fault plan, the vectorized engine and the indexed
    engine produce the same outcome: same FaultError (edge, node, time)
    in raise mode; bit-identical results — degraded or not — in report
    mode, including the undelivered map and the cancelled-event set."""
    for name, sched, init in _schedules(0, port_model):
        for plan in FAULT_PLANS:
            vec = _run_or_fault(
                run_async_vectorized, sched, port_model, init, UNIT_COST,
                plan, mode,
            )
            idx = _run_or_fault(
                run_async, sched, port_model, init, UNIT_COST, plan, mode
            )
            label = f"{name}/{plan!r}/{mode}"
            assert type(vec) is type(idx), label
            if isinstance(vec, FaultError):
                assert vec.edge == idx.edge, label
                assert vec.node == idx.node, label
                assert vec.time == idx.time, label
                assert vec.chunks == idx.chunks, label
                continue
            assert vec.time == idx.time, label
            assert vec.holdings == idx.holdings, label
            assert vec.link_stats == idx.link_stats, label
            assert sorted(vec.start_times) == sorted(idx.start_times), label
            if isinstance(vec, DegradedResult):
                assert vec.undelivered == idx.undelivered, label
                assert vec.transfers_lost == idx.transfers_lost, label
                assert set(vec.fault_events) == set(idx.fault_events), label


def test_vectorized_deadlock_diagnosis():
    """Unsatisfiable payload dependencies raise, not spin."""
    sched = Schedule(
        rounds=[(Transfer(2, 3, frozenset({("b", 0)})),)],
        chunk_sizes={("b", 0): 4},
        algorithm="broken",
        meta={},
    )
    with pytest.raises(RuntimeError, match="deadlock"):
        run_async_vectorized(
            CUBE, sched, PortModel.ONE_PORT_FULL, {1: {("b", 0)}}, UNIT_COST
        )


def test_vectorized_circular_dependency_deadlocks():
    sched = Schedule(
        rounds=[
            (
                Transfer(0, 1, frozenset({("b", 0)})),
                Transfer(1, 0, frozenset({("b", 1)})),
            ),
        ],
        chunk_sizes={("b", 0): 4, ("b", 1): 4},
        algorithm="broken",
        meta={},
    )
    with pytest.raises(RuntimeError, match="deadlock"):
        run_async_vectorized(
            CUBE,
            sched,
            PortModel.ONE_PORT_FULL,
            {0: {("b", 1)}, 1: {("b", 0)}},
            UNIT_COST,
        )


def test_vectorized_accepts_prelowered_schedule():
    """Passing ``lowered=`` skips re-lowering but changes nothing."""
    sched = msbt_broadcast_schedule(CUBE, 0, 37, 8, PortModel.ONE_PORT_FULL)
    init = {0: set(sched.chunk_sizes)}
    low = lower_schedule(CUBE, sched, {0: set(sched.chunk_sizes)})
    a = run_async_vectorized(
        CUBE, sched, PortModel.ONE_PORT_FULL, {0: set(sched.chunk_sizes)},
        IPSC_D7, lowered=low,
    )
    b = run_async_vectorized(
        CUBE, sched, PortModel.ONE_PORT_FULL, init, IPSC_D7
    )
    assert a.time == b.time and a.start_times == b.start_times
    assert low.table_bytes > 0


# -- property-based equivalence ---------------------------------------


@st.composite
def bcast_params(draw):
    n = draw(st.integers(min_value=2, max_value=4))
    B = draw(st.integers(min_value=1, max_value=16))
    packets = draw(st.integers(min_value=1, max_value=12))
    M = B * packets - draw(st.integers(min_value=0, max_value=B - 1))
    pm = draw(st.sampled_from(list(PortModel)))
    source = draw(st.integers(min_value=0, max_value=(1 << n) - 1))
    return n, M, B, pm, source


@settings(max_examples=40, deadline=None)
@given(bcast_params(), st.sampled_from(["sbt", "msbt"]))
def test_property_vectorized_bit_identical(params, algo):
    n, M, B, pm, source = params
    cube = Hypercube(n)
    gen = sbt_broadcast_schedule if algo == "sbt" else msbt_broadcast_schedule
    sched = gen(cube, source, M, B, pm)
    init = {source: set(sched.chunk_sizes)}
    vec = run_async_vectorized(cube, sched, pm, {source: set(init[source])}, IPSC_D7)
    idx = run_async(cube, sched, pm, {source: set(init[source])}, IPSC_D7)
    assert vec.time == idx.time
    assert vec.holdings == idx.holdings
    assert vec.start_times == idx.start_times
    assert vec.link_stats == idx.link_stats


# -- admission-prefilter kernel ---------------------------------------


def test_prefilter_numpy_semantics():
    ready = np.array([0.0, 5.0, 1.0, np.inf, 2.0])
    vc = np.array([0.0, 0.0, 9.0, 0.0, 2.0])
    idx = np.arange(5, dtype=np.int64)
    out = _prefilter_numpy(idx, ready, vc, 2.0)
    # kept iff ready <= limit AND vc <= limit
    assert out.tolist() == [0, 4]
    empty = _prefilter_numpy(np.array([1, 3], dtype=np.int64), ready, vc, 2.0)
    assert empty.tolist() == []


def test_prefilter_active_matches_fallback():
    """Whatever implementation is bound, it must match the fallback."""
    rng = np.random.default_rng(7)
    ready = rng.uniform(0, 10, size=64)
    vc = rng.uniform(0, 10, size=64)
    vc[::7] = np.inf
    idx = np.asarray(rng.permutation(64)[:40], dtype=np.int64)
    got = prefilter(idx, ready, vc, 5.0)
    want = _prefilter_numpy(idx, ready, vc, 5.0)
    assert sorted(got.tolist()) == sorted(want.tolist())


def test_numba_gate_honours_environment():
    """With REPRO_NO_NUMBA set (or numba absent) the fallback is bound."""
    if os.environ.get("REPRO_NO_NUMBA"):
        assert not HAVE_NUMBA
        assert prefilter is _prefilter_numpy
    elif not HAVE_NUMBA:
        # numba not installed: the canonical NumPy path serves
        assert prefilter is _prefilter_numpy


# -- dispatch and plumbing --------------------------------------------


def test_resolve_engine_default_and_env(monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    assert resolve_engine() == "indexed"
    assert resolve_engine("vectorized") == "vectorized"
    monkeypatch.setenv("REPRO_ENGINE", "vectorized")
    assert resolve_engine() == "vectorized"
    assert resolve_engine("reference") == "reference"
    with pytest.raises(ValueError, match="unknown engine"):
        resolve_engine("bogus")
    monkeypatch.setenv("REPRO_ENGINE", "bogus")
    with pytest.raises(ValueError, match="unknown engine"):
        resolve_engine()


def test_get_engine_returns_runners(monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    assert get_engine() is run_async
    assert get_engine("indexed") is run_async
    assert get_engine("vectorized") is run_async_vectorized
    assert get_engine("reference") is run_async_reference
    assert set(ENGINES) == {"indexed", "vectorized", "reference"}


def test_collectives_engine_parameter():
    cube = Hypercube(4)
    a = broadcast(cube, 0, "msbt", 64, 8, machine=IPSC_D7, run_event_sim=True)
    b = broadcast(
        cube, 0, "msbt", 64, 8, machine=IPSC_D7, run_event_sim=True,
        engine="vectorized",
    )
    assert a.time == b.time
    assert a.async_.start_times == b.async_.start_times
    with pytest.raises(ValueError, match="unknown engine"):
        broadcast(
            cube, 0, "msbt", 64, 8, run_event_sim=True, engine="bogus"
        )


def _sweep_point(n: int) -> float:
    res = broadcast(
        Hypercube(n), 0, "sbt", 32, 8, machine=IPSC_D7, run_event_sim=True
    )
    return res.time


def test_run_sweep_exports_engine(monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    serial = run_sweep(_sweep_point, [{"n": 3}, {"n": 4}])
    vec = run_sweep(_sweep_point, [{"n": 3}, {"n": 4}], engine="vectorized")
    assert serial.values == vec.values
    # the export is scoped to the sweep
    assert "REPRO_ENGINE" not in os.environ
    with pytest.raises(ValueError, match="unknown engine"):
        run_sweep(_sweep_point, [{"n": 3}], engine="bogus")


def test_table_bytes_gauge_tracks_peak():
    sched = msbt_broadcast_schedule(CUBE, 0, 128, 16, PortModel.ONE_PORT_FULL)
    prev = REGISTRY.enabled
    REGISTRY.configure(enabled=True)
    try:
        ENGINE_TABLE_BYTES_PEAK.set(0)
        run_async_vectorized(
            CUBE, sched, PortModel.ONE_PORT_FULL,
            {0: set(sched.chunk_sizes)}, IPSC_D7,
        )
        low = lower_schedule(CUBE, sched, {0: set(sched.chunk_sizes)})
        assert ENGINE_TABLE_BYTES_PEAK.value == low.table_bytes
    finally:
        REGISTRY.configure(enabled=prev)
