"""Unit tests for the lock-step engine and its constraint checking."""

import pytest

from repro.sim import MachineParams, PortModel, Schedule, Transfer
from repro.sim.synchronous import check_round_constraints, run_synchronous
from repro.topology import Hypercube


def _one(src, dst, *chunks):
    return Transfer(src, dst, frozenset(chunks))


class TestConstraintChecking:
    def test_non_edge_rejected(self, cube4):
        with pytest.raises(ValueError, match="not a cube edge"):
            check_round_constraints(cube4, (_one(0, 3, "a"),), PortModel.ALL_PORT, 0)

    def test_duplicate_edge_rejected(self, cube4):
        r = (_one(0, 1, "a"), _one(0, 1, "b"))
        with pytest.raises(ValueError, match="used twice"):
            check_round_constraints(cube4, r, PortModel.ALL_PORT, 0)

    def test_all_port_allows_fanout(self, cube4):
        r = tuple(_one(0, 1 << j, "a") for j in range(4))
        check_round_constraints(cube4, r, PortModel.ALL_PORT, 0)

    def test_one_port_rejects_double_send(self, cube4):
        r = (_one(0, 1, "a"), _one(0, 2, "a"))
        with pytest.raises(ValueError, match="sends 2"):
            check_round_constraints(cube4, r, PortModel.ONE_PORT_FULL, 0)

    def test_one_port_rejects_double_receive(self, cube4):
        r = (_one(1, 0, "a"), _one(2, 0, "a"))
        with pytest.raises(ValueError, match="receives 2"):
            check_round_constraints(cube4, r, PortModel.ONE_PORT_FULL, 0)

    def test_full_duplex_allows_send_plus_receive(self, cube4):
        r = (_one(0, 1, "a"), _one(2, 0, "a"))
        check_round_constraints(cube4, r, PortModel.ONE_PORT_FULL, 0)

    def test_half_duplex_rejects_send_plus_receive(self, cube4):
        r = (_one(0, 1, "a"), _one(2, 0, "a"))
        with pytest.raises(ValueError, match="both sends and receives"):
            check_round_constraints(cube4, r, PortModel.ONE_PORT_HALF, 0)


class TestRunSynchronous:
    def test_delivery_and_cycles(self, cube4):
        sched = Schedule(
            rounds=[(_one(0, 1, "a"),), (_one(1, 3, "a"),)],
            chunk_sizes={"a": 4},
        )
        res = run_synchronous(cube4, sched, PortModel.ONE_PORT_FULL, {0: {"a"}})
        assert res.cycles == 2
        assert res.holds(3, "a") and res.holds(1, "a")
        assert not res.holds(2, "a")

    def test_causality_enforced(self, cube4):
        sched = Schedule(
            rounds=[(_one(1, 3, "a"),)],  # node 1 never received "a"
            chunk_sizes={"a": 1},
        )
        with pytest.raises(ValueError, match="does not hold"):
            run_synchronous(cube4, sched, PortModel.ALL_PORT, {0: {"a"}})

    def test_same_round_delivery_cannot_be_forwarded(self, cube4):
        sched = Schedule(
            rounds=[(_one(0, 1, "a"), _one(1, 3, "a"))],
            chunk_sizes={"a": 1},
        )
        with pytest.raises(ValueError, match="does not hold"):
            run_synchronous(cube4, sched, PortModel.ALL_PORT, {0: {"a"}})

    def test_validate_false_skips_checks(self, cube4):
        sched = Schedule(
            rounds=[(_one(1, 3, "a"),)],
            chunk_sizes={"a": 1},
        )
        res = run_synchronous(
            cube4, sched, PortModel.ALL_PORT, {0: {"a"}}, validate=False
        )
        assert res.cycles == 1

    def test_lockstep_time_prices_largest_packet(self, cube4):
        sched = Schedule(
            rounds=[
                (_one(0, 1, "a"), _one(2, 3, "b")),
                (_one(1, 3, "a"),),
            ],
            chunk_sizes={"a": 2, "b": 10},
        )
        machine = MachineParams(tau=1.0, t_c=1.0)
        res = run_synchronous(
            cube4, sched, PortModel.ALL_PORT,
            {0: {"a"}, 2: {"b"}}, machine,
        )
        assert res.step_costs == [11.0, 3.0]
        assert res.time == 14.0

    def test_empty_rounds_not_counted(self, cube4):
        sched = Schedule(
            rounds=[(), (_one(0, 1, "a"),), ()],
            chunk_sizes={"a": 1},
        )
        res = run_synchronous(cube4, sched, PortModel.ALL_PORT, {0: {"a"}})
        assert res.cycles == 1

    def test_link_stats_recorded(self, cube4):
        sched = Schedule(
            rounds=[(_one(0, 1, "a"),), (_one(0, 1, "b"),)],
            chunk_sizes={"a": 2, "b": 3},
        )
        res = run_synchronous(
            cube4, sched, PortModel.ONE_PORT_FULL, {0: {"a", "b"}}
        )
        assert res.link_stats.max_edge_elems() == 5
        assert res.link_stats.max_edge_packets() == 2
        assert res.link_stats.total_elems() == 5
