"""Unit tests for machine cost parameters."""

import pytest

from repro.sim import IPSC_D7, UNIT_COST, ZERO_STARTUP, MachineParams


class TestSendCost:
    def test_linear_model(self):
        m = MachineParams(tau=2.0, t_c=0.5)
        assert m.send_cost(10) == 2.0 + 5.0
        assert m.send_cost(0) == 2.0  # a header still pays a start-up

    def test_internal_packet_splitting(self):
        m = MachineParams(tau=1.0, t_c=0.0, internal_packet_elems=1024)
        assert m.send_cost(1) == 1.0
        assert m.send_cost(1024) == 1.0
        assert m.send_cost(1025) == 2.0
        assert m.send_cost(4096) == 4.0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            MachineParams().send_cost(-1)


class TestValidation:
    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            MachineParams(tau=-1)
        with pytest.raises(ValueError):
            MachineParams(t_c=-1)
        with pytest.raises(ValueError):
            MachineParams(internal_packet_elems=0)
        with pytest.raises(ValueError):
            MachineParams(overlap=1.0)
        with pytest.raises(ValueError):
            MachineParams(overlap=-0.1)

    def test_with_overlap(self):
        m = IPSC_D7.with_overlap(0.0)
        assert m.overlap == 0.0
        assert m.tau == IPSC_D7.tau

    def test_ideal(self):
        m = IPSC_D7.ideal()
        assert m.internal_packet_elems is None
        assert m.overlap == 0.0


class TestFromBandwidth:
    def test_ipsc_like_numbers(self):
        m = MachineParams.from_bandwidth(1000.0, 0.4, 1024, overlap=0.2)
        assert m.tau == pytest.approx(1e-3)
        assert m.t_c == pytest.approx(2.5e-6)
        assert m.internal_packet_elems == 1024
        # matches the shipped preset
        assert m.tau == IPSC_D7.tau and m.t_c == IPSC_D7.t_c

    def test_bad_numbers_rejected(self):
        with pytest.raises(ValueError):
            MachineParams.from_bandwidth(0, 1)
        with pytest.raises(ValueError):
            MachineParams.from_bandwidth(1, -2)


class TestPresets:
    def test_ipsc_calibration(self):
        assert IPSC_D7.internal_packet_elems == 1024
        assert IPSC_D7.overlap == pytest.approx(0.20)
        assert IPSC_D7.tau > 100 * IPSC_D7.t_c  # start-up dominated hardware

    def test_unit_and_zero(self):
        assert UNIT_COST.send_cost(3) == 4.0
        assert ZERO_STARTUP.send_cost(3) == 3.0
