"""Tests for transit-buffer accounting (§5.2's memory story)."""

import pytest

from repro.routing import bst_scatter_schedule, sbt_scatter_schedule
from repro.sim import PortModel, Schedule, Transfer
from repro.sim.validate import buffer_occupancy, peak_buffer_elems
from repro.topology import Hypercube


def _t(src, dst, *chunks):
    return Transfer(src, dst, frozenset(chunks))


class TestBufferOccupancy:
    def test_forwarded_chunk_occupies_between_hops(self, cube4):
        sched = Schedule(
            rounds=[
                (_t(0, 1, ("m", 3, 0)),),
                (),
                (_t(1, 3, ("m", 3, 0)),),
            ],
            chunk_sizes={("m", 3, 0): 5},
        )
        occ = buffer_occupancy(sched, 1)
        assert occ == [5, 5, 0]

    def test_own_data_stays(self, cube4):
        sched = Schedule(
            rounds=[(_t(0, 1, ("m", 1, 0)),)],
            chunk_sizes={("m", 1, 0): 7},
        )
        assert buffer_occupancy(sched, 1) == [7]
        assert buffer_occupancy(sched, 1, keep_own=False) == [7]

    def test_source_buffers_not_counted(self, cube4):
        # data the node held initially (never "arrived") is app memory
        sched = Schedule(
            rounds=[(_t(0, 1, ("m", 1, 0)),)],
            chunk_sizes={("m", 1, 0): 7},
        )
        assert peak_buffer_elems(sched, 0) == 0

    def test_peak(self, cube4):
        sched = Schedule(
            rounds=[
                (_t(0, 1, ("m", 3, 0)), ),
                (_t(0, 2, ("m", 3, 1)),),
                (_t(1, 3, ("m", 3, 0)),),
            ],
            chunk_sizes={("m", 3, 0): 5, ("m", 3, 1): 5},
        )
        assert peak_buffer_elems(sched, 1) == 5


class TestScatterBuffers:
    def test_sbt_subtree0_head_buffers_half_the_data(self, cube5):
        # recursive halving parks ~N/2 messages at the port-0 child
        M = 4
        sched = sbt_scatter_schedule(
            cube5, 0, M, cube5.num_nodes * M, PortModel.ONE_PORT_FULL
        )
        head = 1  # root's port-0 child
        peak = peak_buffer_elems(sched, head)
        assert peak >= (cube5.num_nodes // 2 - 1) * M

    def test_bst_heads_buffer_only_a_subtree(self, cube5):
        # the BST's heads hold ~N/log N messages — far less than N/2
        M = 4
        sched = bst_scatter_schedule(
            cube5, 0, M, cube5.num_nodes * M, PortModel.ONE_PORT_FULL
        )
        from repro.trees import BalancedSpanningTree

        tree = BalancedSpanningTree(cube5, 0)
        worst = max(
            peak_buffer_elems(sched, head)
            for head in tree.children_map[0]
        )
        sbt_head_load = (cube5.num_nodes // 2 - 1) * M
        assert worst <= tree.subtree_sizes[max(
            tree.children_map[0], key=lambda h: tree.subtree_sizes[h]
        )] * M
        assert worst < sbt_head_load / 2

    def test_small_packets_bound_buffers_further(self, cube4):
        M = 8
        big = bst_scatter_schedule(cube4, 0, M, 10_000, PortModel.ONE_PORT_FULL)
        small = bst_scatter_schedule(cube4, 0, M, M, PortModel.ONE_PORT_FULL)
        head = max(
            (v for v in cube4.nodes() if v != 0),
            key=lambda v: peak_buffer_elems(big, v),
        )
        assert peak_buffer_elems(small, head) <= peak_buffer_elems(big, head)
