"""Unit tests for the asynchronous event-driven engine."""

import pytest

from repro.sim import MachineParams, PortModel, Schedule, Transfer
from repro.sim.engine import run_async
from repro.topology import Hypercube


def _one(src, dst, *chunks):
    return Transfer(src, dst, frozenset(chunks))


def _m(tau=1.0, t_c=1.0, overlap=0.0):
    return MachineParams(tau=tau, t_c=t_c, overlap=overlap)


class TestBasics:
    def test_chain_times_add_up(self, cube4):
        sched = Schedule(
            rounds=[(_one(0, 1, "a"),), (_one(1, 3, "a"),)],
            chunk_sizes={"a": 4},
        )
        res = run_async(cube4, sched, PortModel.ONE_PORT_FULL, {0: {"a"}}, _m())
        # two sequential hops of cost tau + 4 tc = 5 each
        assert res.time == pytest.approx(10.0)
        assert "a" in res.holdings[3]

    def test_parallel_transfers_overlap_fully(self, cube4):
        sched = Schedule(
            rounds=[(_one(0, 1, "a"), _one(2, 3, "b"))],
            chunk_sizes={"a": 4, "b": 4},
        )
        res = run_async(
            cube4, sched, PortModel.ONE_PORT_FULL, {0: {"a"}, 2: {"b"}}, _m()
        )
        assert res.time == pytest.approx(5.0)

    def test_one_port_serializes_sends(self, cube4):
        sched = Schedule(
            rounds=[(_one(0, 1, "a"),), (_one(0, 2, "b"),)],
            chunk_sizes={"a": 4, "b": 4},
        )
        res = run_async(cube4, sched, PortModel.ONE_PORT_FULL, {0: {"a", "b"}}, _m())
        assert res.time == pytest.approx(10.0)

    def test_all_port_sends_concurrently(self, cube4):
        sched = Schedule(
            rounds=[(_one(0, 1, "a"),), (_one(0, 2, "b"),)],
            chunk_sizes={"a": 4, "b": 4},
        )
        res = run_async(cube4, sched, PortModel.ALL_PORT, {0: {"a", "b"}}, _m())
        assert res.time == pytest.approx(5.0)

    def test_deadlock_detected(self, cube4):
        sched = Schedule(
            rounds=[(_one(1, 3, "ghost"),)],
            chunk_sizes={"ghost": 1},
        )
        with pytest.raises(RuntimeError, match="deadlock"):
            run_async(cube4, sched, PortModel.ALL_PORT, {0: set()}, _m())


class TestPortModels:
    def test_half_duplex_serializes_send_and_receive(self, cube4):
        # node 1 receives then forwards: half duplex cannot overlap them
        sched = Schedule(
            rounds=[(_one(0, 1, "a"),), (_one(1, 3, "b"),)],
            chunk_sizes={"a": 4, "b": 4},
        )
        init = {0: {"a"}, 1: {"b"}}
        half = run_async(cube4, sched, PortModel.ONE_PORT_HALF, init, _m())
        full = run_async(cube4, sched, PortModel.ONE_PORT_FULL, init, _m())
        assert half.time == pytest.approx(10.0)
        assert full.time == pytest.approx(5.0)  # concurrent send + receive

    def test_link_exclusive_even_all_port(self, cube4):
        sched = Schedule(
            rounds=[(_one(0, 1, "a"),), (_one(0, 1, "b"),)],
            chunk_sizes={"a": 4, "b": 4},
        )
        res = run_async(cube4, sched, PortModel.ALL_PORT, {0: {"a", "b"}}, _m())
        assert res.time == pytest.approx(10.0)


class TestOverlap:
    def test_cross_port_overlap_shortens_makespan(self, cube4):
        sched = Schedule(
            rounds=[(_one(0, 1, "a"),), (_one(0, 2, "b"),)],
            chunk_sizes={"a": 9, "b": 9},
        )
        t0 = run_async(
            cube4, sched, PortModel.ONE_PORT_FULL, {0: {"a", "b"}}, _m(overlap=0.0)
        ).time
        t2 = run_async(
            cube4, sched, PortModel.ONE_PORT_FULL, {0: {"a", "b"}}, _m(overlap=0.2)
        ).time
        assert t0 == pytest.approx(20.0)
        assert t2 == pytest.approx(18.0)  # second send starts at 8.0

    def test_same_port_never_overlaps(self, cube4):
        sched = Schedule(
            rounds=[(_one(0, 1, "a"),), (_one(0, 1, "b"),)],
            chunk_sizes={"a": 9, "b": 9},
        )
        t = run_async(
            cube4, sched, PortModel.ONE_PORT_FULL, {0: {"a", "b"}}, _m(overlap=0.5)
        ).time
        assert t == pytest.approx(20.0)


class TestHardwarePacketization:
    def test_internal_splitting_charges_extra_startups(self, cube4):
        sched = Schedule(
            rounds=[(_one(0, 1, "a"),)],
            chunk_sizes={"a": 2048},
        )
        m = MachineParams(tau=1.0, t_c=0.0, internal_packet_elems=1024)
        res = run_async(cube4, sched, PortModel.ONE_PORT_FULL, {0: {"a"}}, m)
        assert res.time == pytest.approx(2.0)


class TestAgainstSynchronous:
    def test_async_never_slower_than_lockstep_uniform(self, cube4):
        # with uniform packets and no overlap, the async makespan is at
        # most the lock-step bound rounds * (tau + B tc)
        from repro.routing import msbt_broadcast_schedule
        from repro.sim.synchronous import run_synchronous

        sched = msbt_broadcast_schedule(cube4, 0, 32, 4, PortModel.ONE_PORT_FULL)
        init = {0: set(sched.chunk_sizes)}
        sync = run_synchronous(cube4, sched, PortModel.ONE_PORT_FULL, init, _m())
        asy = run_async(cube4, sched, PortModel.ONE_PORT_FULL, init, _m())
        assert asy.time <= sync.time + 1e-9
        assert asy.transfers_executed == sched.num_transfers
