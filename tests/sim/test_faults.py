"""Unit tests for the fault-injection primitives (repro.sim.faults).

Covers FaultPlan normalization and queries, the structured FaultError,
DegradedResult accounting, time-activation semantics on hand-built
schedules, and the on_fault mode validation in all three engines.
"""

from __future__ import annotations

import pytest

from repro.sim import (
    DegradedResult,
    FaultError,
    FaultEvent,
    FaultPlan,
    PortModel,
    Schedule,
    Transfer,
    run_async,
    run_synchronous,
)
from repro.sim._engine_reference import run_async_reference
from repro.sim.faults import undelivered_map
from repro.sim.machine import MachineParams
from repro.topology import Hypercube

CUBE = Hypercube(3)


class TestFaultPlan:
    def test_links_are_direction_agnostic_and_deduped(self):
        plan = FaultPlan(dead_links=[(1, 0), (0, 1, 5.0)])
        assert plan.dead_links == frozenset({(0, 1)})
        # earliest activation wins for duplicates
        assert plan.link_activation(1, 0) == 0.0

    def test_node_spellings(self):
        plan = FaultPlan(dead_nodes=[3, (5, 2.5)])
        assert plan.dead_nodes == frozenset({3, 5})
        assert plan.node_activation(5) == 2.5
        assert plan.node_activation(7) is None

    def test_blocks_prefers_node_over_link(self):
        plan = FaultPlan(dead_links=[(0, 1)], dead_nodes=[0])
        assert plan.blocks(0, 1) == ("node", 0)
        assert plan.blocks(2, 3) is None

    def test_time_activation_gates_blocks(self):
        plan = FaultPlan(dead_links=[(2, 6, 4.0)])
        assert plan.blocks(6, 2, 3.9) is None
        assert plan.blocks(6, 2, 4.0) == ("link", (2, 6))

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            FaultPlan(dead_links=[(3, 3)])
        with pytest.raises(ValueError, match=">= 0"):
            FaultPlan(dead_links=[(0, 1, -1.0)])
        with pytest.raises(ValueError, match=">= 0"):
            FaultPlan(dead_nodes=[(2, -0.5)])
        with pytest.raises(ValueError, match="dead link"):
            FaultPlan(dead_links=[(0,)])

    def test_truthiness_equality_hash(self):
        assert not FaultPlan()
        assert FaultPlan(dead_nodes=[1])
        a = FaultPlan(dead_links=[(0, 1)], dead_nodes=[2])
        b = FaultPlan(dead_links=[(1, 0)], dead_nodes=[(2, 0.0)])
        assert a == b and hash(a) == hash(b)
        assert a != FaultPlan(dead_links=[(0, 1, 9.0)], dead_nodes=[2])

    def test_is_immediate(self):
        assert FaultPlan(dead_links=[(0, 1)]).is_immediate
        assert not FaultPlan(dead_nodes=[(4, 1.0)]).is_immediate

    def test_schedule_is_clean(self):
        sched = Schedule(
            rounds=[(Transfer(0, 1, frozenset({("b", 0)})),)],
            chunk_sizes={("b", 0): 1},
        )
        assert FaultPlan(dead_links=[(2, 6)]).schedule_is_clean(sched)
        assert not FaultPlan(dead_links=[(1, 0)]).schedule_is_clean(sched)
        assert not FaultPlan(dead_nodes=[1]).schedule_is_clean(sched)


class TestEngineModes:
    def _sched(self):
        return Schedule(
            rounds=[
                (Transfer(0, 1, frozenset({("b", 0)})),),
                (Transfer(1, 3, frozenset({("b", 0)})),),
            ],
            chunk_sizes={("b", 0): 2},
        )

    @pytest.mark.parametrize(
        "engine", [run_async, run_async_reference, run_synchronous]
    )
    def test_bad_on_fault_mode_rejected(self, engine):
        with pytest.raises(ValueError, match="on_fault"):
            engine(
                CUBE, self._sched(), PortModel.ONE_PORT_FULL,
                {0: {("b", 0)}},
                faults=FaultPlan(dead_nodes=[5]),
                on_fault="explode",
            )

    @pytest.mark.parametrize(
        "engine", [run_async, run_async_reference, run_synchronous]
    )
    def test_empty_plan_runs_clean(self, engine):
        res = engine(
            CUBE, self._sched(), PortModel.ONE_PORT_FULL,
            {0: {("b", 0)}}, faults=FaultPlan(), on_fault="report",
        )
        assert not isinstance(res, DegradedResult)
        assert res.holdings[3] == {("b", 0)}

    @pytest.mark.parametrize(
        "engine", [run_async, run_async_reference, run_synchronous]
    )
    def test_raise_mode_structured_error(self, engine):
        with pytest.raises(FaultError) as excinfo:
            engine(
                CUBE, self._sched(), PortModel.ONE_PORT_FULL,
                {0: {("b", 0)}}, faults=FaultPlan(dead_links=[(3, 1)]),
            )
        err = excinfo.value
        assert err.edge == (1, 3)
        assert err.time == pytest.approx(3.0)  # tau + 2*t_c of the first hop
        assert err.chunks == frozenset({("b", 0)})

    @pytest.mark.parametrize(
        "engine", [run_async, run_async_reference, run_synchronous]
    )
    def test_report_mode_cascade_and_accounting(self, engine):
        # killing the first hop starves the second: both are lost and
        # nodes 1 and 3 are reported undelivered
        res = engine(
            CUBE, self._sched(), PortModel.ONE_PORT_FULL,
            {0: {("b", 0)}}, faults=FaultPlan(dead_links=[(0, 1)]),
            on_fault="report",
        )
        assert isinstance(res, DegradedResult)
        assert res.transfers_executed == 0
        assert res.transfers_lost == 2
        assert res.undelivered == {
            1: frozenset({("b", 0)}),
            3: frozenset({("b", 0)}),
        }
        assert res.undelivered_nodes == (1, 3)
        assert not res.complete
        assert len(res.fault_events) == 1
        ev = res.fault_events[0]
        assert isinstance(ev, FaultEvent)
        assert ev.kind == "link" and ev.subject == (0, 1)

    @pytest.mark.parametrize("engine", [run_async, run_async_reference])
    def test_in_flight_transfer_outruns_activation(self, engine):
        # the hop starts at t=0 and takes 3; a fault activating at 1.0
        # must not clip it (store-and-forward keeps in-flight packets)
        sched = Schedule(
            rounds=[(Transfer(0, 1, frozenset({("b", 0)})),)],
            chunk_sizes={("b", 0): 2},
        )
        res = engine(
            CUBE, sched, PortModel.ONE_PORT_FULL, {0: {("b", 0)}},
            faults=FaultPlan(dead_links=[(0, 1, 1.0)]), on_fault="report",
        )
        assert not isinstance(res, DegradedResult)
        assert res.holdings[1] == {("b", 0)}

    @pytest.mark.parametrize("engine", [run_async, run_async_reference])
    def test_activation_blocks_later_starts(self, engine):
        # second hop would start at t=3, after the link dies at 1.5
        res = engine(
            CUBE, self._sched(), PortModel.ONE_PORT_FULL, {0: {("b", 0)}},
            faults=FaultPlan(dead_links=[(1, 3, 1.5)]), on_fault="report",
        )
        assert isinstance(res, DegradedResult)
        assert res.undelivered == {3: frozenset({("b", 0)})}

    def test_dead_node_blocks_send_and_receive(self):
        sched = Schedule(
            rounds=[
                (Transfer(0, 1, frozenset({("b", 0)})),),
                (Transfer(0, 2, frozenset({("b", 1)})),),
            ],
            chunk_sizes={("b", 0): 1, ("b", 1): 1},
        )
        res = run_synchronous(
            CUBE, sched, PortModel.ONE_PORT_FULL,
            {0: {("b", 0), ("b", 1)}},
            faults=FaultPlan(dead_nodes=[1]), on_fault="report",
        )
        assert isinstance(res, DegradedResult)
        assert res.undelivered_nodes == (1,)
        assert res.holdings[2] == {("b", 1)}  # unaffected branch ran

    def test_sync_cycles_and_step_costs_populated(self):
        res = run_synchronous(
            CUBE, self._sched(), PortModel.ONE_PORT_FULL, {0: {("b", 0)}},
            faults=FaultPlan(dead_links=[(1, 3)]), on_fault="report",
            machine=MachineParams(tau=1.0, t_c=1.0),
        )
        assert isinstance(res, DegradedResult)
        assert res.cycles == 1  # only the surviving first round ran
        assert res.step_costs == [3.0]  # tau + 2 * t_c

    def test_genuine_deadlock_still_raises_in_report_mode(self):
        # a causally broken schedule with NO fault events must keep
        # raising RuntimeError — report mode only absorbs fault cascades
        sched = Schedule(
            rounds=[(Transfer(2, 3, frozenset({("b", 0)})),)],
            chunk_sizes={("b", 0): 1},
        )
        with pytest.raises(RuntimeError, match="deadlock"):
            run_async(
                CUBE, sched, PortModel.ONE_PORT_FULL, {1: {("b", 0)}},
                faults=FaultPlan(dead_links=[(4, 5)]), on_fault="report",
            )


class TestUndeliveredMap:
    def test_redundant_delivery_not_counted(self):
        lost = [Transfer(0, 1, frozenset({("b", 0)}))]
        holdings = {1: {("b", 0)}}  # arrived over another path anyway
        assert undelivered_map(lost, holdings) == {}

    def test_merges_chunks_per_destination(self):
        lost = [
            Transfer(0, 1, frozenset({("b", 0)})),
            Transfer(2, 1, frozenset({("b", 1)})),
        ]
        assert undelivered_map(lost, {1: set()}) == {
            1: frozenset({("b", 0), ("b", 1)})
        }

    def test_degraded_result_holds(self):
        res = DegradedResult(
            time=1.0,
            holdings={0: {("b", 0)}},
            link_stats=None,
        )
        assert res.holds(0, ("b", 0))
        assert not res.holds(1, ("b", 0))
        assert res.complete
