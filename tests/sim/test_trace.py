"""Unit tests for link-traffic statistics."""

from repro.sim.trace import LinkStats
from repro.topology import DirectedEdge


class TestLinkStats:
    def test_record_and_query(self):
        s = LinkStats()
        s.record(0, 1, 10)
        s.record(0, 1, 5)
        s.record(1, 0, 3)
        assert s.elems[DirectedEdge(0, 1)] == 15
        assert s.packets[DirectedEdge(0, 1)] == 2
        assert s.elems[DirectedEdge(1, 0)] == 3
        assert s.max_edge_elems() == 15
        assert s.max_edge_packets() == 2
        assert s.total_elems() == 18

    def test_port_elems(self):
        s = LinkStats()
        s.record(0, 1, 7)   # port 0
        s.record(0, 4, 9)   # port 2
        s.record(3, 0, 100)  # inbound: not ours
        assert s.port_elems(0) == {0: 7, 2: 9}

    def test_busiest_edges(self):
        s = LinkStats()
        s.record(0, 1, 1)
        s.record(2, 3, 50)
        top = s.busiest_edges(1)
        assert top == [(DirectedEdge(2, 3), 50)]

    def test_empty(self):
        s = LinkStats()
        assert s.max_edge_elems() == 0
        assert s.max_edge_packets() == 0
        assert s.busiest_edges() == []


class TestPortsEnum:
    def test_describe_and_flags(self):
        from repro.sim import PortModel

        assert PortModel.ONE_PORT_HALF.half_duplex
        assert not PortModel.ONE_PORT_FULL.half_duplex
        assert PortModel.ALL_PORT.max_sends is None
        assert PortModel.ONE_PORT_FULL.max_sends == 1
        for pm in PortModel:
            assert pm.describe()


class TestLinkStatsMerge:
    def test_merge_adds_counters_edgewise(self):
        a, b = LinkStats(), LinkStats()
        a.record(0, 1, 10)
        a.record(1, 0, 5)
        b.record(0, 1, 7)
        b.record(2, 3, 1)
        out = a.merge(b)
        assert out is a  # in place, chainable
        assert a.elems[DirectedEdge(0, 1)] == 17
        assert a.packets[DirectedEdge(0, 1)] == 2
        assert a.elems[DirectedEdge(1, 0)] == 5
        assert a.elems[DirectedEdge(2, 3)] == 1

    def test_merged_leaves_inputs_untouched(self):
        parts = []
        for i in range(3):
            s = LinkStats()
            s.record(0, 1, i + 1)
            parts.append(s)
        total = LinkStats.merged(parts)
        assert total.elems[DirectedEdge(0, 1)] == 6
        assert total.packets[DirectedEdge(0, 1)] == 3
        assert all(p.packets[DirectedEdge(0, 1)] == 1 for p in parts)

    def test_merge_matches_single_observer(self):
        """Splitting a record stream across workers then merging is
        identical to one global recorder."""
        records = [(0, 1, 4), (1, 3, 2), (0, 1, 4), (3, 1, 9)]
        whole = LinkStats()
        shards = [LinkStats(), LinkStats()]
        for i, (s, d, e) in enumerate(records):
            whole.record(s, d, e)
            shards[i % 2].record(s, d, e)
        merged = LinkStats.merged(shards)
        assert merged.elems == whole.elems
        assert merged.packets == whole.packets
