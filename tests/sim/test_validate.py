"""Tests for schedule profiling and standalone validation."""

import pytest

from repro.routing import (
    bst_scatter_schedule,
    msbt_broadcast_schedule,
    sbt_scatter_schedule,
)
from repro.sim import PortModel, Schedule, Transfer
from repro.sim.validate import assert_schedule_valid, profile_schedule
from repro.topology import Hypercube


class TestProfile:
    def test_counts(self, cube4):
        sched = msbt_broadcast_schedule(cube4, 0, 16, 4, PortModel.ONE_PORT_FULL)
        p = profile_schedule(cube4, sched)
        assert p.rounds == sched.compact().num_rounds
        assert p.transfers == sched.num_transfers
        assert 0 < p.edge_utilization <= 1.0
        assert p.max_concurrency >= p.mean_concurrency

    def test_msbt_uses_almost_every_edge(self, cube4):
        # the MSBT's point: all directed edges except those into the
        # source carry data
        sched = msbt_broadcast_schedule(cube4, 0, 64, 4, PortModel.ONE_PORT_FULL)
        p = profile_schedule(cube4, sched)
        expected = (cube4.num_directed_edges - 4) / cube4.num_directed_edges
        assert p.edge_utilization == pytest.approx(expected)

    def test_sbt_scatter_imbalance_vs_bst(self, cube5):
        M = 4
        big = cube5.num_nodes * M
        sbt = profile_schedule(
            cube5, sbt_scatter_schedule(cube5, 0, M, big, PortModel.ONE_PORT_FULL)
        )
        bst = profile_schedule(
            cube5, bst_scatter_schedule(cube5, 0, M, big, PortModel.ONE_PORT_FULL)
        )
        # SBT port 0 carries N/2 messages vs N/16 on the last port
        assert sbt.balance_ratio() == 16.0
        assert bst.balance_ratio() < 1.5

    def test_source_override(self, cube4):
        sched = sbt_scatter_schedule(cube4, 3, 2, 64, PortModel.ONE_PORT_FULL)
        p = profile_schedule(cube4, sched, source=3)
        assert sum(p.source_port_elems.values()) == 15 * 2

    def test_empty_schedule(self, cube4):
        p = profile_schedule(cube4, Schedule(rounds=[], chunk_sizes={}))
        assert p.rounds == 0
        assert p.balance_ratio() == 1.0


class TestAssertValid:
    def test_accepts_generated_schedules(self, cube4):
        for pm in PortModel:
            sched = msbt_broadcast_schedule(cube4, 0, 16, 4, pm)
            assert_schedule_valid(cube4, sched, pm)

    def test_rejects_violations(self, cube4):
        bad = Schedule(
            rounds=[(
                Transfer(0, 1, frozenset({"a"})),
                Transfer(0, 2, frozenset({"a"})),
            )],
            chunk_sizes={"a": 1},
        )
        with pytest.raises(ValueError):
            assert_schedule_valid(cube4, bad, PortModel.ONE_PORT_FULL)
        assert_schedule_valid(cube4, bad, PortModel.ALL_PORT)
