"""The indexed event engine is bit-identical to the reference engine.

``repro.sim.engine.run_async`` replaced the original quadratic
rescan-everything engine with a dependency-indexed design; the original
is preserved verbatim as ``repro.sim._engine_reference.run_async_reference``
and serves as the oracle here.  Equivalence is *exact*: simulated
completion time, holdings, link statistics and start times must match
to the last ulp (the indexed engine reproduces the reference's
eps-coalesced wake ordering, not merely its semantics).

Also pins the :class:`AsyncResult.start_times` ordering contract and
the deadlock diagnosis of the indexed path.
"""

from __future__ import annotations

import pytest

from repro.routing import (
    allgather_schedule,
    bst_scatter_schedule,
    dual_hp_broadcast_schedule,
    msbt_broadcast_schedule,
    sbt_broadcast_schedule,
    sbt_scatter_schedule,
    tree_broadcast_schedule,
)
from repro.sim._engine_reference import run_async_reference
from repro.sim.engine import run_async
from repro.sim.faults import DegradedResult, FaultError, FaultPlan
from repro.sim.machine import IPSC_D7, UNIT_COST, MachineParams
from repro.sim.ports import PortModel
from repro.sim.schedule import Schedule, Transfer
from repro.sim.synchronous import run_synchronous
from repro.topology.hypercube import Hypercube
from repro.trees.hamiltonian import HamiltonianPathTree
from repro.trees.tcbt import TwoRootedCompleteBinaryTree

MACHINES = [
    IPSC_D7,
    UNIT_COST,
    MachineParams(tau=0.5, t_c=2.0, overlap=0.3, name="overlap-heavy"),
]

CUBE = Hypercube(4)


def _schedules(source: int, port_model: PortModel):
    """(name, schedule, initial holdings) for every algorithm family."""
    out = []
    for name, sched in [
        ("sbt-broadcast", sbt_broadcast_schedule(CUBE, source, 37, 8, port_model)),
        ("msbt-broadcast", msbt_broadcast_schedule(CUBE, source, 37, 8, port_model)),
        (
            "tcbt-broadcast",
            tree_broadcast_schedule(
                TwoRootedCompleteBinaryTree(CUBE, source), 37, 8, port_model
            ),
        ),
        (
            "hp-broadcast",
            tree_broadcast_schedule(
                HamiltonianPathTree(CUBE, source), 37, 8, port_model
            ),
        ),
        (
            "dual-hp-broadcast",
            dual_hp_broadcast_schedule(CUBE, source, 37, 8, port_model),
        ),
        ("bst-scatter", bst_scatter_schedule(CUBE, source, 37, 8, port_model)),
        ("sbt-scatter", sbt_scatter_schedule(CUBE, source, 37, 8, port_model)),
    ]:
        out.append((name, sched, {source: set(sched.chunk_sizes)}))
    ag = allgather_schedule(CUBE, 11, port_model)
    out.append(
        (
            "allgather",
            ag,
            {v: {c for c in ag.chunk_sizes if c[1] == v} for v in CUBE.nodes()},
        )
    )
    return out


@pytest.mark.parametrize("machine", MACHINES, ids=lambda m: m.name)
@pytest.mark.parametrize("port_model", list(PortModel), ids=lambda p: p.value)
@pytest.mark.parametrize("source", [0, 5])
def test_indexed_engine_matches_reference(source, port_model, machine):
    for name, sched, init in _schedules(source, port_model):
        new = run_async(
            CUBE, sched, port_model, {k: set(v) for k, v in init.items()}, machine
        )
        ref = run_async_reference(
            CUBE, sched, port_model, {k: set(v) for k, v in init.items()}, machine
        )
        assert new.time == ref.time, name
        assert new.holdings == ref.holdings, name
        assert new.link_stats == ref.link_stats, name
        assert new.transfers_executed == ref.transfers_executed, name
        # the reference appends in execution order; the new engine's
        # contract is sorted ascending, so compare against the sort
        assert new.start_times == sorted(ref.start_times), name


#: fault plans for the differential matrix — immediate links/nodes,
#: combinations, and time-activated variants (cube-4 addresses)
FAULT_PLANS = [
    FaultPlan(dead_links=[(0, 1)]),
    FaultPlan(dead_links=[(2, 6), (4, 5)]),
    FaultPlan(dead_nodes=[6]),
    FaultPlan(dead_links=[(0, 8)], dead_nodes=[9]),
    FaultPlan(dead_links=[(0, 1, 40.0)]),
    FaultPlan(dead_nodes=[(3, 25.0)]),
]


def _run_or_fault(engine, sched, port_model, init, machine, plan, mode):
    try:
        return engine(
            CUBE, sched, port_model, {k: set(v) for k, v in init.items()},
            machine, faults=plan, on_fault=mode,
        )
    except FaultError as err:
        return err


@pytest.mark.parametrize("mode", ["raise", "report"])
@pytest.mark.parametrize("port_model", list(PortModel), ids=lambda p: p.value)
def test_fault_matrix_async_engines_agree(port_model, mode):
    """Under every fault plan, the indexed engine and the reference
    oracle agree on the full outcome: same FaultError (edge and time)
    in raise mode, bit-identical results — degraded or not — in report
    mode, including the undelivered map and the cancelled-event set."""
    for name, sched, init in _schedules(0, port_model):
        for plan in FAULT_PLANS:
            new = _run_or_fault(
                run_async, sched, port_model, init, UNIT_COST, plan, mode
            )
            ref = _run_or_fault(
                run_async_reference, sched, port_model, init, UNIT_COST, plan, mode
            )
            label = f"{name}/{plan!r}/{mode}"
            assert type(new) is type(ref), label
            if isinstance(new, FaultError):
                assert new.edge == ref.edge, label
                assert new.time == ref.time, label
                assert new.chunks == ref.chunks, label
                continue
            assert new.time == ref.time, label
            assert new.holdings == ref.holdings, label
            assert new.link_stats == ref.link_stats, label
            assert sorted(new.start_times) == sorted(ref.start_times), label
            if isinstance(new, DegradedResult):
                assert new.undelivered == ref.undelivered, label
                assert new.transfers_lost == ref.transfers_lost, label
                assert set(new.fault_events) == set(ref.fault_events), label


@pytest.mark.parametrize("port_model", list(PortModel), ids=lambda p: p.value)
def test_fault_matrix_sync_delivers_same_set(port_model):
    """For *immediate* faults the lock-step engine must end with the
    same holdings as the event engines on every generated schedule —
    a fault active from time 0 cancels the same transfers regardless of
    how rounds map to wall-clock instants.  (Time-activated faults may
    legitimately diverge: the engines place round starts at different
    times; that boundary is documented, not asserted.)"""
    for name, sched, init in _schedules(0, port_model):
        for plan in FAULT_PLANS:
            if not plan.is_immediate:
                continue
            sync = run_synchronous(
                CUBE, sched, port_model, {k: set(v) for k, v in init.items()},
                faults=plan, on_fault="report",
            )
            ref = run_async_reference(
                CUBE, sched, port_model, {k: set(v) for k, v in init.items()},
                faults=plan, on_fault="report",
            )
            label = f"{name}/{plan!r}"
            assert type(sync).__name__ in ("SyncResult", "DegradedResult"), label
            assert sync.holdings == ref.holdings, label
            if isinstance(sync, DegradedResult):
                assert sync.undelivered == ref.undelivered, label


def test_start_times_sorted_ascending():
    """Pin the documented AsyncResult.start_times contract."""
    sched = msbt_broadcast_schedule(CUBE, 3, 64, 4, PortModel.ONE_PORT_FULL)
    res = run_async(
        CUBE, sched, PortModel.ONE_PORT_FULL, {3: set(sched.chunk_sizes)}, IPSC_D7
    )
    assert res.start_times == sorted(res.start_times)
    assert len(res.start_times) == res.transfers_executed == sched.num_transfers


def test_causally_broken_schedule_deadlocks_with_diagnosis():
    """A schedule whose payload never becomes available must raise,
    not spin: node 2 sends a chunk only node 1 ever holds, and nothing
    delivers it to node 2."""
    sched = Schedule(
        rounds=[
            (Transfer(2, 3, frozenset({("b", 0)})),),
        ],
        chunk_sizes={("b", 0): 4},
        algorithm="broken",
        meta={},
    )
    with pytest.raises(RuntimeError, match="deadlock"):
        run_async(CUBE, sched, PortModel.ONE_PORT_FULL, {1: {("b", 0)}}, UNIT_COST)


def test_circular_dependency_deadlocks():
    """Two transfers each waiting on the other's delivery."""
    sched = Schedule(
        rounds=[
            (
                Transfer(0, 1, frozenset({("b", 0)})),
                Transfer(1, 0, frozenset({("b", 1)})),
            ),
        ],
        chunk_sizes={("b", 0): 4, ("b", 1): 4},
        algorithm="broken",
        meta={},
    )
    # node 0 holds chunk 1 (not 0), node 1 holds chunk 0 (not 1):
    # each send's payload is forever on the wrong side
    with pytest.raises(RuntimeError, match="deadlock"):
        run_async(
            CUBE,
            sched,
            PortModel.ONE_PORT_FULL,
            {0: {("b", 1)}, 1: {("b", 0)}},
            UNIT_COST,
        )
