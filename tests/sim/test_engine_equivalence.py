"""The indexed event engine is bit-identical to the reference engine.

``repro.sim.engine.run_async`` replaced the original quadratic
rescan-everything engine with a dependency-indexed design; the original
is preserved verbatim as ``repro.sim._engine_reference.run_async_reference``
and serves as the oracle here.  Equivalence is *exact*: simulated
completion time, holdings, link statistics and start times must match
to the last ulp (the indexed engine reproduces the reference's
eps-coalesced wake ordering, not merely its semantics).

Also pins the :class:`AsyncResult.start_times` ordering contract and
the deadlock diagnosis of the indexed path.
"""

from __future__ import annotations

import pytest

from repro.routing import (
    allgather_schedule,
    bst_scatter_schedule,
    dual_hp_broadcast_schedule,
    msbt_broadcast_schedule,
    sbt_broadcast_schedule,
    sbt_scatter_schedule,
    tree_broadcast_schedule,
)
from repro.sim._engine_reference import run_async_reference
from repro.sim.engine import run_async
from repro.sim.machine import IPSC_D7, UNIT_COST, MachineParams
from repro.sim.ports import PortModel
from repro.sim.schedule import Schedule, Transfer
from repro.topology.hypercube import Hypercube
from repro.trees.hamiltonian import HamiltonianPathTree
from repro.trees.tcbt import TwoRootedCompleteBinaryTree

MACHINES = [
    IPSC_D7,
    UNIT_COST,
    MachineParams(tau=0.5, t_c=2.0, overlap=0.3, name="overlap-heavy"),
]

CUBE = Hypercube(4)


def _schedules(source: int, port_model: PortModel):
    """(name, schedule, initial holdings) for every algorithm family."""
    out = []
    for name, sched in [
        ("sbt-broadcast", sbt_broadcast_schedule(CUBE, source, 37, 8, port_model)),
        ("msbt-broadcast", msbt_broadcast_schedule(CUBE, source, 37, 8, port_model)),
        (
            "tcbt-broadcast",
            tree_broadcast_schedule(
                TwoRootedCompleteBinaryTree(CUBE, source), 37, 8, port_model
            ),
        ),
        (
            "hp-broadcast",
            tree_broadcast_schedule(
                HamiltonianPathTree(CUBE, source), 37, 8, port_model
            ),
        ),
        (
            "dual-hp-broadcast",
            dual_hp_broadcast_schedule(CUBE, source, 37, 8, port_model),
        ),
        ("bst-scatter", bst_scatter_schedule(CUBE, source, 37, 8, port_model)),
        ("sbt-scatter", sbt_scatter_schedule(CUBE, source, 37, 8, port_model)),
    ]:
        out.append((name, sched, {source: set(sched.chunk_sizes)}))
    ag = allgather_schedule(CUBE, 11, port_model)
    out.append(
        (
            "allgather",
            ag,
            {v: {c for c in ag.chunk_sizes if c[1] == v} for v in CUBE.nodes()},
        )
    )
    return out


@pytest.mark.parametrize("machine", MACHINES, ids=lambda m: m.name)
@pytest.mark.parametrize("port_model", list(PortModel), ids=lambda p: p.value)
@pytest.mark.parametrize("source", [0, 5])
def test_indexed_engine_matches_reference(source, port_model, machine):
    for name, sched, init in _schedules(source, port_model):
        new = run_async(
            CUBE, sched, port_model, {k: set(v) for k, v in init.items()}, machine
        )
        ref = run_async_reference(
            CUBE, sched, port_model, {k: set(v) for k, v in init.items()}, machine
        )
        assert new.time == ref.time, name
        assert new.holdings == ref.holdings, name
        assert new.link_stats == ref.link_stats, name
        assert new.transfers_executed == ref.transfers_executed, name
        # the reference appends in execution order; the new engine's
        # contract is sorted ascending, so compare against the sort
        assert new.start_times == sorted(ref.start_times), name


def test_start_times_sorted_ascending():
    """Pin the documented AsyncResult.start_times contract."""
    sched = msbt_broadcast_schedule(CUBE, 3, 64, 4, PortModel.ONE_PORT_FULL)
    res = run_async(
        CUBE, sched, PortModel.ONE_PORT_FULL, {3: set(sched.chunk_sizes)}, IPSC_D7
    )
    assert res.start_times == sorted(res.start_times)
    assert len(res.start_times) == res.transfers_executed == sched.num_transfers


def test_causally_broken_schedule_deadlocks_with_diagnosis():
    """A schedule whose payload never becomes available must raise,
    not spin: node 2 sends a chunk only node 1 ever holds, and nothing
    delivers it to node 2."""
    sched = Schedule(
        rounds=[
            (Transfer(2, 3, frozenset({("b", 0)})),),
        ],
        chunk_sizes={("b", 0): 4},
        algorithm="broken",
        meta={},
    )
    with pytest.raises(RuntimeError, match="deadlock"):
        run_async(CUBE, sched, PortModel.ONE_PORT_FULL, {1: {("b", 0)}}, UNIT_COST)


def test_circular_dependency_deadlocks():
    """Two transfers each waiting on the other's delivery."""
    sched = Schedule(
        rounds=[
            (
                Transfer(0, 1, frozenset({("b", 0)})),
                Transfer(1, 0, frozenset({("b", 1)})),
            ),
        ],
        chunk_sizes={("b", 0): 4, ("b", 1): 4},
        algorithm="broken",
        meta={},
    )
    # node 0 holds chunk 1 (not 0), node 1 holds chunk 0 (not 1):
    # each send's payload is forever on the wrong side
    with pytest.raises(RuntimeError, match="deadlock"):
        run_async(
            CUBE,
            sched,
            PortModel.ONE_PORT_FULL,
            {0: {("b", 1)}, 1: {("b", 0)}},
            UNIT_COST,
        )
