"""Unit tests for the schedule data model."""

import pytest

from repro.sim import Schedule, Transfer


def _sched() -> Schedule:
    return Schedule(
        rounds=[
            (Transfer(0, 1, frozenset({"a"})),),
            (),
            (Transfer(1, 3, frozenset({"a", "b"})), Transfer(0, 2, frozenset({"b"}))),
        ],
        chunk_sizes={"a": 3, "b": 5},
        algorithm="demo",
    )


class TestTransfer:
    def test_self_transfer_rejected(self):
        with pytest.raises(ValueError):
            Transfer(2, 2, frozenset({"a"}))

    def test_chunks_coerced_to_frozenset(self):
        t = Transfer(0, 1, {"a", "b"})  # type: ignore[arg-type]
        assert isinstance(t.chunks, frozenset)

    def test_repr(self):
        assert "0->1" in repr(Transfer(0, 1, frozenset({"a"})))


class TestSchedule:
    def test_counts(self):
        s = _sched()
        assert s.num_rounds == 3
        assert s.num_transfers == 3

    def test_sizes(self):
        s = _sched()
        assert s.transfer_elems(Transfer(1, 3, frozenset({"a", "b"}))) == 8
        assert s.total_elems_moved() == 3 + 8 + 5
        assert s.max_transfer_elems() == 8

    def test_all_transfers_in_round_order(self):
        s = _sched()
        ts = s.all_transfers()
        assert len(ts) == 3
        assert ts[0].dst == 1

    def test_compact_drops_empty_rounds(self):
        s = _sched().compact()
        assert s.num_rounds == 2

    def test_reversed_flips_everything(self):
        s = _sched()
        r = s.reversed()
        assert r.num_rounds == 3
        first = r.rounds[0]
        assert {(t.src, t.dst) for t in first} == {(3, 1), (2, 0)}
        assert r.rounds[-1][0].src == 1 and r.rounds[-1][0].dst == 0
        assert r.algorithm.endswith("-reversed")

    def test_empty_schedule(self):
        s = Schedule(rounds=[], chunk_sizes={})
        assert s.max_transfer_elems() == 0
        assert s.total_elems_moved() == 0
