"""Chaos suite: the paper's fault-tolerance guarantee, property-based.

§1 promises that ``log N - 1`` failures leave every node pair
connected.  These properties exercise the whole stack against random
fault sets:

* below the threshold, the degraded MSBT broadcast and the survivor
  collectives must deliver everything and still validate against the
  port model — for every cube size, port model, source and fault draw;
* at or above the threshold (a deliberately isolated node), the system
  must either raise a structured :class:`FaultError` or return a
  degraded report naming every undelivered node — never lose data
  silently;
* faults injected into a *fault-free* schedule must account for every
  missing ``(node, chunk)`` pair in the degraded report, exactly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives import broadcast, scatter
from repro.routing import msbt_broadcast_schedule
from repro.routing.common import MSG
from repro.sim import (
    DegradedResult,
    FaultError,
    FaultPlan,
    PortModel,
    run_async,
    run_synchronous,
)
from repro.topology import Hypercube

DIMS = (2, 3, 4, 5)
PORTS = tuple(PortModel)


def _edges(cube: Hypercube) -> list[tuple[int, int]]:
    return sorted(
        {(min(a, b), max(a, b)) for a in cube.nodes() for b in cube.neighbors(a)}
    )


@st.composite
def below_threshold_case(draw):
    """(cube, source, dead link set of size <= n-1, port model)."""
    n = draw(st.sampled_from(DIMS))
    cube = Hypercube(n)
    source = draw(st.integers(min_value=0, max_value=cube.num_nodes - 1))
    k = draw(st.integers(min_value=0, max_value=n - 1))
    dead = draw(
        st.lists(st.sampled_from(_edges(cube)), min_size=k, max_size=k, unique=True)
    )
    port_model = draw(st.sampled_from(PORTS))
    return cube, source, tuple(sorted(dead)), port_model


@st.composite
def isolating_case(draw):
    """(cube, victim, its full incident link set, port model): exactly
    the ``n`` faults §1 says are needed to disconnect a node."""
    n = draw(st.sampled_from((2, 3, 4)))
    cube = Hypercube(n)
    victim = draw(st.integers(min_value=1, max_value=cube.num_nodes - 1))
    dead = tuple(
        sorted(
            (min(victim, victim ^ (1 << d)), max(victim, victim ^ (1 << d)))
            for d in range(n)
        )
    )
    port_model = draw(st.sampled_from(PORTS))
    return cube, victim, dead, port_model


@st.composite
def chaos_on_clean_schedule(draw):
    """A fault-free MSBT schedule plus faults it was not built for."""
    n = draw(st.sampled_from((2, 3)))
    cube = Hypercube(n)
    source = draw(st.integers(min_value=0, max_value=cube.num_nodes - 1))
    port_model = draw(st.sampled_from(PORTS))
    k = draw(st.integers(min_value=1, max_value=n))
    links = draw(
        st.lists(st.sampled_from(_edges(cube)), min_size=k, max_size=k, unique=True)
    )
    return cube, source, port_model, FaultPlan(dead_links=links)


class TestBelowThreshold:
    """<= n-1 link faults: complete delivery, valid schedule, clean run."""

    @settings(max_examples=100, deadline=None)
    @given(below_threshold_case())
    def test_degraded_msbt_delivers_every_node(self, case):
        cube, source, dead, port_model = case
        n = cube.dimension
        sched = msbt_broadcast_schedule(
            cube, source, 4 * n, 4, port_model, dead_links=dead
        )
        plan = FaultPlan(dead_links=dead)
        want = set(sched.chunk_sizes)

        # run_synchronous validates port-model + causality; it must also
        # come back clean (never a DegradedResult: the degraded schedule
        # avoids every dead link by construction)
        sres = run_synchronous(
            cube, sched, port_model, {source: set(want)}, faults=plan
        )
        assert not isinstance(sres, DegradedResult)
        ares = run_async(cube, sched, port_model, {source: set(want)}, faults=plan)
        assert not isinstance(ares, DegradedResult)
        for v in cube.nodes():
            assert sres.holdings[v] >= want, f"sync missed node {v}"
            assert ares.holdings[v] >= want, f"async missed node {v}"
        assert plan.schedule_is_clean(sched)

    @settings(max_examples=40, deadline=None)
    @given(below_threshold_case())
    def test_broadcast_collective_routes_around(self, case):
        cube, source, dead, port_model = case
        plan = FaultPlan(dead_links=dead)
        result = broadcast(
            cube, source, "msbt", 2 * cube.dimension, 2, port_model, faults=plan
        )
        assert not result.undelivered_nodes
        want = set(result.schedule.chunk_sizes)
        for v in cube.nodes():
            assert result.sync.holdings[v] >= want

    @settings(max_examples=40, deadline=None)
    @given(below_threshold_case())
    def test_scatter_collective_routes_around(self, case):
        cube, source, dead, port_model = case
        plan = FaultPlan(dead_links=dead)
        result = scatter(
            cube, source, "bst", 3, 3, port_model, faults=plan
        )
        assert not result.undelivered_nodes
        for v in cube.nodes():
            if v == source:
                continue
            mine = {c for c in result.schedule.chunk_sizes if c[0] == MSG and c[1] == v}
            assert mine and result.sync.holdings[v] >= mine


class TestAboveThreshold:
    """n faults isolating a node: loud failure or a complete report."""

    @settings(max_examples=60, deadline=None)
    @given(isolating_case())
    def test_raise_mode_names_the_victim(self, case):
        cube, victim, dead, port_model = case
        with pytest.raises(FaultError) as excinfo:
            msbt_broadcast_schedule(
                cube, 0, cube.dimension, 1, port_model, dead_links=dead
            )
        assert victim in excinfo.value.undelivered

    @settings(max_examples=60, deadline=None)
    @given(isolating_case())
    def test_report_mode_serves_the_survivors(self, case):
        cube, victim, dead, port_model = case
        plan = FaultPlan(dead_links=dead)
        result = broadcast(
            cube, 0, "msbt", cube.dimension, 1, port_model,
            faults=plan, on_fault="report",
        )
        assert result.degraded
        assert victim in result.undelivered_nodes
        want = set(result.schedule.chunk_sizes)
        for v in cube.nodes():
            if v in result.undelivered_nodes:
                continue
            assert result.sync.holdings[v] >= want, f"survivor {v} missed data"

    @settings(max_examples=40, deadline=None)
    @given(isolating_case())
    def test_scatter_report_mode_restricts_destinations(self, case):
        cube, victim, dead, port_model = case
        plan = FaultPlan(dead_links=dead)
        result = scatter(
            cube, 0, "bst", 2, 2, port_model, faults=plan, on_fault="report"
        )
        assert victim in result.undelivered_nodes
        # the chunk universe itself shrank: no message was even cut for
        # the unreachable node
        assert not any(
            c[0] == MSG and c[1] == victim for c in result.schedule.chunk_sizes
        )


class TestRuntimeRepair:
    """Chaos against the actor runtime: with ``on_fault="repair"`` the
    timeout-driven survivor-tree recovery must deliver the broadcast to
    every node the faults leave connected to the source — no matter
    which links die."""

    @staticmethod
    def _reachable(cube: Hypercube, source: int, plan: FaultPlan) -> set[int]:
        dead = plan.dead_links
        seen = {source}
        frontier = [source]
        while frontier:
            u = frontier.pop()
            for v in cube.neighbors(u):
                if (min(u, v), max(u, v)) in dead or v in seen:
                    continue
                seen.add(v)
                frontier.append(v)
        return seen

    @settings(max_examples=40, deadline=None)
    @given(chaos_on_clean_schedule())
    def test_repair_delivers_the_connected_component(self, case):
        cube, source, port_model, plan = case
        result = broadcast(
            cube, source, "sbt", 2 * cube.dimension, 2, port_model,
            faults=plan, on_fault="repair", backend="runtime",
        )
        rt = result.async_
        want = set(result.schedule.chunk_sizes)
        reachable = self._reachable(cube, source, plan)
        for v in reachable:
            assert rt.holdings[v] >= want, (
                f"node {v} is connected to the source yet incomplete"
            )
        # anything beyond the component is honestly reported, not lost
        cut_off = set(cube.nodes()) - reachable
        if cut_off:
            assert isinstance(rt, DegradedResult)
            assert cut_off <= set(rt.undelivered_nodes)

    @settings(max_examples=20, deadline=None)
    @given(chaos_on_clean_schedule())
    def test_report_mode_matches_engine_shape(self, case):
        cube, source, port_model, plan = case
        result = broadcast(
            cube, source, "sbt", cube.dimension, 1, port_model,
            faults=plan, on_fault="report", backend="runtime",
        )
        rt = result.async_
        want = set(result.schedule.chunk_sizes)
        if isinstance(rt, DegradedResult):
            for v in cube.nodes():
                missing = want - rt.holdings[v]
                assert missing == set(rt.undelivered.get(v, frozenset()))
        else:
            for v in cube.nodes():
                assert rt.holdings[v] >= want


class TestNeverSilent:
    """Faults hitting an unsuspecting schedule: every loss is reported."""

    @settings(max_examples=100, deadline=None)
    @given(chaos_on_clean_schedule())
    def test_report_accounts_for_every_missing_chunk(self, case):
        cube, source, port_model, plan = case
        sched = msbt_broadcast_schedule(
            cube, source, cube.dimension, 1, port_model
        )
        want = set(sched.chunk_sizes)
        res = run_async(
            cube, sched, port_model, {source: set(want)},
            faults=plan, on_fault="report",
        )
        if isinstance(res, DegradedResult):
            for v in cube.nodes():
                missing = want - res.holdings[v]
                assert missing == set(res.undelivered.get(v, frozenset())), (
                    f"node {v}: missing chunks not accounted in the report"
                )
        else:
            # the schedule happened not to touch any fault: full delivery
            for v in cube.nodes():
                assert res.holdings[v] >= want

    @settings(max_examples=60, deadline=None)
    @given(chaos_on_clean_schedule())
    def test_raise_mode_never_finishes_incomplete(self, case):
        cube, source, port_model, plan = case
        sched = msbt_broadcast_schedule(
            cube, source, cube.dimension, 1, port_model
        )
        want = set(sched.chunk_sizes)
        try:
            res = run_async(
                cube, sched, port_model, {source: set(want)}, faults=plan
            )
        except FaultError as err:
            assert err.edge is not None and err.time is not None
            assert err.chunks
            return
        for v in cube.nodes():
            assert res.holdings[v] >= want


class TestServiceFaults:
    """Service-level fault plumbing: a dead link mid-stream degrades
    only the jobs whose trees actually cross it."""

    @staticmethod
    def _victim_edge(cube, sched):
        """A directed edge the schedule uses, as an undirected pair."""
        for rnd in sched.rounds:
            for tr in rnd:
                return (min(tr.src, tr.dst), max(tr.src, tr.dst))
        raise AssertionError("schedule has no transfers")

    def test_dead_link_degrades_only_crossing_jobs(self):
        from repro.collectives.api import collective_schedule
        from repro.service import JobSpec, run_service

        cube = Hypercube(4)
        pm = PortModel.ONE_PORT_FULL
        # find a victim edge in job A's tree that job B's tree avoids
        sched_a, _ = collective_schedule(
            cube, "broadcast", "msbt", 0, 8, 4, pm
        )
        edges_a = {
            (min(t.src, t.dst), max(t.src, t.dst))
            for rnd in sched_a.rounds for t in rnd
        }
        victim = None
        for src_b in range(1, cube.num_nodes):
            sched_b, _ = collective_schedule(
                cube, "scatter", "bst", src_b, 2, 2, pm
            )
            edges_b = {
                (min(t.src, t.dst), max(t.src, t.dst))
                for rnd in sched_b.rounds for t in rnd
            }
            only_a = edges_a - edges_b
            if only_a:
                victim = sorted(only_a)[0]
                break
        assert victim is not None, "no A-only edge found"

        specs = [
            JobSpec(tenant="hit", op="broadcast", algorithm="msbt",
                    source=0, message_elems=8, packet_elems=4),
            JobSpec(tenant="safe", op="scatter", algorithm="bst",
                    source=src_b, message_elems=2, packet_elems=2,
                    arrival=1.0),
        ]
        plan = FaultPlan(dead_links=[victim])
        result = run_service(
            cube, specs, port_model=pm, faults=plan, on_fault="report"
        )
        hit, safe = result.jobs
        assert hit.degraded and hit.undelivered
        assert not safe.degraded and safe.complete
        assert result.degraded

        # raise mode surfaces the same fault as a structured error
        with pytest.raises(FaultError):
            run_service(cube, specs, port_model=pm, faults=plan)

        # and without the fault, both jobs complete
        clean = run_service(cube, specs, port_model=pm)
        assert all(j.complete and not j.degraded for j in clean.jobs)

    def test_unaffected_job_keeps_its_fault_free_timing(self):
        """If the dead link only touches the *other* tenant's tree and
        the jobs do not overlap in time, the safe job's timing is
        bit-identical to the fault-free run."""
        from repro.collectives.api import collective_schedule
        from repro.service import JobSpec, run_service

        cube = Hypercube(3)
        pm = PortModel.ONE_PORT_FULL
        sched_a, _ = collective_schedule(
            cube, "broadcast", "sbt", 0, 4, 2, pm
        )
        edges_a = {
            (min(t.src, t.dst), max(t.src, t.dst))
            for rnd in sched_a.rounds for t in rnd
        }
        sched_b, _ = collective_schedule(
            cube, "broadcast", "sbt", 7, 4, 2, pm
        )
        edges_b = {
            (min(t.src, t.dst), max(t.src, t.dst))
            for rnd in sched_b.rounds for t in rnd
        }
        only_a = sorted(edges_a - edges_b)
        if not only_a:
            pytest.skip("trees share every edge at this size")
        specs = [
            JobSpec(tenant="hit", op="broadcast", algorithm="sbt",
                    source=0, message_elems=4, packet_elems=2),
            JobSpec(tenant="safe", op="broadcast", algorithm="sbt",
                    source=7, message_elems=4, packet_elems=2,
                    arrival=500.0),
        ]
        plan = FaultPlan(dead_links=[only_a[0]])
        faulty = run_service(
            cube, specs, port_model=pm, faults=plan, on_fault="report"
        )
        clean = run_service(cube, specs, port_model=pm)
        assert faulty.jobs[0].degraded
        assert not faulty.jobs[1].degraded
        assert faulty.jobs[1].finish_time == clean.jobs[1].finish_time
        assert (faulty.view.slices[1].start_times
                == clean.view.slices[1].start_times)
