"""Property-based tests for the greedy list scheduler and transforms."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing import greedy_partition, list_schedule, split_oversized
from repro.sim import PortModel, Schedule, Transfer
from repro.sim.synchronous import run_synchronous
from repro.topology import Hypercube


@st.composite
def random_fanout_case(draw):
    """A random multi-hop fan-out from node 0 over a small cube."""
    n = draw(st.integers(min_value=2, max_value=4))
    cube = Hypercube(n)
    n_chunks = draw(st.integers(min_value=1, max_value=6))
    chunk_sizes = {
        ("c", i): draw(st.integers(min_value=1, max_value=8))
        for i in range(n_chunks)
    }
    # random simple paths from 0, one per chunk
    transfers = []
    for i in range(n_chunks):
        hops = draw(st.integers(min_value=1, max_value=n))
        node = 0
        dims = draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=hops, max_size=hops, unique=True,
            )
        )
        for d in dims:
            nxt = node ^ (1 << d)
            transfers.append(Transfer(node, nxt, frozenset({("c", i)})))
            node = nxt
    pm = draw(st.sampled_from(list(PortModel)))
    return cube, transfers, chunk_sizes, pm


class TestListScheduleProperties:
    @settings(max_examples=60, deadline=None)
    @given(random_fanout_case())
    def test_output_is_always_valid_and_complete(self, case):
        cube, transfers, chunk_sizes, pm = case
        sched = list_schedule(
            cube, transfers, chunk_sizes, pm, {0: set(chunk_sizes)}
        )
        # executing under the same model must validate and deliver the
        # final hops' chunks
        res = run_synchronous(cube, sched, pm, {0: set(chunk_sizes)})
        assert sched.num_transfers == len(transfers)
        for t in transfers:
            assert t.chunks <= res.holdings[t.dst]

    @settings(max_examples=40, deadline=None)
    @given(random_fanout_case())
    def test_all_port_never_more_rounds_than_one_port(self, case):
        cube, transfers, chunk_sizes, _ = case
        r_all = list_schedule(
            cube, transfers, chunk_sizes, PortModel.ALL_PORT, {0: set(chunk_sizes)}
        ).num_rounds
        r_one = list_schedule(
            cube, transfers, chunk_sizes, PortModel.ONE_PORT_HALF, {0: set(chunk_sizes)}
        ).num_rounds
        assert r_all <= r_one


class TestSplitProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.integers(min_value=1, max_value=20), min_size=1, max_size=10),
        st.integers(min_value=1, max_value=25),
    )
    def test_partition_conserves_and_bounds(self, sizes_list, limit):
        sizes = {("c", i): s for i, s in enumerate(sizes_list)}
        bins = greedy_partition(list(sizes), sizes, limit)
        flat = [c for b in bins for c in b]
        assert sorted(flat) == sorted(sizes)
        for b in bins:
            total = sum(sizes[c] for c in b)
            assert total <= limit or len(b) == 1

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(min_value=1, max_value=10), min_size=1, max_size=8),
        st.integers(min_value=4, max_value=30),
    )
    def test_split_oversized_preserves_payload(self, sizes_list, limit):
        cube = Hypercube(2)
        sizes = {("c", i): s for i, s in enumerate(sizes_list)}
        sched = Schedule(
            rounds=[(Transfer(0, 1, frozenset(sizes)),)],
            chunk_sizes=sizes,
        )
        out = split_oversized(sched, limit)
        delivered = set()
        for r in out.rounds:
            for t in r:
                assert (t.src, t.dst) == (0, 1)
                delivered |= t.chunks
        assert delivered == set(sizes)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=8),
    )
    def test_split_is_identity_when_under_limit(self, sizes_list):
        sizes = {("c", i): s for i, s in enumerate(sizes_list)}
        sched = Schedule(
            rounds=[(Transfer(0, 1, frozenset(sizes)),)],
            chunk_sizes=sizes,
        )
        out = split_oversized(sched, sum(sizes_list))
        assert out.num_rounds == 1
        assert out.rounds[0][0].chunks == frozenset(sizes)
