"""Property-based tests for the bit-manipulation substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits import (
    base,
    canonical_rotation,
    from_bits,
    generator_set,
    gray_code,
    gray_decode,
    hamming_distance,
    period,
    popcount,
    rotate_left,
    rotate_right,
    to_bits,
)

dims = st.integers(min_value=1, max_value=16)


@st.composite
def word(draw):
    n = draw(dims)
    x = draw(st.integers(min_value=0, max_value=(1 << n) - 1))
    return n, x


class TestRotationProperties:
    @given(word(), st.integers(min_value=0, max_value=40))
    def test_rotation_composes(self, nx, s):
        n, x = nx
        assert rotate_right(rotate_right(x, s, n), n - (s % n), n) == x

    @given(word(), st.integers(min_value=0, max_value=40), st.integers(min_value=0, max_value=40))
    def test_rotation_additive(self, nx, a, b):
        n, x = nx
        assert rotate_right(rotate_right(x, a, n), b, n) == rotate_right(x, a + b, n)

    @given(word())
    def test_left_right_inverse(self, nx):
        n, x = nx
        assert rotate_left(rotate_right(x, 1, n), 1, n) == x

    @given(word(), st.integers(min_value=0, max_value=40))
    def test_popcount_invariant(self, nx, s):
        n, x = nx
        assert popcount(rotate_right(x, s, n)) == popcount(x)


class TestNecklaceProperties:
    @given(word())
    def test_canonical_is_least_member(self, nx):
        n, x = nx
        members = generator_set(x, n)
        assert canonical_rotation(x, n) == min(members)

    @given(word())
    def test_all_members_share_canonical(self, nx):
        n, x = nx
        canon = canonical_rotation(x, n)
        for m in generator_set(x, n):
            assert canonical_rotation(m, n) == canon

    @given(word())
    def test_base_bounded_by_period(self, nx):
        n, x = nx
        assert 0 <= base(x, n) < period(x, n)

    @given(word())
    def test_rotating_by_base_reaches_canonical(self, nx):
        n, x = nx
        assert rotate_right(x, base(x, n), n) == canonical_rotation(x, n)


class TestEncodingProperties:
    @given(word())
    def test_bits_roundtrip(self, nx):
        n, x = nx
        assert from_bits(to_bits(x, n)) == x

    @given(st.integers(min_value=0, max_value=1 << 20))
    def test_gray_roundtrip(self, i):
        assert gray_decode(gray_code(i)) == i

    @given(st.integers(min_value=0, max_value=1 << 20))
    def test_gray_neighbors_differ_by_one_bit(self, i):
        assert hamming_distance(gray_code(i), gray_code(i + 1)) == 1

    @given(word())
    def test_popcount_equals_bit_sum(self, nx):
        n, x = nx
        assert popcount(x) == sum(to_bits(x, n))
