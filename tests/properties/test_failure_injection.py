"""Failure injection: corrupted schedules must be caught, not absorbed.

The engines' guarantees are only meaningful if violations are actually
detected.  These tests take known-good schedules and break them in
targeted ways — dropped transfers, reordered rounds, duplicated sends,
misrouted packets — asserting that validation or the delivery checks
fail loudly in every case.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing import msbt_broadcast_schedule, sbt_scatter_schedule
from repro.sim import PortModel, Schedule, Transfer, run_synchronous
from repro.sim.synchronous import ScheduleViolation
from repro.topology import Hypercube


def _complete_broadcast(cube, sched, pm, source):
    res = run_synchronous(cube, sched, pm, {source: set(sched.chunk_sizes)})
    return all(
        res.holdings[v] >= set(sched.chunk_sizes) for v in cube.nodes()
    )


class TestDroppedTransfers:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_dropping_any_transfer_breaks_broadcast(self, seed):
        cube = Hypercube(3)
        sched = msbt_broadcast_schedule(cube, 0, 6, 2, PortModel.ONE_PORT_FULL)
        rng = random.Random(seed)
        flat = [(ri, ti) for ri, r in enumerate(sched.rounds) for ti in range(len(r))]
        ri, ti = rng.choice(flat)
        rounds = [list(r) for r in sched.rounds]
        del rounds[ri][ti]
        broken = Schedule(
            rounds=[tuple(r) for r in rounds], chunk_sizes=sched.chunk_sizes
        )
        # either a later sender no longer holds its payload (violation)
        # or some node ends up missing data — never a silent pass
        try:
            ok = _complete_broadcast(cube, broken, PortModel.ONE_PORT_FULL, 0)
        except ScheduleViolation:
            return
        assert not ok


class TestReorderedRounds:
    def test_swapping_dependent_rounds_detected(self, cube4):
        sched = msbt_broadcast_schedule(cube4, 0, 1, 1, PortModel.ONE_PORT_FULL)
        rounds = [r for r in sched.rounds if r]
        swapped = Schedule(
            rounds=[rounds[-1]] + rounds[1:-1] + [rounds[0]],
            chunk_sizes=sched.chunk_sizes,
        )
        with pytest.raises(ScheduleViolation):
            run_synchronous(
                cube4, swapped, PortModel.ONE_PORT_FULL, {0: set(sched.chunk_sizes)}
            )


class TestDuplicatedTransfers:
    def test_duplicate_send_violates_port_model(self, cube4):
        sched = sbt_scatter_schedule(cube4, 0, 2, 4, PortModel.ONE_PORT_FULL)
        target = next(r for r in sched.rounds if r)
        extra = Transfer(target[0].src, target[0].src ^ 8, target[0].chunks)
        if extra.dst == target[0].dst:
            extra = Transfer(target[0].src, target[0].src ^ 4, target[0].chunks)
        corrupted = Schedule(
            rounds=[tuple(list(sched.rounds[0]) + [extra])] + list(sched.rounds[1:]),
            chunk_sizes=sched.chunk_sizes,
        )
        with pytest.raises(ScheduleViolation, match="sends 2"):
            run_synchronous(
                cube4, corrupted, PortModel.ONE_PORT_FULL,
                {0: set(sched.chunk_sizes)},
            )


class TestMisroutedPackets:
    def test_wrong_payload_source_detected(self, cube4):
        # a node sending data it never had
        sched = Schedule(
            rounds=[(Transfer(2, 3, frozenset({("b", 0)})),)],
            chunk_sizes={("b", 0): 1},
        )
        with pytest.raises(ScheduleViolation, match="does not hold"):
            run_synchronous(cube4, sched, PortModel.ALL_PORT, {0: {("b", 0)}})

    def test_non_adjacent_hop_detected(self, cube4):
        sched = Schedule(
            rounds=[(Transfer(0, 3, frozenset({("b", 0)})),)],
            chunk_sizes={("b", 0): 1},
        )
        with pytest.raises(ScheduleViolation, match="not a cube edge"):
            run_synchronous(cube4, sched, PortModel.ALL_PORT, {0: {("b", 0)}})


class TestAsyncEngineAgreement:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_async_deadlocks_where_sync_raises(self, seed):
        # dropping an early transfer starves the pipeline: the async
        # engine must deadlock (never hang or silently finish)
        from repro.sim.engine import run_async

        cube = Hypercube(3)
        sched = msbt_broadcast_schedule(cube, 0, 3, 1, PortModel.ONE_PORT_FULL)
        rng = random.Random(seed)
        rounds = [list(r) for r in sched.rounds if r]
        ri = rng.randrange(len(rounds) // 2)  # early round
        if not rounds[ri]:
            return
        victim = rounds[ri].pop(rng.randrange(len(rounds[ri])))
        broken = Schedule(
            rounds=[tuple(r) for r in rounds], chunk_sizes=sched.chunk_sizes
        )
        init = {0: set(sched.chunk_sizes)}
        try:
            res = run_async(cube, broken, PortModel.ONE_PORT_FULL, init)
        except RuntimeError:
            return  # deadlock detected: good
        # or the only consumers of the dropped edge were leaves: then
        # delivery must be incomplete exactly at the victim's subtree
        missing = [
            v for v in cube.nodes() if not res.holdings[v] >= set(sched.chunk_sizes)
        ]
        assert victim.dst in missing
