"""Property-based tests on the cube graph itself."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits.ops import hamming_distance, popcount
from repro.topology import Hypercube

dims = st.integers(min_value=1, max_value=8)


@st.composite
def cube_pair(draw):
    n = draw(dims)
    a = draw(st.integers(min_value=0, max_value=(1 << n) - 1))
    b = draw(st.integers(min_value=0, max_value=(1 << n) - 1))
    return Hypercube(n), a, b


class TestMetricProperties:
    @given(cube_pair())
    def test_distance_is_a_metric(self, cab):
        cube, a, b = cab
        d = cube.distance(a, b)
        assert d == cube.distance(b, a)
        assert (d == 0) == (a == b)
        assert d <= cube.dimension

    @given(cube_pair(), st.data())
    def test_triangle_inequality(self, cab, data):
        cube, a, b = cab
        c = data.draw(st.integers(min_value=0, max_value=cube.num_nodes - 1))
        assert cube.distance(a, b) <= cube.distance(a, c) + cube.distance(c, b)

    @given(cube_pair())
    def test_shortest_path_has_distance_hops(self, cab):
        cube, a, b = cab
        path = cube.shortest_path(a, b)
        assert len(path) - 1 == cube.distance(a, b)
        for x, y in zip(path, path[1:]):
            assert cube.are_adjacent(x, y)

    @given(cube_pair())
    def test_translation_preserves_distance(self, cab):
        cube, a, b = cab
        t = cube.num_nodes - 1
        assert cube.distance(a ^ t, b ^ t) == cube.distance(a, b)


class TestDisjointPathProperties:
    @settings(max_examples=40, deadline=None)
    @given(cube_pair())
    def test_n_disjoint_paths_everywhere(self, cab):
        cube, a, b = cab
        if a == b:
            return
        paths = cube.disjoint_paths(a, b)
        assert len(paths) == cube.dimension
        d = cube.distance(a, b)
        interiors = []
        for p in paths:
            assert p[0] == a and p[-1] == b
            assert len(p) - 1 in (d, d + 2)
            for x, y in zip(p, p[1:]):
                assert cube.are_adjacent(x, y)
            interiors.append(set(p[1:-1]))
        for i in range(len(interiors)):
            for j in range(i + 1, len(interiors)):
                assert not interiors[i] & interiors[j]


class TestSphereProperties:
    @given(dims, st.data())
    def test_spheres_partition_the_cube(self, n, data):
        cube = Hypercube(n)
        center = data.draw(st.integers(min_value=0, max_value=cube.num_nodes - 1))
        seen = set()
        for d in range(n + 1):
            shell = cube.nodes_at_distance(center, d)
            assert not (set(shell) & seen)
            seen |= set(shell)
        assert seen == set(cube.nodes())

    @given(cube_pair())
    def test_neighbors_differ_in_exactly_one_bit(self, cab):
        cube, a, _ = cab
        for v in cube.neighbors(a):
            assert popcount(a ^ v) == 1
            assert hamming_distance(a, v) == 1
