"""Property-based agreement between the analytic models and simulation.

Random parameter draws; for every draw the simulated lock-step step
counts must equal (SBT/MSBT broadcasting) or closely track (scatter)
the closed forms — the strongest form of Table 3/6 reproduction.
"""

from math import ceil

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.models import broadcast_model, personalized_time_one_port
from repro.collectives.api import broadcast, scatter
from repro.sim import MachineParams, PortModel
from repro.topology import Hypercube

dims = st.integers(min_value=2, max_value=5)


@st.composite
def bcast_params(draw):
    n = draw(dims)
    B = draw(st.integers(min_value=1, max_value=16))
    packets = draw(st.integers(min_value=1, max_value=20))
    M = B * packets - draw(st.integers(min_value=0, max_value=B - 1))
    pm = draw(st.sampled_from(list(PortModel)))
    return n, M, B, pm


class TestBroadcastStepAgreement:
    @settings(max_examples=50, deadline=None)
    @given(bcast_params(), st.sampled_from(["sbt", "msbt"]))
    def test_steps_match_model(self, params, algo):
        n, M, B, pm = params
        if algo == "msbt" and ceil(M / B) == 1 and pm is not PortModel.ALL_PORT:
            return  # single-packet MSBT is the 2logN special case
        cube = Hypercube(n)
        res = broadcast(cube, 0, algo, M, B, pm)
        model = broadcast_model(algo, pm).steps(M, B, n)
        slack = n if (algo == "msbt" and pm is PortModel.ONE_PORT_HALF) else 0
        assert model - slack <= res.cycles <= model, (params, algo)


@st.composite
def scatter_params(draw):
    n = draw(st.integers(min_value=3, max_value=5))
    M = draw(st.integers(min_value=1, max_value=8))
    B = draw(st.sampled_from([None, 1, 2, "M", "big"]))
    if B is None:
        B = draw(st.integers(min_value=1, max_value=M))
    elif B == "M":
        B = M
    elif B == "big":
        B = (1 << n) * M
    return n, M, B


class TestScatterTimeAgreement:
    @settings(max_examples=40, deadline=None)
    @given(scatter_params())
    def test_sbt_one_port_tracks_t_of_b(self, params):
        n, M, B = params
        cube = Hypercube(n)
        machine = MachineParams(tau=1.0, t_c=1.0)
        res = scatter(cube, 0, "sbt", M, B, PortModel.ONE_PORT_FULL, machine=machine)
        model = personalized_time_one_port("sbt", n, M, B, 1.0, 1.0)
        # the §4.2 forms are approximations ("~"); 15% + constant slack
        assert abs(res.sync.time - model) <= 0.15 * model + n + 2, params

    @settings(max_examples=40, deadline=None)
    @given(scatter_params())
    def test_scatter_never_beats_source_bound(self, params):
        # no schedule can beat the source's own injection time
        n, M, B = params
        cube = Hypercube(n)
        machine = MachineParams(tau=0.0, t_c=1.0)
        for algo in ("sbt", "bst"):
            res = scatter(cube, 0, algo, M, B, PortModel.ONE_PORT_FULL, machine=machine)
            assert res.sync.time >= (cube.num_nodes - 1) * M - 1e-9, (params, algo)

    @settings(max_examples=30, deadline=None)
    @given(scatter_params())
    def test_all_port_scatter_beats_one_port(self, params):
        n, M, B = params
        cube = Hypercube(n)
        machine = MachineParams(tau=1.0, t_c=1.0)
        for algo in ("sbt", "bst"):
            one = scatter(cube, 0, algo, M, B, PortModel.ONE_PORT_FULL, machine=machine)
            allp = scatter(cube, 0, algo, M, B, PortModel.ALL_PORT, machine=machine)
            assert allp.sync.time <= one.sync.time + 1e-9, (params, algo)
