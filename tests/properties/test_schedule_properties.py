"""Property-based tests on schedule generation and execution.

The central invariant: any generated schedule, for any (algorithm, M,
B, source, port model) combination, passes port-model validation and
delivers complete data — these are exactly the guarantees the paper's
routing algorithms claim.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing import (
    bst_scatter_schedule,
    msbt_broadcast_schedule,
    sbt_broadcast_schedule,
    sbt_scatter_schedule,
)
from repro.routing.common import MSG
from repro.sim import PortModel, run_synchronous
from repro.sim.engine import run_async
from repro.topology import Hypercube

dims = st.integers(min_value=2, max_value=5)
port_models = st.sampled_from(list(PortModel))


@st.composite
def broadcast_case(draw):
    n = draw(dims)
    source = draw(st.integers(min_value=0, max_value=(1 << n) - 1))
    M = draw(st.integers(min_value=1, max_value=48))
    B = draw(st.integers(min_value=1, max_value=16))
    pm = draw(port_models)
    return n, source, M, B, pm


@st.composite
def scatter_case(draw):
    n = draw(dims)
    source = draw(st.integers(min_value=0, max_value=(1 << n) - 1))
    M = draw(st.integers(min_value=1, max_value=8))
    B = draw(st.integers(min_value=1, max_value=64))
    pm = draw(port_models)
    return n, source, M, B, pm


class TestBroadcastProperties:
    @settings(max_examples=40, deadline=None)
    @given(broadcast_case(), st.sampled_from(["sbt", "msbt"]))
    def test_valid_and_complete(self, case, algo):
        n, source, M, B, pm = case
        cube = Hypercube(n)
        gen = sbt_broadcast_schedule if algo == "sbt" else msbt_broadcast_schedule
        sched = gen(cube, source, M, B, pm)
        res = run_synchronous(cube, sched, pm, {source: set(sched.chunk_sizes)})
        want = set(sched.chunk_sizes)
        for v in cube.nodes():
            assert res.holdings[v] >= want
        # conservation: total elements delivered over all chunks == M
        assert sum(sched.chunk_sizes.values()) == M

    @settings(max_examples=25, deadline=None)
    @given(broadcast_case())
    def test_async_execution_terminates_and_delivers(self, case):
        n, source, M, B, pm = case
        cube = Hypercube(n)
        sched = msbt_broadcast_schedule(cube, source, M, B, pm)
        res = run_async(cube, sched, pm, {source: set(sched.chunk_sizes)})
        want = set(sched.chunk_sizes)
        for v in cube.nodes():
            assert res.holdings[v] >= want
        assert res.time > 0


class TestScatterProperties:
    @settings(max_examples=40, deadline=None)
    @given(scatter_case(), st.sampled_from(["sbt", "bst"]))
    def test_valid_and_complete(self, case, algo):
        n, source, M, B, pm = case
        cube = Hypercube(n)
        gen = sbt_scatter_schedule if algo == "sbt" else bst_scatter_schedule
        sched = gen(cube, source, M, B, pm)
        res = run_synchronous(cube, sched, pm, {source: set(sched.chunk_sizes)})
        for v in cube.nodes():
            if v == source:
                continue
            mine = {c for c in sched.chunk_sizes if c[0] == MSG and c[1] == v}
            assert res.holdings[v] >= mine
        # conservation: each destination's chunks sum to exactly M
        for v in cube.nodes():
            if v == source:
                continue
            total = sum(
                s for c, s in sched.chunk_sizes.items() if c[1] == v
            )
            assert total == M

    @settings(max_examples=25, deadline=None)
    @given(scatter_case())
    def test_packets_respect_size_bound(self, case):
        n, source, M, B, pm = case
        cube = Hypercube(n)
        sched = bst_scatter_schedule(cube, source, M, B, pm)
        # no packet exceeds B (chunks are pre-split to <= B)
        assert sched.max_transfer_elems() <= B

    @settings(max_examples=15, deadline=None)
    @given(scatter_case())
    def test_link_traffic_conservation(self, case):
        # every message crosses each tree edge on its path exactly once:
        # total element-hops == sum over dests of M * path length
        n, source, M, B, pm = case
        cube = Hypercube(n)
        sched = sbt_scatter_schedule(cube, source, M, B, pm)
        res = run_synchronous(cube, sched, pm, {source: set(sched.chunk_sizes)})
        from repro.bits.ops import popcount

        expected = sum(
            M * popcount(v ^ source) for v in cube.nodes() if v != source
        )
        assert res.link_stats.total_elems() == expected
