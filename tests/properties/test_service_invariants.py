"""Property suite for the multi-tenant service: random job mixes must
respect the physics of the shared cube.

Three invariants, for any random mix of tenants, collectives, sizes,
arrival times, policies and port models:

* **link exclusivity** — no directed link ever carries two transfers
  at the same instant (and under the one-port models, no node drives
  two ports at once);
* **delivery** — every admitted job's collective completes: each
  destination holds every chunk the op promised it (no faults here);
* **conservation** — per-link busy time and packet counts of the
  merged run equal the sums of the per-job slices exactly: provenance
  accounting neither loses nor invents traffic.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import run_service
from repro.service.jobs import JobSpec
from repro.sim.lowering import lower_schedule
from repro.sim.machine import MachineParams
from repro.sim.ports import PortModel
from repro.topology import Hypercube

EPS = 1e-9
TENANTS = ("ant", "bee", "cat")


@st.composite
def service_case(draw):
    n = draw(st.sampled_from((3, 4)))
    pm = draw(st.sampled_from(list(PortModel)))
    policy = draw(st.sampled_from(("fifo", "priority", "fair-share")))
    num_jobs = draw(st.integers(min_value=1, max_value=4))
    specs = []
    for _ in range(num_jobs):
        op = draw(st.sampled_from(("broadcast", "scatter", "allgather")))
        specs.append(JobSpec(
            tenant=draw(st.sampled_from(TENANTS)),
            op=op,
            source=draw(st.integers(min_value=0, max_value=(1 << n) - 1)),
            message_elems=draw(st.integers(min_value=1, max_value=12)),
            packet_elems=draw(st.sampled_from((None, 1, 2, 4))),
            priority=draw(st.integers(min_value=0, max_value=3)),
            arrival=draw(st.sampled_from(
                (0.0, 0.5, 1.0, 3.0, 7.5, 20.0, 60.0)
            )),
        ))
    return Hypercube(n), specs, pm, policy


def _execution_records(cube, view):
    """(link index, src, dst, start, cost) per executed transfer."""
    program = view.program
    low = lower_schedule(
        cube, program.schedule, program.initial, program.release_times
    )
    machine = MachineParams()
    log = view.raw.transfer_log
    out = []
    for tid, start in zip(log.ids, log.starts):
        li = int(low.link[tid])
        out.append((
            li,
            int(low.link_src[li]),
            int(low.link_dst[li]),
            float(start),
            machine.send_cost(int(low.elems[tid])),
        ))
    return out


def _assert_serialized(intervals):
    """Intervals (start, cost) on one resource must not overlap."""
    seq = sorted(intervals)
    for (s0, c0), (s1, _) in zip(seq, seq[1:]):
        assert s1 >= s0 + c0 - EPS, (
            f"overlap: ({s0}, +{c0}) then ({s1}, ...)"
        )


class TestServiceInvariants:
    @settings(max_examples=25, deadline=None)
    @given(service_case())
    def test_link_exclusivity_delivery_and_conservation(self, case):
        cube, specs, pm, policy = case
        result = run_service(cube, specs, port_model=pm, policy=policy)
        view = result.view
        assert view is not None
        records = _execution_records(cube, view)

        # -- link exclusivity ------------------------------------------
        by_link: dict[int, list[tuple[float, float]]] = {}
        by_src: dict[int, list[tuple[float, float]]] = {}
        by_dst: dict[int, list[tuple[float, float]]] = {}
        by_node: dict[int, list[tuple[float, float]]] = {}
        for li, src, dst, start, cost in records:
            by_link.setdefault(li, []).append((start, cost))
            by_src.setdefault(src, []).append((start, cost))
            by_dst.setdefault(dst, []).append((start, cost))
            by_node.setdefault(src, []).append((start, cost))
            by_node.setdefault(dst, []).append((start, cost))
        for intervals in by_link.values():
            _assert_serialized(intervals)
        if pm is not PortModel.ALL_PORT:
            # one send at a time per node; full-duplex also allows at
            # most one receive at a time
            for intervals in by_src.values():
                _assert_serialized(intervals)
            for intervals in by_dst.values():
                _assert_serialized(intervals)
        if pm is PortModel.ONE_PORT_HALF:
            # half-duplex: sends and receives share the single port
            for intervals in by_node.values():
                _assert_serialized(intervals)

        # -- per-tenant delivery ---------------------------------------
        for job in result.jobs:
            assert job.accepted  # no admission limits in this suite
            assert job.complete, (job, job.undelivered)
            assert not job.degraded
            assert job.admit_time >= job.spec.arrival - EPS
            if job.transfers:
                assert job.start_time >= job.admit_time - EPS
                assert job.finish_time <= result.makespan + EPS

        # -- conservation ----------------------------------------------
        total_busy: dict[tuple[int, int], float] = {}
        for li, src, dst, start, cost in records:
            total_busy[(src, dst)] = total_busy.get((src, dst), 0.0) + cost
        from_slices = {
            (e.src, e.dst): busy
            for e, busy in view.link_busy_total().items()
        }
        assert set(from_slices) == set(total_busy)
        for edge, busy in total_busy.items():
            assert math.isclose(from_slices[edge], busy, abs_tol=1e-6)

        merged_packets = view.raw.link_stats.packets
        split_packets: dict = {}
        for sl in view.slices:
            for edge, k in sl.link_stats.packets.items():
                split_packets[edge] = split_packets.get(edge, 0) + k
        assert split_packets == dict(merged_packets)

        split_transfers = sum(sl.executed for sl in view.slices)
        assert split_transfers == view.raw.transfers_executed
