"""Property-based tests on the spanning-tree invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits.ops import popcount
from repro.topology import Hypercube
from repro.trees import (
    BalancedSpanningTree,
    HamiltonianPathTree,
    SpanningBinomialTree,
    TwoRootedCompleteBinaryTree,
    bst_parent,
    ersbt_children,
    ersbt_parent,
    msbt_label,
    sbt_children,
    sbt_parent,
)

dims = st.integers(min_value=2, max_value=7)


@st.composite
def cube_node_source(draw):
    n = draw(dims)
    node = draw(st.integers(min_value=0, max_value=(1 << n) - 1))
    source = draw(st.integers(min_value=0, max_value=(1 << n) - 1))
    return n, node, source


class TestSbtProperties:
    @given(cube_node_source())
    def test_parent_children_consistent(self, args):
        n, node, s = args
        p = sbt_parent(node, s, n)
        if p is not None:
            assert node in sbt_children(p, s, n)
        for c in sbt_children(node, s, n):
            assert sbt_parent(c, s, n) == node

    @given(cube_node_source())
    def test_parent_reduces_level(self, args):
        n, node, s = args
        p = sbt_parent(node, s, n)
        if p is not None:
            assert popcount(p ^ s) == popcount(node ^ s) - 1

    @given(cube_node_source())
    def test_parent_chain_reaches_source(self, args):
        n, node, s = args
        hops = 0
        while node != s:
            parent = sbt_parent(node, s, n)
            assert parent is not None
            node = parent
            hops += 1
            assert hops <= n


class TestErsbtProperties:
    @given(cube_node_source(), st.data())
    def test_parent_children_consistent(self, args, data):
        n, node, s = args
        j = data.draw(st.integers(min_value=0, max_value=n - 1))
        p = ersbt_parent(node, j, s, n)
        if p is not None:
            assert node in ersbt_children(p, j, s, n)
        for c in ersbt_children(node, j, s, n):
            assert ersbt_parent(c, j, s, n) == node

    @given(cube_node_source(), st.data())
    def test_labels_increase_toward_leaves(self, args, data):
        n, node, s = args
        j = data.draw(st.integers(min_value=0, max_value=n - 1))
        lab = msbt_label(node, j, s, n)
        for c in ersbt_children(node, j, s, n):
            child_lab = msbt_label(c, j, s, n)
            assert child_lab is not None
            if lab is not None:
                assert child_lab > lab

    @given(cube_node_source(), st.data())
    def test_labels_in_range(self, args, data):
        n, node, s = args
        j = data.draw(st.integers(min_value=0, max_value=n - 1))
        lab = msbt_label(node, j, s, n)
        if node == s:
            assert lab is None
        else:
            assert 0 <= lab <= 2 * n - 1


class TestBstProperties:
    @given(cube_node_source())
    def test_parent_chain_reaches_source(self, args):
        n, node, s = args
        hops = 0
        while node != s:
            parent = bst_parent(node, s, n)
            assert parent is not None
            assert popcount(parent ^ node) == 1  # always a cube edge
            node = parent
            hops += 1
            assert hops <= n

    @given(cube_node_source())
    def test_parent_reduces_weight(self, args):
        n, node, s = args
        p = bst_parent(node, s, n)
        if p is not None:
            assert popcount(p ^ s) == popcount(node ^ s) - 1


class TestWholeTreeProperties:
    @settings(max_examples=20, deadline=None)
    @given(dims, st.data())
    def test_all_trees_span(self, n, data):
        cube = Hypercube(n)
        root = data.draw(st.integers(min_value=0, max_value=cube.num_nodes - 1))
        for cls in (
            SpanningBinomialTree,
            BalancedSpanningTree,
            TwoRootedCompleteBinaryTree,
            HamiltonianPathTree,
        ):
            tree = cls(cube, root)
            tree.validate()
            assert len(tree.levels) == cube.num_nodes
            assert len(tree.edges()) == cube.num_nodes - 1

    @settings(max_examples=20, deadline=None)
    @given(dims, st.data())
    def test_translation_equivariance(self, n, data):
        # tree(s) is the XOR-translate of tree(0) for SBT and BST
        cube = Hypercube(n)
        s = data.draw(st.integers(min_value=0, max_value=cube.num_nodes - 1))
        for cls in (SpanningBinomialTree, BalancedSpanningTree):
            t0 = cls(cube, 0)
            ts = cls(cube, s)
            for v in cube.nodes():
                p0 = t0.parent(v)
                assert ts.parent(v ^ s) == (None if p0 is None else p0 ^ s)
