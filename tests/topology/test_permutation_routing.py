"""Tests for e-cube and Valiant permutation routing."""

import random

import pytest

from repro.topology import Hypercube
from repro.topology.permutation_routing import (
    bit_reversal_permutation,
    ecube_path,
    link_congestion,
    route_permutation,
    transpose_permutation,
    valiant_route_permutation,
)


class TestEcube:
    def test_path_is_minimal_and_valid(self, cube4):
        p = ecube_path(cube4, 0b0011, 0b1100)
        assert p[0] == 0b0011 and p[-1] == 0b1100
        assert len(p) - 1 == 4
        for a, b in zip(p, p[1:]):
            assert cube4.are_adjacent(a, b)

    def test_identity_permutation_moves_nothing(self, cube4):
        paths = route_permutation(cube4, {v: v for v in cube4.nodes()})
        assert all(len(p) == 1 for p in paths.values())
        assert not link_congestion(paths)

    def test_shift_permutation_balanced(self, cube4):
        perm = {v: v ^ 0b0101 for v in cube4.nodes()}
        load = link_congestion(route_permutation(cube4, perm))
        assert set(load.values()) == {1}

    def test_not_a_permutation_rejected(self, cube4):
        with pytest.raises(ValueError, match="not a permutation"):
            route_permutation(cube4, {v: 0 for v in cube4.nodes()})


class TestAdversarialPermutations:
    def test_transpose_is_a_permutation(self):
        cube = Hypercube(6)
        perm = transpose_permutation(cube)
        assert sorted(perm.values()) == list(cube.nodes())
        assert perm[0b000111] == 0b111000

    def test_transpose_needs_even_dimension(self):
        with pytest.raises(ValueError):
            transpose_permutation(Hypercube(5))

    def test_bit_reversal_is_involution(self, cube5):
        perm = bit_reversal_permutation(cube5)
        assert sorted(perm.values()) == list(cube5.nodes())
        for v in cube5.nodes():
            assert perm[perm[v]] == v

    def test_transpose_congests_ecube_by_order_sqrt_n(self):
        # the classic oblivious-routing bad case: e-cube funnels on the
        # order of sqrt(N) sources through single links (vs load 1 for
        # a translation permutation)
        cube = Hypercube(8)
        load = link_congestion(route_permutation(cube, transpose_permutation(cube)))
        assert max(load.values()) >= 8  # sqrt(256) / 2


class TestValiant:
    def test_paths_reach_destinations(self, cube5):
        perm = bit_reversal_permutation(cube5)
        paths = valiant_route_permutation(cube5, perm, random.Random(1))
        for s, path in paths.items():
            assert path[0] == s and path[-1] == perm[s]
            for a, b in zip(path, path[1:]):
                assert cube5.are_adjacent(a, b)

    def test_randomization_beats_ecube_on_transpose(self):
        cube = Hypercube(8)
        perm = transpose_permutation(cube)
        ecube_load = link_congestion(route_permutation(cube, perm))
        best_valiant = min(
            max(link_congestion(
                valiant_route_permutation(cube, perm, random.Random(seed))
            ).values())
            for seed in range(3)
        )
        assert best_valiant < max(ecube_load.values())

    def test_deterministic_with_seed(self, cube4):
        perm = {v: v ^ 7 for v in cube4.nodes()}
        a = valiant_route_permutation(cube4, perm, random.Random(9))
        b = valiant_route_permutation(cube4, perm, random.Random(9))
        assert a == b
