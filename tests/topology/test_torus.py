"""Structural tests for the k-ary n-cube torus topology."""

from __future__ import annotations

import numpy as np
import pytest

from repro.topology import (
    TOPOLOGY_KINDS,
    Hypercube,
    Torus,
    resolve_topology,
    topology_token,
)

GRID = [(1, 3), (1, 5), (2, 2), (2, 3), (2, 4), (3, 2), (3, 3), (2, 5)]


@pytest.mark.parametrize("n,k", GRID)
class TestTorusStructure:
    def test_sizes(self, n, k):
        t = Torus(n, k)
        assert t.dimension == n
        assert t.arity == k
        assert t.num_nodes == k**n
        ports_per_dim = 1 if k == 2 else 2
        assert t.num_ports == n * ports_per_dim
        assert t.diameter == n * (k // 2)

    def test_coords_roundtrip(self, n, k):
        t = Torus(n, k)
        for v in t.nodes():
            c = t.coords(v)
            assert len(c) == n
            assert all(0 <= d < k for d in c)
            assert t.from_coords(c) == v

    def test_neighbor_ports_consistent(self, n, k):
        """neighbor() and port_towards() are inverse views of adjacency."""
        t = Torus(n, k)
        for v in t.nodes():
            seen = set()
            for p in range(t.num_ports):
                u = t.neighbor(v, p)
                assert u != v
                assert t.are_adjacent(v, u)
                assert t.port_towards(v, u) == p
                seen.add(u)
            assert seen == set(t.neighbors(v))

    def test_ring_adjacency(self, n, k):
        """Neighbours differ in exactly one coordinate by ±1 mod k."""
        t = Torus(n, k)
        for v in t.nodes():
            for u in t.neighbors(v):
                diffs = [
                    (a - b) % k
                    for a, b in zip(t.coords(u), t.coords(v))
                    if a != b
                ]
                assert len(diffs) == 1
                assert diffs[0] in (1, k - 1)

    def test_edge_ports_matches_scalar(self, n, k):
        t = Torus(n, k)
        pairs = [(a, b) for a in t.nodes() for b in t.nodes() if a != b]
        src = np.array([a for a, _ in pairs])
        dst = np.array([b for _, b in pairs])
        ports = t.edge_ports(src, dst)
        for (a, b), p in zip(pairs, ports):
            if t.are_adjacent(a, b):
                assert p == t.port_towards(a, b)
            else:
                assert p == -1

    def test_translate_is_automorphism(self, n, k):
        t = Torus(n, k)
        for s in [1, t.num_nodes - 1, t.num_nodes // 2]:
            mapped = {v: t.translate(v, s) for v in t.nodes()}
            assert sorted(mapped.values()) == list(t.nodes())
            for a, b in t.links():
                assert t.are_adjacent(mapped[a], mapped[b])
            # ports are preserved: translation is coordinate-wise
            for v in t.nodes():
                for p in range(t.num_ports):
                    assert t.neighbor(mapped[v], p) == mapped[t.neighbor(v, p)]

    def test_distance_and_diameter(self, n, k):
        t = Torus(n, k)
        assert t.distance(0, 0) == 0
        worst = max(t.distance(0, v) for v in t.nodes())
        assert worst == t.diameter
        for v in t.nodes():
            assert t.distance(0, v) == t.distance(v, 0)


class TestTorusEqualsHypercubeAtK2:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_same_graph_and_ports(self, n):
        t, h = Torus(n, 2), Hypercube(n)
        assert t.num_nodes == h.num_nodes
        assert t.num_ports == h.num_ports
        for v in t.nodes():
            for p in range(n):
                assert t.neighbor(v, p) == h.neighbor(v, p)
        assert set(t.links()) == set(h.links())

    def test_tokens_still_distinct(self):
        # same graph, but never the same cache identity (regression:
        # torus/hypercube schedules at equal n must not collide)
        assert Torus(3, 2).cache_token() != Hypercube(3).cache_token()
        assert topology_token(Torus(3, 2)) != topology_token(Hypercube(3))


class TestTorusValidation:
    def test_bad_arguments(self):
        with pytest.raises(ValueError):
            Torus(0, 3)
        with pytest.raises(ValueError):
            Torus(2, 1)

    def test_check_node_and_port(self):
        t = Torus(2, 3)
        with pytest.raises(ValueError):
            t.check_node(9)
        with pytest.raises(ValueError):
            t.check_port(4)

    def test_equality_and_hash(self):
        assert Torus(2, 3) == Torus(2, 3)
        assert Torus(2, 3) != Torus(3, 2)
        assert hash(Torus(2, 4)) == hash(Torus(2, 4))


class TestResolveTopology:
    def test_kinds(self):
        assert set(TOPOLOGY_KINDS) == {"hypercube", "torus"}

    def test_hypercube(self):
        topo = resolve_topology("hypercube", 4)
        assert isinstance(topo, Hypercube)
        assert topo.dimension == 4

    def test_torus(self):
        topo = resolve_topology("torus", 2, k=5)
        assert isinstance(topo, Torus)
        assert (topo.dimension, topo.arity) == (2, 5)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            resolve_topology("mesh", 3)

    def test_kind_attribute(self):
        assert resolve_topology("torus", 2).kind == "torus"
        assert resolve_topology("hypercube", 2).kind == "hypercube"
