"""Unit tests for the hypercube graph model."""

from math import comb

import pytest

from repro.topology import DirectedEdge, Hypercube


class TestShape:
    def test_basic_counts(self, cube):
        n = cube.dimension
        assert cube.num_nodes == 2**n
        assert cube.num_links == 2 ** (n - 1) * n
        assert cube.num_directed_edges == 2**n * n
        assert cube.diameter == n

    def test_bad_dimension_rejected(self):
        with pytest.raises(ValueError):
            Hypercube(0)
        with pytest.raises(ValueError):
            Hypercube(25)

    def test_nodes_enumeration(self, cube4):
        assert list(cube4.nodes()) == list(range(16))

    def test_contains_and_check(self, cube4):
        assert cube4.contains(0) and cube4.contains(15)
        assert not cube4.contains(16) and not cube4.contains(-1)
        with pytest.raises(ValueError):
            cube4.check_node(16)

    def test_equality_and_hash(self):
        assert Hypercube(3) == Hypercube(3)
        assert Hypercube(3) != Hypercube(4)
        assert len({Hypercube(3), Hypercube(3), Hypercube(4)}) == 2


class TestAdjacency:
    def test_neighbors_are_unit_distance(self, cube):
        for v in cube.nodes():
            ns = cube.neighbors(v)
            assert len(ns) == cube.dimension
            assert len(set(ns)) == cube.dimension
            for u in ns:
                assert cube.distance(u, v) == 1

    def test_neighbor_port_roundtrip(self, cube4):
        for v in (0, 7, 15):
            for j in range(4):
                u = cube4.neighbor(v, j)
                assert cube4.port_towards(v, u) == j
                assert cube4.neighbor(u, j) == v

    def test_port_validation(self, cube4):
        with pytest.raises(ValueError):
            cube4.neighbor(0, 4)
        with pytest.raises(ValueError):
            cube4.port_towards(0, 3)  # not adjacent

    def test_are_adjacent(self, cube4):
        assert cube4.are_adjacent(0b0000, 0b0100)
        assert not cube4.are_adjacent(0b0000, 0b0110)
        assert not cube4.are_adjacent(5, 5)

    def test_edge_and_link_counts(self, cube):
        assert len(list(cube.edges())) == cube.num_directed_edges
        links = list(cube.links())
        assert len(links) == cube.num_links
        assert len(set(links)) == cube.num_links


class TestDirectedEdge:
    def test_dimension(self):
        assert DirectedEdge(0b000, 0b100).dimension == 2
        assert DirectedEdge(5, 4).dimension == 0

    def test_non_edge_dimension_rejected(self):
        with pytest.raises(ValueError):
            _ = DirectedEdge(0, 3).dimension

    def test_reverse_and_link(self):
        e = DirectedEdge(2, 3)
        assert e.reversed() == DirectedEdge(3, 2)
        assert e.link == (2, 3) == e.reversed().link


class TestMetric:
    def test_sphere_sizes(self, cube):
        n = cube.dimension
        for v in (0, cube.num_nodes - 1):
            for d in range(n + 1):
                nodes = cube.nodes_at_distance(v, d)
                assert len(nodes) == comb(n, d) == cube.sphere_size(d)
                assert all(cube.distance(v, u) == d for u in nodes)

    def test_sphere_sum_covers_cube(self, cube4):
        total = sum(len(cube4.nodes_at_distance(3, d)) for d in range(5))
        assert total == 16

    def test_shortest_path(self, cube4):
        p = cube4.shortest_path(0b0000, 0b1010)
        assert p[0] == 0 and p[-1] == 0b1010
        assert len(p) == 3
        for a, b in zip(p, p[1:]):
            assert cube4.are_adjacent(a, b)

    def test_shortest_path_orders(self, cube4):
        asc = cube4.shortest_path(0, 0b1010, "ascending")
        desc = cube4.shortest_path(0, 0b1010, "descending")
        assert asc == [0, 0b0010, 0b1010]
        assert desc == [0, 0b1000, 0b1010]
        with pytest.raises(ValueError):
            cube4.shortest_path(0, 1, "sideways")


class TestDisjointPaths:
    @pytest.mark.parametrize("src,dst", [(0, 1), (0, 15), (3, 12), (5, 6)])
    def test_n_disjoint_paths(self, cube4, src, dst):
        paths = cube4.disjoint_paths(src, dst)
        assert len(paths) == 4  # n paths (§1)
        d = cube4.distance(src, dst)
        interiors = []
        for p in paths:
            assert p[0] == src and p[-1] == dst
            for a, b in zip(p, p[1:]):
                assert cube4.are_adjacent(a, b)
            # length d or d + 2 (Saad & Schultz, quoted in §1)
            assert len(p) - 1 in (d, d + 2)
            interiors.append(set(p[1:-1]))
        for i in range(len(interiors)):
            for j in range(i + 1, len(interiors)):
                assert not (interiors[i] & interiors[j]), (i, j)

    def test_same_endpoints_rejected(self, cube4):
        with pytest.raises(ValueError):
            cube4.disjoint_paths(3, 3)


class TestSubcubesAndTranslation:
    def test_subcube_pinning(self):
        q = Hypercube(3)
        assert q.subcube({2: 1}) == [4, 5, 6, 7]
        assert q.subcube({0: 0, 1: 0}) == [0, 4]
        assert q.subcube({}) == list(range(8))

    def test_subcube_bad_args(self):
        q = Hypercube(3)
        with pytest.raises(ValueError):
            q.subcube({3: 1})
        with pytest.raises(ValueError):
            q.subcube({0: 2})

    def test_translate_is_involutive_automorphism(self, cube4):
        for v in (0, 5, 15):
            for t in (0, 9):
                assert cube4.translate(cube4.translate(v, t), t) == v
        # adjacency preserved
        for a, b in [(0, 1), (6, 7)]:
            assert cube4.are_adjacent(cube4.translate(a, 9), cube4.translate(b, 9))
