"""Tests for fault-avoiding routing over the disjoint paths."""

import itertools
import random

import pytest

from repro.topology import Hypercube
from repro.topology.fault import max_tolerable_failures, surviving_path


class TestSurvivingPath:
    def test_no_failures_gives_shortest(self, cube4):
        p = surviving_path(cube4, 0, 0b0110)
        assert p is not None
        assert len(p) - 1 == 2

    def test_avoids_dead_link(self, cube4):
        # kill the direct first hop of the ascending e-cube path
        p0 = surviving_path(cube4, 0, 0b0011)
        assert p0 is not None
        dead = [(p0[0], p0[1])]
        p1 = surviving_path(cube4, 0, 0b0011, dead_links=dead)
        assert p1 is not None
        assert (min(p1[0], p1[1]), max(p1[0], p1[1])) != (
            min(*dead[0]), max(*dead[0]),
        )

    def test_avoids_dead_nodes(self, cube4):
        p = surviving_path(cube4, 0, 0b1111, dead_nodes=[0b0001, 0b0010])
        assert p is not None
        assert 0b0001 not in p and 0b0010 not in p

    def test_survives_n_minus_one_failures(self):
        # the connectivity guarantee, probed randomly
        cube = Hypercube(5)
        rng = random.Random(11)
        for _ in range(50):
            src, dst = rng.sample(range(32), 2)
            links = list(cube.links())
            dead = rng.sample(links, max_tolerable_failures(cube))
            # exclude failures touching the endpoints' full link set
            # only when they'd sever all paths; the claim is about
            # *disjoint-path* survival, so just assert non-None when
            # no more than n-1 distinct paths can be hit
            p = surviving_path(cube, src, dst, dead_links=dead)
            assert p is not None, (src, dst, dead)

    def test_all_paths_killable_with_n_failures(self, cube4):
        # with n targeted failures (one per disjoint path) routing fails
        src, dst = 0, 0b1111
        paths = cube4.disjoint_paths(src, dst)
        dead = [(p[0], p[1]) for p in paths]
        assert surviving_path(cube4, src, dst, dead_links=dead) is None

    def test_validation(self, cube4):
        with pytest.raises(ValueError):
            surviving_path(cube4, 3, 3)
        with pytest.raises(ValueError):
            surviving_path(cube4, 0, 1, dead_nodes=[0])

    def test_direction_agnostic_links(self, cube4):
        p_a = surviving_path(cube4, 0, 1, dead_links=[(0, 1)])
        p_b = surviving_path(cube4, 0, 1, dead_links=[(1, 0)])
        assert p_a == p_b
        assert p_a is not None and len(p_a) - 1 == 3  # detour of d + 2


class TestTolerance:
    def test_value(self):
        assert max_tolerable_failures(Hypercube(7)) == 6


class TestFaultAvoidingSpanningTree:
    def test_no_failures_is_bfs_spanning(self, cube4):
        from repro.topology.fault import fault_avoiding_spanning_tree

        parents = fault_avoiding_spanning_tree(cube4, 0)
        assert len(parents) == 16
        from repro.topology import check_spanning_tree

        check_spanning_tree(cube4, 0, parents)

    def test_avoids_failures_and_still_spans(self, cube4):
        from repro.topology.fault import fault_avoiding_spanning_tree

        dead_links = [(0, 1), (0, 2), (0, 4)]  # n-1 failures at the root
        parents = fault_avoiding_spanning_tree(cube4, 0, dead_links=dead_links)
        assert len(parents) == 16
        for child, p in parents.items():
            if p is not None:
                assert (min(child, p), max(child, p)) not in {
                    (min(a, b), max(a, b)) for a, b in dead_links
                }

    def test_dead_node_excluded(self, cube4):
        from repro.topology.fault import fault_avoiding_spanning_tree

        parents = fault_avoiding_spanning_tree(cube4, 0, dead_nodes=[7])
        assert 7 not in parents
        assert len(parents) == 15

    def test_disconnection_detected(self, cube4):
        from repro.topology.fault import fault_avoiding_spanning_tree

        # isolate node 15 completely
        dead = [(15, 15 ^ (1 << j)) for j in range(4)]
        with pytest.raises(ValueError, match="disconnect"):
            fault_avoiding_spanning_tree(cube4, 0, dead_links=dead)

    def test_dead_root_rejected(self, cube4):
        from repro.topology.fault import fault_avoiding_spanning_tree

        with pytest.raises(ValueError, match="root"):
            fault_avoiding_spanning_tree(cube4, 3, dead_nodes=[3])

    def test_broadcast_over_surviving_tree(self, cube4):
        # end-to-end: route a broadcast around a failed link using the
        # generic tree machinery
        from repro.routing import list_schedule
        from repro.sim import PortModel, Transfer, run_synchronous
        from repro.topology.fault import fault_avoiding_spanning_tree

        parents = fault_avoiding_spanning_tree(cube4, 0, dead_links=[(0, 1)])
        transfers = []
        # BFS order: parents before children
        order = sorted(parents, key=lambda v: len(_chain(parents, v)))
        for v in order:
            p = parents[v]
            if p is not None:
                transfers.append(Transfer(p, v, frozenset({("b", 0)})))
        sched = list_schedule(
            cube4, transfers, {("b", 0): 1}, PortModel.ALL_PORT, {0: {("b", 0)}}
        )
        res = run_synchronous(cube4, sched, PortModel.ALL_PORT, {0: {("b", 0)}})
        assert all(res.holds(v, ("b", 0)) for v in cube4.nodes())


def _chain(parents, v):
    out = []
    while parents[v] is not None:
        v = parents[v]
        out.append(v)
    return out
