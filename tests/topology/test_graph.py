"""Unit tests for spanning-structure validation helpers."""

import pytest

from repro.topology import (
    DirectedEdge,
    Hypercube,
    bfs_levels,
    check_spanning_tree,
    edges_are_disjoint,
    is_cube_edge,
    tree_edges_from_parents,
)


def _star_parents(cube: Hypercube) -> dict[int, int | None]:
    """A simple valid spanning tree of a 2-cube rooted at 0."""
    return {0: None, 1: 0, 2: 0, 3: 1}


class TestCheckSpanningTree:
    def test_accepts_valid_tree(self):
        cube = Hypercube(2)
        check_spanning_tree(cube, 0, _star_parents(cube))

    def test_rejects_missing_node(self):
        cube = Hypercube(2)
        bad = _star_parents(cube)
        del bad[3]
        with pytest.raises(ValueError, match="does not cover"):
            check_spanning_tree(cube, 0, bad)

    def test_rejects_two_roots(self):
        cube = Hypercube(2)
        bad = _star_parents(cube)
        bad[3] = None
        with pytest.raises(ValueError, match="parentless"):
            check_spanning_tree(cube, 0, bad)

    def test_rejects_non_cube_edge(self):
        cube = Hypercube(2)
        bad = _star_parents(cube)
        bad[3] = 0  # 0 and 3 differ in two bits
        with pytest.raises(ValueError, match="not a cube edge"):
            check_spanning_tree(cube, 0, bad)

    def test_rejects_cycle(self):
        cube = Hypercube(2)
        bad = {0: None, 1: 3, 3: 1, 2: 0}
        with pytest.raises(ValueError, match="cycle"):
            check_spanning_tree(cube, 0, bad)


class TestEdgeHelpers:
    def test_is_cube_edge(self):
        cube = Hypercube(3)
        assert is_cube_edge(cube, DirectedEdge(0, 4))
        assert not is_cube_edge(cube, DirectedEdge(0, 3))

    def test_tree_edges_from_parents(self):
        edges = tree_edges_from_parents({0: None, 1: 0, 3: 1})
        assert set(edges) == {DirectedEdge(0, 1), DirectedEdge(1, 3)}

    def test_edges_are_disjoint(self):
        a = [DirectedEdge(0, 1), DirectedEdge(1, 3)]
        b = [DirectedEdge(0, 2)]
        assert edges_are_disjoint([a, b])
        assert not edges_are_disjoint([a, a])
        # opposite directions of the same link are distinct edges
        assert edges_are_disjoint([[DirectedEdge(0, 1)], [DirectedEdge(1, 0)]])


class TestBfsLevels:
    def test_levels(self):
        levels = bfs_levels(0, {0: [1, 2], 1: [3], 2: [], 3: []})
        assert levels == {0: 0, 1: 1, 2: 1, 3: 2}

    def test_rejects_reconvergence(self):
        with pytest.raises(ValueError, match="not a tree"):
            bfs_levels(0, {0: [1, 2], 1: [3], 2: [3], 3: []})
