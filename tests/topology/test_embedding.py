"""Unit tests for embedding quality metrics."""

import pytest

from repro.bits.gray import hamiltonian_path
from repro.topology import Hypercube, evaluate_embedding
from repro.trees import TwoRootedCompleteBinaryTree


class TestEvaluateEmbedding:
    def test_identity_embedding_is_perfect(self):
        cube = Hypercube(3)
        placement = {v: v for v in cube.nodes()}
        guest_edges = list(cube.links())
        m = evaluate_embedding(cube, placement, guest_edges)
        assert m.dilation == 1
        assert m.load == 1
        assert m.expansion == 1.0

    def test_hamiltonian_path_has_dilation_one(self):
        cube = Hypercube(4)
        path = hamiltonian_path(4)
        placement = {i: node for i, node in enumerate(path)}
        guest_edges = [(i, i + 1) for i in range(len(path) - 1)]
        m = evaluate_embedding(cube, placement, guest_edges)
        assert m.dilation == 1
        assert m.congestion == 1

    def test_tcbt_embedding_has_dilation_one(self):
        # the headline TCBT property: a spanning, dilation-1 embedding
        for n in (2, 3, 5, 7):
            cube = Hypercube(n)
            tree = TwoRootedCompleteBinaryTree(cube)
            placement = {v: v for v in cube.nodes()}
            guest_edges = [(e.src, e.dst) for e in tree.edges()]
            m = evaluate_embedding(cube, placement, guest_edges)
            assert m.dilation == 1, n
            assert m.load == 1 and m.expansion == 1.0

    def test_dilated_edge_detected(self):
        cube = Hypercube(3)
        m = evaluate_embedding(cube, {0: 0, 1: 7}, [(0, 1)])
        assert m.dilation == 3

    def test_doubled_load_detected(self):
        cube = Hypercube(2)
        m = evaluate_embedding(cube, {0: 1, 1: 1}, [])
        assert m.load == 2
        assert m.expansion == 2.0

    def test_unplaced_node_rejected(self):
        cube = Hypercube(2)
        with pytest.raises(ValueError, match="unplaced"):
            evaluate_embedding(cube, {0: 0}, [(0, 1)])

    def test_empty_placement_rejected(self):
        with pytest.raises(ValueError):
            evaluate_embedding(Hypercube(2), {}, [])
