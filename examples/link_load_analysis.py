#!/usr/bin/env python3
"""Link-load anatomy: why the BST exists.

Profiles the source's per-port traffic for broadcasting (SBT vs MSBT)
and personalized communication (SBT vs BST) on a 5-cube, rendering
ASCII bar charts of the imbalance the paper's §4 is about.

Run:  python examples/link_load_analysis.py
"""

from repro import Hypercube, PortModel
from repro.routing import (
    bst_scatter_schedule,
    msbt_broadcast_schedule,
    sbt_broadcast_schedule,
    sbt_scatter_schedule,
)
from repro.sim.validate import profile_schedule

N_DIM = 5
M_BCAST = 320      # broadcast message
M_SCATTER = 8      # per-destination message


def bars(port_elems: dict[int, int], width: int = 40) -> str:
    worst = max(port_elems.values())
    lines = []
    for port in sorted(port_elems):
        v = port_elems[port]
        lines.append(
            f"    port {port}: {'#' * max(1, round(width * v / worst)):<{width}} {v}"
        )
    return "\n".join(lines)


def main() -> None:
    cube = Hypercube(N_DIM)
    big = cube.num_nodes * M_SCATTER

    print(f"=== broadcasting {M_BCAST} elements on {cube} ===\n")
    for name, sched in (
        ("SBT (whole message down every port)",
         sbt_broadcast_schedule(cube, 0, M_BCAST, 32, PortModel.ONE_PORT_FULL)),
        ("MSBT (message split over the n edge-disjoint trees)",
         msbt_broadcast_schedule(cube, 0, M_BCAST, 32, PortModel.ONE_PORT_FULL)),
    ):
        p = profile_schedule(cube, sched, source=0)
        print(f"{name}:")
        print(bars(p.source_port_elems))
        print(f"    skew {p.balance_ratio():.2f}x, "
              f"edge utilization {p.edge_utilization:.0%}\n")

    print(f"=== personalized ({M_SCATTER} elements per destination) ===\n")
    for name, sched in (
        ("SBT (half the cube hangs off port 0)",
         sbt_scatter_schedule(cube, 0, M_SCATTER, big, PortModel.ONE_PORT_FULL)),
        ("BST (subtrees of ~N/log N nodes)",
         bst_scatter_schedule(cube, 0, M_SCATTER, big, PortModel.ONE_PORT_FULL)),
    ):
        p = profile_schedule(cube, sched, source=0)
        print(f"{name}:")
        print(bars(p.source_port_elems))
        print(f"    skew {p.balance_ratio():.2f}x\n")

    print("The BST flattens the scatter's port loads from 16x to ~1x —")
    print("which is exactly the 1/2·log N speed-up of Table 6 when all")
    print("ports can run concurrently.")


if __name__ == "__main__":
    main()
