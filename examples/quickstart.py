#!/usr/bin/env python3
"""Quickstart: broadcast and scatter on a simulated hypercube.

Builds a 5-cube, runs every broadcast algorithm under every port model,
and prints the routing-step counts next to the paper's closed forms —
then does the same for personalized communication (scatter).

Run:  python examples/quickstart.py
"""

from repro import Hypercube, IPSC_D7, PortModel, broadcast, scatter
from repro.analysis import broadcast_model, personalized_tmin

N_DIM = 5
MESSAGE = 960     # elements to broadcast (M)
PACKET = 60       # packet size (B)


def main() -> None:
    cube = Hypercube(N_DIM)
    print(f"cube: {cube}")
    print(f"broadcasting M={MESSAGE} elements in B={PACKET} packets\n")

    header = f"{'algorithm':<6} {'port model':<22} {'steps':>6} {'model':>6}"
    print(header)
    print("-" * len(header))
    for algo in ("sbt", "msbt", "tcbt", "hp"):
        for pm in PortModel:
            result = broadcast(cube, source=0, algorithm=algo,
                               message_elems=MESSAGE, packet_elems=PACKET,
                               port_model=pm)
            model = broadcast_model(algo, pm).steps(MESSAGE, PACKET, N_DIM)
            print(f"{algo:<6} {pm.value:<22} {result.cycles:>6} {model:>6.0f}")

    print("\npersonalized communication (M=8 elements per destination):")
    M = 8
    big_packets = cube.num_nodes * M
    header = f"{'algorithm':<6} {'port model':<22} {'time':>8} {'paper':>8}"
    print(header)
    print("-" * len(header))
    for algo in ("sbt", "bst", "tcbt"):
        for pm in (PortModel.ONE_PORT_FULL, PortModel.ALL_PORT):
            result = scatter(cube, source=0, algorithm=algo,
                             message_elems=M, packet_elems=big_packets,
                             port_model=pm)
            paper = personalized_tmin(algo, pm, N_DIM, M, tau=1.0, t_c=1.0)
            print(f"{algo:<6} {pm.value:<22} {result.sync.time:>8.1f} {paper:>8.1f}")

    print("\ntimed on the iPSC/d7 machine model (event-driven):")
    r = broadcast(cube, 0, "msbt", 61440, 1024, PortModel.ONE_PORT_FULL,
                  machine=IPSC_D7, run_event_sim=True)
    print(f"  MSBT broadcast of 60 KB: {r.time:.3f} s simulated")


if __name__ == "__main__":
    main()
