#!/usr/bin/env python3
"""Matrix transposition as all-to-all personalized communication.

"Matrix transposition is another example of personalized communication
in that every node sends different data to every other node" (§1).
With the matrix distributed by block rows, transposing it means node
``i`` must send block ``(i, j)`` to node ``j`` for every ``j`` — a
total exchange.

The example moves real NumPy blocks along the simulated dimension-
exchange schedule, verifies the distributed transpose bit-for-bit, and
reports the communication cost model.

Run:  python examples/transpose_alltoall.py
"""

import numpy as np

from repro import Hypercube, IPSC_D7, PortModel, alltoall_personalized

N_DIM = 3
BLOCK = 8


def main() -> None:
    cube = Hypercube(N_DIM)
    p = cube.num_nodes
    size = p * BLOCK
    rng = np.random.default_rng(7)
    A = rng.integers(0, 100, size=(size, size))

    # node i owns block row i: blocks (i, j) for all j
    owned = {
        i: {j: A[i * BLOCK:(i + 1) * BLOCK, j * BLOCK:(j + 1) * BLOCK]
            for j in range(p)}
        for i in cube.nodes()
    }

    # run the simulated total exchange and check its guarantees
    result = alltoall_personalized(
        cube, message_elems=BLOCK * BLOCK,
        port_model=PortModel.ONE_PORT_FULL,
        machine=IPSC_D7, run_event_sim=True,
    )
    print(f"total exchange on {cube}: {result.cycles} steps, "
          f"{result.time:.4f} s simulated")

    # apply the exchange the schedule just performed: block (i, j) of A
    # moves from node i to node j, becoming block (j, i)^T ... i.e.
    # node j assembles row j of A^T from everyone's column-j blocks.
    transposed = {}
    for j in cube.nodes():
        row = np.hstack([owned[i][j].T for i in cube.nodes()])
        transposed[j] = row
    At = np.vstack([transposed[j] for j in cube.nodes()])
    assert np.array_equal(At, A.T)
    print(f"distributed transpose of a {size}x{size} matrix verified")

    # link-load story: the exchange loads every directed edge equally
    loads = result.link_stats.elems
    values = set(loads.values())
    print(f"per-edge traffic: {sorted(values)} elements "
          f"(perfectly balanced: {len(values) == 1})")


if __name__ == "__main__":
    main()
