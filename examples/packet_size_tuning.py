#!/usr/bin/env python3
"""Packet-size tuning: Table 3's B_opt in action.

Sweeps the packet size for MSBT broadcasting, plots (in ASCII) the
simulated time against the closed-form model ``T(B) =
(ceil(M/B) + log N)(tau + B t_c)``, and marks the analytic optimum
``B_opt = sqrt(M tau / (t_c log N))``.

Run:  python examples/packet_size_tuning.py
"""

from repro import Hypercube, MachineParams, PortModel, broadcast
from repro.analysis import broadcast_model

N_DIM = 5
M = 4096
TAU, TC = 32.0, 1.0


def main() -> None:
    cube = Hypercube(N_DIM)
    machine = MachineParams(tau=TAU, t_c=TC)
    model = broadcast_model("msbt", PortModel.ONE_PORT_FULL)
    b_opt = model.b_opt(M, N_DIM, TAU, TC)

    print(f"MSBT broadcast, M={M}, tau={TAU}, t_c={TC}, n={N_DIM}")
    print(f"closed-form B_opt = {b_opt:.1f}, "
          f"T_min = {model.t_min(M, N_DIM, TAU, TC):.0f}\n")

    sweep = [8, 16, 32, 64, 128, 161, 256, 512, 1024]
    results = []
    for B in sweep:
        r = broadcast(cube, 0, "msbt", M, B, PortModel.ONE_PORT_FULL,
                      machine=machine)
        predicted = model.time(M, B, N_DIM, TAU, TC)
        results.append((B, r.sync.time, predicted))

    t_max = max(t for _, t, _ in results)
    print(f"{'B':>6} {'simulated':>10} {'model':>10}  profile")
    for B, t, pred in results:
        bar = "#" * int(40 * t / t_max)
        mark = "  <- B_opt" if abs(B - b_opt) == min(
            abs(b - b_opt) for b, _, _ in results
        ) else ""
        print(f"{B:>6} {t:>10.0f} {pred:>10.0f}  {bar}{mark}")

    best_b, best_t, _ = min(results, key=lambda r: r[1])
    print(f"\nbest simulated packet size: B={best_b} (T={best_t:.0f}); "
          f"the analytic optimum lands within the flat bottom of the curve")


if __name__ == "__main__":
    main()
