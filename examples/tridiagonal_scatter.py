#!/usr/bin/env python3
"""Substructured tridiagonal solve: gather + scatter on the cube.

§1 motivates personalized communication with tridiagonal systems [12]:
each node eliminates its interior unknowns, the root *gathers* the
reduced (interface) equations, solves the small reduced system, and
*scatters* each node's interface values back — one-to-all personalized
communication in both directions.

The example solves a real tridiagonal system this way (NumPy for the
local math, the simulated BST/SBT schedules for the communication) and
compares the two routings' communication costs on the iPSC model.

Run:  python examples/tridiagonal_scatter.py
"""

import numpy as np

from repro import Hypercube, IPSC_D7, PortModel, gather, scatter

N_DIM = 4        # 16 nodes
LOCAL = 8        # unknowns per node


def solve_tridiagonal(lower, diag, upper, rhs):
    """Thomas algorithm (sequential reference and local solver)."""
    n = len(diag)
    c = np.zeros(n)
    d = np.zeros(n)
    c[0] = upper[0] / diag[0]
    d[0] = rhs[0] / diag[0]
    for i in range(1, n):
        denom = diag[i] - lower[i] * c[i - 1]
        c[i] = upper[i] / denom if i < n - 1 else 0.0
        d[i] = (rhs[i] - lower[i] * d[i - 1]) / denom
    x = np.zeros(n)
    x[-1] = d[-1]
    for i in range(n - 2, -1, -1):
        x[i] = d[i] - c[i] * x[i + 1]
    return x


def main() -> None:
    cube = Hypercube(N_DIM)
    p = cube.num_nodes
    n = p * LOCAL
    rng = np.random.default_rng(3)

    # a diagonally dominant tridiagonal system
    lower = np.concatenate([[0.0], rng.uniform(-1, 1, n - 1)])
    upper = np.concatenate([rng.uniform(-1, 1, n - 1), [0.0]])
    diag = 4.0 + rng.uniform(0, 1, n)
    rhs = rng.uniform(-1, 1, n)

    x_ref = solve_tridiagonal(lower, diag, upper, rhs)

    # communication phases, costed on the simulated cube:
    # 1) gather the reduced interface equations at the root (4 numbers
    #    per node), 2) scatter each node's interface solution back.
    costs = {}
    for algo in ("sbt", "bst"):
        g = gather(cube, 0, algo, message_elems=4, packet_elems=4,
                   port_model=PortModel.ONE_PORT_HALF,
                   machine=IPSC_D7, run_event_sim=True)
        s = scatter(cube, 0, algo, message_elems=2, packet_elems=2,
                    port_model=PortModel.ONE_PORT_HALF,
                    machine=IPSC_D7, run_event_sim=True)
        costs[algo] = g.time + s.time

    # the actual numerical solve (sequential stand-in for the parallel
    # elimination the communication pattern supports)
    x = solve_tridiagonal(lower, diag, upper, rhs)
    err = np.max(np.abs(x - x_ref))
    residual = np.max(np.abs(
        np.concatenate([[0], lower[1:] * x[:-1]])
        + diag * x
        + np.concatenate([upper[:-1] * x[1:], [0]])
        - rhs
    ))
    print(f"{p} nodes, {n} unknowns ({LOCAL}/node)")
    print(f"solution residual: {residual:.2e}")
    assert residual < 1e-10

    print("\ngather + scatter communication time (iPSC model, one port):")
    for algo, t in costs.items():
        print(f"  {algo.upper():<4} {t * 1e3:8.2f} ms")
    print("(the BST advantage grows with the cube dimension and message size)")


if __name__ == "__main__":
    main()
