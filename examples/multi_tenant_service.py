#!/usr/bin/env python3
"""Multi-tenant collectives on one shared cube.

Three tenants submit a stream of jobs to the same 6-cube: a bulk
tenant broadcasting big messages, a latency-sensitive tenant sending
small urgent broadcasts, and a scatter tenant.  The service merges all
admitted jobs into one program on the vectorized event engine — link
contention between tenants is resolved by the engine's own port-model
arbitration — and the scheduling policy decides who wins contended
links:

1. fifo: admission order.  The bulk job ahead of you is your problem.
2. priority: the urgent tenant's jobs outrank bulk traffic.
3. fair-share: tenants ranked by link-time consumed so far — the hog
   drifts to the back of every contended link, light tenants cut ahead.

Run:  python examples/multi_tenant_service.py
"""

from repro.service import AdmissionControl, JobSpec, run_service
from repro.topology import Hypercube

N_DIM = 6


def workload() -> list[JobSpec]:
    """A fixed job mix: the hog floods early, others arrive into it."""
    jobs = [
        JobSpec(tenant="bulk", op="broadcast", source=0,
                message_elems=256, packet_elems=32),
        JobSpec(tenant="bulk", op="broadcast", source=0,
                message_elems=256, packet_elems=32, arrival=120.0),
    ]
    for t in (130.0, 260.0, 390.0):
        jobs.append(JobSpec(tenant="urgent", op="broadcast",
                            source=0, message_elems=8, packet_elems=8,
                            priority=10, arrival=t))
    jobs.append(JobSpec(tenant="scatterer", op="scatter", source=21,
                        message_elems=4, packet_elems=4, arrival=140.0))
    return jobs


def main() -> None:
    cube = Hypercube(N_DIM)
    print(f"shared cube: {cube}, {len(workload())} jobs from 3 tenants\n")

    header = f"{'policy':<12} {'makespan':>9}"
    tenants = ("bulk", "urgent", "scatterer")
    for t in tenants:
        header += f"  {t + ' p99':>14}"
    print(header + "   (p99 completion time per tenant)")
    for policy in ("fifo", "priority", "fair-share"):
        result = run_service(cube, workload(), policy=policy)
        assert all(j.complete for j in result.jobs)
        summary = result.latency_summary()
        row = f"{policy:<12} {result.makespan:>9.1f}"
        for t in tenants:
            row += f"  {summary[t]['completion_time']['p99']:>14.1f}"
        print(row)

    # Admission control: a tiny queue in front of a serialized cube.
    print("\nwith max_in_flight=1 and queue_cap=1:")
    result = run_service(
        cube, workload(),
        admission=AdmissionControl(max_in_flight_total=1, queue_cap=1),
    )
    for job in result.jobs:
        status = ("rejected: " + job.reject_reason if not job.accepted
                  else f"waited {job.queueing_delay:.1f}, "
                       f"finished {job.finish_time:.1f}")
        print(f"  #{job.job_id} {job.tenant:<10} {job.spec.op:<9} {status}")


if __name__ == "__main__":
    main()
