#!/usr/bin/env python3
"""Fault-tolerant broadcasting: routing around dead links and nodes.

An n-cube has n edge-disjoint paths between any pair of nodes (§1 of
the paper), so up to n-1 link failures leave it connected.  This script
injects faults into a 4-cube and shows the three degraded-mode
behaviours of the collectives:

1. n-1 dead links: the MSBT broadcast re-covers the broken subtrees and
   keeps pipelining — everyone is still served, and the schedule runs
   cleanly *under* the fault plan as proof it avoids every dead link.
2. A dead node: the collective falls back to a spanning tree of the
   surviving cube and reports the unreachable node.
3. An isolated live node: with on_fault="raise" the collective refuses
   with a structured FaultError naming who cannot be served; with
   on_fault="report" it serves the surviving component.

Run:  python examples/fault_tolerant_broadcast.py
"""

from repro import FaultError, FaultPlan, Hypercube, PortModel, broadcast
from repro.topology import max_tolerable_failures

N_DIM = 4
MESSAGE = 16
PACKET = 4


def deliveries(cube, result) -> str:
    want = set(result.schedule.chunk_sizes)
    served = sum(1 for v in cube.nodes() if result.sync.holdings[v] >= want)
    return f"{served}/{cube.num_nodes} nodes hold the full message"


def main() -> None:
    cube = Hypercube(N_DIM)
    budget = max_tolerable_failures(cube)
    print(f"cube: {cube}  (tolerates up to {budget} link failures)\n")

    # 1. n-1 dead links: degraded MSBT still delivers to everyone.
    plan = FaultPlan(dead_links=[(0, 1), (2, 6), (5, 13)])
    result = broadcast(cube, 0, "msbt", MESSAGE, PACKET,
                       PortModel.ALL_PORT, faults=plan, run_event_sim=True)
    print(f"{plan.num_faults} dead links -> {result.algorithm}")
    print(f"  schedule avoids every dead link: "
          f"{plan.schedule_is_clean(result.schedule)}")
    print(f"  {deliveries(cube, result)}  ({result.cycles} routing steps, "
          f"t={result.time:.1f})\n")

    # 2. A dead node: survivor-tree fallback, the victim is named.
    plan = FaultPlan(dead_nodes=[9])
    result = broadcast(cube, 0, "msbt", MESSAGE, PACKET, faults=plan)
    print(f"dead node 9 -> {result.algorithm}")
    print(f"  degraded={result.degraded}, "
          f"unreachable={sorted(result.undelivered_nodes)}")
    print(f"  {deliveries(cube, result)}\n")

    # 3. An isolated live node: raise vs report.
    victim = 10
    plan = FaultPlan(
        dead_links=[(victim, victim ^ (1 << d)) for d in range(N_DIM)]
    )
    print(f"node {victim} isolated by {plan.num_faults} link faults:")
    try:
        broadcast(cube, 0, "msbt", MESSAGE, PACKET, faults=plan)
    except FaultError as exc:
        print(f"  on_fault='raise'  -> FaultError: {exc}")
    result = broadcast(cube, 0, "msbt", MESSAGE, PACKET,
                       faults=plan, on_fault="report")
    print(f"  on_fault='report' -> served the surviving component, "
          f"unreachable={sorted(result.undelivered_nodes)}")
    print(f"  {deliveries(cube, result)}")


if __name__ == "__main__":
    main()
