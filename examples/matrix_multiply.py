#!/usr/bin/env python3
"""Parallel matrix multiplication driven by simulated broadcasts.

The paper's introduction motivates broadcasting with matrix
multiplication [Fox-Otto-Hey]: with the matrix distributed by block
rows over the cube nodes, computing ``C = A @ B`` requires every node
to see every block row of ``B`` — an all-to-all broadcast, or ``N``
one-to-all broadcasts.

This example actually computes the product: NumPy does each node's
local arithmetic, while every data movement is carried by a simulated
collective, whose communication cost is reported for the SBT vs MSBT
routings.  The numerical result is checked against a sequential
``A @ B``.

Run:  python examples/matrix_multiply.py
"""

import numpy as np

from repro import Hypercube, IPSC_D7, PortModel, broadcast

N_DIM = 3          # 8 nodes
BLOCK = 32         # block size per node -> 256 x 256 matrices


def main() -> None:
    cube = Hypercube(N_DIM)
    p = cube.num_nodes
    size = p * BLOCK
    rng = np.random.default_rng(42)
    A = rng.normal(size=(size, size))
    B = rng.normal(size=(size, size))

    # Block-row distribution: node i owns rows [i*BLOCK, (i+1)*BLOCK).
    local_A = {i: A[i * BLOCK : (i + 1) * BLOCK] for i in cube.nodes()}
    local_B = {i: B[i * BLOCK : (i + 1) * BLOCK] for i in cube.nodes()}

    # Each step k: node k broadcasts its block row of B; every node
    # accumulates local_A[:, k-block] @ B_k.
    local_C = {i: np.zeros((BLOCK, size)) for i in cube.nodes()}
    elems_per_bcast = BLOCK * size  # one element per matrix entry
    total_cost = {"sbt": 0.0, "msbt": 0.0}

    for k in cube.nodes():
        for algo in ("sbt", "msbt"):
            r = broadcast(
                cube, source=k, algorithm=algo,
                message_elems=elems_per_bcast, packet_elems=1024,
                port_model=PortModel.ONE_PORT_FULL,
                machine=IPSC_D7, run_event_sim=True,
            )
            total_cost[algo] += r.time
        # the simulated broadcast delivered B_k everywhere; do the math
        B_k = local_B[k]
        for i in cube.nodes():
            A_ik = local_A[i][:, k * BLOCK : (k + 1) * BLOCK]
            local_C[i] += A_ik @ B_k

    C = np.vstack([local_C[i] for i in cube.nodes()])
    err = np.max(np.abs(C - A @ B))
    print(f"{p} nodes, {size}x{size} matrices, block rows of {BLOCK}")
    print(f"max |C - A@B| = {err:.2e}  (should be ~1e-12)")
    assert err < 1e-9

    print("\nsimulated communication time for the %d broadcasts:" % p)
    for algo, t in total_cost.items():
        print(f"  {algo.upper():<5} {t:.3f} s")
    print(f"  MSBT speed-up: {total_cost['sbt'] / total_cost['msbt']:.2f}x "
          f"(log N = {N_DIM})")


if __name__ == "__main__":
    main()
