"""Legacy setup shim so `pip install -e .` works without the wheel package.

All project metadata lives in pyproject.toml; this file only exists so
that offline environments (no PEP-517 build isolation, no `wheel`)
can still do an editable install via `setup.py develop`.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.23"],
)
