# Convenience targets for the reproduction workflow.

PYTHON ?= python3

.PHONY: install test bench experiments examples all clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) scripts/generate_experiments_md.py > EXPERIMENTS.md

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f || exit 1; done

all: install test bench experiments

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
