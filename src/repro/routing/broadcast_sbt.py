"""SBT-based broadcasting (§3.3.1).

Two schedules:

* **one port at a time** (recursive doubling): in step ``t`` every node
  that already holds the message sends it across dimension ``n-1-t`` —
  to the root of the largest remaining subtree first.  ``ceil(M/B)``
  packets per step, ``log N`` steps, giving the paper's
  ``T = ceil(M/B) * log N * (tau + B t_c)``.  The same schedule is valid
  under both one-port models (each node does a single send *or* a
  single receive per round).

* **all ports concurrently** (pipelining): packets stream down the
  tree; a node at level ``l`` forwards packet ``p`` to all its children
  in round ``l + p``, giving ``ceil(M/B) + log N - 1`` rounds.
"""

from __future__ import annotations

from repro.cache import cached_tree, memoize_schedule
from repro.routing.common import BCAST, broadcast_chunks
from repro.sim.ports import PortModel
from repro.sim.schedule import Schedule, Transfer
from repro.topology.hypercube import Hypercube
from repro.trees.sbt import SpanningBinomialTree

__all__ = ["sbt_broadcast_schedule"]


#: one-port transmission orders (§2): port-oriented sends everything on
#: one port before touching the next; packet-oriented cycles the ports
#: per packet.
SBT_ORDERS = ("port", "packet")


@memoize_schedule()
def sbt_broadcast_schedule(
    cube: Hypercube,
    source: int,
    message_elems: int,
    packet_elems: int,
    port_model: PortModel,
    order: str = "port",
) -> Schedule:
    """Broadcast ``message_elems`` from ``source`` over the SBT.

    Args:
        cube: host cube.
        source: broadcasting node.
        message_elems: total message size ``M`` in elements.
        packet_elems: maximum packet size ``B`` in elements.
        port_model: which port model the schedule must respect.
        order: one-port transmission order, ``"port"`` (the paper's
            port-oriented algorithm, §3.3.1) or ``"packet"``
            (packet-oriented, §2).  Both take ``ceil(M/B) * log N``
            lock-step cycles; they differ in how early the far subtrees
            start filling, which the event-driven engine can observe.

    Returns:
        A constraint-valid :class:`~repro.sim.schedule.Schedule`;
        ``meta["predicted_rounds"]`` holds the closed-form step count.
    """
    cube.check_node(source)
    if order not in SBT_ORDERS:
        raise ValueError(f"unknown SBT order {order!r}; pick one of {SBT_ORDERS}")
    sizes = broadcast_chunks(message_elems, packet_elems)
    n_packets = len(sizes)
    n = cube.dimension

    if port_model is PortModel.ALL_PORT:
        return _pipelined(cube, source, sizes, n_packets)

    # Recursive doubling along the SBT: in step t the holders (relative
    # addresses below 2**t) send across dimension t.  Step 0 goes to the
    # root of the largest subtree (port 0), as §3.3.1 prescribes, and
    # every (holder, partner) pair is an SBT edge: the partner's highest
    # relative bit is t, so its SBT parent is exactly the holder.
    def step_round(t: int, p: int) -> tuple[Transfer, ...]:
        return tuple(
            Transfer(source ^ c, source ^ c ^ (1 << t), frozenset({(BCAST, p)}))
            for c in range(1 << t)
        )

    if order == "port":
        pairs = [(t, p) for t in range(n) for p in range(n_packets)]
    else:
        pairs = [(t, p) for p in range(n_packets) for t in range(n)]
        # packet-oriented is only causal if packet p finishes dimension
        # t before packet p needs dimension t+1 — which holds because
        # each packet's own (t, p) pairs stay in ascending-t order.
    rounds = [step_round(t, p) for t, p in pairs]
    return Schedule(
        rounds=rounds,
        chunk_sizes=sizes,
        algorithm="sbt-broadcast",
        meta={
            "port_model": port_model.value,
            "source": source,
            "order": order,
            "predicted_rounds": n_packets * n,
        },
    )


def _pipelined(
    cube: Hypercube,
    source: int,
    sizes: dict,
    n_packets: int,
) -> Schedule:
    tree = cached_tree(SpanningBinomialTree, cube, source)
    n = cube.dimension
    total_rounds = n_packets + n - 1
    rounds: list[list[Transfer]] = [[] for _ in range(total_rounds)]
    for node in cube.nodes():
        level = tree.level(node)
        kids = tree.children(node)
        if not kids:
            continue
        for p in range(n_packets):
            r = level + p
            chunk = frozenset({(BCAST, p)})
            for child in kids:
                rounds[r].append(Transfer(node, child, chunk))
    return Schedule(
        rounds=[tuple(r) for r in rounds],
        chunk_sizes=sizes,
        algorithm="sbt-broadcast",
        meta={
            "port_model": PortModel.ALL_PORT.value,
            "source": source,
            "predicted_rounds": total_rounds,
        },
    )
