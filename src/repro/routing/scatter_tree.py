"""Generic tree scatter — drives the TCBT comparison rows of Table 6.

All-port: the level-by-level wave order (lemma 4.2) applied verbatim.
One-port: the same wave bundles serialized greedily, with the root
alternating between its subtrees; this realizes the paper's TCBT
personalized-communication bounds up to the scheduling slack its
"<=" rows allow.
"""

from __future__ import annotations

from repro.cache import memoize_schedule
from repro.routing.scatter_common import wave_scatter_schedule
from repro.routing.scheduler import reschedule
from repro.sim.ports import PortModel
from repro.sim.schedule import Schedule
from repro.trees.base import SpanningTree

__all__ = ["tree_scatter_schedule"]


@memoize_schedule()
def tree_scatter_schedule(
    tree: SpanningTree,
    message_elems: int,
    packet_elems: int,
    port_model: PortModel,
) -> Schedule:
    """Scatter from ``tree.root`` along an arbitrary spanning tree.

    Args:
        tree: any spanning tree of the cube (root = source).
        message_elems: per-destination message size ``M``.
        packet_elems: maximum packet size ``B``.
        port_model: port model the schedule must respect.
    """
    name = f"{type(tree).__name__.lower()}-scatter"
    wave = wave_scatter_schedule(tree, message_elems, packet_elems, algorithm=name)
    if port_model is PortModel.ALL_PORT:
        return wave
    serialized = reschedule(
        tree.cube,
        wave,
        port_model,
        {tree.root: set(wave.chunk_sizes)},
    )
    serialized.algorithm = name
    serialized.meta.update(port_model=port_model.value, source=tree.root)
    return serialized
