"""Collective fallbacks that route around a :class:`FaultPlan`.

The structured schedules (SBT/MSBT/BST waves) assume an intact cube.
When a :class:`~repro.sim.faults.FaultPlan` is in play the collectives
layer falls back to the generators here: a fault-avoiding BFS survivor
tree (§1's disjoint-path guarantee keeps the live cube connected below
``log N`` failures) driven through the generic pipelined-broadcast and
wave-scatter machinery.

The fallback is conservative about *time-activated* faults: it avoids
every link and node in the plan regardless of activation time, so the
schedules produced here never touch a faulty component and run clean
under the plan in either engine.
"""

from __future__ import annotations

from repro.routing.broadcast_tree import tree_broadcast_schedule
from repro.routing.scatter_common import wave_scatter_schedule
from repro.routing.scheduler import reschedule
from repro.sim.faults import FaultError, FaultPlan
from repro.sim.ports import PortModel
from repro.sim.schedule import Schedule
from repro.topology.fault import fault_avoiding_spanning_tree
from repro.topology.hypercube import Hypercube
from repro.trees.mapped import SurvivorTree

__all__ = [
    "survivor_broadcast_tree",
    "fault_tolerant_broadcast_schedule",
    "fault_tolerant_scatter_schedule",
]


def survivor_broadcast_tree(
    cube: Hypercube,
    source: int,
    faults: FaultPlan,
    partial: bool = False,
) -> SurvivorTree:
    """The fault-avoiding BFS tree of the surviving cube, as a tree object.

    Args:
        cube: the host cube.
        source: tree root (the collective's source; must be alive).
        faults: the fault plan to route around (all of it, including
            faults that only activate later — see the module docstring).
        partial: when True, a disconnected surviving cube yields the
            tree of the source's reachable component; callers then
            consult :attr:`SurvivorTree.covered` to report the rest.

    Raises:
        FaultError: when the source itself is dead, or — with
            ``partial`` False — when the faults disconnect live nodes
            from the source (``undelivered`` names them).
    """
    if source in faults.dead_nodes:
        raise FaultError(
            f"broadcast source {source} is a dead node",
            node=source,
            undelivered=tuple(v for v in cube.nodes() if v != source),
        )
    try:
        parents = fault_avoiding_spanning_tree(
            cube,
            source,
            dead_links=faults.dead_links,
            dead_nodes=faults.dead_nodes,
            partial=partial,
        )
    except ValueError as exc:
        reachable = fault_avoiding_spanning_tree(
            cube,
            source,
            dead_links=faults.dead_links,
            dead_nodes=faults.dead_nodes,
            partial=True,
        )
        missing = tuple(
            v
            for v in cube.nodes()
            if v not in reachable and v not in faults.dead_nodes
        )
        raise FaultError(str(exc), undelivered=missing) from None
    return SurvivorTree(cube, source, parents)


def fault_tolerant_broadcast_schedule(
    cube: Hypercube,
    source: int,
    message_elems: int,
    packet_elems: int,
    port_model: PortModel,
    faults: FaultPlan,
    partial: bool = False,
) -> tuple[Schedule, SurvivorTree]:
    """Pipelined broadcast over the survivor tree.

    Returns the schedule and the tree it runs on; with ``partial`` the
    schedule covers only :attr:`SurvivorTree.covered` and the caller is
    responsible for reporting the unreachable nodes.
    """
    tree = survivor_broadcast_tree(cube, source, faults, partial=partial)
    schedule = tree_broadcast_schedule(
        tree, message_elems, packet_elems, port_model
    )
    schedule.meta.update(faults=faults.cache_token())
    return schedule, tree


def fault_tolerant_scatter_schedule(
    cube: Hypercube,
    source: int,
    message_elems: int,
    packet_elems: int,
    port_model: PortModel,
    faults: FaultPlan,
    partial: bool = False,
) -> tuple[Schedule, SurvivorTree]:
    """Wave scatter over the survivor tree (serialized for one-port).

    The destination set is the tree's covered nodes, so with ``partial``
    the dead/unreachable destinations simply receive no pieces — the
    chunk universe itself shrinks and delivery checks must restrict to
    :attr:`SurvivorTree.covered`.
    """
    tree = survivor_broadcast_tree(cube, source, faults, partial=partial)
    name = "fault-avoiding-scatter"
    dests = tuple(sorted(tree.covered - {source}))
    wave = wave_scatter_schedule(
        tree, message_elems, packet_elems, algorithm=name, dests=dests
    )
    if port_model is not PortModel.ALL_PORT:
        wave = reschedule(
            cube, wave, port_model, {source: set(wave.chunk_sizes)}
        )
        wave.algorithm = name
    wave.meta.update(
        port_model=port_model.value,
        source=source,
        faults=faults.cache_token(),
    )
    return wave, tree
