"""Store-and-forward delivery of permutation traffic.

Bridges :mod:`repro.topology.permutation_routing` (which only generates
paths) to the simulators: each source's message follows its path hop by
hop, packed into rounds by the greedy list scheduler under the chosen
port model.  Under heavy link contention (e.g. e-cube on the transpose
permutation) the cycle count degrades toward the congestion bound,
which is exactly what Valiant's randomization repairs — making §1's
related-work remark measurable.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.routing.scheduler import list_schedule
from repro.sim.ports import PortModel
from repro.sim.schedule import Chunk, Schedule, Transfer
from repro.topology.hypercube import Hypercube

__all__ = ["permutation_schedule", "permutation_initial_holdings", "PERM"]

PERM = "perm"


def permutation_schedule(
    cube: Hypercube,
    paths: Mapping[int, list[int]],
    message_elems: int,
    port_model: PortModel,
) -> Schedule:
    """Schedule one ``message_elems`` message per source along its path.

    Args:
        cube: the host cube.
        paths: source -> node path (as produced by
            :func:`repro.topology.permutation_routing.route_permutation`
            or its Valiant counterpart).
        message_elems: message size per source.
        port_model: port model the schedule must respect.
    """
    if message_elems < 1:
        raise ValueError(f"message size must be >= 1 element, got {message_elems}")
    sizes: dict[Chunk, int] = {}
    items: list[tuple[int, int, Transfer]] = []
    for src, path in paths.items():
        cube.check_node(src)
        if path[0] != src:
            raise ValueError(f"path for source {src} starts at {path[0]}")
        chunk = (PERM, src)
        sizes[chunk] = message_elems
        for hop, (a, b) in enumerate(zip(path, path[1:])):
            if not cube.are_adjacent(a, b):
                raise ValueError(f"path for source {src} has non-edge hop {a}->{b}")
            items.append((hop, src, Transfer(a, b, frozenset({chunk}))))
    items.sort(key=lambda x: (x[0], x[1]))
    return list_schedule(
        cube,
        [t for *_, t in items],
        sizes,
        port_model,
        permutation_initial_holdings(cube, paths, message_elems),
        algorithm="permutation",
        meta={"port_model": port_model.value, "message_elems": message_elems},
    )


def permutation_initial_holdings(
    cube: Hypercube,
    paths: Mapping[int, list[int]],
    message_elems: int,
) -> dict[int, set[Chunk]]:
    """Initial holdings: every source holds its own message."""
    return {src: {(PERM, src)} for src in paths}
