"""Shared helpers for the schedule generators."""

from __future__ import annotations

from math import ceil

from repro.sim.schedule import Chunk

__all__ = [
    "broadcast_chunks",
    "scatter_chunks",
    "validate_message_args",
    "BCAST",
    "MSG",
]

#: chunk-id tags (see repro.sim.schedule docstring for conventions)
BCAST = "b"
MSG = "m"


def validate_message_args(message_elems: int, packet_elems: int) -> None:
    """Common argument validation for all generators."""
    if message_elems < 1:
        raise ValueError(f"message size must be >= 1 element, got {message_elems}")
    if packet_elems < 1:
        raise ValueError(f"packet size must be >= 1 element, got {packet_elems}")


def broadcast_chunks(message_elems: int, packet_elems: int) -> dict[Chunk, int]:
    """Split a broadcast message into packets ``("b", p)``.

    ``ceil(M / B)`` chunks of ``B`` elements each, except a possibly
    smaller final one.
    """
    validate_message_args(message_elems, packet_elems)
    n_packets = ceil(message_elems / packet_elems)
    sizes: dict[Chunk, int] = {}
    left = message_elems
    for p in range(n_packets):
        sizes[(BCAST, p)] = min(packet_elems, left)
        left -= packet_elems
    return sizes


def scatter_chunks(
    destinations: list[int],
    message_elems: int,
    packet_elems: int,
) -> dict[Chunk, int]:
    """Split per-destination messages into pieces ``("m", dest, p)``.

    Each destination's ``M`` elements are cut into pieces of at most
    ``B`` elements so any piece fits in one packet; pieces for several
    destinations may later be bundled into one packet by the
    generators (subject to the same ``B`` bound).
    """
    validate_message_args(message_elems, packet_elems)
    per_dest = ceil(message_elems / packet_elems)
    sizes: dict[Chunk, int] = {}
    for d in destinations:
        left = message_elems
        for p in range(per_dest):
            sizes[(MSG, d, p)] = min(packet_elems, left)
            left -= packet_elems
    return sizes
