"""Dual-direction Hamiltonian broadcasting (§3.4 variation).

The Gray-code Hamiltonian *cycle* gives the source two disjoint
directed rings through all other nodes.  Splitting the message in half
and pipelining one half clockwise and the other counter-clockwise
doubles the injection bandwidth: in steady state, two distinct packets
leave the source per cycle instead of one, cutting the HP's packet
term by the paper's promised factor of (up to) two.

The transfer list (one hop per packet per ring position, wavefront
order) is packed by the greedy list scheduler, so a single generator
serves all three port models: under ALL_PORT the rings run fully
concurrently; under ONE_PORT_FULL each node interleaves the two
directions; under ONE_PORT_HALF everything serializes further.
"""

from __future__ import annotations

from repro.cache import memoize_schedule
from repro.routing.common import BCAST, broadcast_chunks
from repro.routing.scheduler import list_schedule
from repro.sim.ports import PortModel
from repro.sim.schedule import Schedule, Transfer
from repro.topology.hypercube import Hypercube
from repro.trees.hp_variants import hamiltonian_cycle

__all__ = ["dual_hp_broadcast_schedule"]


@memoize_schedule()
def dual_hp_broadcast_schedule(
    cube: Hypercube,
    source: int,
    message_elems: int,
    packet_elems: int,
    port_model: PortModel,
) -> Schedule:
    """Broadcast using two opposite-direction Hamiltonian paths.

    Packets with even index travel clockwise around the Gray cycle,
    odd ones counter-clockwise; every node receives the full message
    because each ring visits all nodes.

    Args:
        cube: host cube (dimension >= 2).
        source: broadcasting node.
        message_elems: total message size ``M``.
        packet_elems: maximum packet size ``B``.
        port_model: port model the schedule must respect.
    """
    cube.check_node(source)
    sizes = broadcast_chunks(message_elems, packet_elems)
    n_packets = len(sizes)
    cycle = hamiltonian_cycle(cube.dimension, start=source)
    N = cube.num_nodes

    forward = [(cycle[i], cycle[(i + 1) % N]) for i in range(N - 1)]
    backward = [(cycle[-i % N], cycle[-(i + 1) % N]) for i in range(N - 1)]

    items: list[tuple[int, int, int, Transfer]] = []
    for p in range(n_packets):
        ring = forward if p % 2 == 0 else backward
        wave_offset = p // 2
        chunk = frozenset({(BCAST, p)})
        for hop, (u, v) in enumerate(ring):
            items.append((wave_offset + hop, p, hop, Transfer(u, v, chunk)))
    items.sort(key=lambda x: (x[0], x[1], x[2]))

    return list_schedule(
        cube,
        [t for *_, t in items],
        sizes,
        port_model,
        {source: set(sizes)},
        algorithm="dual-hp-broadcast",
        meta={"port_model": port_model.value, "source": source},
    )
