"""Generic pipelined tree broadcasting — drives the TCBT and HP baselines.

For an arbitrary spanning tree no closed-form labelling exists, so the
schedule is produced by greedy list scheduling: for every packet, its
chain of hops root -> ... -> leaf in tree order, prioritized so that
packet 0's wavefront leads and heavier subtrees are served first.  The
greedy packing reproduces the classic pipelined step counts:

* Hamiltonian path, full duplex: ``ceil(M/B) + N - 2`` rounds (every
  hop forwards while receiving); half duplex: about twice the packet
  term (Table 1/2's HP rows).
* TCBT: internal nodes have two children, so the packet term doubles
  under one-port models (``2 ceil(M/B) + ...``, Table 3's TCBT rows).
"""

from __future__ import annotations

from repro.cache import memoize_schedule
from repro.routing.common import BCAST, broadcast_chunks
from repro.routing.scheduler import list_schedule
from repro.sim.ports import PortModel
from repro.sim.schedule import Schedule, Transfer
from repro.trees.base import SpanningTree

__all__ = ["tree_broadcast_schedule"]


@memoize_schedule()
def tree_broadcast_schedule(
    tree: SpanningTree,
    message_elems: int,
    packet_elems: int,
    port_model: PortModel,
) -> Schedule:
    """Broadcast from ``tree.root`` along an arbitrary spanning tree.

    Args:
        tree: any spanning tree (its root is the source).
        message_elems: total message size ``M``.
        packet_elems: maximum packet size ``B``.
        port_model: port model the schedule must respect.

    Returns:
        A constraint-valid schedule produced by greedy list scheduling.
    """
    sizes = broadcast_chunks(message_elems, packet_elems)
    n_packets = len(sizes)
    cube = tree.cube

    # Edges in wavefront priority: BFS order, heavier subtrees first.
    edge_order: list[tuple[int, int]] = []
    frontier = [tree.root]
    subtree = tree.subtree_sizes
    while frontier:
        nxt: list[int] = []
        for node in sorted(frontier, key=lambda v: -subtree[v]):
            kids = sorted(tree.children_map[node], key=lambda v: -subtree[v])
            for child in kids:
                edge_order.append((node, child))
            nxt.extend(kids)
        frontier = nxt

    # Interleave packets so pipelining can happen: order primarily by
    # (packet index + edge depth) — the diagonal wavefront — then by
    # the subtree-priority edge order.
    levels = tree.levels
    items: list[tuple[int, int, int, Transfer]] = []
    for e_idx, (u, v) in enumerate(edge_order):
        for p in range(n_packets):
            wave = p + levels[u]
            items.append(
                (wave, p, e_idx, Transfer(u, v, frozenset({(BCAST, p)})))
            )
    items.sort(key=lambda x: (x[0], x[1], x[2]))
    transfers = [t for *_ , t in items]

    schedule = list_schedule(
        cube,
        transfers,
        sizes,
        port_model,
        {tree.root: set(sizes)},
        algorithm=f"{type(tree).__name__.lower()}-broadcast",
        meta={"port_model": port_model.value, "source": tree.root},
    )
    return schedule
