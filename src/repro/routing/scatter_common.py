"""Shared machinery for one-to-all personalized (scatter) schedules.

Every scatter routes each destination's message along its unique tree
path from the root.  What distinguishes the algorithms is *when* each
piece leaves the root and *how* pieces are bundled into packets:

* :func:`wave_scatter_schedule` — the paper's *level-by-level* order
  (lemma 4.2): data for nodes at tree distance ``l`` leaves the root in
  step ``height - l``, so the farthest messages depart first and every
  hop happens exactly one step after the previous one.  Bundles all
  pieces sharing an (edge, step) into one packet, then splits packets
  larger than ``B``.  This is the optimal all-port shape for the SBT,
  the BST and the TCBT.
* :func:`distribute_packet` — forwarding transfers for a packet that
  has just arrived at a subtree root, recursively fanning its pieces
  out; used by the one-port BST scatter.
"""

from __future__ import annotations

from repro.cache import memoize_schedule
from repro.routing.common import MSG, scatter_chunks
from repro.routing.scheduler import split_oversized
from repro.sim.ports import PortModel
from repro.sim.schedule import Chunk, Schedule, Transfer
from repro.trees.base import SpanningTree

__all__ = [
    "dest_pieces",
    "tree_path_from_root",
    "wave_scatter_schedule",
    "distribute_packet",
]


def dest_pieces(
    sizes: dict[Chunk, int],
    dest: int,
) -> list[Chunk]:
    """All pieces ``("m", dest, p)`` for one destination, in piece order."""
    out = [c for c in sizes if c[0] == MSG and c[1] == dest]
    out.sort(key=lambda c: c[2])
    return out


def tree_path_from_root(tree: SpanningTree, dest: int) -> list[int]:
    """The node path ``root -> ... -> dest`` (inclusive)."""
    path = [dest]
    node = dest
    while node != tree.root:
        parent = tree.parents_map[node]
        assert parent is not None
        node = parent
        path.append(node)
    path.reverse()
    return path


@memoize_schedule()
def wave_scatter_schedule(
    tree: SpanningTree,
    message_elems: int,
    packet_elems: int,
    algorithm: str,
    dests: tuple[int, ...] | None = None,
) -> Schedule:
    """Level-by-level scatter over an arbitrary spanning tree (lemma 4.2).

    The message for a destination at tree level ``l`` leaves the root in
    step ``height - l`` and advances one hop per step; pieces sharing an
    (edge, step) pair are bundled, and bundles beyond ``packet_elems``
    are split into micro-rounds.  Valid under the all-port model by
    construction (one bundle per directed edge per step).

    Args:
        dests: destination nodes (default: every non-root cube node).
            Degraded-mode callers restrict this to the nodes a partial
            survivor tree actually covers.
    """
    cube = tree.cube
    if dests is None:
        dests = tuple(d for d in cube.nodes() if d != tree.root)
    else:
        dests = tuple(sorted(set(dests) - {tree.root}))
    sizes = scatter_chunks(dests, message_elems, packet_elems)
    height = tree.height

    bundles: dict[tuple[int, int, int], set[Chunk]] = {}
    total_steps = 0
    for d in dests:
        path = tree_path_from_root(tree, d)
        l = len(path) - 1  # tree level of d
        depart = height - l
        pieces = frozenset(dest_pieces(sizes, d))
        for h in range(l):
            step = depart + h
            key = (step, path[h], path[h + 1])
            bundles.setdefault(key, set()).update(pieces)
            total_steps = max(total_steps, step + 1)

    rounds: list[list[Transfer]] = [[] for _ in range(total_steps)]
    for (step, u, v), chunks in sorted(bundles.items(), key=lambda kv: kv[0]):
        rounds[step].append(Transfer(u, v, frozenset(chunks)))

    schedule = Schedule(
        rounds=[tuple(r) for r in rounds],
        chunk_sizes=sizes,
        algorithm=algorithm,
        meta={
            "port_model": PortModel.ALL_PORT.value,
            "source": tree.root,
            "message_elems": message_elems,
            "packet_elems": packet_elems,
        },
    )
    return split_oversized(schedule, packet_elems).compact()


def distribute_packet(
    tree: SpanningTree,
    at: int,
    chunks: set[Chunk],
) -> list[Transfer]:
    """Forwarding transfers fanning a received packet out below ``at``.

    The packet sits at node ``at``; every chunk ``("m", dest, p)`` with
    ``dest != at`` moves one subtree-hop at a time.  Transfers are
    returned in BFS order of the fan-out (a valid causal priority
    order for :func:`repro.routing.scheduler.list_schedule`).
    """
    out: list[Transfer] = []
    frontier: list[tuple[int, set[Chunk]]] = [(at, set(chunks))]
    while frontier:
        nxt: list[tuple[int, set[Chunk]]] = []
        for node, payload in frontier:
            by_child: dict[int, set[Chunk]] = {}
            for c in payload:
                dest = c[1]
                if dest == node:
                    continue
                hop = _next_hop(tree, node, dest)
                by_child.setdefault(hop, set()).add(c)
            for child in sorted(by_child):
                out.append(Transfer(node, child, frozenset(by_child[child])))
                nxt.append((child, by_child[child]))
        frontier = nxt
    return out


def _next_hop(tree: SpanningTree, node: int, dest: int) -> int:
    """The child of ``node`` on the tree path towards ``dest``."""
    cur = dest
    while True:
        parent = tree.parents_map[cur]
        if parent is None:
            raise ValueError(f"{dest} is not below {node} in the tree")
        if parent == node:
            return cur
        cur = parent
