"""All-to-all broadcast on k-ary n-cube tori (Jung & Sakho).

The torus factors into ``n`` families of disjoint ``k``-node rings.
The all-to-all broadcast runs one *phase per dimension*: entering phase
``i`` every node holds the contributions of its entire sub-torus over
dimensions ``< i`` (``k**i`` chunks), and the phase circulates those
accumulated super-chunks around the dimension-``i`` rings so that every
ring member ends the phase holding the union.  After ``n`` phases every
node holds all ``N = k**n`` contributions.

Round structure per port model (Träff's one-port/all-port axis):

* **all-port** — bidirectional circulation: ``ceil((k-1)/2)`` forward
  steps overlap ``floor((k-1)/2)`` backward steps on the opposite port,
  so a phase takes ``ceil((k-1)/2)`` rounds.
* **one-port full-duplex** — unidirectional circulation: ``k - 1``
  steps, each a directed ring cycle in which every node sends and
  receives exactly one super-chunk.
* **one-port half-duplex** — the directed cycle cannot run in one round
  (every node would both send and receive); each step splits into
  alternating arc matchings: 2 rounds for even ``k``, 3 for odd ``k``
  (a directed odd cycle needs three matchings).

For ``k = 2`` every ring is a single exchange and the schedule
coincides with the hypercube's dimension-exchange allgather.  Chunk
``("g", origin)`` is node ``origin``'s contribution, matching
:mod:`repro.routing.alltoall`.
"""

from __future__ import annotations

from repro.cache import memoize_schedule
from repro.routing.alltoall import GATHER_TAG, allgather_schedule
from repro.sim.ports import PortModel
from repro.sim.schedule import Chunk, Schedule, Transfer
from repro.topology.base import Topology
from repro.topology.hypercube import Hypercube
from repro.topology.torus import Torus

__all__ = [
    "torus_all_broadcast_schedule",
    "all_broadcast_schedule",
    "all_broadcast_initial_holdings",
]


@memoize_schedule()
def torus_all_broadcast_schedule(
    cube: Torus,
    message_elems: int,
    port_model: PortModel,
) -> Schedule:
    """All-to-all broadcast by per-dimension ring circulation.

    Every node contributes ``message_elems`` and ends holding all ``N``
    contributions (chunk ``("g", origin)``).
    """
    if message_elems < 1:
        raise ValueError(f"message size must be >= 1 element, got {message_elems}")
    n, k = cube.dimension, cube.arity
    sizes: dict[Chunk, int] = {(GATHER_TAG, v): message_elems for v in cube.nodes()}
    held: dict[int, frozenset[Chunk]] = {
        v: frozenset({(GATHER_TAG, v)}) for v in cube.nodes()
    }
    rounds: list[tuple[Transfer, ...]] = []

    def ring_digit(v: int, dim: int) -> int:
        return (v // k**dim) % k

    for dim in range(n):
        succ = {v: cube.ring_step(v, dim, +1) for v in cube.nodes()}
        pred = {v: cube.ring_step(v, dim, -1) for v in cube.nodes()}
        if port_model is PortModel.ALL_PORT:
            fwd = {v: held[v] for v in cube.nodes()}
            bwd = {v: held[v] for v in cube.nodes()}
            n_fwd = (k - 1) - (k - 1) // 2
            n_bwd = (k - 1) // 2
            for step in range(1, max(n_fwd, n_bwd) + 1):
                batch: list[Transfer] = []
                if step <= n_fwd:
                    batch.extend(Transfer(v, succ[v], fwd[v]) for v in cube.nodes())
                if step <= n_bwd:
                    batch.extend(Transfer(v, pred[v], bwd[v]) for v in cube.nodes())
                rounds.append(tuple(batch))
                if step <= n_fwd:
                    for v in cube.nodes():
                        held[succ[v]] = held[succ[v]] | fwd[v]
                    fwd = {succ[v]: fwd[v] for v in cube.nodes()}
                if step <= n_bwd:
                    for v in cube.nodes():
                        held[pred[v]] = held[pred[v]] | bwd[v]
                    bwd = {pred[v]: bwd[v] for v in cube.nodes()}
        else:
            carry = {v: held[v] for v in cube.nodes()}
            for _step in range(1, k):
                batch = [Transfer(v, succ[v], carry[v]) for v in cube.nodes()]
                if port_model.half_duplex and k > 1:
                    # Split the directed ring cycle into arc matchings so
                    # no node both sends and receives within a round.
                    groups = 2 if k % 2 == 0 else 3
                    for g in range(groups):
                        part = tuple(
                            t
                            for t in batch
                            if _arc_group(ring_digit(t.src, dim), k) == g
                        )
                        if part:
                            rounds.append(part)
                else:
                    rounds.append(tuple(batch))
                for v in cube.nodes():
                    held[succ[v]] = held[succ[v]] | carry[v]
                carry = {succ[v]: carry[v] for v in cube.nodes()}
    return Schedule(
        rounds=rounds,
        chunk_sizes=sizes,
        algorithm="ring",
        meta={"port_model": port_model.value, "message_elems": message_elems},
    )


def _arc_group(digit: int, k: int) -> int:
    """Matching index of the ring arc leaving position ``digit``."""
    if k % 2 == 0:
        return digit % 2
    return digit % 2 if digit < k - 1 else 2


def all_broadcast_schedule(
    cube: Topology,
    message_elems: int,
    port_model: PortModel,
) -> Schedule:
    """Topology dispatch: dimension-exchange on cubes, ring circulation on tori."""
    if isinstance(cube, Hypercube):
        return allgather_schedule(cube, message_elems, port_model)
    if isinstance(cube, Torus):
        return torus_all_broadcast_schedule(cube, message_elems, port_model)
    raise TypeError(f"no all-broadcast construction for {type(cube).__name__}")


def all_broadcast_initial_holdings(cube: Topology) -> dict[int, set[Chunk]]:
    """Initial holdings: every node holds its own contribution."""
    return {v: {(GATHER_TAG, v)} for v in cube.nodes()}
