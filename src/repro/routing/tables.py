"""Distributed routing tables for the BST scatter (§5.2).

The paper's iPSC implementation does not ship destination addresses
with every packet; nodes route from precomputed tables, and §5.2 counts
their sizes:

* **The root keeps one table** of length ``~ N / log N`` with
  ``log N``-bit entries: the transmission order for port 0.  "The
  pointers for the other ports are simply obtained by (right) cyclic
  shifts of the table entries.  The cyclic nodes can be handled by
  finding the period P for each cyclic table entry, and not
  transmitting the message corresponding to this table entry for ports
  with index j >= P."  This works because subtree ``j`` is exactly the
  ``j``-step rotation of subtree 0 (minus the entries whose period is
  ``<= j``), and the rotation commutes with the BST parent function.

* **Internal nodes, depth-first order**: a count per used port
  suffices; with at most ``log N / 2`` ports per subtree and
  ``~ N / log N`` nodes per subtree, the table fits in about
  ``log^2 N`` bits.

* **Internal nodes, breadth-first order**: a per-level, per-child
  count table of at most ``log^2 N`` entries, ``~ log^3 N`` bits —
  "without a more sophisticated encoding the depth-first communication
  order is more effective with respect to table space."
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2

from repro.bits.necklaces import period
from repro.bits.ops import rotate_left
from repro.trees.bst import BalancedSpanningTree

__all__ = [
    "BstRootTable",
    "build_root_table",
    "depth_first_port_counts",
    "depth_first_table_bits",
    "breadth_first_level_table",
    "breadth_first_table_bits",
]


@dataclass(frozen=True)
class BstRootTable:
    """The root's single shared transmission table.

    Attributes:
        entries: relative addresses of subtree 0's nodes (all with
            ``base == 0``) in canonical depth-first transmission order;
            each entry is one ``log N``-bit word.
        n: cube dimension.
        source: the absolute root address (tables store *relative*
            addresses; translation is free).
    """

    entries: tuple[int, ...]
    n: int
    source: int

    def port_order(self, j: int) -> list[int]:
        """Absolute destination order for port ``j``, derived by rotation.

        Entry ``c`` is transmitted on port ``j`` as destination
        ``source XOR rotate_left(c, j)`` — skipped when the entry's
        rotation period is ``<= j`` (the §5.2 cyclic-node rule).
        """
        if not 0 <= j < self.n:
            raise ValueError(f"port {j} outside 0..{self.n - 1}")
        out = []
        for c in self.entries:
            if period(c, self.n) > j:
                out.append(self.source ^ rotate_left(c, j, self.n))
        return out

    def size_bits(self) -> int:
        """Table storage: one ``log N``-bit word per entry."""
        return len(self.entries) * self.n


def build_root_table(tree: BalancedSpanningTree) -> BstRootTable:
    """Build the root's shared table from subtree 0.

    The depth-first order uses a rotation-invariant child ordering
    (children sorted by their canonical relative address), so that the
    same table rotated serves every port.
    """
    n = tree.n
    source = tree.root
    members = set(tree.subtree_node_lists[0])
    head = None
    for child in tree.children_map[source]:
        if child in members:
            head = child
            break
    if head is None:
        raise ValueError("subtree 0 is empty — degenerate cube")

    order: list[int] = []
    stack = [head]
    while stack:
        node = stack.pop()
        order.append(node ^ source)
        kids = sorted(
            tree.children_map[node],
            key=lambda v: v ^ source,
            reverse=True,
        )
        stack.extend(kids)
    return BstRootTable(entries=tuple(order), n=n, source=source)


def depth_first_port_counts(
    tree: BalancedSpanningTree, node: int
) -> dict[int, int]:
    """Per-port forwarding counts for an internal node (DF order).

    Port ``p`` maps to the number of destination messages this node
    forwards through ``p`` — the §5.2 "count for each port" table.
    The root is excluded (it has the shared table instead).
    """
    if node == tree.root:
        raise ValueError("the root uses the shared table, not port counts")
    counts: dict[int, int] = {}
    for child in tree.children_map[node]:
        port = tree.cube.port_towards(node, child)
        counts[port] = len(tree.subtree_of(child))
    return counts


def depth_first_table_bits(tree: BalancedSpanningTree, node: int) -> int:
    """Storage for the DF table at ``node``: a count field per used port.

    Each count needs ``ceil(log2(count + 1))`` bits; the paper's bound
    is ``~ log^2 N`` bits per node.
    """
    counts = depth_first_port_counts(tree, node)
    return sum(max(1, ceil(log2(c + 1))) for c in counts.values())


def breadth_first_level_table(
    tree: BalancedSpanningTree, node: int
) -> dict[int, dict[int, int]]:
    """Per-child, per-level node counts for the BF order (§5.2).

    ``table[port][l]`` is the number of subtree nodes ``l`` tree-hops
    below the child reached through ``port``.
    """
    if node == tree.root:
        raise ValueError("the root uses the shared table, not level tables")
    out: dict[int, dict[int, int]] = {}
    for child in tree.children_map[node]:
        port = tree.cube.port_towards(node, child)
        counts = tree.descendant_counts_by_distance(child)
        out[port] = {l: c for l, c in enumerate(counts)}
    return out


def breadth_first_table_bits(tree: BalancedSpanningTree, node: int) -> int:
    """Storage for the BF table: a count field per (port, level) entry."""
    table = breadth_first_level_table(tree, node)
    return sum(
        max(1, ceil(log2(c + 1)))
        for per_level in table.values()
        for c in per_level.values()
    )
