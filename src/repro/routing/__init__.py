"""Routing schedule generators for the paper's collectives."""

from repro.routing.alltoall import (
    allgather_initial_holdings,
    allgather_schedule,
    alltoall_initial_holdings,
    alltoall_bst_schedule,
    alltoall_personalized_schedule,
)
from repro.routing.broadcast_hp_variants import dual_hp_broadcast_schedule
from repro.routing.broadcast_msbt import msbt_broadcast_schedule
from repro.routing.broadcast_sbt import sbt_broadcast_schedule
from repro.routing.broadcast_tree import tree_broadcast_schedule
from repro.routing.common import broadcast_chunks, scatter_chunks
from repro.routing.fault_aware import (
    fault_tolerant_broadcast_schedule,
    fault_tolerant_scatter_schedule,
    survivor_broadcast_tree,
)
from repro.routing.permutation import (
    permutation_initial_holdings,
    permutation_schedule,
)
from repro.routing.ring_allbroadcast import (
    all_broadcast_initial_holdings,
    all_broadcast_schedule,
    torus_all_broadcast_schedule,
)
from repro.routing.reverse import (
    gather_from_scatter,
    reduce_combine_rule,
    reduce_initial_holdings,
    sbt_reduce_schedule,
    tree_reduce_initial_holdings,
    tree_reduce_schedule,
)
from repro.routing.scatter_bst import bst_scatter_schedule
from repro.routing.scatter_common import wave_scatter_schedule
from repro.routing.scatter_sbt import sbt_scatter_schedule
from repro.routing.scatter_tree import tree_scatter_schedule
from repro.routing.tables import (
    BstRootTable,
    breadth_first_level_table,
    breadth_first_table_bits,
    build_root_table,
    depth_first_port_counts,
    depth_first_table_bits,
)
from repro.routing.scheduler import (
    greedy_partition,
    list_schedule,
    reschedule,
    split_oversized,
)

__all__ = [
    "allgather_initial_holdings",
    "allgather_schedule",
    "alltoall_initial_holdings",
    "alltoall_bst_schedule",
    "alltoall_personalized_schedule",
    "all_broadcast_initial_holdings",
    "all_broadcast_schedule",
    "torus_all_broadcast_schedule",
    "dual_hp_broadcast_schedule",
    "msbt_broadcast_schedule",
    "sbt_broadcast_schedule",
    "tree_broadcast_schedule",
    "broadcast_chunks",
    "fault_tolerant_broadcast_schedule",
    "fault_tolerant_scatter_schedule",
    "survivor_broadcast_tree",
    "permutation_initial_holdings",
    "permutation_schedule",
    "scatter_chunks",
    "gather_from_scatter",
    "reduce_combine_rule",
    "reduce_initial_holdings",
    "sbt_reduce_schedule",
    "tree_reduce_initial_holdings",
    "tree_reduce_schedule",
    "bst_scatter_schedule",
    "wave_scatter_schedule",
    "sbt_scatter_schedule",
    "tree_scatter_schedule",
    "BstRootTable",
    "breadth_first_level_table",
    "breadth_first_table_bits",
    "build_root_table",
    "depth_first_port_counts",
    "depth_first_table_bits",
    "greedy_partition",
    "list_schedule",
    "reschedule",
    "split_oversized",
]
