"""Reference implementations of the greedy list scheduler.

These are the original, straightforward O(rounds * pending) scanners
from :mod:`repro.routing.scheduler`, preserved verbatim — the optimized
versions there are dependency-indexed and must stay *bit-identical* to
these on every input (same rounds, same transfer order within a round,
same error behaviour).  ``tests/routing/test_scheduler_equivalence.py``
asserts that on the full algorithm zoo and on randomized transfer
lists, mirroring the engine/_engine_reference convention.
"""

from __future__ import annotations

from repro.sim.ports import PortModel
from repro.sim.schedule import Chunk, Schedule, Transfer
from repro.topology.hypercube import Hypercube

__all__ = ["list_schedule_reference", "greedy_partition_reference"]


def _fits(
    port_model: PortModel,
    t: Transfer,
    send_busy: set[int],
    recv_busy: set[int],
    edge_busy: set[tuple[int, int]],
) -> bool:
    if (t.src, t.dst) in edge_busy:
        return False
    if port_model is PortModel.ALL_PORT:
        return True
    if t.src in send_busy or t.dst in recv_busy:
        return False
    if port_model.half_duplex and (t.src in recv_busy or t.dst in send_busy):
        return False
    return True


def list_schedule_reference(
    cube: Hypercube,
    transfers: list[Transfer],
    chunk_sizes: dict[Chunk, int],
    port_model: PortModel,
    initial_holdings: dict[int, set[Chunk]],
    algorithm: str = "list-scheduled",
    meta: dict | None = None,
) -> Schedule:
    """The original full-rescan greedy list scheduler."""
    avail: dict[tuple[int, Chunk], int] = {}
    for node, chunks in initial_holdings.items():
        for c in chunks:
            avail[(node, c)] = 0

    remaining = list(range(len(transfers)))
    rounds: list[tuple[Transfer, ...]] = []
    r = 0
    guard = 0
    max_rounds = 4 * (len(transfers) + 1) + 16  # generous upper bound

    while remaining:
        send_busy: set[int] = set()
        recv_busy: set[int] = set()
        edge_busy: set[tuple[int, int]] = set()
        this_round: list[Transfer] = []
        next_remaining: list[int] = []
        min_future = None

        for idx in remaining:
            t = transfers[idx]
            ready = 0
            blocked = False
            for c in t.chunks:
                a = avail.get((t.src, c))
                if a is None:
                    blocked = True
                    break
                ready = max(ready, a)
            if blocked or ready > r:
                if not blocked:
                    min_future = ready if min_future is None else min(min_future, ready)
                next_remaining.append(idx)
                continue
            if not _fits(port_model, t, send_busy, recv_busy, edge_busy):
                next_remaining.append(idx)
                continue
            this_round.append(t)
            send_busy.add(t.src)
            recv_busy.add(t.dst)
            edge_busy.add((t.src, t.dst))
            for c in t.chunks:
                key = (t.dst, c)
                if key not in avail or avail[key] > r + 1:
                    avail[key] = r + 1

        if this_round:
            rounds.append(tuple(this_round))
            remaining = next_remaining
            r += 1
        elif min_future is not None and min_future > r:
            r = min_future  # idle gap: nothing deliverable yet
        else:
            stuck = [transfers[i] for i in remaining[:4]]
            raise RuntimeError(
                f"list scheduling deadlocked with {len(remaining)} transfers "
                f"left, e.g. {stuck}"
            )
        guard += 1
        if guard > max_rounds:
            raise RuntimeError("list scheduling failed to converge")

    return Schedule(
        rounds=rounds,
        chunk_sizes=dict(chunk_sizes),
        algorithm=algorithm,
        meta=meta or {},
    )


def greedy_partition_reference(
    chunks: list[Chunk],
    sizes: dict[Chunk, int],
    limit: int,
) -> list[list[Chunk]]:
    """The original first-fit partition scanning every bin per chunk."""
    bins: list[tuple[int, list[Chunk]]] = []
    for c in chunks:
        s = sizes[c]
        placed = False
        for i, (used, members) in enumerate(bins):
            if used + s <= limit:
                bins[i] = (used + s, members + [c])
                placed = True
                break
        if not placed:
            bins.append((s, [c]))
    return [members for _, members in bins]
