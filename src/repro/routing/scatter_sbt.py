"""SBT-based personalized communication (§4.2.1 and §5.2).

* **one port at a time** — recursive halving: in step ``t`` every node
  already holding data sends, across dimension ``n-1-t``, the
  cumulative messages for the opposite half of its remaining subcube
  (the largest subtree first, as the paper prescribes).  Within a
  bundle, destinations are processed in descending relative-address
  order, which makes the root's port usage follow the binary-reflected
  Gray-code transition sequence (§5.2).  Bundles larger than ``B`` go
  out as consecutive packets.  With ``B >= NM/2`` this meets
  ``T = (N-1) M t_c + log N * tau`` (Table 6).

* **all ports** — the level-by-level order of lemma 4.2, meeting
  ``T = N/2 * M t_c + log N * tau``.
"""

from __future__ import annotations

from repro.cache import cached_tree, memoize_schedule
from repro.routing.common import scatter_chunks
from repro.routing.scatter_common import dest_pieces, wave_scatter_schedule
from repro.routing.scheduler import greedy_partition
from repro.sim.ports import PortModel
from repro.sim.schedule import Schedule, Transfer
from repro.topology.hypercube import Hypercube
from repro.trees.sbt import SpanningBinomialTree

__all__ = ["sbt_scatter_schedule"]


@memoize_schedule()
def sbt_scatter_schedule(
    cube: Hypercube,
    source: int,
    message_elems: int,
    packet_elems: int,
    port_model: PortModel,
) -> Schedule:
    """Scatter ``message_elems`` per destination from ``source`` via the SBT.

    Args:
        cube: host cube.
        source: the distributing node (holds ``(N-1) * M`` elements).
        message_elems: per-destination message size ``M``.
        packet_elems: maximum packet size ``B``.
        port_model: port model the schedule must respect.
    """
    cube.check_node(source)
    if port_model is PortModel.ALL_PORT:
        tree = cached_tree(SpanningBinomialTree, cube, source)
        return wave_scatter_schedule(
            tree, message_elems, packet_elems, algorithm="sbt-scatter"
        )
    return _recursive_halving(cube, source, message_elems, packet_elems, port_model)


def _recursive_halving(
    cube: Hypercube,
    source: int,
    message_elems: int,
    packet_elems: int,
    port_model: PortModel,
) -> Schedule:
    n = cube.dimension
    dests = [d for d in cube.nodes() if d != source]
    sizes = scatter_chunks(dests, message_elems, packet_elems)

    # Recursive halving along the SBT: in step t, every node whose
    # relative address fits in the low t bits sends across dimension t
    # the cumulative messages for all destinations sharing its low-bit
    # suffix and having bit t set.  Step 0 moves half of everything to
    # the root of the largest subtree (port 0), as §4.2.1 prescribes;
    # each hop is an SBT edge, and every message follows its SBT path
    # (set bits corrected in ascending order).  Within a bundle,
    # destinations go in descending relative order (§5.2).
    rounds: list[tuple[Transfer, ...]] = []
    for t in range(n):
        per_sender_packets: list[list[Transfer]] = []
        for c in range(1 << t):
            dest_rels = [
                rel
                for rel in range(cube.num_nodes - 1, 0, -1)
                if rel & ((1 << (t + 1)) - 1) == c | (1 << t)
            ]
            pieces = []
            for rel in dest_rels:
                pieces.extend(dest_pieces(sizes, source ^ rel))
            if not pieces:
                continue
            groups = greedy_partition(pieces, sizes, packet_elems)
            src = source ^ c
            dst = src ^ (1 << t)
            per_sender_packets.append(
                [Transfer(src, dst, frozenset(g)) for g in groups]
            )
        micro = max(len(pkts) for pkts in per_sender_packets)
        for m in range(micro):
            rounds.append(
                tuple(pkts[m] for pkts in per_sender_packets if m < len(pkts))
            )

    return Schedule(
        rounds=rounds,
        chunk_sizes=sizes,
        algorithm="sbt-scatter",
        meta={
            "port_model": port_model.value,
            "source": source,
            "message_elems": message_elems,
            "packet_elems": packet_elems,
        },
    )
