"""Greedy list scheduling of logical transfers into rounds.

Several of the paper's routings (BST scatter forwarding, half-duplex
serializations, generic-tree pipelines) are most naturally expressed as
an ordered list of *logical* transfers with causal dependencies implied
by their payloads: a node can forward a chunk only after receiving it.
This module packs such a list into lock-step rounds greedily, in list
order, under the active port model — earliest-fit, one pass per round.

List order is the priority: generators encode the paper's transmission
orders (descending relative address, cyclic subtree round-robin,
depth-first within subtree, ...) simply by ordering the transfer list.

Implementation note: the packer used to rescan the whole pending list
every round and first-fit used to probe every bin per chunk, both
quadratic — prohibitive for the fine-packet grids the runtime
differential harness sweeps (``B = 1`` turns a one-port BST scatter at
``n = 8`` into ~10^6 transfers).  The versions here are
dependency-indexed (a ``(node, chunk) -> waiting transfers`` map plus
ready/eligible heaps) and skip saturated bins, and they are
*bit-identical* to the originals, which are preserved in
:mod:`repro.routing._scheduler_reference` and asserted equivalent by
``tests/routing/test_scheduler_equivalence.py``.
"""

from __future__ import annotations

from heapq import heappop, heappush

from repro.sim.ports import PortModel
from repro.sim.schedule import Chunk, Schedule, Transfer
from repro.topology.hypercube import Hypercube

__all__ = ["list_schedule", "reschedule", "split_oversized", "greedy_partition"]


def list_schedule(
    cube: Hypercube,
    transfers: list[Transfer],
    chunk_sizes: dict[Chunk, int],
    port_model: PortModel,
    initial_holdings: dict[int, set[Chunk]],
    algorithm: str = "list-scheduled",
    meta: dict | None = None,
) -> Schedule:
    """Pack ``transfers`` (in priority order) into constraint-valid rounds.

    A transfer is eligible in round ``r`` when the sender holds all its
    chunks by the start of ``r`` (initially, or delivered in a round
    before ``r``) and the round still has capacity for it under
    ``port_model``.  Eligible transfers are taken greedily in list
    order.

    Raises:
        RuntimeError: when no remaining transfer can ever become
            eligible (a causally broken transfer list).
    """
    avail: dict[tuple[int, Chunk], int] = {}
    for node, chunks in initial_holdings.items():
        for c in chunks:
            avail[(node, c)] = 0

    n_transfers = len(transfers)
    rounds: list[tuple[Transfer, ...]] = []

    # Dependency index.  Every pending transfer is in exactly one of:
    # *waiting* (some payload chunk has no availability round yet; its
    # index sits in `waiters` under each missing (src, chunk) key),
    # *future* (payload fully known, ready round > r), or *eligible*
    # (ready, competing for capacity in input order).  Availability
    # rounds are monotone — a chunk's first delivery is its earliest,
    # later duplicates never improve it — so a transfer's ready round
    # is fixed the moment its last chunk materializes.
    waiters: dict[tuple[int, Chunk], list[int]] = {}
    missing = [0] * n_transfers
    future: list[tuple[int, int]] = []  # (ready round, input index)
    eligible: list[int] = []  # input indices
    done = [False] * n_transfers
    for idx, t in enumerate(transfers):
        m = 0
        ready = 0
        for c in t.chunks:
            a = avail.get((t.src, c))
            if a is None:
                m += 1
                waiters.setdefault((t.src, c), []).append(idx)
            elif a > ready:
                ready = a
        missing[idx] = m
        if m == 0:
            heappush(future, (ready, idx))

    placed = 0
    r = 0
    while placed < n_transfers:
        while future and future[0][0] <= r:
            heappush(eligible, heappop(future)[1])
        if not eligible:
            if future:
                r = future[0][0]  # idle gap: nothing deliverable yet
                continue
            stuck = [transfers[i] for i in range(n_transfers) if not done[i]][:4]
            raise RuntimeError(
                f"list scheduling deadlocked with {n_transfers - placed} "
                f"transfers left, e.g. {stuck}"
            )

        send_busy: set[int] = set()
        recv_busy: set[int] = set()
        edge_busy: set[tuple[int, int]] = set()
        this_round: list[Transfer] = []
        deferred: list[int] = []
        while eligible:
            idx = heappop(eligible)
            t = transfers[idx]
            if not _fits(port_model, t, send_busy, recv_busy, edge_busy):
                deferred.append(idx)
                continue
            this_round.append(t)
            done[idx] = True
            send_busy.add(t.src)
            recv_busy.add(t.dst)
            edge_busy.add((t.src, t.dst))
            for c in t.chunks:
                key = (t.dst, c)
                if key not in avail:
                    avail[key] = r + 1
                    for w in waiters.pop(key, ()):
                        missing[w] -= 1
                        if missing[w] == 0:
                            tw = transfers[w]
                            ready = 0
                            for cw in tw.chunks:
                                a = avail[(tw.src, cw)]
                                if a > ready:
                                    ready = a
                            heappush(future, (ready, w))
        for idx in deferred:
            heappush(eligible, idx)
        # The round is never empty: with fresh busy sets the first
        # eligible transfer always fits.
        rounds.append(tuple(this_round))
        placed += len(this_round)
        r += 1

    return Schedule(
        rounds=rounds,
        chunk_sizes=dict(chunk_sizes),
        algorithm=algorithm,
        meta=meta or {},
    )


def _fits(
    port_model: PortModel,
    t: Transfer,
    send_busy: set[int],
    recv_busy: set[int],
    edge_busy: set[tuple[int, int]],
) -> bool:
    if (t.src, t.dst) in edge_busy:
        return False
    if port_model is PortModel.ALL_PORT:
        return True
    if t.src in send_busy or t.dst in recv_busy:
        return False
    if port_model.half_duplex and (t.src in recv_busy or t.dst in send_busy):
        return False
    return True


def reschedule(
    cube: Hypercube,
    schedule: Schedule,
    port_model: PortModel,
    initial_holdings: dict[int, set[Chunk]],
) -> Schedule:
    """Re-pack an existing schedule under a (usually stricter) port model.

    Used to derive the one-send-*or*-receive MSBT broadcast from the
    full-duplex labelled schedule (§3.3.2's "transform each cycle into
    two cycles" construction, realized greedily).
    """
    out = list_schedule(
        cube,
        schedule.all_transfers(),
        schedule.chunk_sizes,
        port_model,
        initial_holdings,
        algorithm=f"{schedule.algorithm}@{port_model.value}",
        meta=dict(schedule.meta),
    )
    return out


def split_oversized(schedule: Schedule, packet_elems: int) -> Schedule:
    """Split transfers larger than ``packet_elems`` into micro-rounds.

    A round whose largest transfer needs ``k`` packets becomes ``k``
    consecutive micro-rounds; each oversized transfer's chunks are
    distributed greedily over its micro-rounds so no packet exceeds
    ``packet_elems`` (individual chunks bigger than the limit go out
    alone — generators are expected to pre-split chunks when a hard
    bound matters).
    """
    if packet_elems < 1:
        raise ValueError(f"packet size must be >= 1, got {packet_elems}")
    new_rounds: list[tuple[Transfer, ...]] = []
    for round_transfers in schedule.rounds:
        pieces: list[list[Transfer]] = []
        for t in round_transfers:
            groups = greedy_partition(
                sorted(t.chunks, key=lambda c: (-schedule.chunk_sizes[c], repr(c))),
                schedule.chunk_sizes,
                packet_elems,
            )
            for micro, group in enumerate(groups):
                while len(pieces) <= micro:
                    pieces.append([])
                pieces[micro].append(Transfer(t.src, t.dst, frozenset(group)))
        new_rounds.extend(tuple(p) for p in pieces)
    return Schedule(
        rounds=new_rounds,
        chunk_sizes=dict(schedule.chunk_sizes),
        algorithm=schedule.algorithm,
        meta={**schedule.meta, "split_packet_elems": packet_elems},
    )


def greedy_partition(
    chunks: list[Chunk],
    sizes: dict[Chunk, int],
    limit: int,
) -> list[list[Chunk]]:
    """First-fit partition of ``chunks`` (in the given order) into
    bins of at most ``limit`` elements each.

    Only bins with spare room are probed (a saturated bin can never
    take a chunk of size >= 1, so skipping it preserves first-fit
    placement exactly); zero-sized chunks fall back to the full scan,
    where a saturated bin *does* accept them.
    """
    used: list[int] = []
    members: list[list[Chunk]] = []
    open_bins: list[int] = []  # bins with used < limit, creation order
    for c in chunks:
        s = sizes[c]
        placed = False
        if s > 0:
            for pos, i in enumerate(open_bins):
                u = used[i]
                if u + s <= limit:
                    used[i] = u + s
                    members[i].append(c)
                    if u + s >= limit:
                        open_bins.pop(pos)
                    placed = True
                    break
        else:
            for i in range(len(used)):
                if used[i] + s <= limit:
                    members[i].append(c)
                    placed = True
                    break
        if not placed:
            used.append(s)
            members.append([c])
            if s < limit:
                open_bins.append(len(used) - 1)
    return members
