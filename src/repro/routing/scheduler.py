"""Greedy list scheduling of logical transfers into rounds.

Several of the paper's routings (BST scatter forwarding, half-duplex
serializations, generic-tree pipelines) are most naturally expressed as
an ordered list of *logical* transfers with causal dependencies implied
by their payloads: a node can forward a chunk only after receiving it.
This module packs such a list into lock-step rounds greedily, in list
order, under the active port model — earliest-fit, one pass per round.

List order is the priority: generators encode the paper's transmission
orders (descending relative address, cyclic subtree round-robin,
depth-first within subtree, ...) simply by ordering the transfer list.
"""

from __future__ import annotations

from repro.sim.ports import PortModel
from repro.sim.schedule import Chunk, Schedule, Transfer
from repro.topology.hypercube import Hypercube

__all__ = ["list_schedule", "reschedule", "split_oversized", "greedy_partition"]


def list_schedule(
    cube: Hypercube,
    transfers: list[Transfer],
    chunk_sizes: dict[Chunk, int],
    port_model: PortModel,
    initial_holdings: dict[int, set[Chunk]],
    algorithm: str = "list-scheduled",
    meta: dict | None = None,
) -> Schedule:
    """Pack ``transfers`` (in priority order) into constraint-valid rounds.

    A transfer is eligible in round ``r`` when the sender holds all its
    chunks by the start of ``r`` (initially, or delivered in a round
    before ``r``) and the round still has capacity for it under
    ``port_model``.  Eligible transfers are taken greedily in list
    order.

    Raises:
        RuntimeError: when no remaining transfer can ever become
            eligible (a causally broken transfer list).
    """
    avail: dict[tuple[int, Chunk], int] = {}
    for node, chunks in initial_holdings.items():
        for c in chunks:
            avail[(node, c)] = 0

    remaining = list(range(len(transfers)))
    rounds: list[tuple[Transfer, ...]] = []
    r = 0
    guard = 0
    max_rounds = 4 * (len(transfers) + 1) + 16  # generous upper bound

    while remaining:
        send_busy: set[int] = set()
        recv_busy: set[int] = set()
        edge_busy: set[tuple[int, int]] = set()
        this_round: list[Transfer] = []
        next_remaining: list[int] = []
        min_future = None

        for idx in remaining:
            t = transfers[idx]
            ready = 0
            blocked = False
            for c in t.chunks:
                a = avail.get((t.src, c))
                if a is None:
                    blocked = True
                    break
                ready = max(ready, a)
            if blocked or ready > r:
                if not blocked:
                    min_future = ready if min_future is None else min(min_future, ready)
                next_remaining.append(idx)
                continue
            if not _fits(port_model, t, send_busy, recv_busy, edge_busy):
                next_remaining.append(idx)
                continue
            this_round.append(t)
            send_busy.add(t.src)
            recv_busy.add(t.dst)
            edge_busy.add((t.src, t.dst))
            for c in t.chunks:
                key = (t.dst, c)
                if key not in avail or avail[key] > r + 1:
                    avail[key] = r + 1

        if this_round:
            rounds.append(tuple(this_round))
            remaining = next_remaining
            r += 1
        elif min_future is not None and min_future > r:
            r = min_future  # idle gap: nothing deliverable yet
        else:
            stuck = [transfers[i] for i in remaining[:4]]
            raise RuntimeError(
                f"list scheduling deadlocked with {len(remaining)} transfers "
                f"left, e.g. {stuck}"
            )
        guard += 1
        if guard > max_rounds:
            raise RuntimeError("list scheduling failed to converge")

    return Schedule(
        rounds=rounds,
        chunk_sizes=dict(chunk_sizes),
        algorithm=algorithm,
        meta=meta or {},
    )


def _fits(
    port_model: PortModel,
    t: Transfer,
    send_busy: set[int],
    recv_busy: set[int],
    edge_busy: set[tuple[int, int]],
) -> bool:
    if (t.src, t.dst) in edge_busy:
        return False
    if port_model is PortModel.ALL_PORT:
        return True
    if t.src in send_busy or t.dst in recv_busy:
        return False
    if port_model.half_duplex and (t.src in recv_busy or t.dst in send_busy):
        return False
    return True


def reschedule(
    cube: Hypercube,
    schedule: Schedule,
    port_model: PortModel,
    initial_holdings: dict[int, set[Chunk]],
) -> Schedule:
    """Re-pack an existing schedule under a (usually stricter) port model.

    Used to derive the one-send-*or*-receive MSBT broadcast from the
    full-duplex labelled schedule (§3.3.2's "transform each cycle into
    two cycles" construction, realized greedily).
    """
    out = list_schedule(
        cube,
        schedule.all_transfers(),
        schedule.chunk_sizes,
        port_model,
        initial_holdings,
        algorithm=f"{schedule.algorithm}@{port_model.value}",
        meta=dict(schedule.meta),
    )
    return out


def split_oversized(schedule: Schedule, packet_elems: int) -> Schedule:
    """Split transfers larger than ``packet_elems`` into micro-rounds.

    A round whose largest transfer needs ``k`` packets becomes ``k``
    consecutive micro-rounds; each oversized transfer's chunks are
    distributed greedily over its micro-rounds so no packet exceeds
    ``packet_elems`` (individual chunks bigger than the limit go out
    alone — generators are expected to pre-split chunks when a hard
    bound matters).
    """
    if packet_elems < 1:
        raise ValueError(f"packet size must be >= 1, got {packet_elems}")
    new_rounds: list[tuple[Transfer, ...]] = []
    for round_transfers in schedule.rounds:
        pieces: list[list[Transfer]] = []
        for t in round_transfers:
            groups = greedy_partition(
                sorted(t.chunks, key=lambda c: (-schedule.chunk_sizes[c], repr(c))),
                schedule.chunk_sizes,
                packet_elems,
            )
            for micro, group in enumerate(groups):
                while len(pieces) <= micro:
                    pieces.append([])
                pieces[micro].append(Transfer(t.src, t.dst, frozenset(group)))
        new_rounds.extend(tuple(p) for p in pieces)
    return Schedule(
        rounds=new_rounds,
        chunk_sizes=dict(schedule.chunk_sizes),
        algorithm=schedule.algorithm,
        meta={**schedule.meta, "split_packet_elems": packet_elems},
    )


def greedy_partition(
    chunks: list[Chunk],
    sizes: dict[Chunk, int],
    limit: int,
) -> list[list[Chunk]]:
    """First-fit partition of ``chunks`` (in the given order) into
    bins of at most ``limit`` elements each."""
    bins: list[tuple[int, list[Chunk]]] = []
    for c in chunks:
        s = sizes[c]
        placed = False
        for i, (used, members) in enumerate(bins):
            if used + s <= limit:
                bins[i] = (used + s, members + [c])
                placed = True
                break
        if not placed:
            bins.append((s, [c]))
    return [members for _, members in bins]
