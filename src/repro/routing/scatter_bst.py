"""BST-based personalized communication (§4.2.2 and §5.2).

* **one port at a time** — the root serves its ``n`` subtrees
  cyclically (port ``j`` in cycles congruent to ``j`` mod ``n``), each
  packet carrying the next bundle of at most ``B`` elements of that
  subtree's messages in the chosen transmission order.  Since a subtree
  receives a new packet only every ``n`` cycles, internal nodes have
  slack to forward — which is exactly the overlap the paper measures as
  the BST's one-port advantage on the iPSC.  Orders supported (§5.2):
  ``"depth_first"`` (the measured implementation) and
  ``"reversed_breadth_first"`` (most remote data first).

* **all ports** — level-by-level (the lemma 4.2 order applied to the
  BST), reaching ``T = (N-1)/log N * M t_c + log N * tau`` — lower than
  the SBT by a factor of about ``log N / 2`` (Table 6).
"""

from __future__ import annotations

from repro.cache import cached_tree, memoize_schedule
from repro.routing.common import scatter_chunks
from repro.routing.scatter_common import (
    dest_pieces,
    distribute_packet,
    wave_scatter_schedule,
)
from repro.routing.scheduler import greedy_partition, list_schedule
from repro.sim.ports import PortModel
from repro.sim.schedule import Chunk, Schedule, Transfer
from repro.topology.hypercube import Hypercube
from repro.trees.bst import BalancedSpanningTree

__all__ = ["bst_scatter_schedule", "SUBTREE_ORDERS"]

#: transmission orders supported within a subtree (§5.2)
SUBTREE_ORDERS = ("depth_first", "reversed_breadth_first")


@memoize_schedule()
def bst_scatter_schedule(
    cube: Hypercube,
    source: int,
    message_elems: int,
    packet_elems: int,
    port_model: PortModel,
    subtree_order: str = "depth_first",
) -> Schedule:
    """Scatter ``message_elems`` per destination from ``source`` via the BST.

    Args:
        cube: host cube.
        source: the distributing node.
        message_elems: per-destination message size ``M``.
        packet_elems: maximum packet size ``B``.
        port_model: port model the schedule must respect.
        subtree_order: ``"depth_first"`` or ``"reversed_breadth_first"``
            transmission order within each subtree (one-port models
            only; the all-port schedule is level-by-level).
    """
    cube.check_node(source)
    if subtree_order not in SUBTREE_ORDERS:
        raise ValueError(
            f"unknown subtree order {subtree_order!r}; pick one of {SUBTREE_ORDERS}"
        )
    tree = cached_tree(BalancedSpanningTree, cube, source)
    if port_model is PortModel.ALL_PORT:
        return wave_scatter_schedule(
            tree, message_elems, packet_elems, algorithm="bst-scatter"
        )
    return _cyclic_one_port(
        tree, message_elems, packet_elems, port_model, subtree_order
    )


def _subtree_head(tree: BalancedSpanningTree, j: int) -> int | None:
    """The root child that subtree ``j`` hangs off (None when empty)."""
    members = set(tree.subtree_node_lists[j])
    for child in tree.children_map[tree.root]:
        if child in members:
            return child
    return None


def _subtree_dest_order(
    tree: BalancedSpanningTree,
    j: int,
    subtree_order: str,
) -> list[int]:
    """Destination order for subtree ``j`` under the chosen policy."""
    members = set(tree.subtree_node_lists[j])
    head = _subtree_head(tree, j)
    if head is None:
        return []
    if subtree_order == "depth_first":
        order = tree.preorder(head)
    else:
        order = tree.reversed_breadth_first(head)
    return [v for v in order if v in members]


def _cyclic_one_port(
    tree: BalancedSpanningTree,
    message_elems: int,
    packet_elems: int,
    port_model: PortModel,
    subtree_order: str,
) -> Schedule:
    cube = tree.cube
    source = tree.root
    dests = [d for d in cube.nodes() if d != source]
    sizes = scatter_chunks(dests, message_elems, packet_elems)
    n = cube.dimension

    # Per-subtree packet queues: bundles of at most B elements, filled
    # in the chosen transmission order.
    queues: list[list[frozenset[Chunk]]] = []
    heads: list[int | None] = []
    for j in range(n):
        order = _subtree_dest_order(tree, j, subtree_order)
        pieces: list[Chunk] = []
        for d in order:
            pieces.extend(dest_pieces(sizes, d))
        queues.append([frozenset(g) for g in greedy_partition(pieces, sizes, packet_elems)])
        heads.append(_subtree_head(tree, j))

    # Priority list: root sends round-robin over subtrees; right after
    # each root packet, its fan-out transfers below the subtree head.
    transfers: list[Transfer] = []
    k = 0
    while any(queues):
        j = k % n
        k += 1
        if not queues[j]:
            continue
        packet = queues[j].pop(0)
        head = heads[j]
        assert head is not None
        transfers.append(Transfer(source, head, packet))
        transfers.extend(distribute_packet(tree, head, set(packet)))

    return list_schedule(
        cube,
        transfers,
        sizes,
        port_model,
        {source: set(sizes)},
        algorithm="bst-scatter",
        meta={
            "port_model": port_model.value,
            "source": source,
            "message_elems": message_elems,
            "packet_elems": packet_elems,
            "subtree_order": subtree_order,
        },
    )
