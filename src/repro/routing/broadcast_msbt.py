"""MSBT-based broadcasting (§3.3.2).

The message is cut into ``P = ceil(M/B)`` packets; packet ``p`` travels
down ERSBT ``p mod n`` as batch ``p // n``.  Under one send *and* one
receive per node, batch ``q`` of tree ``j`` crosses the edge labelled
``f`` in round ``f + q*n`` — the labelling's three conditions make this
collision-free, the first batch drains in ``2 log N`` rounds and the
whole message in ``ceil(M/B) + log N`` rounds (the paper's strict lower
bound for ``M/B > 1``).

Under one send *or* one receive the full-duplex schedule is re-packed
greedily (§3.3.2's two-cycles transformation), landing within the
``2 ceil(M/B) + log N - 1`` bound.  Under the all-port model each tree
pipelines its batches independently — the trees are edge-disjoint, so
``n`` packets are injected per round and the run takes
``ceil(M/(B log N)) + log N`` rounds.

With ``dead_links`` the generator degrades gracefully: each packet
still pipelines down its assigned ERSBT wherever that tree survives,
and the subtrees cut off below a dead edge are re-attached through
fault-avoiding BFS paths (§1's disjoint-path guarantee makes this
always possible for up to ``log N - 1`` link faults).  The degraded
schedule never touches a dead link, so it runs clean under the
matching :class:`~repro.sim.faults.FaultPlan`.
"""

from __future__ import annotations

from collections.abc import Collection
from math import ceil

from repro.cache import cached_msbt_graph, memoize_schedule
from repro.routing.common import BCAST, broadcast_chunks
from repro.routing.scheduler import list_schedule, reschedule
from repro.sim.faults import FaultError
from repro.sim.ports import PortModel
from repro.sim.schedule import Schedule, Transfer
from repro.topology.fault import fault_avoiding_spanning_tree
from repro.topology.hypercube import Hypercube
from repro.trees.msbt import MSBTGraph

__all__ = ["msbt_broadcast_schedule"]


@memoize_schedule()
def msbt_broadcast_schedule(
    cube: Hypercube,
    source: int,
    message_elems: int,
    packet_elems: int,
    port_model: PortModel,
    dead_links: Collection[tuple[int, int]] = (),
) -> Schedule:
    """Broadcast ``message_elems`` from ``source`` over the MSBT graph.

    Returns a constraint-valid schedule for the requested port model;
    ``meta["predicted_rounds"]`` carries the paper's closed-form step
    count (for ``ONE_PORT_HALF`` it is the paper's upper bound — the
    greedy serialization may do one round better on tiny cases).

    Args:
        dead_links: failed links as (a, b) pairs, direction-agnostic.
            When non-empty the schedule routes around them (see the
            module docstring); the closed-form round counts no longer
            apply, so ``predicted_rounds`` is omitted and the
            algorithm tag becomes ``"msbt-broadcast-degraded"``.

    Raises:
        FaultError: when ``dead_links`` disconnect some node from the
            source (requires at least ``log N`` faults); the error's
            ``undelivered`` names the unreachable nodes.
    """
    cube.check_node(source)
    sizes = broadcast_chunks(message_elems, packet_elems)
    n_packets = len(sizes)
    n = cube.dimension
    graph = cached_msbt_graph(cube, source)

    dead = {(min(a, b), max(a, b)) for a, b in dead_links}
    if dead:
        return _degraded(graph, sizes, n_packets, port_model, dead)

    if port_model is PortModel.ALL_PORT:
        return _all_port(graph, sizes, n_packets)

    full = _full_duplex(graph, sizes, n_packets)
    if port_model is PortModel.ONE_PORT_FULL:
        return full
    # ONE_PORT_HALF: greedy two-cycle serialization of the labelled schedule.
    half = reschedule(
        cube, full, PortModel.ONE_PORT_HALF, {source: set(sizes)}
    )
    half.algorithm = "msbt-broadcast"
    half.meta.update(
        port_model=port_model.value,
        predicted_rounds=2 * n_packets + n - 1,
    )
    return half


def _full_duplex(graph: MSBTGraph, sizes: dict, n_packets: int) -> Schedule:
    n = graph.n
    cube = graph.cube
    total_rounds = 0
    placed: list[tuple[int, Transfer]] = []
    for p in range(n_packets):
        j = p % n
        q = p // n
        tree = graph.trees[j]
        chunk = frozenset({(BCAST, p)})
        for node in cube.nodes():
            lab = tree.label(node)
            if lab is None:
                continue
            parent = tree.parent(node)
            assert parent is not None
            r = lab + q * n
            placed.append((r, Transfer(parent, node, chunk)))
            total_rounds = max(total_rounds, r + 1)
    rounds: list[list[Transfer]] = [[] for _ in range(total_rounds)]
    for r, t in placed:
        rounds[r].append(t)
    return Schedule(
        rounds=[tuple(r) for r in rounds],
        chunk_sizes=sizes,
        algorithm="msbt-broadcast",
        meta={
            "port_model": PortModel.ONE_PORT_FULL.value,
            "source": graph.source,
            "predicted_rounds": n_packets + n if n_packets > 1 else 2 * n,
        },
    )


def _all_port(graph: MSBTGraph, sizes: dict, n_packets: int) -> Schedule:
    n = graph.n
    cube = graph.cube
    # Tree j carries packets p ≡ j (mod n); batch q = p // n pipelines
    # one round behind batch q - 1 within its (edge-disjoint) tree.
    placed: list[tuple[int, Transfer]] = []
    total_rounds = 0
    levels = [graph.trees[j].levels for j in range(n)]
    for p in range(n_packets):
        j = p % n
        q = p // n
        tree = graph.trees[j]
        chunk = frozenset({(BCAST, p)})
        for node in cube.nodes():
            parent = tree.parent(node)
            if parent is None:
                continue
            r = levels[j][node] - 1 + q
            placed.append((r, Transfer(parent, node, chunk)))
            total_rounds = max(total_rounds, r + 1)
    rounds: list[list[Transfer]] = [[] for _ in range(total_rounds)]
    for r, t in placed:
        rounds[r].append(t)
    return Schedule(
        rounds=[tuple(r) for r in rounds],
        chunk_sizes=sizes,
        algorithm="msbt-broadcast",
        meta={
            "port_model": PortModel.ALL_PORT.value,
            "source": graph.source,
            "predicted_rounds": ceil(n_packets / n) + n,
        },
    )


def _degraded(
    graph: MSBTGraph,
    sizes: dict,
    n_packets: int,
    port_model: PortModel,
    dead: set[tuple[int, int]],
) -> Schedule:
    """MSBT broadcast over a cube with failed links.

    A single link fault can damage up to two of the ``n`` edge-disjoint
    trees, so with ``n - 1`` faults every tree may be broken — dropping
    damaged trees wholesale cannot meet §1's tolerance bound.  Instead
    each packet keeps the intact portion of its assigned tree, and the
    *orphans* (nodes whose tree path to the source crosses a dead edge)
    are re-attached through their fault-avoiding BFS path: walking the
    survivor tree upward from each orphan until a node that still
    receives the packet through the tree, then relaying down that chain.
    The resulting transfer list is packed by :func:`list_schedule`, so
    the output is constraint-valid under any port model by construction.
    """
    cube = graph.cube
    n = graph.n
    source = graph.source

    fast = fault_avoiding_spanning_tree(cube, source, dead_links=dead, partial=True)
    missing = sorted(v for v in cube.nodes() if v not in fast)
    if missing:
        raise FaultError(
            f"{len(dead)} dead links disconnect {len(missing)} nodes from "
            f"source {source} (e.g. {missing[:4]})",
            undelivered=missing,
        )
    fast_level: dict[int, int] = {}
    for v in fast:
        depth, u = 0, v
        while fast[u] is not None:
            u = fast[u]  # type: ignore[assignment]
            depth += 1
        fast_level[v] = depth

    items: list[tuple[tuple[int, int, int], Transfer]] = []
    for p in range(n_packets):
        j = p % n
        tree = graph.trees[j]
        chunk = frozenset({(BCAST, p)})

        orphan: set[int] = set()
        for v in sorted(cube.nodes(), key=tree.levels.__getitem__):
            parent = tree.parent(v)
            if parent is None:
                continue
            if (min(parent, v), max(parent, v)) in dead or parent in orphan:
                orphan.add(v)

        for v in cube.nodes():
            lab = tree.label(v)
            if lab is None or v in orphan:
                continue
            parent = tree.parent(v)
            assert parent is not None
            items.append(((p, 0, lab), Transfer(parent, v, chunk)))

        # Patch chains, deduplicated: orphans sharing a survivor-tree
        # prefix receive through one relay of the packet, not several.
        patch: dict[tuple[int, int], int] = {}
        for v in sorted(orphan):
            u = v
            while u in orphan:
                pu = fast[u]
                assert pu is not None  # the source is never an orphan
                patch[(pu, u)] = fast_level[u]
                u = pu
        for (a, b), lvl in sorted(patch.items(), key=lambda kv: (kv[1], kv[0])):
            items.append(((p, 1, lvl), Transfer(a, b, chunk)))

    items.sort(key=lambda kv: kv[0])
    return list_schedule(
        cube,
        [t for _, t in items],
        sizes,
        port_model,
        {source: set(sizes)},
        algorithm="msbt-broadcast-degraded",
        meta={
            "port_model": port_model.value,
            "source": source,
            "dead_links": tuple(sorted(dead)),
        },
    )
