"""MSBT-based broadcasting (§3.3.2).

The message is cut into ``P = ceil(M/B)`` packets; packet ``p`` travels
down ERSBT ``p mod n`` as batch ``p // n``.  Under one send *and* one
receive per node, batch ``q`` of tree ``j`` crosses the edge labelled
``f`` in round ``f + q*n`` — the labelling's three conditions make this
collision-free, the first batch drains in ``2 log N`` rounds and the
whole message in ``ceil(M/B) + log N`` rounds (the paper's strict lower
bound for ``M/B > 1``).

Under one send *or* one receive the full-duplex schedule is re-packed
greedily (§3.3.2's two-cycles transformation), landing within the
``2 ceil(M/B) + log N - 1`` bound.  Under the all-port model each tree
pipelines its batches independently — the trees are edge-disjoint, so
``n`` packets are injected per round and the run takes
``ceil(M/(B log N)) + log N`` rounds.
"""

from __future__ import annotations

from math import ceil

from repro.cache import cached_msbt_graph, memoize_schedule
from repro.routing.common import BCAST, broadcast_chunks
from repro.routing.scheduler import reschedule
from repro.sim.ports import PortModel
from repro.sim.schedule import Schedule, Transfer
from repro.topology.hypercube import Hypercube
from repro.trees.msbt import MSBTGraph

__all__ = ["msbt_broadcast_schedule"]


@memoize_schedule()
def msbt_broadcast_schedule(
    cube: Hypercube,
    source: int,
    message_elems: int,
    packet_elems: int,
    port_model: PortModel,
) -> Schedule:
    """Broadcast ``message_elems`` from ``source`` over the MSBT graph.

    Returns a constraint-valid schedule for the requested port model;
    ``meta["predicted_rounds"]`` carries the paper's closed-form step
    count (for ``ONE_PORT_HALF`` it is the paper's upper bound — the
    greedy serialization may do one round better on tiny cases).
    """
    cube.check_node(source)
    sizes = broadcast_chunks(message_elems, packet_elems)
    n_packets = len(sizes)
    n = cube.dimension
    graph = cached_msbt_graph(cube, source)

    if port_model is PortModel.ALL_PORT:
        return _all_port(graph, sizes, n_packets)

    full = _full_duplex(graph, sizes, n_packets)
    if port_model is PortModel.ONE_PORT_FULL:
        return full
    # ONE_PORT_HALF: greedy two-cycle serialization of the labelled schedule.
    half = reschedule(
        cube, full, PortModel.ONE_PORT_HALF, {source: set(sizes)}
    )
    half.algorithm = "msbt-broadcast"
    half.meta.update(
        port_model=port_model.value,
        predicted_rounds=2 * n_packets + n - 1,
    )
    return half


def _full_duplex(graph: MSBTGraph, sizes: dict, n_packets: int) -> Schedule:
    n = graph.n
    cube = graph.cube
    total_rounds = 0
    placed: list[tuple[int, Transfer]] = []
    for p in range(n_packets):
        j = p % n
        q = p // n
        tree = graph.trees[j]
        chunk = frozenset({(BCAST, p)})
        for node in cube.nodes():
            lab = tree.label(node)
            if lab is None:
                continue
            parent = tree.parent(node)
            assert parent is not None
            r = lab + q * n
            placed.append((r, Transfer(parent, node, chunk)))
            total_rounds = max(total_rounds, r + 1)
    rounds: list[list[Transfer]] = [[] for _ in range(total_rounds)]
    for r, t in placed:
        rounds[r].append(t)
    return Schedule(
        rounds=[tuple(r) for r in rounds],
        chunk_sizes=sizes,
        algorithm="msbt-broadcast",
        meta={
            "port_model": PortModel.ONE_PORT_FULL.value,
            "source": graph.source,
            "predicted_rounds": n_packets + n if n_packets > 1 else 2 * n,
        },
    )


def _all_port(graph: MSBTGraph, sizes: dict, n_packets: int) -> Schedule:
    n = graph.n
    cube = graph.cube
    # Tree j carries packets p ≡ j (mod n); batch q = p // n pipelines
    # one round behind batch q - 1 within its (edge-disjoint) tree.
    placed: list[tuple[int, Transfer]] = []
    total_rounds = 0
    levels = [graph.trees[j].levels for j in range(n)]
    for p in range(n_packets):
        j = p % n
        q = p // n
        tree = graph.trees[j]
        chunk = frozenset({(BCAST, p)})
        for node in cube.nodes():
            parent = tree.parent(node)
            if parent is None:
                continue
            r = levels[j][node] - 1 + q
            placed.append((r, Transfer(parent, node, chunk)))
            total_rounds = max(total_rounds, r + 1)
    rounds: list[list[Transfer]] = [[] for _ in range(total_rounds)]
    for r, t in placed:
        rounds[r].append(t)
    return Schedule(
        rounds=[tuple(r) for r in rounds],
        chunk_sizes=sizes,
        algorithm="msbt-broadcast",
        meta={
            "port_model": PortModel.ALL_PORT.value,
            "source": graph.source,
            "predicted_rounds": ceil(n_packets / n) + n,
        },
    )
