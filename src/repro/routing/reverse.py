"""Reverse operations: gather (all-to-one personalized) and reduce.

The paper (§1, §4) treats these as the mirror images of scatter and
broadcast: running a distribution schedule backwards collects instead.

* **gather** — exactly a reversed scatter schedule: every transfer
  flips direction and the rounds play backwards, so each node's message
  climbs its tree path to the root with identical step counts and link
  loads (transposed).
* **reduce** — the combining mirror of an SBT broadcast.  Payload
  *shrinks* upward (each hop carries one combined partial of the
  message size), so it is generated directly rather than by reversal:
  dimensions are folded in ascending order (recursive halving) under
  the one-port models, or pipelined up the tree per packet under the
  all-port model.  A chunk ``("acc", v, p)`` stands for packet ``p`` of
  the partial result combined over the SBT subtree rooted at ``v``.
"""

from __future__ import annotations

from repro.cache import cached_tree, memoize_schedule
from repro.routing.common import broadcast_chunks, validate_message_args
from repro.sim.ports import PortModel
from repro.sim.schedule import Chunk, Schedule, Transfer
from repro.topology.hypercube import Hypercube
from repro.trees.sbt import SpanningBinomialTree

__all__ = [
    "gather_from_scatter",
    "sbt_reduce_schedule",
    "tree_reduce_schedule",
    "tree_reduce_initial_holdings",
    "reduce_initial_holdings",
    "reduce_combine_rule",
    "ACC",
    "DONE",
]

#: zero-size marker chunk: "node v's subtree is fully combined into the
#: partial travelling with it" — encodes the combining dependency in
#: the chunk-causality model without distorting transfer sizes.
DONE = "done"

#: chunk tag for combined partial results
ACC = "acc"


def gather_from_scatter(scatter_schedule: Schedule) -> Schedule:
    """The gather schedule mirroring a scatter schedule.

    Initial holdings for running it: every node holds its own pieces
    ``("m", node, p)``; the root ends up holding all of them.
    """
    g = scatter_schedule.reversed()
    g.algorithm = scatter_schedule.algorithm.replace("scatter", "gather")
    return g


@memoize_schedule()
def sbt_reduce_schedule(
    cube: Hypercube,
    root: int,
    message_elems: int,
    packet_elems: int,
    port_model: PortModel,
) -> Schedule:
    """Reduce ``message_elems`` from all nodes to ``root`` over the SBT.

    Every node contributes an ``M``-element operand; combining is
    elementwise, so every tree edge carries exactly ``M`` elements
    regardless of subtree size.  Initial holdings for running the
    schedule: node ``v`` holds ``("acc", v, p)`` for all packets ``p``
    (its own operand, i.e. the partial combined over the leaf set
    ``{v}``).  The root ends holding ``("acc", root ^ 2^j, p)`` for all
    its children — the fully combined operand pieces.
    """
    cube.check_node(root)
    validate_message_args(message_elems, packet_elems)
    packet_sizes = broadcast_chunks(message_elems, packet_elems)
    n_packets = len(packet_sizes)
    n = cube.dimension
    tree = cached_tree(SpanningBinomialTree, cube, root)

    sizes: dict[Chunk, int] = {}
    for node in cube.nodes():
        for p in range(n_packets):
            sizes[(ACC, node, p)] = packet_sizes[("b", p)]

    if port_model is PortModel.ALL_PORT:
        # Pipelined: a node at level l sends its combined packet p to
        # its parent in round (n - l) + p — its children (level l + 1)
        # sent packet p one round earlier, and the deepest leaves start
        # at round 0.
        total_rounds = n + n_packets - 1
        rounds: list[list[Transfer]] = [[] for _ in range(total_rounds)]
        for node in cube.nodes():
            parent = tree.parent(node)
            if parent is None:
                continue
            level = tree.level(node)
            for p in range(n_packets):
                rounds[(n - level) + p].append(
                    Transfer(node, parent, frozenset({(ACC, node, p)}))
                )
        schedule_rounds = [tuple(r) for r in rounds]
    else:
        # Recursive folding of dimensions in descending order — the
        # exact mirror of the one-port SBT broadcast.  In step s (dim
        # d = n-1-s) the nodes whose relative address has highest bit d
        # send their accumulated partial to their SBT parent (strip the
        # highest bit); they have already combined everything from
        # their own subtrees in earlier steps.
        schedule_rounds = []
        for s in range(n):
            d = n - 1 - s
            senders_rel = range(1 << d, 1 << (d + 1))
            for p in range(n_packets):
                schedule_rounds.append(
                    tuple(
                        Transfer(
                            root ^ c,
                            root ^ (c ^ (1 << d)),
                            frozenset({(ACC, root ^ c, p)}),
                        )
                        for c in senders_rel
                    )
                )

    return Schedule(
        rounds=schedule_rounds,
        chunk_sizes=sizes,
        algorithm="sbt-reduce",
        meta={
            "port_model": port_model.value,
            "root": root,
            "message_elems": message_elems,
            "packet_elems": packet_elems,
        },
    )


@memoize_schedule()
def tree_reduce_schedule(
    tree,
    message_elems: int,
    packet_elems: int,
    port_model: PortModel,
) -> Schedule:
    """Reduce to ``tree.root`` along an *arbitrary* spanning tree.

    Generic counterpart of :func:`sbt_reduce_schedule` (which keeps its
    closed-form step structure): every node sends its combined partial
    (``M`` elements as ``ceil(M/B)`` packets) to its parent once all of
    its children have reported.  The combining dependency — invisible
    to the engines' chunk-causality model, since a node "holds" its own
    partial from the start — is encoded with zero-size ``("done", v,
    p)`` marker chunks that children deliver alongside their payloads;
    greedy list scheduling then packs the upward sweep under the port
    model.

    Initial holdings: :func:`tree_reduce_initial_holdings`.
    """
    from repro.routing.scheduler import list_schedule

    validate_message_args(message_elems, packet_elems)
    packet_sizes = broadcast_chunks(message_elems, packet_elems)
    n_packets = len(packet_sizes)
    cube = tree.cube

    sizes: dict[Chunk, int] = {}
    for node in cube.nodes():
        for p in range(n_packets):
            sizes[(ACC, node, p)] = packet_sizes[("b", p)]
            sizes[(DONE, node, p)] = 0

    # deepest levels first: children report before parents need to send
    order = sorted(
        (v for v in cube.nodes() if v != tree.root),
        key=lambda v: -tree.levels[v],
    )
    transfers = []
    for v in order:
        parent = tree.parents_map[v]
        assert parent is not None
        members = tree.subtree_of(v)
        for p in range(n_packets):
            chunks = {(ACC, v, p)} | {(DONE, u, p) for u in members}
            transfers.append(Transfer(v, parent, frozenset(chunks)))

    return list_schedule(
        cube,
        transfers,
        sizes,
        port_model,
        tree_reduce_initial_holdings(tree, message_elems, packet_elems),
        algorithm=f"{type(tree).__name__.lower()}-reduce",
        meta={
            "port_model": port_model.value,
            "root": tree.root,
            "message_elems": message_elems,
            "packet_elems": packet_elems,
        },
    )


def tree_reduce_initial_holdings(
    tree, message_elems: int, packet_elems: int
) -> dict[int, set[Chunk]]:
    """Initial holdings for :func:`tree_reduce_schedule`."""
    n_packets = len(broadcast_chunks(message_elems, packet_elems))
    return {
        node: {(ACC, node, p) for p in range(n_packets)}
        | {(DONE, node, p) for p in range(n_packets)}
        for node in tree.cube.nodes()
    }


def reduce_initial_holdings(
    cube: Hypercube, message_elems: int, packet_elems: int
) -> dict[int, set[Chunk]]:
    """Initial holdings for :func:`sbt_reduce_schedule`."""
    n_packets = len(broadcast_chunks(message_elems, packet_elems))
    return {
        node: {(ACC, node, p) for p in range(n_packets)} for node in cube.nodes()
    }


def reduce_combine_rule(
    cube: Hypercube, root: int
) -> dict[int, list[int]]:
    """Which partials each node combines: node -> SBT children (at root).

    Combination is associative/commutative elementwise; node ``v``'s
    outgoing partial ``("acc", v, p)`` semantically equals its own
    operand combined with the partials of its SBT children.  The
    simulation tracks only chunk movement; this map lets tests verify
    the combining dataflow is complete.
    """
    tree = cached_tree(SpanningBinomialTree, cube, root)
    return {node: list(tree.children(node)) for node in cube.nodes()}
