"""All-to-all extensions (the companion report [8], referenced in §1).

The paper notes that lower-bound algorithms for broadcasting from every
node and for personalized communication from every node follow from
running ``N`` translated spanning trees concurrently.  This module
implements the standard dimension-exchange realizations, which achieve
the same step counts with far simpler bookkeeping:

* **all-to-all broadcast (allgather)** — ``log N`` exchange steps; in
  step ``t`` every node swaps everything it has gathered so far with
  its neighbour across dimension ``t`` (payload doubles each step).
* **all-to-all personalized (total exchange)** — ``log N`` exchange
  steps; in step ``t`` every node forwards across dimension ``t`` the
  messages for all destinations whose bit ``t`` differs from its own
  (a constant ``N/2 * M`` elements per step — the transpose pattern of
  §1's matrix examples).

Both schedules use every one of the ``N log N`` directed edges in every
step, i.e. full bandwidth, and both are full-duplex (every node sends
and receives exactly one packet per step); the half-duplex variants
serialize each step into two.
"""

from __future__ import annotations

from repro.bits.ops import bit
from repro.cache import cached_tree, memoize_schedule
from repro.sim.ports import PortModel
from repro.sim.schedule import Chunk, Schedule, Transfer
from repro.topology.hypercube import Hypercube

__all__ = [
    "allgather_schedule",
    "alltoall_personalized_schedule",
    "alltoall_bst_schedule",
    "allgather_initial_holdings",
    "alltoall_initial_holdings",
    "GATHER_TAG",
    "EXCHANGE_TAG",
]

GATHER_TAG = "g"
EXCHANGE_TAG = "x"


@memoize_schedule()
def allgather_schedule(
    cube: Hypercube,
    message_elems: int,
    port_model: PortModel,
) -> Schedule:
    """All-to-all broadcast by recursive doubling.

    Every node contributes ``message_elems`` and ends holding all ``N``
    contributions.  Chunk ``("g", origin)`` is node ``origin``'s
    contribution.  Full-duplex (and all-port) runs take ``log N``
    steps; half-duplex doubles each step.
    """
    if message_elems < 1:
        raise ValueError(f"message size must be >= 1 element, got {message_elems}")
    n = cube.dimension
    sizes: dict[Chunk, int] = {
        (GATHER_TAG, v): message_elems for v in cube.nodes()
    }
    rounds: list[tuple[Transfer, ...]] = []
    held = {v: frozenset({(GATHER_TAG, v)}) for v in cube.nodes()}
    for t in range(n):
        step: list[Transfer] = []
        for v in cube.nodes():
            step.append(Transfer(v, v ^ (1 << t), held[v]))
        if port_model.half_duplex:
            rounds.append(tuple(s for s in step if bit(s.src, t) == 0))
            rounds.append(tuple(s for s in step if bit(s.src, t) == 1))
        else:
            rounds.append(tuple(step))
        held = {v: held[v] | held[v ^ (1 << t)] for v in cube.nodes()}
    return Schedule(
        rounds=rounds,
        chunk_sizes=sizes,
        algorithm="allgather",
        meta={"port_model": port_model.value, "message_elems": message_elems},
    )


def allgather_initial_holdings(cube: Hypercube) -> dict[int, set[Chunk]]:
    """Initial holdings for :func:`allgather_schedule`."""
    return {v: {(GATHER_TAG, v)} for v in cube.nodes()}


@memoize_schedule()
def alltoall_personalized_schedule(
    cube: Hypercube,
    message_elems: int,
    port_model: PortModel,
) -> Schedule:
    """Total exchange by dimension folding.

    Every node holds a distinct ``message_elems`` message for every
    other node (chunk ``("x", src, dest)``); after ``log N`` full-duplex
    steps each destination holds all messages addressed to it.  Step
    ``t`` moves every chunk whose destination differs from its current
    holder in bit ``t``.
    """
    if message_elems < 1:
        raise ValueError(f"message size must be >= 1 element, got {message_elems}")
    n = cube.dimension
    sizes: dict[Chunk, int] = {}
    location: dict[Chunk, int] = {}
    for s in cube.nodes():
        for d in cube.nodes():
            if s == d:
                continue
            c = (EXCHANGE_TAG, s, d)
            sizes[c] = message_elems
            location[c] = s
    rounds: list[tuple[Transfer, ...]] = []
    for t in range(n):
        payload: dict[int, set[Chunk]] = {}
        for c, holder in location.items():
            dest = c[2]
            if bit(dest, t) != bit(holder, t):
                payload.setdefault(holder, set()).add(c)
        step = [
            Transfer(v, v ^ (1 << t), frozenset(chunks))
            for v, chunks in sorted(payload.items())
        ]
        if port_model.half_duplex:
            rounds.append(tuple(s for s in step if bit(s.src, t) == 0))
            rounds.append(tuple(s for s in step if bit(s.src, t) == 1))
        else:
            rounds.append(tuple(step))
        for v, chunks in payload.items():
            for c in chunks:
                location[c] = v ^ (1 << t)
    return Schedule(
        rounds=rounds,
        chunk_sizes=sizes,
        algorithm="alltoall-personalized",
        meta={"port_model": port_model.value, "message_elems": message_elems},
    )


def alltoall_initial_holdings(cube: Hypercube) -> dict[int, set[Chunk]]:
    """Initial holdings for :func:`alltoall_personalized_schedule`."""
    return {
        s: {(EXCHANGE_TAG, s, d) for d in cube.nodes() if d != s}
        for s in cube.nodes()
    }


@memoize_schedule()
def alltoall_bst_schedule(
    cube: Hypercube,
    message_elems: int,
    packet_elems: int | None = None,
) -> Schedule:
    """Total exchange over ``N`` concurrently running translated BSTs.

    The construction §1 attributes to the companion report [8]: every
    source ``s`` scatters its messages along the BST rooted at ``s``
    (the XOR-translate of the BST at 0), all sources level-by-level and
    concurrently.  Each message travels a minimal path, and because the
    BSTs load all ``N log N`` directed links almost uniformly in every
    step — instead of the dimension-exchange algorithm's one dimension
    (a ``1/log N`` fraction of the links) per step — the bandwidth
    term improves by a factor of about ``log N``.

    Valid under the all-port model; shares
    :func:`alltoall_initial_holdings`.

    Args:
        cube: host cube.
        message_elems: elements per (source, destination) message.
        packet_elems: optional maximum packet size; bundles beyond it
            are split into micro-rounds.
    """
    if message_elems < 1:
        raise ValueError(f"message size must be >= 1 element, got {message_elems}")
    from repro.routing.scheduler import split_oversized
    from repro.sim.schedule import Transfer as _Transfer
    from repro.trees.bst import BalancedSpanningTree

    base_tree = cached_tree(BalancedSpanningTree, cube, 0)
    height = base_tree.height
    sizes: dict[Chunk, int] = {}
    bundles: dict[tuple[int, int, int], set[Chunk]] = {}
    total_steps = 0

    # Path of destination (relative) c in the BST at 0, as an edge list;
    # translate by s for the tree rooted at s.
    rel_paths: dict[int, list[tuple[int, int]]] = {}
    for c in cube.nodes():
        if c == 0:
            continue
        path = [c]
        node = c
        while node != 0:
            node = base_tree.parents_map[node]  # type: ignore[assignment]
            path.append(node)
        path.reverse()
        rel_paths[c] = list(zip(path, path[1:]))

    for s in cube.nodes():
        for c, edges in rel_paths.items():
            d = s ^ c
            chunk = (EXCHANGE_TAG, s, d)
            sizes[chunk] = message_elems
            depart = height - len(edges)
            for h, (a, b) in enumerate(edges):
                step = depart + h
                bundles.setdefault((step, a ^ s, b ^ s), set()).add(chunk)
                total_steps = max(total_steps, step + 1)

    rounds: list[list[Transfer]] = [[] for _ in range(total_steps)]
    for (step, u, v), chunks in sorted(bundles.items(), key=lambda kv: kv[0]):
        rounds[step].append(_Transfer(u, v, frozenset(chunks)))
    schedule = Schedule(
        rounds=[tuple(r) for r in rounds],
        chunk_sizes=sizes,
        algorithm="alltoall-bst",
        meta={
            "port_model": PortModel.ALL_PORT.value,
            "message_elems": message_elems,
        },
    )
    if packet_elems is not None:
        schedule = split_oversized(schedule, packet_elems).compact()
    return schedule
