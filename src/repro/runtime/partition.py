"""Subcube partition map for the sharded runtime.

A cube of dimension ``n`` is split across ``K = 2**k`` workers by the
**high** ``k`` address bits: worker ``w`` owns the subcube
``[w << (n-k), (w+1) << (n-k))``.  High-bit sharding means the low
``n - k`` dimensions — the bulk of every spanning tree's edges — stay
inside one worker process, while only the ``k`` high dimensions cross
the partition.  Each node therefore has exactly ``k`` cross-shard
neighbors, and every cross-shard link connects shard ``w`` to shard
``w ^ (1 << j)`` for some ``j < k`` — the hypercube structure recurses
onto the shard graph itself.
"""

from __future__ import annotations

import os

__all__ = ["PartitionMap", "resolve_workers"]


class PartitionMap:
    """Address arithmetic for a ``2**k``-way subcube partition."""

    __slots__ = ("dimension", "workers", "shard_bits", "shift")

    def __init__(self, dimension: int, workers: int):
        if dimension < 0:
            raise ValueError(f"dimension must be >= 0, got {dimension}")
        if workers < 1 or workers & (workers - 1):
            raise ValueError(
                f"workers must be a power of two >= 1, got {workers}"
            )
        if workers > (1 << dimension):
            raise ValueError(
                f"workers={workers} exceeds the {1 << dimension} nodes "
                f"of a dimension-{dimension} cube"
            )
        self.dimension = dimension
        self.workers = workers
        #: number of high address bits that select the shard
        self.shard_bits = workers.bit_length() - 1
        #: number of low (intra-shard) dimensions
        self.shift = dimension - self.shard_bits

    def shard_of(self, node: int) -> int:
        """The worker owning ``node`` (its high address bits)."""
        return node >> self.shift

    def nodes_of(self, shard: int) -> range:
        """The contiguous subcube of addresses owned by ``shard``."""
        if not 0 <= shard < self.workers:
            raise ValueError(f"shard {shard} out of range [0, {self.workers})")
        return range(shard << self.shift, (shard + 1) << self.shift)

    def is_cross(self, u: int, v: int) -> bool:
        """True when the directed link ``u -> v`` crosses shards."""
        return (u >> self.shift) != (v >> self.shift)

    def cross_dims(self) -> range:
        """The cube dimensions whose links cross the partition."""
        return range(self.shift, self.dimension)

    def cross_links(self):
        """All directed cross-partition links ``(u, v)``, sorted."""
        for u in range(1 << self.dimension):
            for j in self.cross_dims():
                yield u, u ^ (1 << j)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PartitionMap(dimension={self.dimension}, "
            f"workers={self.workers})"
        )


def resolve_workers(dimension: int, workers: int | None) -> int:
    """Normalize a ``workers=`` request for a dimension-``n`` cube.

    ``None`` or ``1`` selects the single-process runtime; ``0`` means
    "use the machine": the largest power of two no larger than either
    the CPU count or the node count.  Anything else must be a power of
    two between 1 and ``2**n`` — shards are subcubes, so fractional
    splits do not exist.
    """
    if workers is None:
        return 1
    if workers == 0:
        cap = min(os.cpu_count() or 1, 1 << dimension)
        return 1 << (cap.bit_length() - 1)
    PartitionMap(dimension, workers)  # validates
    return workers
