"""Deterministic framing for cross-partition IPC.

The sharded runtime ships clock horizons, cross-partition sends,
channel state, and admission results between worker processes over
``multiprocessing`` pipes.  Pickle would work, but its output is
neither canonical (hash-randomized set iteration order leaks into the
stream) nor safe to evolve; this module is a tiny tag-length-value
codec whose output is *byte-identical for equal values in every
process*, regardless of start method or ``PYTHONHASHSEED``:

* sets and frozensets are encoded in sorted element order (falling
  back to ``repr`` ordering for heterogeneous elements), so the chunk
  sets ``{("b", 3), ("m", 5, 0)}`` carried by packets serialize
  canonically;
* ints are sign + magnitude with explicit length (arbitrary
  precision); floats are the raw IEEE-754 big-endian word, so virtual
  times survive the trip bit-exactly.

A *frame* is ``(kind, tick, payload)`` — protocol message kind, clock
round number, and an arbitrary payload value — prefixed with a magic
byte.  Pipes preserve message boundaries (``send_bytes``/
``recv_bytes``), so frames carry no outer length header.
"""

from __future__ import annotations

import struct
from typing import Any

__all__ = ["WireError", "encode", "decode", "encode_frame", "decode_frame"]

_MAGIC = 0xAE

# value tags
_NONE = 0x01
_TRUE = 0x02
_FALSE = 0x03
_INT_POS = 0x04
_INT_NEG = 0x05
_FLOAT = 0x06
_STR = 0x07
_BYTES = 0x08
_TUPLE = 0x09
_LIST = 0x0A
_DICT = 0x0B
_FROZENSET = 0x0C
_SET = 0x0D


class WireError(ValueError):
    """Raised on malformed or truncated wire data."""


def _pack_len(out: bytearray, n: int) -> None:
    # unsigned LEB128 — compact for the small lengths that dominate
    while True:
        b = n & 0x7F
        n >>= 7
        if n:
            out.append(b | 0x80)
        else:
            out.append(b)
            return


def _unpack_len(data: bytes, pos: int) -> tuple[int, int]:
    n = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise WireError("truncated length")
        b = data[pos]
        pos += 1
        n |= (b & 0x7F) << shift
        if not b & 0x80:
            return n, pos
        shift += 7


def _sorted_elems(value: frozenset | set) -> list:
    try:
        return sorted(value)
    except TypeError:
        return sorted(value, key=repr)


def _encode_value(out: bytearray, value: Any) -> None:
    if value is None:
        out.append(_NONE)
    elif value is True:
        out.append(_TRUE)
    elif value is False:
        out.append(_FALSE)
    elif type(value) is int:
        mag = value if value >= 0 else -value
        raw = mag.to_bytes((mag.bit_length() + 7) // 8 or 1, "big")
        out.append(_INT_POS if value >= 0 else _INT_NEG)
        _pack_len(out, len(raw))
        out += raw
    elif type(value) is float:
        out.append(_FLOAT)
        out += struct.pack(">d", value)
    elif type(value) is str:
        raw = value.encode("utf-8")
        out.append(_STR)
        _pack_len(out, len(raw))
        out += raw
    elif type(value) is bytes:
        out.append(_BYTES)
        _pack_len(out, len(value))
        out += value
    elif type(value) is tuple:
        out.append(_TUPLE)
        _pack_len(out, len(value))
        for item in value:
            _encode_value(out, item)
    elif type(value) is list:
        out.append(_LIST)
        _pack_len(out, len(value))
        for item in value:
            _encode_value(out, item)
    elif type(value) is dict:
        out.append(_DICT)
        _pack_len(out, len(value))
        for k, v in value.items():
            _encode_value(out, k)
            _encode_value(out, v)
    elif type(value) is frozenset:
        out.append(_FROZENSET)
        _pack_len(out, len(value))
        for item in _sorted_elems(value):
            _encode_value(out, item)
    elif type(value) is set:
        out.append(_SET)
        _pack_len(out, len(value))
        for item in _sorted_elems(value):
            _encode_value(out, item)
    else:
        raise WireError(f"unencodable type {type(value).__name__!r}: {value!r}")


def _decode_value(data: bytes, pos: int) -> tuple[Any, int]:
    if pos >= len(data):
        raise WireError("truncated value")
    tag = data[pos]
    pos += 1
    if tag == _NONE:
        return None, pos
    if tag == _TRUE:
        return True, pos
    if tag == _FALSE:
        return False, pos
    if tag in (_INT_POS, _INT_NEG):
        n, pos = _unpack_len(data, pos)
        if pos + n > len(data):
            raise WireError("truncated int")
        mag = int.from_bytes(data[pos : pos + n], "big")
        return (mag if tag == _INT_POS else -mag), pos + n
    if tag == _FLOAT:
        if pos + 8 > len(data):
            raise WireError("truncated float")
        return struct.unpack(">d", data[pos : pos + 8])[0], pos + 8
    if tag == _STR:
        n, pos = _unpack_len(data, pos)
        if pos + n > len(data):
            raise WireError("truncated str")
        return data[pos : pos + n].decode("utf-8"), pos + n
    if tag == _BYTES:
        n, pos = _unpack_len(data, pos)
        if pos + n > len(data):
            raise WireError("truncated bytes")
        return bytes(data[pos : pos + n]), pos + n
    if tag in (_TUPLE, _LIST, _FROZENSET, _SET):
        n, pos = _unpack_len(data, pos)
        items = []
        for _ in range(n):
            item, pos = _decode_value(data, pos)
            items.append(item)
        if tag == _TUPLE:
            return tuple(items), pos
        if tag == _LIST:
            return items, pos
        if tag == _FROZENSET:
            return frozenset(items), pos
        return set(items), pos
    if tag == _DICT:
        n, pos = _unpack_len(data, pos)
        d = {}
        for _ in range(n):
            k, pos = _decode_value(data, pos)
            v, pos = _decode_value(data, pos)
            d[k] = v
        return d, pos
    raise WireError(f"unknown tag 0x{tag:02x}")


def encode(value: Any) -> bytes:
    """Canonical bytes for ``value`` (identical across processes)."""
    out = bytearray()
    _encode_value(out, value)
    return bytes(out)


def decode(data: bytes) -> Any:
    """Inverse of :func:`encode`; rejects trailing garbage."""
    value, pos = _decode_value(data, 0)
    if pos != len(data):
        raise WireError(f"{len(data) - pos} trailing bytes")
    return value


def encode_frame(kind: int, tick: int, payload: Any) -> bytes:
    """One protocol frame: magic byte + (kind, tick, payload)."""
    out = bytearray([_MAGIC])
    _encode_value(out, kind)
    _encode_value(out, tick)
    _encode_value(out, payload)
    return bytes(out)


def decode_frame(data: bytes) -> tuple[int, int, Any]:
    """Inverse of :func:`encode_frame`."""
    if not data or data[0] != _MAGIC:
        raise WireError("bad frame magic")
    kind, pos = _decode_value(data, 1)
    tick, pos = _decode_value(data, pos)
    payload, pos = _decode_value(data, pos)
    if pos != len(data):
        raise WireError(f"{len(data) - pos} trailing bytes in frame")
    if type(kind) is not int or type(tick) is not int:
        raise WireError("frame kind/tick must be ints")
    return kind, tick, payload
