"""Node channels and port-model admission for the runtime kernel.

Mirrors the channel arithmetic of :mod:`repro.sim.engine` exactly —
same pruning rule, same overlap-release constraint — so that a runtime
execution and an engine replay of the same transfers occupy identical
time windows.  The admission object realizes the paper's port models as
per-node capacity:

* ``ONE_PORT_HALF`` — one channel per node, shared by sends and
  receives (a transfer occupies it at both endpoints);
* ``ONE_PORT_FULL`` — independent send and receive channels;
* ``ALL_PORT`` — no node channels at all; only the directed link
  serializes.

Consecutive actions of one channel on *different* ports may overlap by
the machine's ``overlap`` fraction (§5.2's measured ~20 % on the iPSC).
"""

from __future__ import annotations

from repro.sim.ports import PortModel

__all__ = ["Channel", "PortAdmission"]

_EPS = 1e-12

#: A send's priority key, as submitted to the kernel (epoch-prefixed).
Key = tuple


class Channel:
    """A serialized node channel with cross-port overlap.

    A new action on port ``p`` may start once it is past the end of
    every live action on ``p`` and past the overlap-release point
    ``start + (1 - overlap) * duration`` of every live action on other
    ports.  Occupations prune actions that ended before the new start,
    so only the live overlap window is retained.
    """

    __slots__ = ("_overlap", "_actions", "blocked")

    def __init__(self, overlap: float):
        self._overlap = overlap
        self._actions: list[tuple[int, float, float]] = []  # (port, start, end)
        #: admitted-but-deferred sends waiting on this channel, re-examined
        #: by the kernel's dirty-channel sweep
        self.blocked: set[Key] = set()

    def earliest_start(self, port: int, now: float) -> float:
        t = now
        for p, s, e in self._actions:
            if p == port:
                if e > t:
                    t = e
            else:
                r = s + (1.0 - self._overlap) * (e - s)
                if r > t:
                    t = r
        return t

    def occupy(self, port: int, start: float, end: float) -> None:
        acts = self._actions
        if acts:
            self._actions = acts = [a for a in acts if a[2] > start + _EPS]
        acts.append((port, start, end))


class PortAdmission:
    """Per-node channel capacity plus per-link serialization.

    The kernel asks :meth:`earliest_start` for the first instant a
    transfer may begin and :meth:`occupy` to commit it.  Channels are
    created lazily per node, exactly like the engine's channel maps, so
    untouched nodes cost nothing.
    """

    def __init__(self, port_model: PortModel, overlap: float):
        self._half = port_model.half_duplex
        self._allport = port_model is PortModel.ALL_PORT
        self._overlap = overlap
        self._send: dict[int, Channel] = {}
        self._recv: dict[int, Channel] = {}
        self.link_free: dict[tuple[int, int], float] = {}

    @property
    def all_port(self) -> bool:
        return self._allport

    def send_channel(self, node: int) -> Channel:
        ch = self._send.get(node)
        if ch is None:
            ch = Channel(self._overlap)
            self._send[node] = ch
            if self._half:
                self._recv[node] = ch  # one transceiver for both directions
        return ch

    def recv_channel(self, node: int) -> Channel:
        ch = self._recv.get(node)
        if ch is None:
            if self._half:
                ch = self.send_channel(node)
            else:
                ch = Channel(self._overlap)
                self._recv[node] = ch
        return ch

    def earliest_start(self, src: int, dst: int, port: int, now: float) -> float:
        start = now
        if not self._allport:
            ch = self._send.get(src)
            if ch is None:
                ch = self.send_channel(src)
            s = ch.earliest_start(port, now)
            if s > start:
                start = s
            ch = self._recv.get(dst)
            if ch is None:
                ch = self.recv_channel(dst)
            s = ch.earliest_start(port, now)
            if s > start:
                start = s
        lf = self.link_free.get((src, dst))
        if lf is not None and lf > start:
            start = lf
        return start

    def block(self, key: Key, src: int, dst: int) -> None:
        """Register a deferred send for the dirty-channel sweep."""
        if not self._allport:
            ch = self._send.get(src)
            if ch is None:
                ch = self.send_channel(src)
            ch.blocked.add(key)
            ch = self._recv.get(dst)
            if ch is None:
                ch = self.recv_channel(dst)
            ch.blocked.add(key)

    def occupy(
        self, key: Key, src: int, dst: int, port: int, start: float, end: float
    ) -> list[Channel]:
        """Commit ``[start, end)``; returns the channels dirtied."""
        self.link_free[(src, dst)] = end
        if self._allport:
            return []
        sch = self.send_channel(src)
        rch = self.recv_channel(dst)
        sch.occupy(port, start, end)
        rch.occupy(port, start, end)
        sch.blocked.discard(key)
        rch.blocked.discard(key)
        return [sch, rch]
