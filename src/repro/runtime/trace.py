"""Structured per-packet traces of runtime executions.

Every admitted transfer, fault hit, and receive-timeout becomes one
event record.  Two export formats:

* **JSONL** — one JSON object per line; trivially greppable and
  streamable into pandas;
* **Chrome trace_event** — load the file at ``chrome://tracing`` (or
  Perfetto) to see the collective as a timeline: one process row per
  node, one thread row per port, one complete-event slice per
  transfer.  Virtual seconds are mapped to microseconds, the format's
  native unit.

The trace complements :class:`repro.sim.trace.LinkStats` (which the
runtime also maintains, per sending actor): stats aggregate, the trace
keeps per-packet order and timing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

__all__ = [
    "TraceEvent",
    "RuntimeTrace",
    "merge_shard_traces",
    "shard_chrome_events",
    "write_shard_chrome",
]


@dataclass(frozen=True)
class TraceEvent:
    """One runtime occurrence.

    ``kind`` is ``"transfer"``, ``"fault"``, or ``"timeout"``; unused
    fields are ``None``.
    """

    kind: str
    time: float
    src: int | None = None
    dst: int | None = None
    port: int | None = None
    end: float | None = None
    elems: int | None = None
    chunks: tuple = ()
    detail: tuple = ()

    def to_dict(self) -> dict:
        d: dict = {"kind": self.kind, "time": self.time}
        if self.src is not None:
            d["src"] = self.src
        if self.dst is not None:
            d["dst"] = self.dst
        if self.port is not None:
            d["port"] = self.port
        if self.end is not None:
            d["end"] = self.end
        if self.elems is not None:
            d["elems"] = self.elems
        if self.chunks:
            d["chunks"] = [repr(c) for c in self.chunks]
        if self.detail:
            d["detail"] = list(self.detail)
        return d


@dataclass
class RuntimeTrace:
    """Ordered event log of one runtime execution."""

    events: list[TraceEvent] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    # -- recording (called by the kernel) -----------------------------

    def add_transfer(
        self,
        src: int,
        dst: int,
        port: int,
        start: float,
        end: float,
        elems: int,
        chunks: frozenset,
    ) -> None:
        self.events.append(
            TraceEvent(
                kind="transfer",
                time=start,
                src=src,
                dst=dst,
                port=port,
                end=end,
                elems=elems,
                chunks=tuple(sorted(chunks, key=repr)),
            )
        )

    def add_fault(
        self, src: int, dst: int, time: float, kind: str, subject
    ) -> None:
        self.events.append(
            TraceEvent(
                kind="fault",
                time=time,
                src=src,
                dst=dst,
                detail=(kind, repr(subject)),
            )
        )

    def add_timeout(self, time: float, nodes: list[int]) -> None:
        self.events.append(
            TraceEvent(kind="timeout", time=time, detail=tuple(nodes))
        )

    # -- views ---------------------------------------------------------

    def transfers(self) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == "transfer"]

    # -- exports -------------------------------------------------------

    def to_jsonl(self) -> str:
        """One compact JSON object per event, in recording order."""
        return "\n".join(
            json.dumps(e.to_dict(), separators=(",", ":"))
            for e in self.events
        )

    def write_jsonl(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_jsonl() + "\n")
        return path

    def chrome_events(self, scale: float = 1e6) -> list[dict]:
        """``trace_event`` records: pid = sending node, tid = port.

        ``scale`` converts virtual seconds to the format's
        microseconds; transfers become complete ("X") slices, faults
        and timeouts instant ("i") markers.
        """
        out: list[dict] = []
        for e in self.events:
            if e.kind == "transfer":
                out.append(
                    {
                        "name": f"{e.src}->{e.dst}",
                        "cat": "transfer",
                        "ph": "X",
                        "ts": e.time * scale,
                        "dur": (e.end - e.time) * scale,
                        "pid": e.src,
                        "tid": e.port,
                        "args": {
                            "elems": e.elems,
                            "chunks": [repr(c) for c in e.chunks],
                        },
                    }
                )
            else:
                out.append(
                    {
                        "name": e.kind,
                        "cat": e.kind,
                        "ph": "i",
                        "s": "g",
                        "ts": e.time * scale,
                        "pid": e.src if e.src is not None else 0,
                        "tid": 0,
                        "args": {"detail": list(e.detail)},
                    }
                )
        return out

    def write_chrome(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(
            json.dumps({"traceEvents": self.chrome_events()})
        )
        return path


# ---------------------------------------------------------------------------
# multi-process (sharded) trace assembly
# ---------------------------------------------------------------------------


def merge_shard_traces(traces: dict[int, RuntimeTrace]) -> RuntimeTrace:
    """One :class:`RuntimeTrace` combining per-shard traces.

    Events are ordered by (time, src, dst) — each worker records its
    own events in local order, so a global recording order does not
    exist; time order is the meaningful merge.  The inputs are left
    untouched.
    """
    merged = RuntimeTrace()
    merged.events = sorted(
        (e for t in traces.values() for e in t.events),
        key=lambda e: (e.time, e.src if e.src is not None else -1,
                       e.dst if e.dst is not None else -1),
    )
    return merged


def shard_chrome_events(
    traces: dict[int, RuntimeTrace], scale: float = 1e6
) -> list[dict]:
    """Chrome ``trace_event`` records with one **pid lane per worker**.

    Where the single-process export maps pid = node, a sharded run maps
    pid = shard (so each worker process gets its own named lane in the
    viewer) and tid = the node within the shard; transfer slices keep
    the port in ``args``.  Process-name metadata events label each lane
    ``shard <w>``.
    """
    out: list[dict] = []
    for shard in sorted(traces):
        out.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": shard,
                "tid": 0,
                "args": {"name": f"shard {shard}"},
            }
        )
        for e in traces[shard].events:
            if e.kind == "transfer":
                out.append(
                    {
                        "name": f"{e.src}->{e.dst}",
                        "cat": "transfer",
                        "ph": "X",
                        "ts": e.time * scale,
                        "dur": (e.end - e.time) * scale,
                        "pid": shard,
                        "tid": e.src,
                        "args": {
                            "port": e.port,
                            "elems": e.elems,
                            "chunks": [repr(c) for c in e.chunks],
                        },
                    }
                )
            else:
                out.append(
                    {
                        "name": e.kind,
                        "cat": e.kind,
                        "ph": "i",
                        "s": "p",
                        "ts": e.time * scale,
                        "pid": shard,
                        "tid": e.src if e.src is not None else 0,
                        "args": {"detail": list(e.detail)},
                    }
                )
    return out


def write_shard_chrome(
    traces: dict[int, RuntimeTrace], path: str | Path
) -> Path:
    """Write the merged multi-process Chrome trace file."""
    path = Path(path)
    path.write_text(json.dumps({"traceEvents": shard_chrome_events(traces)}))
    return path
