"""The runtime's virtual clock: event heaps with instant coalescing.

This is the time-advance mechanism of :mod:`repro.sim.engine` lifted
out of the engine loop and generalized from static transfer indices to
dynamic priority keys (see :mod:`repro.runtime.rules`).  Three event
kinds share one heap:

* **pure wakes** — transfer completions and overlap-release points;
  they never trigger work themselves but are valid instants for time
  to land on;
* **deliveries** — a completed transfer's payload reaching its
  destination actor; live events (the actor may submit new sends);
* **examinations** — a submitted send due for an admission attempt;
  live events, deduplicated per key by an earliest-pending marker.

All times within ``_EPS`` of each other form one *instant*; within an
instant, priority keys decide order, not the sub-epsilon float a
particular event happened to carry.  The engine's equivalence suite
(:mod:`repro.runtime.validate`) leans on this file reproducing the
engine's instant-representative selection bit-for-bit.
"""

from __future__ import annotations

import heapq

__all__ = ["VirtualClock", "WAKE", "DELIVERY", "EXAM"]

_EPS = 1e-12

WAKE, DELIVERY, EXAM = 0, 1, 2

#: sentinel key for wake/delivery entries; sorts before every real key
_NO_KEY: tuple = ()


class VirtualClock:
    """Event-heap clock with the engine's pass/instant semantics."""

    def __init__(self) -> None:
        self.now = 0.0
        self.cur_pass = 0
        self.cur_key: tuple = _NO_KEY
        # future events: (time, pass, kind, key)
        self._events: list[tuple[float, int, int, tuple]] = []
        # current-instant examinations: (pass, key, time)
        self._batch: list[tuple[int, tuple, float]] = []
        # earliest pending examination per key (None = none pending)
        self._scheduled: dict[tuple, float | None] = {}
        self._done: set[tuple] = set()
        #: deliveries due at the opened instant (count popped by advance)
        self.due_deliveries = 0

    # -- bookkeeping -------------------------------------------------

    def mark_done(self, key: tuple) -> None:
        self._done.add(key)
        self._scheduled[key] = None

    def is_done(self, key: tuple) -> bool:
        return key in self._done

    @property
    def batch_empty(self) -> bool:
        return not self._batch

    # -- pushes ------------------------------------------------------

    def push_wake(self, te: float) -> None:
        heapq.heappush(self._events, (te, 0, WAKE, _NO_KEY))

    def push_delivery(self, te: float) -> None:
        heapq.heappush(self._events, (te, 0, DELIVERY, _NO_KEY))

    def push_exam(self, key: tuple, te: float) -> None:
        """Request an examination of ``key`` at ``te`` (deduplicated)."""
        sc = self._scheduled.get(key)
        if sc is not None and sc <= te + _EPS:
            return  # an examination no later than te is already pending
        self._scheduled[key] = te
        if te <= self.now + _EPS:
            # Same-instant re-examination: keys at or before the cursor
            # wait for the next pass (the engine's rescan), later keys
            # are picked up in the current pass.
            p = self.cur_pass if key > self.cur_key else self.cur_pass + 1
            heapq.heappush(self._batch, (p, key, te))
        else:
            heapq.heappush(self._events, (te, 0, EXAM, key))

    def push_submission(self, key: tuple) -> None:
        """Enter a send submitted *at the current instant* (a delivery
        just enabled it).  The engine's analog is the waiter
        examination pushed at the supplying transfer's end time with
        pass 0 — so pass 0 here, not the same-instant cursor rule.
        """
        sc = self._scheduled.get(key)
        if sc is not None and sc <= self.now + _EPS:
            return
        self._scheduled[key] = self.now
        heapq.heappush(self._batch, (0, key, self.now))

    # -- time advance ------------------------------------------------

    def advance(self) -> bool:
        """Advance ``now`` to the next instant with a live event.

        Fills the batch with every examination due at that instant and
        counts deliveries due in :attr:`due_deliveries`.  Returns
        ``False`` when no live event remains (the caller decides
        whether that is completion, starvation, or deadlock).  Pure
        wakes never trigger work, but when a live event falls within
        ``_EPS`` of the nearest wake, the wake's time is the instant's
        representative — exactly the engine's rule.
        """
        self.due_deliveries = 0
        events = self._events
        cand = None  # latest unresolved pure-wake time below the live event
        while events:
            te, p, kind, key = heapq.heappop(events)
            if kind == DELIVERY:
                self.due_deliveries += 1
                break
            if kind == EXAM and not self.is_done(key):
                sc = self._scheduled.get(key)
                if sc is not None and sc >= te - _EPS:
                    break  # a live examination
            # Superseded examinations and pure wakes are still instants
            # the engine would have visited: keep as rep candidates.
            if te <= self.now + _EPS:
                continue  # coalesced into the previous instant
            if cand is None or te > cand + _EPS:
                cand = te
        else:
            return False
        rep = cand if (cand is not None and te <= cand + _EPS) else te
        if rep > self.now + _EPS:
            self.now = rep
        if kind == EXAM:
            heapq.heappush(self._batch, (p, key, te))
        # Pull in every other event due at this same instant.
        while events and events[0][0] <= self.now + _EPS:
            te2, p2, kind2, key2 = heapq.heappop(events)
            if kind2 == DELIVERY:
                self.due_deliveries += 1
                continue
            if kind2 != EXAM or self.is_done(key2):
                continue
            sc = self._scheduled.get(key2)
            if sc is None or sc < te2 - _EPS:
                continue
            heapq.heappush(self._batch, (p2, key2, te2))
        return True

    def pop_batch(self) -> tuple[tuple, float] | None:
        """Next live examination of the open instant, in (pass, key)
        order, advancing the cursor; ``None`` when the instant is
        drained."""
        entry = self.pop_batch_full()
        if entry is None:
            return None
        _, key, te = entry
        return key, te

    def pop_batch_full(self) -> tuple[int, tuple, float] | None:
        """Like :meth:`pop_batch` but keeps the pass number, which the
        sharded coordinator needs for global (pass, key) ordering."""
        while self._batch:
            p, key, te = heapq.heappop(self._batch)
            if self.is_done(key):
                continue
            sc = self._scheduled.get(key)
            if sc is None or sc < te - _EPS:
                continue  # stale duplicate
            self._scheduled[key] = None
            self.cur_pass = p
            self.cur_key = key
            return p, key, te
        return None

    # -- distributed protocol (sharded runtime) ----------------------

    def peek_horizon(self) -> tuple[float | None, float | None]:
        """Non-destructive scan for the next live-event time.

        Returns ``(live, cand)``: the earliest time a delivery or live
        examination is due, and the latest pure-wake/superseded-exam
        time strictly after ``now`` but at or before ``live`` — the
        same representative candidate :meth:`advance` tracks, exposed
        so a shard coordinator can min-reduce horizons across workers
        without consuming anyone's events.  ``(None, None)`` when this
        shard has no live event left (locally quiescent)."""
        for p, key, te in self._batch:
            if self.is_done(key):
                continue
            sc = self._scheduled.get(key)
            if sc is None or sc < te - _EPS:
                continue
            return self.now, None  # the current instant is still open
        events = self._events
        popped: list[tuple[float, int, int, tuple]] = []
        cand = None
        live = None
        while events:
            item = heapq.heappop(events)
            popped.append(item)
            te, _p, kind, key = item
            if kind == DELIVERY:
                live = te
                break
            if kind == EXAM and not self.is_done(key):
                sc = self._scheduled.get(key)
                if sc is not None and sc >= te - _EPS:
                    live = te
                    break
            if te <= self.now + _EPS:
                continue
            if cand is None or te > cand + _EPS:
                cand = te
        for item in popped:
            heapq.heappush(events, item)
        if live is None:
            return None, None
        return live, cand

    def open_instant(self, rep: float) -> None:
        """Advance to the globally agreed instant ``rep``.

        The sharded analogue of :meth:`advance`'s landing step: the
        coordinator has already min-reduced every shard's
        :meth:`peek_horizon` and chosen the representative, so this
        shard just moves ``now`` there and pulls in everything due —
        possibly nothing at all, when the instant belongs entirely to
        other shards (a lookahead stall)."""
        self.due_deliveries = 0
        if rep > self.now + _EPS:
            self.now = rep
        events = self._events
        while events and events[0][0] <= self.now + _EPS:
            te, p, kind, key = heapq.heappop(events)
            if kind == DELIVERY:
                self.due_deliveries += 1
                continue
            if kind != EXAM or self.is_done(key):
                continue
            sc = self._scheduled.get(key)
            if sc is None or sc < te - _EPS:
                continue
            heapq.heappush(self._batch, (p, key, te))
