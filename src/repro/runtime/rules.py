"""Local routing rules: what each node sends, computed from its address.

The event engine (:mod:`repro.sim.engine`) *replays* a centrally
generated :class:`~repro.sim.schedule.Schedule`.  The runtime executes
the same algorithms the way the paper states them (§3.3, §4.2): every
node derives its own transmissions from its **own address**, the
operation parameters ``(source, M, B, port model)``, and the pure
address arithmetic of the tree families — SBT children by
leading-zero-bit complement, the MSBT edge labelling ``f(i, j)``, BST
subtree splits by necklace base.  No node ever reads a central
schedule.

Priority keys
-------------
The engine resolves contention in *program order* (schedule order).  A
distributed execution has no program order, so each planned send
carries a **priority key**: a tuple, computed locally, with the
property that sorting every node's sends by key reproduces exactly the
order in which the central generator would have emitted them.  The key
is pure address arithmetic (step, packet, relative address, ...); the
kernel uses it the way real routers use header fields — deterministic
tie-breaking — which is what makes runtime executions reproducible and
bit-comparable against the engine (see :mod:`repro.runtime.validate`).

Common knowledge
----------------
Every rule below is a deterministic function of ``(n, source, M, B)``
and per-node addresses.  Some rules (BST packet fan-out, wave-scatter
bundling) need the *same* deterministic derivation at several nodes;
:func:`build_cluster_program` computes those shared structures once and
hands each node its slice.  That is memoized common knowledge — any
node could recompute it alone from the parameters — not schedule
distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from repro.bits.ops import highest_set_bit, popcount
from repro.routing.common import BCAST, MSG
from repro.routing.scheduler import greedy_partition
from repro.sim.ports import PortModel
from repro.sim.schedule import Chunk
from repro.topology.hypercube import Hypercube
from repro.trees.bst import bst_children, bst_parent, bst_subtree_index
from repro.trees.msbt import ersbt_children, ersbt_parent, msbt_label
from repro.trees.sbt import sbt_children

__all__ = [
    "PlannedSend",
    "NodeProgram",
    "ClusterProgram",
    "build_cluster_program",
    "RUNTIME_BROADCAST_ALGORITHMS",
    "RUNTIME_SCATTER_ALGORITHMS",
]

RUNTIME_BROADCAST_ALGORITHMS = ("sbt", "msbt")
RUNTIME_SCATTER_ALGORITHMS = ("sbt", "bst")


@dataclass(frozen=True, slots=True)
class PlannedSend:
    """One transmission a node has locally decided to perform.

    Attributes:
        key: globally consistent priority (see the module docstring).
        dst: receiving neighbour.
        chunks: the chunk ids to carry (sent once all are held).
    """

    key: tuple
    dst: int
    chunks: frozenset[Chunk]


@dataclass
class NodeProgram:
    """A node's complete local plan for one collective operation.

    Attributes:
        node: the node this program belongs to.
        sends: planned transmissions, ascending by key.
        initial: chunks held before the operation starts.
        expected: chunks the node must hold when the operation is
            complete (drives the receive-timeout fault detector).
    """

    node: int
    sends: tuple[PlannedSend, ...]
    initial: frozenset[Chunk]
    expected: frozenset[Chunk]


@dataclass
class ClusterProgram:
    """The local programs of every node, plus shared parameters.

    ``chunk_sizes`` is itself locally derivable (every chunk id encodes
    its packet index, and sizes follow from ``(M, B)``); it is carried
    here so the kernel prices transfers without re-deriving it.
    """

    programs: dict[int, NodeProgram]
    chunk_sizes: dict[Chunk, int]
    op: str
    algorithm: str
    source: int
    port_model: PortModel

    def total_sends(self) -> int:
        """Number of planned transmissions across the cluster."""
        return sum(len(p.sends) for p in self.programs.values())


def _bcast_sizes(message_elems: int, packet_elems: int) -> dict[Chunk, int]:
    n_packets = ceil(message_elems / packet_elems)
    return {
        (BCAST, p): min(packet_elems, message_elems - p * packet_elems)
        for p in range(n_packets)
    }


def _piece_sizes(dest: int, message_elems: int, packet_elems: int) -> dict[Chunk, int]:
    per_dest = ceil(message_elems / packet_elems)
    return {
        (MSG, dest, p): min(packet_elems, message_elems - p * packet_elems)
        for p in range(per_dest)
    }


def build_cluster_program(
    cube: Hypercube,
    op: str,
    algorithm: str,
    source: int,
    message_elems: int,
    packet_elems: int,
    port_model: PortModel,
    order: str = "port",
    subtree_order: str = "depth_first",
) -> ClusterProgram:
    """Local programs for every node of ``cube`` for one collective.

    Args:
        op: ``"broadcast"`` or ``"scatter"``.
        algorithm: broadcast ``"sbt"``/``"msbt"``; scatter ``"sbt"``/``"bst"``.
        source: root of the operation.
        message_elems: ``M`` (total for broadcast, per destination for
            scatter).
        packet_elems: packet bound ``B``.
        port_model: active port model (selects the paper's one-port or
            all-port rule variant).
        order: SBT one-port transmission order (``"port"``/``"packet"``).
        subtree_order: BST in-subtree order (§5.2).

    Returns:
        a :class:`ClusterProgram` with one :class:`NodeProgram` per node.
    """
    cube.check_node(source)
    if op == "broadcast":
        sizes = _bcast_sizes(message_elems, packet_elems)
        if algorithm == "sbt":
            programs = _sbt_broadcast(
                cube, source, message_elems, packet_elems, port_model, order
            )
        elif algorithm == "msbt":
            programs = _msbt_broadcast(
                cube, source, message_elems, packet_elems, port_model
            )
        else:
            raise ValueError(
                f"runtime broadcast supports {RUNTIME_BROADCAST_ALGORITHMS}, "
                f"got {algorithm!r}"
            )
    elif op == "scatter":
        sizes = {}
        for d in cube.nodes():
            if d != source:
                sizes.update(_piece_sizes(d, message_elems, packet_elems))
        if algorithm == "sbt":
            if port_model is PortModel.ALL_PORT:
                programs = _wave_scatter(
                    cube, source, message_elems, packet_elems, family="sbt"
                )
            else:
                programs = _sbt_scatter_halving(
                    cube, source, message_elems, packet_elems
                )
        elif algorithm == "bst":
            if port_model is PortModel.ALL_PORT:
                programs = _wave_scatter(
                    cube, source, message_elems, packet_elems, family="bst"
                )
            else:
                programs = _bst_scatter_cyclic(
                    cube, source, message_elems, packet_elems, subtree_order
                )
        else:
            raise ValueError(
                f"runtime scatter supports {RUNTIME_SCATTER_ALGORITHMS}, "
                f"got {algorithm!r}"
            )
    else:
        raise ValueError(f"op must be 'broadcast' or 'scatter', got {op!r}")
    return ClusterProgram(
        programs=programs,
        chunk_sizes=sizes,
        op=op,
        algorithm=algorithm,
        source=source,
        port_model=port_model,
    )


# ---------------------------------------------------------------------------
# broadcast


def _sbt_broadcast(
    cube: Hypercube,
    source: int,
    message_elems: int,
    packet_elems: int,
    port_model: PortModel,
    order: str,
) -> dict[int, NodeProgram]:
    """§3.3.1: recursive doubling (one-port) / pipelining (all-port).

    One-port, node ``i`` with relative address ``c = i ^ source``: in
    step ``t`` every holder (``c < 2**t``) sends packet ``p`` across
    dimension ``t``.  Key ``(t, p, c)`` (port-oriented) or ``(p, t, c)``
    (packet-oriented) — step-major resp. packet-major, holders in
    relative-address order within a step.

    All-port: a node at tree level ``l = popcount(c)`` forwards packet
    ``p`` to all its SBT children in round ``l + p``; key
    ``(l + p, i, port)`` — children in ascending-dimension (port)
    order, the natural SBT child order.
    """
    if order not in ("port", "packet"):
        raise ValueError(f"unknown SBT order {order!r}; pick 'port' or 'packet'")
    sizes = _bcast_sizes(message_elems, packet_elems)
    n_packets = len(sizes)
    n = cube.dimension
    allport = port_model is PortModel.ALL_PORT
    all_chunks = frozenset(sizes)

    programs: dict[int, NodeProgram] = {}
    for i in cube.nodes():
        c = i ^ source
        sends: list[PlannedSend] = []
        if allport:
            level = popcount(c)
            for port, child in enumerate(sbt_children(i, source, n)):
                for p in range(n_packets):
                    sends.append(
                        PlannedSend(
                            (level + p, i, port), child, frozenset({(BCAST, p)})
                        )
                    )
        else:
            for t in range(n):
                if c >= (1 << t):
                    continue  # not yet a holder in step t
                dst = i ^ (1 << t)
                for p in range(n_packets):
                    key = (t, p, c) if order == "port" else (p, t, c)
                    sends.append(PlannedSend(key, dst, frozenset({(BCAST, p)})))
        sends.sort(key=lambda s: s.key)
        programs[i] = NodeProgram(
            node=i,
            sends=tuple(sends),
            initial=all_chunks if i == source else frozenset(),
            expected=frozenset() if i == source else all_chunks,
        )
    return programs


def _msbt_broadcast(
    cube: Hypercube,
    source: int,
    message_elems: int,
    packet_elems: int,
    port_model: PortModel,
) -> dict[int, NodeProgram]:
    """§3.3.2: packet ``p`` pipelines down ERSBT ``j = p mod n``.

    One-port (both variants): the edge into ``child`` in tree ``j``
    fires in round ``f(child, j) + q*n`` for batch ``q = p // n``;
    key ``(round, p, child)``.  Under one-send-*or*-receive the same
    local plan is submitted and the port admission serializes it (the
    §3.3.2 two-cycle transformation realized greedily, as in the
    central generator).

    All-port: the trees are edge-disjoint, so each pipelines
    independently — batch ``q`` runs one round behind batch ``q - 1``
    and packet ``p`` crosses the edge into ``child`` in round
    ``level_j(child) - 1 + q``.
    """
    sizes = _bcast_sizes(message_elems, packet_elems)
    n_packets = len(sizes)
    n = cube.dimension
    allport = port_model is PortModel.ALL_PORT
    all_chunks = frozenset(sizes)

    def level_in_tree(node: int, j: int) -> int:
        depth, u = 0, node
        while True:
            parent = ersbt_parent(u, j, source, n)
            if parent is None:
                return depth
            u = parent
            depth += 1

    programs: dict[int, NodeProgram] = {}
    for i in cube.nodes():
        sends: list[PlannedSend] = []
        for j in range(n):
            for child in ersbt_children(i, j, source, n):
                if allport:
                    base_round = level_in_tree(child, j) - 1
                else:
                    lab = msbt_label(child, j, source, n)
                    assert lab is not None
                    base_round = lab
                for p in range(j, n_packets, n):
                    q = p // n
                    r = base_round + (q if allport else q * n)
                    sends.append(
                        PlannedSend((r, p, child), child, frozenset({(BCAST, p)}))
                    )
        sends.sort(key=lambda s: s.key)
        programs[i] = NodeProgram(
            node=i,
            sends=tuple(sends),
            initial=all_chunks if i == source else frozenset(),
            expected=frozenset() if i == source else all_chunks,
        )
    return programs


# ---------------------------------------------------------------------------
# scatter


def _sbt_scatter_halving(
    cube: Hypercube,
    source: int,
    message_elems: int,
    packet_elems: int,
) -> dict[int, NodeProgram]:
    """§4.2.1 one-port: recursive halving along the SBT.

    In step ``t`` a holder with relative address ``c < 2**t`` bundles,
    across dimension ``t``, the messages of every destination whose low
    ``t+1`` relative bits equal ``c | 2**t`` — descending relative
    order, first-fit packed into packets of at most ``B`` elements.
    Key ``(t, micro, c)``: micro-packets of a step interleave across
    senders exactly like the central generator's micro-rounds.
    """
    n = cube.dimension
    num_nodes = cube.num_nodes

    programs: dict[int, NodeProgram] = {}
    source_holdings: set[Chunk] = set()
    for i in cube.nodes():
        c = i ^ source
        sends: list[PlannedSend] = []
        for t in range(n):
            if c >= (1 << t):
                continue
            suffix = c | (1 << t)
            mask = (1 << (t + 1)) - 1
            pieces: list[Chunk] = []
            sizes: dict[Chunk, int] = {}
            for rel in range(num_nodes - 1, 0, -1):
                if rel & mask != suffix:
                    continue
                dest_sizes = _piece_sizes(source ^ rel, message_elems, packet_elems)
                sizes.update(dest_sizes)
                pieces.extend(dest_sizes)
            if not pieces:
                continue
            dst = i ^ (1 << t)
            for m, group in enumerate(greedy_partition(pieces, sizes, packet_elems)):
                sends.append(PlannedSend((t, m, c), dst, frozenset(group)))
        sends.sort(key=lambda s: s.key)
        mine = frozenset(
            _piece_sizes(i, message_elems, packet_elems)
        ) if i != source else frozenset()
        programs[i] = NodeProgram(
            node=i, sends=tuple(sends), initial=frozenset(), expected=mine
        )
        if i != source:
            source_holdings.update(_piece_sizes(i, message_elems, packet_elems))
    src_prog = programs[source]
    programs[source] = NodeProgram(
        node=source,
        sends=src_prog.sends,
        initial=frozenset(source_holdings),
        expected=frozenset(),
    )
    return programs


def _wave_scatter(
    cube: Hypercube,
    source: int,
    message_elems: int,
    packet_elems: int,
    family: str,
) -> dict[int, NodeProgram]:
    """Lemma 4.2 all-port scatter over the SBT or BST.

    The message for a destination at tree level ``l`` departs in step
    ``height - l`` and advances one hop per step; every node on the
    path bundles the pieces sharing its outgoing (edge, step) pair and
    first-fit splits bundles beyond ``B``.  Key
    ``(step, micro, node, child)``.

    Each node derives the paths crossing it from the pure parent
    functions alone; the parent map is computed once here as shared
    common knowledge.
    """
    n = cube.dimension

    if family == "sbt":
        def parent_of(v: int) -> int | None:
            c = v ^ source
            if c == 0:
                return None
            return v ^ (1 << highest_set_bit(c))
    else:
        def parent_of(v: int) -> int | None:
            return bst_parent(v, source, n)

    paths: dict[int, list[int]] = {}
    for d in cube.nodes():
        if d == source:
            continue
        path = [d]
        v = d
        while v != source:
            p = parent_of(v)
            assert p is not None
            v = p
            path.append(v)
        path.reverse()
        paths[d] = path
    height = max(len(p) - 1 for p in paths.values())

    sizes: dict[Chunk, int] = {}
    for d in paths:
        sizes.update(_piece_sizes(d, message_elems, packet_elems))

    # (step, u, v) -> pieces crossing that edge in that step
    bundles: dict[tuple[int, int, int], set[Chunk]] = {}
    for d, path in paths.items():
        hops = len(path) - 1
        depart = height - hops
        pieces = frozenset(_piece_sizes(d, message_elems, packet_elems))
        for h in range(hops):
            bundles.setdefault((depart + h, path[h], path[h + 1]), set()).update(
                pieces
            )

    sends_by_node: dict[int, list[PlannedSend]] = {i: [] for i in cube.nodes()}
    for (step, u, v), chunks in bundles.items():
        ordered = sorted(chunks, key=lambda ch: (-sizes[ch], repr(ch)))
        for m, group in enumerate(greedy_partition(ordered, sizes, packet_elems)):
            sends_by_node[u].append(
                PlannedSend((step, m, u, v), v, frozenset(group))
            )

    programs: dict[int, NodeProgram] = {}
    for i in cube.nodes():
        sends = sorted(sends_by_node[i], key=lambda s: s.key)
        programs[i] = NodeProgram(
            node=i,
            sends=tuple(sends),
            initial=frozenset(sizes) if i == source else frozenset(),
            expected=(
                frozenset() if i == source
                else frozenset(_piece_sizes(i, message_elems, packet_elems))
            ),
        )
    return programs


def _bst_scatter_cyclic(
    cube: Hypercube,
    source: int,
    message_elems: int,
    packet_elems: int,
    subtree_order: str,
) -> dict[int, NodeProgram]:
    """§4.2.2 one-port: the root serves its ``n`` BST subtrees cyclically.

    The root's ``k``-th cycle serves subtree ``k mod n`` (skipping
    drained queues); each packet then fans out below the subtree head
    in BFS order.  Key ``(m, pos)`` where ``m`` numbers root packets
    globally and ``pos`` is the position within packet ``m``'s
    deterministic fan-out (0 = the root's own send).

    The queues and fan-outs are deterministic in the operation
    parameters, so every node derives the same numbering; the BST
    child map is built once from the necklace-base formulas as shared
    common knowledge.
    """
    if subtree_order not in ("depth_first", "reversed_breadth_first"):
        raise ValueError(
            f"unknown subtree order {subtree_order!r}; pick "
            "'depth_first' or 'reversed_breadth_first'"
        )
    n = cube.dimension

    # Tree structure from the pure parent/children formulas, with
    # children ascending (the convention every traversal order uses).
    children: dict[int, tuple[int, ...]] = {
        i: tuple(sorted(bst_children(i, source, n))) for i in cube.nodes()
    }
    levels: dict[int, int] = {source: 0}
    stack = [source]
    order_bfs: dict[int, list[int]] = {}
    while stack:
        u = stack.pop()
        for ch in children[u]:
            levels[ch] = levels[u] + 1
            stack.append(ch)

    members: dict[int, list[int]] = {j: [] for j in range(n)}
    for i in cube.nodes():
        if i == source:
            continue
        members[bst_subtree_index(i, source, n)].append(i)

    def subtree_head(j: int) -> int | None:
        mem = set(members[j])
        for child in children[source]:
            if child in mem:
                return child
        return None

    def dest_order(j: int, head: int) -> list[int]:
        mem = set(members[j])
        if subtree_order == "depth_first":
            out: list[int] = []
            st = [head]
            while st:
                u = st.pop()
                out.append(u)
                st.extend(reversed(children[u]))
        else:
            out = []
            queue = [head]
            while queue:
                u = queue.pop(0)
                out.append(u)
                queue.extend(children[u])
            out = sorted(out, key=lambda v: -levels[v])
        return [v for v in out if v in mem]

    sizes: dict[Chunk, int] = {}
    for d in cube.nodes():
        if d != source:
            sizes.update(_piece_sizes(d, message_elems, packet_elems))

    queues: list[list[frozenset[Chunk]]] = []
    heads: list[int | None] = []
    for j in range(n):
        head = subtree_head(j)
        heads.append(head)
        if head is None:
            queues.append([])
            continue
        pieces: list[Chunk] = []
        for d in dest_order(j, head):
            dp = sorted(_piece_sizes(d, message_elems, packet_elems), key=lambda c: c[2])
            pieces.extend(dp)
        queues.append(
            [frozenset(g) for g in greedy_partition(pieces, sizes, packet_elems)]
        )

    def next_hop(node: int, dest: int) -> int:
        cur = dest
        while True:
            parent = bst_parent(cur, source, n)
            assert parent is not None
            if parent == node:
                return cur
            cur = parent

    def fan_out(head: int, chunks: set[Chunk]) -> list[tuple[int, int, frozenset]]:
        out: list[tuple[int, int, frozenset]] = []
        frontier: list[tuple[int, set[Chunk]]] = [(head, set(chunks))]
        while frontier:
            nxt: list[tuple[int, set[Chunk]]] = []
            for node, payload in frontier:
                by_child: dict[int, set[Chunk]] = {}
                for ch in payload:
                    dest = ch[1]
                    if dest == node:
                        continue
                    hop = next_hop(node, dest)
                    by_child.setdefault(hop, set()).add(ch)
                for child in sorted(by_child):
                    out.append((node, child, frozenset(by_child[child])))
                    nxt.append((child, by_child[child]))
            frontier = nxt
        return out

    sends_by_node: dict[int, list[PlannedSend]] = {i: [] for i in cube.nodes()}
    m = 0
    k = 0
    while any(queues):
        j = k % n
        k += 1
        if not queues[j]:
            continue
        packet = queues[j].pop(0)
        head = heads[j]
        assert head is not None
        sends_by_node[source].append(PlannedSend((m, 0), head, packet))
        for pos, (u, v, group) in enumerate(fan_out(head, set(packet)), start=1):
            sends_by_node[u].append(PlannedSend((m, pos), v, group))
        m += 1

    programs: dict[int, NodeProgram] = {}
    for i in cube.nodes():
        sends = sorted(sends_by_node[i], key=lambda s: s.key)
        programs[i] = NodeProgram(
            node=i,
            sends=tuple(sends),
            initial=frozenset(sizes) if i == source else frozenset(),
            expected=(
                frozenset() if i == source
                else frozenset(_piece_sizes(i, message_elems, packet_elems))
            ),
        )
    return programs
