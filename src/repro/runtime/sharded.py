"""Sharded multi-process actor runtime: subcube-per-worker execution.

The single-process runtime (:mod:`repro.runtime.actors`) runs all
``N = 2**n`` node actors in one asyncio loop.  This module partitions
the cube across ``K = 2**k`` worker processes by the **high** address
bits (:class:`repro.runtime.partition.PartitionMap`), so the low
``n - k`` dimensions — the bulk of every spanning tree — stay
in-process and only ``k`` dimensions cross the partition.  Workers are
connected to a hub coordinator over duplex ``multiprocessing`` pipes
carrying canonical frames (:mod:`repro.runtime.wire`), with same-tick
records coalesced per destination shard TRAM-style
(:mod:`repro.runtime.aggregate`).

Distributed clock protocol (conservative, no rollback)
------------------------------------------------------
Virtual time advances in lock-step rounds, one per clock instant:

1. **HORIZON -> ADVANCE** — each worker sweeps its dirty channels and
   reports its local event horizon (:meth:`VirtualClock.peek_horizon`:
   next live-event time plus the latest wake candidate below it).  The
   coordinator min-reduces the horizons, picks the instant's
   representative exactly like :meth:`VirtualClock.advance` (the
   latest wake within ``_EPS`` below the minimum live time wins), and
   broadcasts it.  A worker whose horizon lies beyond the instant
   simply moves its clock and idles — a *lookahead stall*.
2. **CROSS -> CONFLICT** — workers open the instant, flush due
   deliveries (actors may submit new sends), drain their examination
   batch, and ship every send whose destination is remote.  The
   coordinator broadcasts the union of all cross-send endpoints as the
   round's *conflict set*; when it is empty the round is done — the
   common case, costing two small frames per worker per instant.
3. **STATE -> RESULT** — each worker extends the conflict set to a
   local fixpoint (any local send touching a locked node is shipped
   too, transitively), ships the channel/link state of its locked
   nodes, and admits the remaining *safe* sends locally while the
   coordinator executes the shipped sends centrally in global
   ``(pass, key)`` order — mirroring ``Kernel._examine`` exactly.
   Results (occupied channel state, admissions, deliveries, deferrals,
   faults) fan back out, one aggregated frame per worker.

Safe and shipped sends touch disjoint nodes (the fixpoint guarantees
it), so they share no channel, link, or readiness state and commute —
observables stay bit-identical to the single-process runtime, which
the differential harness (:func:`repro.runtime.validate.sharded_check`)
asserts across the whole grid.

Determinism notes: within one instant the batch is fixed once
deliveries are flushed (blocked and not-ready sends always reschedule
strictly later), which is what makes the instant splittable at all.
Wake *candidates* for sends blocked on cross-partition channels are
computed from the owner's partial view; they can differ from the
global view only below ``_EPS`` and never move an instant by more.

``on_fault="repair"`` requires ``workers=1`` (repair's control plane
is global by design); ``"raise"`` aborts every worker, ``"report"``
degrades exactly like the single-process runtime.
"""

from __future__ import annotations

import asyncio
import heapq
import multiprocessing
import os
import threading
from dataclasses import dataclass, field
from time import perf_counter

from repro.obs.instruments import runtime_run_finished, sharded_run_finished
from repro.runtime.actors import (
    Kernel,
    RuntimeResult,
    VirtualCluster,
    _SubmittedSend,
)
from repro.runtime.aggregate import ShardAggregator
from repro.runtime.clock import _EPS
from repro.runtime.partition import PartitionMap
from repro.runtime.rules import ClusterProgram
from repro.runtime.trace import RuntimeTrace, TraceEvent, merge_shard_traces
from repro.runtime.wire import decode_frame, encode_frame
from repro.sim.faults import (
    DegradedResult,
    FaultError,
    FaultEvent,
    FaultPlan,
    undelivered_map,
)
from repro.sim.machine import MachineParams
from repro.sim.ports import PortModel
from repro.sim.schedule import Transfer
from repro.sim.trace import LinkStats
from repro.topology.hypercube import DirectedEdge, Hypercube

__all__ = [
    "ShardedCluster",
    "ShardRunStats",
    "run_sharded",
    "START_METHODS",
]

#: worker launch mechanisms; "thread" runs workers as in-process
#: threads over the same pipe protocol (debugging / coverage / Windows)
START_METHODS = ("fork", "spawn", "forkserver", "thread")

# protocol frame kinds
HORIZON = 1
ADVANCE = 2
CROSS = 3
CONFLICT = 4
STATE = 5
RESULT = 6
FINISH = 7
SUMMARY = 8
ERROR = 9
ABORT = 10

#: coordinator-side receive timeout (seconds); the protocol is
#: lock-step, so a stall this long means a worker died ungracefully
_RECV_TIMEOUT = float(os.environ.get("REPRO_SHARD_TIMEOUT", "300"))


@dataclass(frozen=True)
class _ShardSpec:
    """Everything a worker needs to stand up its shard (picklable)."""

    shard: int
    workers: int
    dimension: int
    program: ClusterProgram  # programs dict sliced to this shard
    machine: MachineParams
    faults: FaultPlan | None
    on_fault: str
    trace: bool


@dataclass
class ShardRunStats:
    """Coordinator-side telemetry of one sharded execution.

    ``reps``/``horizons`` record the clock protocol round by round:
    ``reps[i]`` is the representative broadcast in round ``i`` and
    ``horizons[i]`` each worker's reported live-event time (``None``
    for a locally quiescent shard).  The lookahead-safety property —
    no worker is ever advanced past a shard's live bound — is
    ``reps[i] <= min(live for live in horizons[i] if live is not None)
    + eps`` for every round, which the property suite asserts.
    """

    workers: int
    start_method: str
    rounds: int = 0
    conflict_rounds: int = 0
    reps: list[float] = field(default_factory=list)
    horizons: list[tuple] = field(default_factory=list)
    stalls: dict[int, int] = field(default_factory=dict)
    cross_records: int = 0
    cross_frames: int = 0
    result_records: int = 0
    result_frames: int = 0

    @property
    def aggregation_ratio(self) -> float:
        frames = self.cross_frames + self.result_frames
        if not frames:
            return 0.0
        return (self.cross_records + self.result_records) / frames


# ---------------------------------------------------------------------------
# wire helpers
# ---------------------------------------------------------------------------


def _send_record(p: int, t: _SubmittedSend) -> tuple:
    return (p, t.key, t.src, t.dst, t.chunks, t.elems, t.cost, t.port)


def _channel_acts(admission, node: int) -> tuple[list, list | None]:
    send = admission._send.get(node)
    sacts = list(send._actions) if send is not None else []
    if admission._half:
        return sacts, None
    recv = admission._recv.get(node)
    racts = list(recv._actions) if recv is not None else []
    return sacts, racts


def _trace_record(e: TraceEvent) -> tuple:
    return (e.kind, e.time, e.src, e.dst, e.port, e.end, e.elems,
            e.chunks, e.detail)


def _trace_from_record(r: tuple) -> TraceEvent:
    kind, time, src, dst, port, end, elems, chunks, detail = r
    return TraceEvent(kind=kind, time=time, src=src, dst=dst, port=port,
                      end=end, elems=elems, chunks=chunks, detail=detail)


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------


class _Abort(Exception):
    """Coordinator told this worker to stop; unwind silently."""


class _ShardWorker:
    """One shard: a sliced :class:`VirtualCluster` driven lock-step."""

    def __init__(self, conn, spec: _ShardSpec):
        self.conn = conn
        self.spec = spec
        self.part = PartitionMap(spec.dimension, spec.workers)
        self.cluster = VirtualCluster(
            Hypercube(spec.dimension),
            spec.program,
            machine=spec.machine,
            faults=spec.faults,
            on_fault=spec.on_fault,
            trace=spec.trace,
        )
        self.agg = ShardAggregator()
        self.stalls = 0
        self.rounds = 0

    # -- protocol I/O -------------------------------------------------

    def _send(self, kind: int, tick: int, payload) -> None:
        self.conn.send_bytes(encode_frame(kind, tick, payload))

    def _recv(self, expected: int, tick: int):
        kind, rtick, payload = decode_frame(self.conn.recv_bytes())
        if kind == ABORT:
            raise _Abort()
        if kind != expected or rtick != tick:
            raise RuntimeError(
                f"shard {self.spec.shard}: expected frame {expected} "
                f"tick {tick}, got {kind} tick {rtick}"
            )
        return payload

    # -- main loop ----------------------------------------------------

    async def run(self) -> None:
        cluster = self.cluster
        kernel = cluster.kernel
        tasks = [
            asyncio.ensure_future(actor.run())
            for actor in cluster.actors.values()
        ]
        try:
            for node in cluster.actors:
                cluster.post(node, ("start",))
            await kernel.wait_quiescent()
            await self._rounds(kernel)
        finally:
            for actor in cluster.actors.values():
                actor.stopped = True
                actor.wake.set()
            await asyncio.gather(*tasks)

    async def _rounds(self, kernel: Kernel) -> None:
        clock = kernel.clock
        shift = self.part.shift
        shard = self.spec.shard
        tick = 0
        while True:
            kernel._sweep_dirty()
            live, cand = clock.peek_horizon()
            self._send(HORIZON, tick, (live, cand))
            msg = decode_frame(self.conn.recv_bytes())
            if msg[0] == ABORT:
                raise _Abort()
            if msg[0] == FINISH:
                return
            if msg[0] != ADVANCE or msg[1] != tick:
                raise RuntimeError(
                    f"shard {shard}: unexpected frame {msg[0]} in round {tick}"
                )
            rep = msg[2]
            self.rounds += 1
            clock.open_instant(rep)
            if clock.due_deliveries:
                await kernel._flush_deliveries()
            # The instant's batch is now fixed: blocked and not-ready
            # sends always reschedule strictly later, and submissions
            # only enter when deliveries are flushed (just done).
            items: list[tuple[int, tuple, float]] = []
            while (entry := clock.pop_batch_full()) is not None:
                items.append(entry)
            sends = kernel._sends
            cross: list[tuple[int, tuple, float]] = []
            local: list[tuple[int, tuple, float]] = []
            for item in items:
                t = sends[item[1]]
                (cross if t.dst >> shift != shard else local).append(item)
            if live is None or rep < live - _EPS:
                if not clock.due_deliveries and not items:
                    self.stalls += 1
            for p, key, _te in cross:
                self.agg.add(0, _send_record(p, sends[key]))
            frames = self.agg.flush(CROSS, tick)
            self.conn.send_bytes(
                frames.get(0, encode_frame(CROSS, tick, []))
            )
            conflict = self._recv(CONFLICT, tick)
            if conflict:
                safe = self._ship_state(kernel, tick, set(conflict),
                                        cross, local)
            else:
                safe = local  # no cross sends anywhere this round
            for p, key, _te in safe:
                clock.cur_pass = p
                clock.cur_key = key
                kernel._examine(key)
            if conflict:
                for res in self._recv(RESULT, tick):
                    self._apply_result(kernel, res)
            tick += 1

    def _ship_state(
        self,
        kernel: Kernel,
        tick: int,
        locked: set[int],
        cross: list,
        local: list,
    ) -> list:
        """Fixpoint-extend the conflict set over local sends, ship the
        locked nodes' channel/link state plus the extra sends, and
        return the safe remainder."""
        sends = kernel._sends
        extras: list[tuple[int, tuple, float]] = []
        pending = local
        changed = True
        while changed:
            changed = False
            rest = []
            for item in pending:
                t = sends[item[1]]
                if t.src in locked or t.dst in locked:
                    extras.append(item)
                    locked.add(t.src)
                    locked.add(t.dst)
                    changed = True
                else:
                    rest.append(item)
            pending = rest
        admission = kernel.admission
        shift = self.part.shift
        shard = self.spec.shard
        channels: dict[int, tuple] = {}
        if not admission.all_port:
            for node in sorted(locked):
                if node >> shift == shard:
                    channels[node] = _channel_acts(admission, node)
        links: dict[tuple, float] = {}
        link_free = admission.link_free
        for item in (*cross, *extras):
            t = sends[item[1]]
            lf = link_free.get((t.src, t.dst))
            if lf is not None:
                links[(t.src, t.dst)] = lf
        extra_records = [_send_record(p, sends[key]) for p, key, _te in extras]
        # account the STATE shipment in the TRAM stats without
        # buffering (the records ride the STATE frame, not a flush)
        self.agg.records += len(extra_records)
        self.agg.frames += 1
        self._send(STATE, tick, {
            "channels": channels,
            "links": links,
            "extras": extra_records,
        })
        return pending

    def _apply_result(self, kernel: Kernel, result: dict) -> None:
        cluster = self.cluster
        clock = kernel.clock
        admission = kernel.admission
        shift = self.part.shift
        shard = self.spec.shard
        all_port = admission.all_port
        overlap = cluster.machine.overlap
        for node, (sacts, racts) in result.get("channels", {}).items():
            ch = admission.send_channel(node)
            ch._actions[:] = sacts
            if racts is not None:
                admission.recv_channel(node)._actions[:] = racts
        admission.link_free.update(result.get("links", {}))
        for key, src, dst, port, start, end, elems, chunks in result.get(
            "admitted", ()
        ):
            actor = cluster.actors[src]
            actor.stats.record(src, dst, elems)
            kernel.start_times.append(start)
            if end > kernel.finish:
                kernel.finish = end
            if not all_port:
                clock.push_wake(start + (1.0 - overlap) * (end - start))
                admission.send_channel(src).blocked.discard(key)
                if dst >> shift == shard:
                    admission.recv_channel(dst).blocked.discard(key)
            clock.push_wake(end)
            clock.mark_done(key)
            if cluster.trace is not None:
                cluster.trace.add_transfer(
                    src, dst, port, start, end, elems, chunks
                )
        for end, dst, chunks in result.get("deliveries", ()):
            clock.push_delivery(end)
            heapq.heappush(
                kernel._deliveries, (end, kernel._dseq, dst, chunks)
            )
            kernel._dseq += 1
        for key, src, dst, start in result.get("rescheduled", ()):
            if not all_port:
                admission.send_channel(src).blocked.add(key)
                if dst >> shift == shard:
                    admission.recv_channel(dst).blocked.add(key)
            clock.push_exam(key, start)
        for key, src, dst, chunks, start, kind, subject in result.get(
            "faulted", ()
        ):
            transfer = Transfer(src, dst, chunks)
            kernel.fault_events.append(
                FaultEvent(transfer, start, kind, subject)
            )
            kernel.lost.append(transfer)
            clock.mark_done(key)
            if cluster.trace is not None:
                cluster.trace.add_fault(src, dst, start, kind, subject)
        for node, side in result.get("dirty", ()):
            if all_port:
                continue
            if side == "s":
                kernel._dirty.add(admission.send_channel(node))
            else:
                kernel._dirty.add(admission.recv_channel(node))

    # -- summary ------------------------------------------------------

    def summary(self) -> dict:
        cluster = self.cluster
        kernel = cluster.kernel
        stats = {
            node: [
                (e.src, e.dst, n, actor.stats.packets[e])
                for e, n in sorted(actor.stats.elems.items())
            ]
            for node, actor in cluster.actors.items()
        }
        leftovers = [
            (actor.node, s.dst, s.chunks)
            for actor in cluster.actors.values()
            for s in (*actor.pending, *actor.cancelled)
        ]
        return {
            "holdings": {
                node: frozenset(actor.held)
                for node, actor in cluster.actors.items()
            },
            "missing": {
                node: frozenset(m)
                for node, actor in cluster.actors.items()
                if (m := actor.missing())
            },
            "stats": stats,
            "start_times": kernel.start_times,
            "finish": kernel.finish,
            "fault_events": [
                (f.transfer.src, f.transfer.dst, f.transfer.chunks,
                 f.time, f.kind, f.subject)
                for f in kernel.fault_events
            ],
            "lost": [(t.src, t.dst, t.chunks) for t in kernel.lost],
            "leftovers": leftovers,
            "trace": (
                [_trace_record(e) for e in cluster.trace.events]
                if cluster.trace is not None
                else None
            ),
            "metrics": {
                "rounds": self.rounds,
                "stalls": self.stalls,
                "records": self.agg.records,
                "frames": self.agg.frames,
            },
        }


def _worker_main(conn, spec: _ShardSpec) -> None:
    """Worker process entry point (also runs on a thread under the
    ``"thread"`` start method)."""
    worker = None
    try:
        worker = _ShardWorker(conn, spec)
        asyncio.run(worker.run())
        conn.send_bytes(encode_frame(SUMMARY, -1, worker.summary()))
    except _Abort:
        pass
    except FaultError as exc:
        try:
            conn.send_bytes(encode_frame(ERROR, -1, {
                "type": "fault",
                "message": str(exc),
                "edge": exc.edge,
                "node": exc.node,
                "time": exc.time,
                "chunks": exc.chunks,
            }))
            decode_frame(conn.recv_bytes())  # wait for the ABORT
        except (EOFError, OSError):
            pass
    except (EOFError, OSError):
        pass  # coordinator went away; nothing to report to
    except BaseException as exc:  # noqa: BLE001 - shipped to coordinator
        try:
            conn.send_bytes(encode_frame(ERROR, -1, {
                "type": "exception",
                "message": f"{type(exc).__name__}: {exc}",
            }))
            decode_frame(conn.recv_bytes())
        except (EOFError, OSError):
            pass
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# coordinator side
# ---------------------------------------------------------------------------


class _ConflictExecutor:
    """Executes one round's shipped sends in global (pass, key) order,
    mirroring ``Kernel._examine`` on the shipped channel state."""

    def __init__(self, part: PartitionMap, port_model: PortModel,
                 machine: MachineParams, faults: FaultPlan | None,
                 on_fault: str):
        self.part = part
        self.port_model = port_model
        self.machine = machine
        self.faults = faults
        self.on_fault = on_fault

    def execute(
        self,
        rep: float,
        records: list[tuple],
        channels: dict[int, tuple],
        links: dict[tuple, float],
    ) -> dict[int, dict]:
        from repro.runtime.channels import PortAdmission

        part = self.part
        admission = PortAdmission(self.port_model, self.machine.overlap)
        for node, (sacts, racts) in channels.items():
            ch = admission.send_channel(node)
            ch._actions[:] = sacts
            if racts is not None:
                admission.recv_channel(node)._actions[:] = racts
        admission.link_free.update(links)
        results: dict[int, dict] = {
            w: {
                "channels": {},
                "links": {},
                "admitted": [],
                "deliveries": [],
                "rescheduled": [],
                "faulted": [],
                "dirty": [],
            }
            for w in range(part.workers)
        }
        all_port = admission.all_port
        faults = self.faults
        now = rep
        for _p, key, src, dst, chunks, elems, cost, port in sorted(
            records, key=lambda r: (r[0], r[1])
        ):
            src_shard = part.shard_of(src)
            dst_shard = part.shard_of(dst)
            start = admission.earliest_start(src, dst, port, now)
            if start > now + _EPS:
                # only the submitting shard re-examines the key; the
                # destination learns of it when it finally admits
                results[src_shard]["rescheduled"].append(
                    (key, src, dst, start)
                )
                continue
            if faults is not None:
                hit = faults.blocks(src, dst, start)
                if hit is not None:
                    kind, subject = hit
                    if self.on_fault == "raise":
                        raise FaultError(
                            f"transfer {src}->{dst} blocked by dead {kind} "
                            f"{subject} at t={start:.6g}; pending chunks "
                            f"{sorted(map(repr, chunks))[:4]}",
                            edge=(src, dst),
                            node=subject if kind == "node" else None,
                            time=start,
                            chunks=chunks,
                        )
                    results[src_shard]["faulted"].append(
                        (key, src, dst, chunks, start, kind, subject)
                    )
                    continue
            end = start + cost
            admission.occupy(key, src, dst, port, start, end)
            results[src_shard]["links"][(src, dst)] = end
            results[src_shard]["admitted"].append(
                (key, src, dst, port, start, end, elems, chunks)
            )
            results[dst_shard]["deliveries"].append((end, dst, chunks))
            if not all_port:
                results[src_shard]["dirty"].append((src, "s"))
                results[dst_shard]["dirty"].append((dst, "r"))
        for node in channels:
            owner = part.shard_of(node)
            results[owner]["channels"][node] = _channel_acts(admission, node)
        return results


class ShardedCluster:
    """Coordinator for a ``workers``-way sharded runtime execution."""

    def __init__(
        self,
        cube: Hypercube,
        program: ClusterProgram,
        machine: MachineParams | None = None,
        faults: FaultPlan | None = None,
        on_fault: str = "raise",
        trace: bool = False,
        workers: int = 2,
        start_method: str | None = None,
    ):
        if on_fault == "repair":
            raise ValueError(
                "on_fault='repair' requires workers=1: the repair control "
                "plane coordinates globally through the source actor"
            )
        if on_fault not in ("raise", "report"):
            raise ValueError(
                f"on_fault must be 'raise' or 'report', got {on_fault!r}"
            )
        start_method = start_method or os.environ.get(
            "REPRO_START_METHOD", "fork"
        )
        if start_method not in START_METHODS:
            raise ValueError(
                f"start_method must be one of {START_METHODS}, "
                f"got {start_method!r}"
            )
        self.cube = cube
        self.program = program
        self.machine = machine or MachineParams()
        self.faults = faults
        self.on_fault = on_fault
        self.trace_enabled = trace
        self.part = PartitionMap(cube.dimension, workers)
        self.start_method = start_method
        self.stats = ShardRunStats(workers=workers, start_method=start_method)

    # -- lifecycle ----------------------------------------------------

    def _specs(self) -> list[_ShardSpec]:
        part = self.part
        program = self.program
        sliced: list[dict] = [{} for _ in range(part.workers)]
        for node, prog in program.programs.items():
            sliced[part.shard_of(node)][node] = prog
        return [
            _ShardSpec(
                shard=w,
                workers=part.workers,
                dimension=self.cube.dimension,
                program=ClusterProgram(
                    programs=sliced[w],
                    chunk_sizes=program.chunk_sizes,
                    op=program.op,
                    algorithm=program.algorithm,
                    source=program.source,
                    port_model=program.port_model,
                ),
                machine=self.machine,
                faults=self.faults,
                on_fault=self.on_fault,
                trace=self.trace_enabled,
            )
            for w in range(part.workers)
        ]

    def _launch(self, specs: list[_ShardSpec]):
        conns = []
        procs = []
        if self.start_method == "thread":
            for spec in specs:
                parent, child = multiprocessing.Pipe(duplex=True)
                t = threading.Thread(
                    target=_worker_main, args=(child, spec), daemon=True
                )
                t.start()
                conns.append(parent)
                procs.append(t)
        else:
            ctx = multiprocessing.get_context(self.start_method)
            for spec in specs:
                parent, child = ctx.Pipe(duplex=True)
                p = ctx.Process(
                    target=_worker_main, args=(child, spec), daemon=True
                )
                p.start()
                child.close()
                conns.append(parent)
                procs.append(p)
        return conns, procs

    def _recv(self, conn, expected: int, tick: int):
        if not conn.poll(_RECV_TIMEOUT):
            raise RuntimeError(
                f"sharded runtime: worker frame timed out after "
                f"{_RECV_TIMEOUT:.0f}s (expected kind {expected})"
            )
        kind, rtick, payload = decode_frame(conn.recv_bytes())
        if kind == ERROR:
            raise _WorkerFailed(payload)
        if kind != expected or (tick >= 0 and rtick != tick):
            raise RuntimeError(
                f"sharded runtime: expected frame {expected} tick {tick}, "
                f"got {kind} tick {rtick}"
            )
        return payload

    def run(self) -> RuntimeResult | DegradedResult:
        """Execute the collective across the shards; blocking."""
        t0 = perf_counter()
        specs = self._specs()
        conns, procs = self._launch(specs)
        summaries: list[dict] = []
        try:
            summaries = self._coordinate(conns)
        except _WorkerFailed as failure:
            self._abort(conns, procs)
            payload = failure.payload
            if payload.get("type") == "fault":
                raise FaultError(
                    payload["message"],
                    edge=tuple(payload["edge"]) if payload["edge"] else None,
                    node=payload["node"],
                    time=payload["time"],
                    chunks=payload["chunks"],
                ) from None
            raise RuntimeError(
                f"sharded runtime worker failed: {payload['message']}"
            ) from None
        except BaseException:
            self._abort(conns, procs)
            raise
        finally:
            for conn in conns:
                try:
                    conn.close()
                except OSError:
                    pass
            self._join(procs)
            self._flush_obs(summaries, perf_counter() - t0)
        return self._result(summaries)

    def _coordinate(self, conns) -> list[dict]:
        stats = self.stats
        executor = _ConflictExecutor(
            self.part, self.program.port_model, self.machine,
            self.faults, self.on_fault,
        )
        agg = ShardAggregator()
        tick = 0
        while True:
            horizons = [self._recv(c, HORIZON, tick) for c in conns]
            lives = tuple(h[0] for h in horizons)
            alive = [t for t in lives if t is not None]
            if not alive:
                for c in conns:
                    c.send_bytes(encode_frame(FINISH, tick, None))
                break
            t_min = min(alive)
            # the engine's representative rule: the latest wake
            # candidate within _EPS below the live minimum wins
            rep = t_min
            best = None
            for _live, cand in horizons:
                if (
                    cand is not None
                    and t_min - _EPS <= cand <= t_min
                    and (best is None or cand > best)
                ):
                    best = cand
            if best is not None:
                rep = best
            stats.rounds += 1
            stats.reps.append(rep)
            stats.horizons.append(lives)
            for c in conns:
                c.send_bytes(encode_frame(ADVANCE, tick, rep))
            cross_records: list[tuple] = []
            for c in conns:
                cross_records.extend(self._recv(c, CROSS, tick))
            conflict: set[int] = set()
            for rec in cross_records:
                conflict.add(rec[2])
                conflict.add(rec[3])
            payload = sorted(conflict)
            for c in conns:
                c.send_bytes(encode_frame(CONFLICT, tick, payload))
            if conflict:
                stats.conflict_rounds += 1
                channels: dict[int, tuple] = {}
                links: dict[tuple, float] = {}
                records = list(cross_records)
                for c in conns:
                    state = self._recv(c, STATE, tick)
                    channels.update(state["channels"])
                    links.update(state["links"])
                    records.extend(state["extras"])
                results = executor.execute(rep, records, channels, links)
                for w, res in results.items():
                    agg.add(w, res)
                    stats.result_records += (
                        len(res["admitted"]) + len(res["deliveries"])
                        + len(res["rescheduled"]) + len(res["faulted"])
                    )
                frames = agg.flush(RESULT, tick)
                for w, c in enumerate(conns):
                    # one aggregated frame per worker; the payload is
                    # the destination's buffered record list
                    c.send_bytes(frames[w])
                stats.result_frames += len(conns)
            tick += 1
        return [self._recv(c, SUMMARY, -1) for c in conns]

    def _abort(self, conns, procs) -> None:
        for conn in conns:
            try:
                conn.send_bytes(encode_frame(ABORT, -1, None))
            except (OSError, ValueError, BrokenPipeError):
                pass

    def _join(self, procs) -> None:
        for p in procs:
            p.join(timeout=30)
        for p in procs:
            if not isinstance(p, threading.Thread) and p.is_alive():
                p.terminate()
                p.join(timeout=5)

    # -- result assembly ----------------------------------------------

    def _flush_obs(self, summaries: list[dict], seconds: float) -> None:
        packets = sum(len(s["start_times"]) for s in summaries)
        elems = sum(
            e for s in summaries
            for rows in s["stats"].values()
            for (_src, _dst, e, _p) in rows
        )
        lost = sum(len(s["lost"]) for s in summaries)
        runtime_run_finished(
            packets=packets, elems=elems, seconds=seconds, faulted=lost,
        )
        stats = self.stats
        for shard, s in enumerate(summaries):
            m = s["metrics"]
            stats.cross_records += m["records"]
            stats.cross_frames += m["frames"]
            stats.stalls[shard] = m["stalls"]
        sharded_run_finished(
            workers=self.part.workers,
            rounds=stats.rounds,
            conflict_rounds=stats.conflict_rounds,
            cross_records=stats.cross_records,
            frames=stats.cross_frames + stats.result_frames,
            aggregation_ratio=stats.aggregation_ratio,
            stalls_by_shard=stats.stalls,
            seconds=seconds,
        )

    def _result(self, summaries: list[dict]) -> RuntimeResult | DegradedResult:
        holdings: dict[int, set] = {}
        per_node: dict[int, LinkStats] = {}
        start_times: list[float] = []
        finish = 0.0
        fault_records: list[tuple] = []
        lost: list[Transfer] = []
        missing: dict[int, frozenset] = {}
        shard_traces: dict[int, RuntimeTrace] = {}
        for shard, s in enumerate(summaries):
            for node, held in s["holdings"].items():
                holdings[node] = set(held)
            for node, rows in s["stats"].items():
                st = LinkStats()
                for src, dst, e, p in rows:
                    edge = DirectedEdge(src, dst)
                    st.elems[edge] = e
                    st.packets[edge] = p
                per_node[node] = st
            start_times.extend(s["start_times"])
            if s["finish"] > finish:
                finish = s["finish"]
            fault_records.extend(s["fault_events"])
            lost.extend(Transfer(a, b, ch) for a, b, ch in s["lost"])
            missing.update(s["missing"])
            if s["trace"] is not None:
                trace = RuntimeTrace()
                trace.events = [_trace_from_record(r) for r in s["trace"]]
                shard_traces[shard] = trace
        # nodes with no sends have no LinkStats row; fill like the
        # single-process runtime (every actor owns one)
        for node in self.program.programs:
            per_node.setdefault(node, LinkStats())
        fault_events = [
            FaultEvent(Transfer(a, b, ch), t, kind, subject)
            for a, b, ch, t, kind, subject in sorted(
                fault_records, key=lambda r: (r[3], r[0], r[1])
            )
        ]
        if missing and not (fault_events or self.on_fault == "report"):
            stuck = [
                (node, sorted(map(repr, chunks))[:4])
                for node, chunks in sorted(missing.items())[:4]
            ]
            raise RuntimeError(
                f"runtime deadlocked with {len(missing)} nodes "
                f"starved, e.g. {stuck}"
            )
        stats = LinkStats.merged(per_node.values())
        start_times.sort()
        merged_trace = (
            merge_shard_traces(shard_traces) if shard_traces else None
        )
        if fault_events and (missing or self.on_fault == "report"):
            for shard, s in enumerate(summaries):
                lost.extend(
                    Transfer(node, dst, ch)
                    for node, dst, ch in s["leftovers"]
                )
            return DegradedResult(
                time=finish,
                holdings=holdings,
                link_stats=stats,
                fault_events=fault_events,
                undelivered=undelivered_map(lost, holdings),
                transfers_executed=len(start_times),
                transfers_lost=len(lost),
                start_times=start_times,
            )
        return RuntimeResult(
            time=finish,
            holdings=holdings,
            link_stats=stats,
            start_times=start_times,
            transfers_executed=len(start_times),
            per_node_stats=per_node,
            fault_events=fault_events,
            trace=merged_trace,
            shard_traces=shard_traces or None,
            sharding=self.stats,
        )


class _WorkerFailed(Exception):
    def __init__(self, payload: dict):
        super().__init__(payload.get("message", "worker failed"))
        self.payload = payload


def run_sharded(
    cube: Hypercube,
    program: ClusterProgram,
    machine: MachineParams | None = None,
    faults: FaultPlan | None = None,
    on_fault: str = "raise",
    trace: bool = False,
    workers: int = 2,
    start_method: str | None = None,
) -> RuntimeResult | DegradedResult:
    """Execute a cluster program across ``workers`` shard processes."""
    cluster = ShardedCluster(
        cube,
        program,
        machine=machine,
        faults=faults,
        on_fault=on_fault,
        trace=trace,
        workers=workers,
        start_method=start_method,
    )
    return cluster.run()
