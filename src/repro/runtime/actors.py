"""The virtual cluster: node actors, the kernel, and the drain loop.

Execution model
---------------
Every hypercube node is a :class:`NodeActor` — an asyncio coroutine
with an inbox, a wake event, and its :class:`~repro.runtime.rules.
NodeProgram`.  Actors know nothing global: they submit a planned send
to the kernel the moment its payload is locally held, and otherwise
wait for deliveries.  The :class:`Kernel` owns the shared physics —
the :class:`~repro.runtime.clock.VirtualClock`, the
:class:`~repro.runtime.channels.PortAdmission` capacity, per-link
serialization, and the fault plan — and advances virtual time only
when every actor is quiescent.

Determinism
-----------
asyncio interleaving never influences results: all contention is
resolved by the priority keys of :mod:`repro.runtime.rules`, and the
kernel admits competing sends in key order within each coalesced
instant, mirroring :func:`repro.sim.engine.run_async` exactly.  The
differential harness (:mod:`repro.runtime.validate`) asserts
completion times, link counters, and start-time profiles identical to
the engine's.

Fault handling
--------------
``on_fault="raise"`` and ``"report"`` mirror the engine.  The
runtime-only ``"repair"`` mode adds the paper's §6-style degraded
operation: when the drain starves with nodes still missing chunks, the
clock advances past a receive-timeout, incomplete actors report their
missing chunks to the source over the (zero-virtual-cost) control
plane, and the source answers with a repair program routed down the
survivor spanning tree of the faulted cube.  Repair rounds repeat
until delivery completes or stops making progress.
"""

from __future__ import annotations

import asyncio
import heapq
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter

from repro.obs.instruments import runtime_run_finished
from repro.routing.fault_aware import survivor_broadcast_tree
from repro.routing.scheduler import greedy_partition
from repro.runtime.channels import PortAdmission
from repro.runtime.clock import VirtualClock
from repro.runtime.rules import (
    ClusterProgram,
    NodeProgram,
    PlannedSend,
    build_cluster_program,
)
from repro.runtime.trace import RuntimeTrace
from repro.sim.faults import (
    DegradedResult,
    FaultError,
    FaultEvent,
    FaultPlan,
    undelivered_map,
)
from repro.sim.machine import MachineParams
from repro.sim.ports import PortModel
from repro.sim.schedule import Chunk, Transfer
from repro.sim.trace import LinkStats
from repro.topology.hypercube import Hypercube

__all__ = [
    "NodeActor",
    "Kernel",
    "VirtualCluster",
    "RuntimeResult",
    "run_collective",
    "RUNTIME_FAULT_MODES",
]

_EPS = 1e-12

RUNTIME_FAULT_MODES = ("raise", "report", "repair")


@dataclass
class RuntimeResult:
    """Outcome of a runtime execution; field-compatible with
    :class:`repro.sim.engine.AsyncResult` plus runtime extras.

    Attributes:
        time: completion time of the last transfer (virtual clock).
        holdings: chunk ids held by every node at the end.
        link_stats: merged per-edge traffic counters.
        start_times: start instants of executed transfers, ascending.
        transfers_executed: number of transfers run.
        per_node_stats: each sender's own :class:`LinkStats`.
        fault_events: faults hit during execution (repair mode may
            still complete delivery after these).
        repair_rounds: timeout/repair cycles that ran (repair mode).
        trace: structured event trace, when tracing was enabled.
        shard_traces: per-shard traces of a sharded run (``trace`` is
            then their time-ordered merge).
        sharding: clock-protocol telemetry of a sharded run
            (:class:`repro.runtime.sharded.ShardRunStats`).
    """

    time: float
    holdings: dict[int, set[Chunk]]
    link_stats: LinkStats
    start_times: list[float] = field(default_factory=list)
    transfers_executed: int = 0
    per_node_stats: dict[int, LinkStats] = field(default_factory=dict)
    fault_events: list[FaultEvent] = field(default_factory=list)
    repair_rounds: int = 0
    trace: RuntimeTrace | None = None
    shard_traces: dict[int, RuntimeTrace] | None = None
    sharding: object | None = None


@dataclass(slots=True)
class _SubmittedSend:
    key: tuple
    src: int
    dst: int
    chunks: frozenset
    elems: int
    cost: float
    port: int


class NodeActor:
    """One hypercube node: local program, local holdings, local rules."""

    __slots__ = (
        "cluster",
        "node",
        "held",
        "expected",
        "pending",
        "cancelled",
        "inbox",
        "wake",
        "stats",
        "stopped",
        "_expect_reports",
        "_reports",
    )

    def __init__(self, cluster: "VirtualCluster", program: NodeProgram):
        self.cluster = cluster
        self.node = program.node
        self.held: dict[Chunk, float] = {c: 0.0 for c in program.initial}
        self.expected = program.expected
        #: planned sends not yet released to the kernel (payload-gated)
        self.pending: list[PlannedSend] = list(program.sends)
        #: phase-1 sends dropped by a receive-timeout (superseded by repair)
        self.cancelled: list[PlannedSend] = []
        self.inbox: deque = deque()
        self.wake = asyncio.Event()
        self.stats = LinkStats()
        self.stopped = False
        # coordinator-only state (populated on the source's actor)
        self._expect_reports: int | None = None
        self._reports: dict[int, frozenset] = {}

    def missing(self) -> set[Chunk]:
        return {c for c in self.expected if c not in self.held}

    async def run(self) -> None:
        kernel = self.cluster.kernel
        inbox = self.inbox
        popleft = inbox.popleft
        handle = self._handle
        task_done = kernel.task_done
        wake = self.wake
        while True:
            await wake.wait()
            wake.clear()
            if self.stopped:
                return
            while inbox:
                msg = popleft()
                try:
                    handle(msg)
                finally:
                    task_done()

    # -- local decision logic (synchronous between awaits) -----------

    def _handle(self, msg: tuple) -> None:
        kind = msg[0]
        if kind == "start":
            self._submit_enabled()
        elif kind == "deliver":
            _, chunks, time = msg
            held = self.held
            for c in chunks:
                if c not in held:
                    held[c] = time
            self._submit_enabled()
        elif kind == "timeout":
            # Receive timeout fired: phase-1 forwarding below this node
            # is starved.  Drop unreleased sends (repair supersedes
            # them) and report what is missing to the coordinator.
            self.cancelled.extend(self.pending)
            self.pending = []
            gone = self.missing()
            if gone:
                self.cluster.post(
                    self.cluster.program.source,
                    ("missing", self.node, frozenset(gone)),
                )
        elif kind == "expect-reports":
            self._expect_reports = msg[1]
            self._maybe_repair()
        elif kind == "missing":
            _, node, chunks = msg
            self._reports[node] = chunks
            self._maybe_repair()
        elif kind == "repair-plan":
            # Payload-gate repair relays exactly like phase-1 sends.
            self.pending.extend(msg[1])
            self._submit_enabled()
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown actor message {kind!r}")

    def _submit_enabled(self) -> None:
        if not self.pending:
            return
        submit = self.cluster.kernel.submit
        node = self.node
        held = self.held
        still: list[PlannedSend] = []
        for send in self.pending:
            if all(c in held for c in send.chunks):
                submit(node, send)
            else:
                still.append(send)
        self.pending = still

    # -- coordinator logic (runs on the source's actor) --------------

    def _maybe_repair(self) -> None:
        if self._expect_reports is None:
            return
        if len(self._reports) < self._expect_reports:
            return
        reports, self._reports = self._reports, {}
        self._expect_reports = None
        plan = self._build_repair(reports)
        for node, sends in plan.items():
            if node == self.node:
                self.pending.extend(sends)
            else:
                self.cluster.post(node, ("repair-plan", sends))
        self._submit_enabled()

    def _build_repair(
        self, reports: dict[int, frozenset]
    ) -> dict[int, list[PlannedSend]]:
        """Survivor-tree repair program for the reported missing chunks.

        Routes each missing chunk from the source down the survivor
        spanning tree of the faulted cube (the §6 fallback), bundling
        per (edge, chunk set) under the packet bound.  Unreachable
        nodes stay unrepaired — the caller's progress check terminates.
        """
        cluster = self.cluster
        try:
            tree = survivor_broadcast_tree(
                cluster.cube, self.node, cluster.faults, partial=True
            )
        except FaultError:
            return {}
        covered = tree.covered
        sizes = cluster.program.chunk_sizes
        # (depth of sender, sender, receiver) -> chunks crossing that edge
        bundles: dict[tuple[int, int, int], set] = {}
        for node, chunks in sorted(reports.items()):
            if node not in covered:
                continue
            path = [node]
            v = node
            while v != self.node:
                parent = tree.parent(v)
                if parent is None:
                    break
                v = parent
                path.append(v)
            else:
                path.reverse()
                for depth in range(len(path) - 1):
                    bundles.setdefault(
                        (depth, path[depth], path[depth + 1]), set()
                    ).update(chunks)
        plan: dict[int, list[PlannedSend]] = {}
        for (depth, u, v), chunks in sorted(
            bundles.items(), key=lambda kv: kv[0]
        ):
            ordered = sorted(chunks, key=repr)
            groups = greedy_partition(
                ordered, sizes, cluster.packet_elems
            )
            for m, group in enumerate(groups):
                plan.setdefault(u, []).append(
                    PlannedSend((depth, u, v, m), v, frozenset(group))
                )
        return plan


class Kernel:
    """Shared physics: clock, channels, links, faults, telemetry."""

    def __init__(
        self,
        cluster: "VirtualCluster",
        machine: MachineParams,
        port_model: PortModel,
    ):
        self.cluster = cluster
        self.machine = machine
        self.port_model = port_model
        self.clock = VirtualClock()
        self.admission = PortAdmission(port_model, machine.overlap)
        self._sends: dict[tuple, _SubmittedSend] = {}
        self._cost_of: dict[int, float] = {}
        # (end, seq, dst, chunks) pending arrival at the destination actor
        self._deliveries: list[tuple[float, int, int, frozenset]] = []
        self._dseq = 0
        self._dirty: set = set()
        self.epoch = 0
        self.finish = 0.0
        self.start_times: list[float] = []
        self.fault_events: list[FaultEvent] = []
        self.lost: list[Transfer] = []
        self._active = 0
        self._quiescent = asyncio.Event()
        self._quiescent.set()

    # -- actor-facing API --------------------------------------------

    def submit(self, node: int, send: PlannedSend) -> None:
        """Release a payload-ready planned send into admission.

        The key is namespaced by the current epoch so that repair
        traffic (epoch >= 1) always ranks below phase-1 traffic.
        """
        key = (self.epoch, *send.key)
        sizes = self.cluster.program.chunk_sizes
        elems = sum(sizes[c] for c in send.chunks)
        cost = self._cost_of.get(elems)
        if cost is None:
            cost = self._cost_of[elems] = self.machine.send_cost(elems)
        dst = send.dst
        self._sends[key] = _SubmittedSend(
            key=key,
            src=node,
            dst=dst,
            chunks=send.chunks,
            elems=elems,
            cost=cost,
            # adjacent addresses differ in exactly one bit; its index is
            # the connecting port (== cube.port_towards without checks)
            port=(node ^ dst).bit_length() - 1,
        )
        self.clock.push_submission(key)

    def task_done(self) -> None:
        self._active -= 1
        if self._active == 0:
            self._quiescent.set()

    # -- drain loop ---------------------------------------------------

    async def drain(self) -> None:
        """Run virtual time forward until no live event remains."""
        clock = self.clock
        pop_batch = clock.pop_batch
        examine = self._examine
        while True:
            if clock.batch_empty:
                self._sweep_dirty()
                if not clock.advance():
                    return
                if clock.due_deliveries:
                    await self._flush_deliveries()
            item = pop_batch()
            if item is None:
                continue  # instant held only deliveries; advance again
            examine(item[0])

    def _sweep_dirty(self) -> None:
        # Blocked sends' channel constraints can be overlap-release
        # points that exist nowhere else in the event stream, yet later
        # serve as the instant another send's start snaps to — push
        # them as pure wakes, exactly like the engine's rescan.
        if not self._dirty:
            return
        clock = self.clock
        now = clock.now
        is_done = clock.is_done
        push_wake = clock.push_wake
        sends = self._sends
        earliest_start = self.admission.earliest_start
        seen: set = set()
        for ch in self._dirty:
            for key in list(ch.blocked):
                if is_done(key):
                    ch.blocked.discard(key)
                    continue
                if key in seen:
                    continue
                seen.add(key)
                t = sends[key]
                push_wake(earliest_start(t.src, t.dst, t.port, now))
        self._dirty.clear()

    def _examine(self, key: tuple) -> None:
        clock = self.clock
        now = clock.now
        t = self._sends[key]
        actor = self.cluster.actors[t.src]
        # Actors only submit held payloads, so readiness can lag `now`
        # only through sub-instant float drift; keep the engine's guard.
        ready = 0.0
        for c in t.chunks:
            a = actor.held[c]
            if a > ready:
                ready = a
        if ready > now + _EPS:
            clock.push_exam(key, ready)
            return

        port = t.port
        start = self.admission.earliest_start(t.src, t.dst, port, now)
        if start > now + _EPS:
            self.admission.block(key, t.src, t.dst)
            clock.push_exam(key, start)
            return

        faults = self.cluster.faults
        if faults is not None:
            hit = faults.blocks(t.src, t.dst, start)
            if hit is not None:
                kind, subject = hit
                transfer = Transfer(t.src, t.dst, t.chunks)
                if self.cluster.on_fault == "raise":
                    raise FaultError(
                        f"transfer {t.src}->{t.dst} blocked by dead {kind} "
                        f"{subject} at t={start:.6g}; pending chunks "
                        f"{sorted(map(repr, t.chunks))[:4]}",
                        edge=(t.src, t.dst),
                        node=subject if kind == "node" else None,
                        time=start,
                        chunks=t.chunks,
                    )
                self.fault_events.append(
                    FaultEvent(transfer, start, kind, subject)
                )
                self.lost.append(transfer)
                clock.mark_done(key)
                if self.cluster.trace is not None:
                    self.cluster.trace.add_fault(
                        t.src, t.dst, start, kind, subject
                    )
                return

        end = start + t.cost
        for ch in self.admission.occupy(key, t.src, t.dst, port, start, end):
            self._dirty.add(ch)
        if not self.admission.all_port:
            clock.push_wake(start + (1.0 - self.machine.overlap) * t.cost)
        clock.push_wake(end)
        clock.push_delivery(end)
        heapq.heappush(
            self._deliveries, (end, self._dseq, t.dst, t.chunks)
        )
        self._dseq += 1
        actor.stats.record(t.src, t.dst, t.elems)
        self.start_times.append(start)
        if end > self.finish:
            self.finish = end
        clock.mark_done(key)
        if self.cluster.trace is not None:
            self.cluster.trace.add_transfer(
                t.src, t.dst, port, start, end, t.elems, t.chunks
            )

    async def _flush_deliveries(self) -> None:
        now = self.clock.now
        while self._deliveries and self._deliveries[0][0] <= now + _EPS:
            end, _, dst, chunks = heapq.heappop(self._deliveries)
            self.cluster.post(dst, ("deliver", chunks, end))
        await self.wait_quiescent()

    async def wait_quiescent(self) -> None:
        while self._active:
            self._quiescent.clear()
            await self._quiescent.wait()


class VirtualCluster:
    """A hypercube of actors executing one collective end-to-end."""

    def __init__(
        self,
        cube: Hypercube,
        program: ClusterProgram,
        machine: MachineParams | None = None,
        faults: FaultPlan | None = None,
        on_fault: str = "raise",
        detect_timeout: float | None = None,
        trace: bool = False,
    ):
        if on_fault not in RUNTIME_FAULT_MODES:
            raise ValueError(
                f"on_fault must be one of {RUNTIME_FAULT_MODES}, "
                f"got {on_fault!r}"
            )
        self.cube = cube
        self.program = program
        self.machine = machine or MachineParams()
        self.faults = faults
        self.on_fault = on_fault
        self.packet_elems = max(program.chunk_sizes.values(), default=1)
        self.detect_timeout = (
            detect_timeout
            if detect_timeout is not None
            else 2.0 * self.machine.send_cost(self.packet_elems)
        )
        self.trace = RuntimeTrace() if trace else None
        self.kernel = Kernel(self, self.machine, program.port_model)
        self.actors = {
            node: NodeActor(self, prog)
            for node, prog in program.programs.items()
        }
        self.repair_rounds = 0
        self.receive_timeouts = 0

    # -- message plane (zero virtual cost, in-instant) ----------------

    def post(self, node: int, msg: tuple) -> None:
        actor = self.actors[node]
        actor.inbox.append(msg)
        self.kernel._active += 1
        actor.wake.set()

    # -- execution ----------------------------------------------------

    def run(self) -> RuntimeResult | DegradedResult:
        """Execute the collective; blocking wrapper over asyncio."""
        t0 = perf_counter()
        try:
            return asyncio.run(self._execute())
        finally:
            # Flushed on every exit (FaultError and deadlock included);
            # the kernel state carries whatever actually ran.
            kernel = self.kernel
            runtime_run_finished(
                packets=len(kernel.start_times),
                elems=sum(
                    a.stats.total_elems() for a in self.actors.values()
                ),
                seconds=perf_counter() - t0,
                timeouts=self.receive_timeouts,
                repair_rounds=self.repair_rounds,
                faulted=len(kernel.lost),
            )

    async def _execute(self) -> RuntimeResult | DegradedResult:
        tasks = [
            asyncio.ensure_future(actor.run())
            for actor in self.actors.values()
        ]
        try:
            for node in self.actors:
                self.post(node, ("start",))
            await self.kernel.wait_quiescent()
            while True:
                await self.kernel.drain()
                incomplete = [
                    a for a in self.actors.values() if a.missing()
                ]
                if not incomplete:
                    break
                if self.faults is None or not (
                    self.kernel.fault_events or self.on_fault == "repair"
                ):
                    stuck = [
                        (a.node, sorted(map(repr, a.missing()))[:4])
                        for a in incomplete[:4]
                    ]
                    raise RuntimeError(
                        f"runtime deadlocked with {len(incomplete)} nodes "
                        f"starved, e.g. {stuck}"
                    )
                if self.on_fault == "report":
                    break  # engine parity: stop at the starved frontier
                if not await self._repair_round(incomplete):
                    break  # no progress possible; give up degraded
        finally:
            for actor in self.actors.values():
                actor.stopped = True
                actor.wake.set()
            await asyncio.gather(*tasks)
        return self._result()

    async def _repair_round(self, incomplete: list[NodeActor]) -> bool:
        """One receive-timeout + survivor-tree repair cycle.

        Returns ``False`` when the cycle cannot make progress (every
        missing chunk sits on an unreachable node, or the round failed
        to submit any repair traffic).
        """
        if self.repair_rounds >= self.cube.num_nodes:
            return False
        before = sum(len(a.missing()) for a in incomplete)
        kernel = self.kernel
        self.repair_rounds += 1
        kernel.epoch += 1
        # Idle-gated receive timeouts: nothing is in flight, so every
        # incomplete node's timer fires at quiet-time + timeout.
        kernel.clock.now = kernel.finish + self.detect_timeout
        if self.trace is not None:
            self.trace.add_timeout(
                kernel.clock.now, [a.node for a in incomplete]
            )
        self.post(self.program.source, ("expect-reports", len(incomplete)))
        self.receive_timeouts += len(incomplete)
        for actor in incomplete:
            self.post(actor.node, ("timeout",))
        await kernel.wait_quiescent()
        await kernel.drain()
        after = sum(len(a.missing()) for a in self.actors.values())
        return after < before

    # -- result assembly ----------------------------------------------

    def _result(self) -> RuntimeResult | DegradedResult:
        kernel = self.kernel
        holdings = {
            node: set(actor.held) for node, actor in self.actors.items()
        }
        start_times = sorted(kernel.start_times)  # stable: ties keep order
        per_node = {
            node: actor.stats for node, actor in self.actors.items()
        }
        stats = LinkStats.merged(per_node.values())
        still_missing = any(a.missing() for a in self.actors.values())
        if kernel.fault_events and (
            still_missing or self.on_fault == "report"
        ):
            lost = list(kernel.lost)
            for actor in self.actors.values():
                for send in (*actor.pending, *actor.cancelled):
                    lost.append(
                        Transfer(actor.node, send.dst, send.chunks)
                    )
            return DegradedResult(
                time=kernel.finish,
                holdings=holdings,
                link_stats=stats,
                fault_events=kernel.fault_events,
                undelivered=undelivered_map(lost, holdings),
                transfers_executed=len(start_times),
                transfers_lost=len(lost),
                start_times=start_times,
            )
        return RuntimeResult(
            time=kernel.finish,
            holdings=holdings,
            link_stats=stats,
            start_times=start_times,
            transfers_executed=len(start_times),
            per_node_stats=per_node,
            fault_events=kernel.fault_events,
            repair_rounds=self.repair_rounds,
            trace=self.trace,
        )


def run_collective(
    cube: Hypercube,
    op: str,
    algorithm: str,
    source: int,
    message_elems: int,
    packet_elems: int,
    port_model: PortModel,
    machine: MachineParams | None = None,
    order: str = "port",
    subtree_order: str = "depth_first",
    faults: FaultPlan | None = None,
    on_fault: str = "raise",
    detect_timeout: float | None = None,
    trace: bool = False,
    workers: int | None = None,
    start_method: str | None = None,
) -> RuntimeResult | DegradedResult:
    """Build local programs and execute them on a virtual cluster.

    The distributed counterpart of generating a schedule and replaying
    it through :func:`repro.sim.engine.run_async` — same parameters,
    same result shape, but every routing decision is taken by the node
    actors from their own addresses.

    ``workers`` > 1 executes the cluster sharded across that many
    processes (:mod:`repro.runtime.sharded`): a power of two up to the
    node count, or ``0`` for "largest power of two the machine has
    cores for".  ``start_method`` picks the ``multiprocessing`` start
    method (default ``fork``, env ``REPRO_START_METHOD``); the
    observables are bit-identical either way.
    """
    from repro.runtime.partition import resolve_workers

    k = resolve_workers(cube.dimension, workers)
    program = build_cluster_program(
        cube,
        op,
        algorithm,
        source,
        message_elems,
        packet_elems,
        port_model,
        order=order,
        subtree_order=subtree_order,
    )
    if k > 1:
        from repro.runtime.sharded import run_sharded

        return run_sharded(
            cube,
            program,
            machine=machine,
            faults=faults,
            on_fault=on_fault,
            trace=trace,
            workers=k,
            start_method=start_method,
        )
    cluster = VirtualCluster(
        cube,
        program,
        machine=machine,
        faults=faults,
        on_fault=on_fault,
        detect_timeout=detect_timeout,
        trace=trace,
    )
    return cluster.run()
