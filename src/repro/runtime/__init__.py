"""repro.runtime — a concurrent message-passing runtime for the
paper's distributed routing rules.

Where :mod:`repro.sim` generates a schedule centrally and replays it,
this package *executes* the algorithms the way the paper states them:
every hypercube node is an asyncio actor that derives its own
transmissions from its address and the operation parameters alone
(:mod:`~repro.runtime.rules`), submits them to a shared kernel
enforcing port-model capacity and link serialization
(:mod:`~repro.runtime.channels`, :mod:`~repro.runtime.actors`) over a
virtual clock with the event engine's exact timing semantics
(:mod:`~repro.runtime.clock`).  The differential harness
(:mod:`~repro.runtime.validate`) proves runtime executions identical
to engine replays across the whole parameter grid, and
:mod:`~repro.runtime.trace` streams per-packet events to JSONL or
Chrome ``trace_event`` timelines.
"""

from repro.runtime.actors import (
    Kernel,
    NodeActor,
    RuntimeResult,
    RUNTIME_FAULT_MODES,
    VirtualCluster,
    run_collective,
)
from repro.runtime.rules import (
    ClusterProgram,
    NodeProgram,
    PlannedSend,
    RUNTIME_BROADCAST_ALGORITHMS,
    RUNTIME_SCATTER_ALGORITHMS,
    build_cluster_program,
)
from repro.runtime.partition import PartitionMap, resolve_workers
from repro.runtime.sharded import (
    START_METHODS,
    ShardedCluster,
    ShardRunStats,
    run_sharded,
)
from repro.runtime.trace import (
    RuntimeTrace,
    TraceEvent,
    merge_shard_traces,
    shard_chrome_events,
    write_shard_chrome,
)
from repro.runtime.validate import (
    GridReport,
    differential_check,
    differential_grid,
    sharded_check,
)

__all__ = [
    "PartitionMap",
    "resolve_workers",
    "START_METHODS",
    "ShardedCluster",
    "ShardRunStats",
    "run_sharded",
    "merge_shard_traces",
    "shard_chrome_events",
    "write_shard_chrome",
    "sharded_check",
    "Kernel",
    "NodeActor",
    "RuntimeResult",
    "RUNTIME_FAULT_MODES",
    "VirtualCluster",
    "run_collective",
    "ClusterProgram",
    "NodeProgram",
    "PlannedSend",
    "RUNTIME_BROADCAST_ALGORITHMS",
    "RUNTIME_SCATTER_ALGORITHMS",
    "build_cluster_program",
    "RuntimeTrace",
    "TraceEvent",
    "GridReport",
    "differential_check",
    "differential_grid",
]
