"""Differential validation: runtime execution vs. engine replay.

The runtime claims that executing the paper's routing rules *locally*
(each actor deciding from its own address) reproduces the event
engine's replay of the centrally generated schedule **exactly** — same
virtual completion time, same per-link element and packet counts, same
final holdings, same multiset of transfer start instants.  This module
asserts that claim point by point over the full parameter grid.

MSBT under ``ONE_PORT_HALF`` and the one-port BST scatter are the
interesting cases: the central generator post-processes those
schedules (two-cycle rescheduling resp. ``list_schedule`` repacking),
so the transfer *order* differs from the runtime's local priority
order — yet under the default unit-cost machine both orders execute to
identical results, which this harness verifies empirically rather than
assuming.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.routing import (
    bst_scatter_schedule,
    msbt_broadcast_schedule,
    sbt_broadcast_schedule,
    sbt_scatter_schedule,
)
from repro.runtime.actors import run_collective
from repro.sim.engine import run_async
from repro.sim.machine import MachineParams
from repro.sim.ports import PortModel
from repro.topology.hypercube import Hypercube

__all__ = [
    "differential_check",
    "differential_grid",
    "sharded_check",
    "GridReport",
]

#: (op, algorithm) pairs the runtime implements
RUNTIME_OPS = (
    ("broadcast", "sbt"),
    ("broadcast", "msbt"),
    ("scatter", "sbt"),
    ("scatter", "bst"),
)

_GENERATORS = {
    ("broadcast", "sbt"): sbt_broadcast_schedule,
    ("broadcast", "msbt"): msbt_broadcast_schedule,
    ("scatter", "sbt"): sbt_scatter_schedule,
    ("scatter", "bst"): bst_scatter_schedule,
}


def _engine_initial(cube, op, source, sched):
    if op == "broadcast":
        return {source: set(sched.chunk_sizes)}
    # scatter: the source holds every destination's pieces
    return {source: set(sched.chunk_sizes)}


def differential_check(
    cube: Hypercube,
    op: str,
    algorithm: str,
    source: int,
    message_elems: int,
    packet_elems: int,
    port_model: PortModel,
    machine: MachineParams | None = None,
    workers: int | None = None,
    start_method: str | None = None,
) -> None:
    """Assert runtime == engine for one grid point.

    With ``workers`` the runtime side executes sharded across that many
    worker shards (``start_method`` selects the process launch mode, or
    ``"thread"`` for in-process workers), so the same assertions then
    prove the distributed clock protocol exact against the engine.
    Raises ``AssertionError`` naming the first differing observable.
    """
    machine = machine or MachineParams()
    gen = _GENERATORS[(op, algorithm)]
    sched = gen(cube, source, message_elems, packet_elems, port_model)
    engine = run_async(
        cube,
        sched,
        port_model,
        _engine_initial(cube, op, source, sched),
        machine=machine,
    )
    runtime = run_collective(
        cube,
        op,
        algorithm,
        source,
        message_elems,
        packet_elems,
        port_model,
        machine=machine,
        workers=workers,
        start_method=start_method,
    )
    where = (
        f"{op}/{algorithm} n={cube.dimension} source={source} "
        f"M={message_elems} B={packet_elems} {port_model.name}"
    )
    assert abs(runtime.time - engine.time) < 1e-9, (
        f"{where}: completion time {runtime.time!r} != {engine.time!r}"
    )
    assert runtime.link_stats.elems == engine.link_stats.elems, (
        f"{where}: per-link element counts differ"
    )
    assert runtime.link_stats.packets == engine.link_stats.packets, (
        f"{where}: per-link packet counts differ"
    )
    assert runtime.transfers_executed == engine.transfers_executed, (
        f"{where}: executed {runtime.transfers_executed} "
        f"!= {engine.transfers_executed} transfers"
    )
    assert runtime.holdings == engine.holdings, (
        f"{where}: final holdings differ"
    )
    rt, et = runtime.start_times, engine.start_times
    assert len(rt) == len(et) and all(
        abs(a - b) < 1e-9 for a, b in zip(rt, et)
    ), f"{where}: start-time profiles differ"


@dataclass
class GridReport:
    """Summary of a differential sweep."""

    points: int = 0
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def differential_grid(
    dims=(3, 4, 5, 6, 7, 8),
    messages=(1, 64, 1000),
    packets=(1, 32),
    port_models=(
        PortModel.ONE_PORT_HALF,
        PortModel.ONE_PORT_FULL,
        PortModel.ALL_PORT,
    ),
    ops=RUNTIME_OPS,
    sources=(0,),
    machine: MachineParams | None = None,
    fail_fast: bool = True,
    workers: int | None = None,
    start_method: str | None = None,
) -> GridReport:
    """Run :func:`differential_check` over the full grid.

    With ``fail_fast`` (default) the first failing point raises; with
    it off, all failures are collected in the returned report.
    ``workers``/``start_method`` pass through to every check, sweeping
    the grid against the sharded runtime instead of the single-process
    one.
    """
    report = GridReport()
    for n in dims:
        cube = Hypercube(n)
        for op, algorithm in ops:
            for source in sources:
                for M in messages:
                    for B in packets:
                        for pm in port_models:
                            report.points += 1
                            try:
                                differential_check(
                                    cube, op, algorithm, source,
                                    M, B, pm, machine=machine,
                                    workers=workers,
                                    start_method=start_method,
                                )
                            except AssertionError as exc:
                                if fail_fast:
                                    raise
                                report.failures.append(str(exc))
    return report


def sharded_check(
    cube: Hypercube,
    op: str,
    algorithm: str,
    source: int,
    message_elems: int,
    packet_elems: int,
    port_model: PortModel,
    machine: MachineParams | None = None,
    workers_grid: tuple[int, ...] = (1, 2, 4),
    start_method: str | None = None,
) -> None:
    """Assert sharded == single-process == engine for one grid point.

    Runs the single-process runtime once and the sharded runtime for
    every worker count in ``workers_grid`` (counts exceeding the node
    count are skipped), comparing each against the single-process
    observables — which :func:`differential_check` separately proves
    equal to the engine's.  Holdings and per-link counts must match
    exactly; times to 1e-9.
    """
    machine = machine or MachineParams()
    base = run_collective(
        cube, op, algorithm, source, message_elems, packet_elems,
        port_model, machine=machine,
    )
    # anchor the chain: single-process == engine at this point
    differential_check(
        cube, op, algorithm, source, message_elems, packet_elems,
        port_model, machine=machine,
    )
    for k in workers_grid:
        if k > cube.num_nodes:
            continue
        sharded = run_collective(
            cube, op, algorithm, source, message_elems, packet_elems,
            port_model, machine=machine,
            workers=k, start_method=start_method,
        )
        where = (
            f"{op}/{algorithm} n={cube.dimension} source={source} "
            f"M={message_elems} B={packet_elems} {port_model.name} "
            f"workers={k}"
        )
        assert abs(sharded.time - base.time) < 1e-9, (
            f"{where}: completion time {sharded.time!r} != {base.time!r}"
        )
        assert sharded.holdings == base.holdings, (
            f"{where}: final holdings differ"
        )
        assert sharded.link_stats.elems == base.link_stats.elems, (
            f"{where}: per-link element counts differ"
        )
        assert sharded.link_stats.packets == base.link_stats.packets, (
            f"{where}: per-link packet counts differ"
        )
        assert sharded.transfers_executed == base.transfers_executed, (
            f"{where}: executed {sharded.transfers_executed} "
            f"!= {base.transfers_executed} transfers"
        )
        st, bt = sharded.start_times, base.start_times
        assert len(st) == len(bt) and all(
            abs(a - b) < 1e-9 for a, b in zip(st, bt)
        ), f"{where}: start-time profiles differ"
