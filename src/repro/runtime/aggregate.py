"""TRAM-style aggregation of cross-partition records.

Charm++'s TRAM (and the VirtualRouter pattern in SNIPPETS.md #3)
amortizes per-message overhead by coalescing items headed for the same
destination PE into one buffer per tick.  The sharded runtime does the
same one level up: within a clock round, every record bound for a
given destination shard — cross-partition sends, shipped channel
state, admission results — lands in a per-destination buffer, and
``flush`` emits *one* frame per destination instead of one IPC message
per packet.  The aggregator also keeps the records/frames accounting
that feeds the ``repro_runtime_shard_*`` metrics (aggregation ratio =
records per frame actually achieved).
"""

from __future__ import annotations

from typing import Any

from repro.runtime import wire

__all__ = ["ShardAggregator"]


class ShardAggregator:
    """Per-destination-shard, per-tick record coalescing."""

    __slots__ = ("_buffers", "records", "frames")

    def __init__(self) -> None:
        self._buffers: dict[int, list[Any]] = {}
        #: records buffered over the aggregator's lifetime
        self.records = 0
        #: frames emitted over the aggregator's lifetime
        self.frames = 0

    def add(self, dest_shard: int, record: Any) -> None:
        """Buffer one record for ``dest_shard`` in the current tick."""
        self._buffers.setdefault(dest_shard, []).append(record)
        self.records += 1

    def extend(self, dest_shard: int, records: list[Any]) -> None:
        if not records:
            return
        self._buffers.setdefault(dest_shard, []).extend(records)
        self.records += len(records)

    @property
    def pending(self) -> int:
        return sum(len(buf) for buf in self._buffers.values())

    def flush(self, kind: int, tick: int) -> dict[int, bytes]:
        """Emit one frame per destination shard and clear the buffers.

        The frame payload is the record list in buffering order (the
        caller buffers in deterministic protocol order, so the frame
        bytes are canonical).
        """
        frames: dict[int, bytes] = {}
        for dest in sorted(self._buffers):
            records = self._buffers[dest]
            if not records:
                continue
            frames[dest] = wire.encode_frame(kind, tick, records)
            self.frames += 1
        self._buffers.clear()
        return frames

    @property
    def aggregation_ratio(self) -> float:
        """Mean records per emitted frame (0.0 before any flush)."""
        if not self.frames:
            return 0.0
        return self.records / self.frames
