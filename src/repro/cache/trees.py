"""Spanning-tree instance cache exploiting translation symmetry.

All tree families in :mod:`repro.trees` are *translation equivariant*
under their topology's automorphism: the tree rooted at ``s`` is the
source-0 tree with every address translated by ``s`` (XOR on the
hypercube — ``parent_s(i) = parent_0(i ^ s) ^ s``, §2 of the paper —
coordinate-wise addition mod ``k`` on the torus).  The cache therefore
builds one canonical instance per ``(class, topology[, j])`` at root 0
and derives any other root by translating the canonical
parents/children/levels/subtree-size maps — O(N) dict work instead of
re-running the family's construction logic per node.

Translated maps are injected into the instance ``__dict__``, which is
exactly where :class:`functools.cached_property` stores its result, so
every derived accessor on :class:`repro.trees.base.SpanningTree` picks
them up transparently.
"""

from __future__ import annotations

from typing import TypeVar

from repro.cache.disk import tree_disk
from repro.cache.lru import MISSING, LRUCache, caching_enabled
from repro.topology.base import Topology, topology_token
from repro.topology.hypercube import Hypercube
from repro.trees.base import SpanningTree
from repro.trees.msbt import EdgeReversedSBT, MSBTGraph

__all__ = ["cached_tree", "cached_msbt_graph"]

T = TypeVar("T", bound=SpanningTree)

#: canonical root-0 instances, keyed (qualname, topology token, extra)
_canonical = LRUCache("trees.canonical", maxsize=64)
#: translated instances, keyed (qualname, topology token, root, extra)
_instances = LRUCache("trees.instances", maxsize=256)
#: MSBT graphs, keyed (n, source)
_msbt_graphs = LRUCache("trees.msbt_graphs", maxsize=64)

#: the cached_property names translated onto non-canonical instances
_TRANSLATED = ("parents_map", "children_map", "levels", "subtree_sizes")


def _build(cls: type[T], cube: Topology, root: int, extra: tuple) -> T:
    if cls is EdgeReversedSBT:
        return cls(cube, *extra, root)  # type: ignore[return-value]
    return cls(cube, root, *extra)


def _translate(canonical: SpanningTree, instance: SpanningTree, s: int) -> None:
    """Inject the canonical maps translated by ``s`` into ``instance``."""
    tr = canonical.cube.translate
    c_parents = canonical.parents_map
    c_children = canonical.children_map
    c_levels = canonical.levels
    c_sizes = canonical.subtree_sizes
    instance.__dict__["parents_map"] = {
        tr(i, s): (None if p is None else tr(p, s)) for i, p in c_parents.items()
    }
    instance.__dict__["children_map"] = {
        tr(i, s): tuple(sorted(tr(c, s) for c in kids))
        for i, kids in c_children.items()
    }
    instance.__dict__["levels"] = {tr(i, s): lvl for i, lvl in c_levels.items()}
    instance.__dict__["subtree_sizes"] = {
        tr(i, s): sz for i, sz in c_sizes.items()
    }


def cached_tree(cls: type[T], cube: Topology, root: int = 0, *extra) -> T:
    """A possibly-cached instance of tree family ``cls`` rooted at ``root``.

    Args:
        cls: a :class:`~repro.trees.base.SpanningTree` subclass whose
            construction is deterministic in ``(cube, root, *extra)``
            and translation-equivariant under ``cube.translate``.
        cube: host topology.
        root: tree root (the collective's source node).
        extra: extra constructor arguments identifying the member of
            the family — e.g. the ERSBT tree index ``j``.

    With caching disabled this simply constructs the tree directly.
    """
    if not caching_enabled():
        return _build(cls, cube, root, extra)
    topo = topology_token(cube)
    key = (cls.__qualname__, topo, root, extra)
    inst = _instances.get(key)
    if inst is not MISSING:
        return inst
    ckey = (cls.__qualname__, topo, extra)
    canonical = _canonical.get(ckey)
    if canonical is MISSING:
        canonical = tree_disk.fetch(ckey)
        if canonical is MISSING:
            canonical = _build(cls, cube, 0, extra)
            # materialize the maps the translation reads (and persists)
            for name in _TRANSLATED:
                getattr(canonical, name)
            tree_disk.store(ckey, canonical)
        _canonical.put(ckey, canonical)
    if root == 0:
        inst = canonical
    else:
        inst = _build(cls, cube, root, extra)
        _translate(canonical, inst, root)
    _instances.put(key, inst)
    return inst


def cached_msbt_graph(cube: Hypercube, source: int = 0) -> MSBTGraph:
    """A possibly-cached :class:`MSBTGraph`, its ERSBTs shared via the cache.

    The graph object itself is cheap; the win is that its ``n`` member
    trees come from :func:`cached_tree`, so their structural maps are
    translations of the canonical source-0 ERSBTs.
    """
    if not caching_enabled():
        return MSBTGraph(cube, source)
    key = (cube.dimension, source)
    graph = _msbt_graphs.get(key)
    if graph is not MISSING:
        return graph
    graph = MSBTGraph(cube, source)
    graph._trees = tuple(
        cached_tree(EdgeReversedSBT, cube, source, j)
        for j in range(cube.dimension)
    )
    _msbt_graphs.put(key, graph)
    return graph
