"""Keyed LRU caches with a process-wide registry and an on/off switch.

Every cache created through :class:`LRUCache` registers itself under a
name so callers can inspect hit rates (:func:`cache_stats`) or reset
state (:func:`clear_caches`) — important for benchmarks that want to
measure cold-path cost.  Caching can be disabled globally, either via
the ``REPRO_CACHE`` environment variable (``0``/``off``/``false``) or
temporarily with the :func:`disabled` context manager.

Enablement precedence: ``REPRO_CACHE`` is read once at import time;
after that, the most recent :func:`configure` call wins.  A later
change to the environment variable is picked up only by an explicit
``configure(from_env=True)`` (processes spawned by the sweep executor
import fresh, so they see the current environment automatically).

The registry also admits non-LRU members (the on-disk layer in
:mod:`repro.cache.disk`) — anything with ``stats()`` and ``clear()``
shows up in :func:`cache_stats` / :func:`clear_caches`.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Hashable, Iterator

from repro.obs.instruments import CACHE_OPS

__all__ = [
    "LRUCache",
    "MISSING",
    "cache_stats",
    "caching_enabled",
    "clear_caches",
    "configure",
    "disabled",
]

#: sentinel distinguishing "not cached" from a cached ``None``
MISSING = object()

#: every stats-bearing cache in the process (LRUs and the disk layer)
_REGISTRY: "OrderedDict[str, Any]" = OrderedDict()


def _env_enabled() -> bool:
    value = os.environ.get("REPRO_CACHE", "1").strip().lower()
    return value not in ("0", "off", "false", "no")


_ENABLED = _env_enabled()


class LRUCache:
    """A named, bounded mapping with least-recently-used eviction.

    Args:
        name: registry name (must be unique per process; re-creating a
            cache under an existing name replaces the registry entry).
        maxsize: entries kept before the least recently used is evicted.
            ``None`` means unbounded.
    """

    def __init__(self, name: str, maxsize: int | None = 128):
        if maxsize is not None and maxsize < 1:
            raise ValueError(f"maxsize must be >= 1 or None, got {maxsize}")
        self.name = name
        self.maxsize = maxsize
        # Counters live in the observability registry (``always=True``:
        # they back the functional cache_stats() API, so they keep
        # counting while telemetry is disabled).  Re-creating a cache
        # under an existing name replaces the registry entry, so the
        # series restart at zero with it.
        self._hit = CACHE_OPS.labels(cache=name, op="hit")
        self._miss = CACHE_OPS.labels(cache=name, op="miss")
        self._evict = CACHE_OPS.labels(cache=name, op="eviction")
        for series in (self._hit, self._miss, self._evict):
            series.reset()
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        _REGISTRY[name] = self

    @property
    def hits(self) -> int:
        """Lookups served from the cache."""
        return self._hit.value

    @property
    def misses(self) -> int:
        """Lookups that fell through to generation."""
        return self._miss.value

    @property
    def evictions(self) -> int:
        """Entries dropped by the LRU bound."""
        return self._evict.value

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: Hashable) -> Any:
        """The cached value for ``key``, or :data:`MISSING`."""
        try:
            value = self._data[key]
        except KeyError:
            self._miss.inc()
            return MISSING
        self._data.move_to_end(key)
        self._hit.inc()
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Store ``key -> value``, evicting the LRU entry when full."""
        data = self._data
        if key in data:
            data.move_to_end(key)
        data[key] = value
        if self.maxsize is not None and len(data) > self.maxsize:
            data.popitem(last=False)
            self._evict.inc()

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        self._data.clear()
        self._hit.reset()
        self._miss.reset()
        self._evict.reset()

    def stats(self) -> dict[str, int | None]:
        """Counters snapshot: size, maxsize, hits, misses, evictions."""
        return {
            "size": len(self._data),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def __repr__(self) -> str:
        return (
            f"LRUCache({self.name!r}, size={len(self)}/{self.maxsize}, "
            f"hits={self.hits}, misses={self.misses})"
        )


def caching_enabled() -> bool:
    """True when the cache layer is active."""
    return _ENABLED


def configure(enabled: bool | None = None, *, from_env: bool = False) -> bool:
    """Turn the cache layer on or off process-wide.

    Args:
        enabled: the new state.  ``configure(False)`` / ``configure(True)``
            set it explicitly.
        from_env: re-read ``REPRO_CACHE`` and adopt its value.  The
            variable is otherwise read only once, at import — changing
            it afterwards has no effect until this is called.

    Exactly one of the two must be given; the most recent call wins.
    Returns the resulting state.
    """
    global _ENABLED
    if from_env:
        if enabled is not None:
            raise ValueError("pass either enabled=... or from_env=True, not both")
        _ENABLED = _env_enabled()
    else:
        if enabled is None:
            raise ValueError("configure() needs enabled=... or from_env=True")
        _ENABLED = bool(enabled)
    return _ENABLED


@contextmanager
def disabled() -> Iterator[None]:
    """Context manager that bypasses all caches inside the block.

    Used by the cold-path benchmarks and the cached-vs-uncached
    equivalence tests; existing entries are kept, only lookups and
    stores are bypassed.
    """
    global _ENABLED
    prev = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = prev


def cache_stats() -> dict[str, dict[str, int | None]]:
    """Stats of every registered cache, keyed by cache name."""
    return {name: cache.stats() for name, cache in _REGISTRY.items()}


def clear_caches() -> None:
    """Clear every registered cache (entries and counters)."""
    for cache in _REGISTRY.values():
        cache.clear()
