"""Optional on-disk cache sitting *under* the in-memory LRUs.

The in-memory layer (:mod:`repro.cache.lru`) dies with the process, so
every worker spawned by the sweep executor — and every fresh CI run —
regenerates the same MSBT/BST trees and schedules from scratch.  This
module persists those artifacts: a :class:`DiskCache` maps the existing
``cache_token()``-normalized keys to pickle files in a user-chosen
directory, and the schedule/tree caches consult it on every in-memory
miss before falling back to real generation.

Enablement and layering:

* Disabled unless a directory is set — via the ``REPRO_CACHE_DIR``
  environment variable (read live, so child processes inherit it), an
  explicit :func:`configure_disk` call, or the :func:`disk_cache`
  context manager.  An explicit configuration overrides the
  environment until ``configure_disk(from_env=True)``.
* :func:`repro.cache.disabled` (and ``REPRO_CACHE=0``) bypasses this
  layer too: the disk lookups live inside the memoization wrappers,
  which return early when caching is off.
* Keys embed the library version, so a new release never reads stale
  artifacts; unreadable or truncated files are dropped and counted as
  misses, never propagated.
* Writes go to a temp file in the target directory followed by
  ``os.replace``, so concurrent sweep workers racing on the same key
  each land a complete file and readers never observe a partial one.

The two instances (``cache.disk.schedules``, ``cache.disk.trees``)
register in the same registry as the LRUs: :func:`repro.cache.cache_stats`
reports their hit/miss/store counters and :func:`repro.cache.clear_caches`
resets the counters (the files themselves persist across that sweep-wide
reset; purge a cache's files explicitly with ``clear(files=True)``).

Unbounded growth is capped by ``max_entries`` (per instance, or the
``REPRO_CACHE_MAX_ENTRIES`` environment variable for all instances,
read live): each successful store evicts the least recently *used*
files beyond the bound — fetches refresh a file's mtime, so hot
artifacts survive while stale ones age out.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

from repro._version import __version__
from repro.cache.lru import MISSING, _REGISTRY
from repro.obs.instruments import CACHE_DISK_BYTES, CACHE_OPS

__all__ = [
    "DiskCache",
    "configure_disk",
    "disk_cache",
    "disk_cache_dir",
    "schedule_disk",
    "tree_disk",
]

#: sentinel: "no explicit override — follow REPRO_CACHE_DIR"
_FOLLOW_ENV = object()

_override: Any = _FOLLOW_ENV


def disk_cache_dir() -> Path | None:
    """The active disk-cache directory, or ``None`` when disabled.

    An explicit :func:`configure_disk` setting wins; otherwise
    ``REPRO_CACHE_DIR`` is consulted on every call (so tests and child
    processes see the current environment, not an import-time snapshot).
    """
    if _override is not _FOLLOW_ENV:
        return _override
    value = os.environ.get("REPRO_CACHE_DIR", "").strip()
    return Path(value) if value else None


def configure_disk(
    path: str | os.PathLike | None = None, *, from_env: bool = False
) -> Path | None:
    """Point the disk layer at ``path`` (``None`` disables it).

    ``configure_disk(from_env=True)`` drops any explicit setting and
    returns to following ``REPRO_CACHE_DIR``.  Returns the resulting
    directory (or ``None``).
    """
    global _override
    if from_env:
        if path is not None:
            raise ValueError("pass either path or from_env=True, not both")
        _override = _FOLLOW_ENV
    else:
        _override = Path(path) if path is not None else None
    return disk_cache_dir()


@contextmanager
def disk_cache(path: str | os.PathLike | None) -> Iterator[Path | None]:
    """Temporarily set the disk-cache directory inside a ``with`` block."""
    global _override
    prev = _override
    _override = Path(path) if path is not None else None
    try:
        yield disk_cache_dir()
    finally:
        _override = prev


class DiskCache:
    """A named pickle-file cache keyed by stable token reprs.

    Args:
        name: registry name (shared with the LRU registry, so it shows
            in :func:`repro.cache.cache_stats`).
        subdir: subdirectory of the cache root holding this cache's
            files, keeping schedules and trees separable on disk.
        max_entries: keep at most this many files in the subdirectory,
            evicting the least recently used after each store.  ``None``
            (the default) falls back to ``REPRO_CACHE_MAX_ENTRIES``
            when set, else unbounded.

    Lookups return :data:`repro.cache.lru.MISSING` when the layer is
    disabled, the key is absent, or the file is unreadable; callers
    treat all three identically (generate and, when possible, store).
    """

    def __init__(self, name: str, subdir: str, max_entries: int | None = None):
        if max_entries is not None and max_entries < 1:
            raise ValueError(
                f"max_entries must be >= 1 or None, got {max_entries}"
            )
        self.name = name
        self.subdir = subdir
        self.max_entries = max_entries
        # Observability-registry counters (``always=True``: they back
        # the functional cache_stats() API); a new instance under the
        # same name restarts them, matching registry replacement.
        self._hit = CACHE_OPS.labels(cache=name, op="hit")
        self._miss = CACHE_OPS.labels(cache=name, op="miss")
        self._store = CACHE_OPS.labels(cache=name, op="store")
        self._error = CACHE_OPS.labels(cache=name, op="error")
        self._evictions_c = CACHE_OPS.labels(cache=name, op="eviction")
        self._bytes_read = CACHE_DISK_BYTES.labels(
            cache=name, direction="read"
        )
        self._bytes_written = CACHE_DISK_BYTES.labels(
            cache=name, direction="write"
        )
        for series in (
            self._hit, self._miss, self._store, self._error,
            self._evictions_c, self._bytes_read, self._bytes_written,
        ):
            series.reset()
        _REGISTRY[name] = self

    @property
    def hits(self) -> int:
        """Fetches served from disk."""
        return self._hit.value

    @property
    def misses(self) -> int:
        """Fetches that found no (usable) file."""
        return self._miss.value

    @property
    def stores(self) -> int:
        """Values persisted successfully."""
        return self._store.value

    @property
    def errors(self) -> int:
        """Unreadable files dropped and failed writes."""
        return self._error.value

    @property
    def evictions(self) -> int:
        """Files removed by the LRU entry bound."""
        return self._evictions_c.value

    def _effective_max_entries(self) -> int | None:
        if self.max_entries is not None:
            return self.max_entries
        value = os.environ.get("REPRO_CACHE_MAX_ENTRIES", "").strip()
        if not value:
            return None
        try:
            bound = int(value)
        except ValueError:
            return None
        return bound if bound >= 1 else None

    def _dir(self) -> Path | None:
        base = disk_cache_dir()
        return None if base is None else base / self.subdir

    def _entries(self) -> list[Path]:
        d = self._dir()
        if d is None:
            return []
        try:
            return [p for p in d.iterdir() if p.suffix == ".pkl"]
        except OSError:
            return []

    def _path(self, token: Any) -> Path | None:
        base = disk_cache_dir()
        if base is None:
            return None
        # repr of the normalized token tuples is deterministic across
        # processes (ints, strings, nested tuples only); the version
        # prefix invalidates everything on release.
        digest = hashlib.sha256(
            repr((__version__, self.subdir, token)).encode()
        ).hexdigest()
        return base / self.subdir / f"{digest}.pkl"

    def fetch(self, token: Any) -> Any:
        """The stored value for ``token``, or :data:`MISSING`."""
        path = self._path(token)
        if path is None:
            return MISSING
        try:
            with open(path, "rb") as f:
                value = pickle.load(f)
                nbytes = f.tell()
        except FileNotFoundError:
            self._miss.inc()
            return MISSING
        except Exception:
            # truncated/corrupt/incompatible file: drop it and regenerate
            self._error.inc()
            self._miss.inc()
            try:
                path.unlink()
            except OSError:
                pass
            return MISSING
        self._hit.inc()
        self._bytes_read.inc(nbytes)
        try:
            os.utime(path)  # refresh recency for LRU eviction
        except OSError:
            pass
        return value

    def store(self, token: Any, value: Any) -> bool:
        """Persist ``value`` under ``token`` atomically; True on success."""
        path = self._path(token)
        if path is None:
            return False
        tmp_name = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=path.stem, suffix=".tmp"
            )
            with os.fdopen(fd, "wb") as f:
                pickle.dump(value, f, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
            tmp_name = None
        except (OSError, pickle.PicklingError):
            self._error.inc()
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
            return False
        self._store.inc()
        try:
            self._bytes_written.inc(path.stat().st_size)
        except OSError:  # pragma: no cover - raced deletion
            pass
        self._evict()
        return True

    def _evict(self) -> None:
        """Drop least-recently-used files beyond ``max_entries``."""
        bound = self._effective_max_entries()
        if bound is None:
            return
        entries = self._entries()
        if len(entries) <= bound:
            return

        def mtime(p: Path) -> float:
            try:
                return p.stat().st_mtime
            except OSError:
                return 0.0

        entries.sort(key=lambda p: (mtime(p), p.name))
        for p in entries[: len(entries) - bound]:
            try:
                p.unlink()
                self._evictions_c.inc()
            except OSError:
                pass

    def stats(self) -> dict[str, int | None]:
        """Counters snapshot: hits, misses, stores, errors, evictions."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "errors": self.errors,
            "evictions": self.evictions,
        }

    def clear(self, files: bool = False) -> None:
        """Reset the counters; with ``files=True`` also delete this
        cache's stored files.

        The registry-wide :func:`repro.cache.clear_caches` calls this
        without arguments, so a sweep-scoped reset never destroys the
        persistent store — purging the files is an explicit act.
        """
        for series in (
            self._hit, self._miss, self._store, self._error,
            self._evictions_c, self._bytes_read, self._bytes_written,
        ):
            series.reset()
        if files:
            for p in self._entries():
                try:
                    p.unlink()
                except OSError:
                    pass

    def __repr__(self) -> str:
        return (
            f"DiskCache({self.name!r}, dir={disk_cache_dir()}, "
            f"hits={self.hits}, misses={self.misses})"
        )


#: persisted routing schedules (under ``memoize_schedule``'s LRUs)
schedule_disk = DiskCache("cache.disk.schedules", "schedules")
#: persisted canonical root-0 spanning trees (under ``cached_tree``)
tree_disk = DiskCache("cache.disk.trees", "trees")
