"""Memoization for the ``repro.routing`` schedule generators.

A schedule is a pure function of its generator arguments, so a keyed
LRU over normalized arguments makes repeated points of a parameter
sweep (same ``(n, source, algorithm, port_model, M, B, ...)``) cost a
dictionary lookup plus a shallow copy instead of a full re-generation.

Schedules are *not* reliably XOR-translation-equivariant — the
generators iterate absolute node addresses when packing rounds, so the
schedule for source ``s`` is generally not the source-0 schedule
translated (the trees are; see :mod:`repro.cache.trees`).  The source
is therefore part of the cache key.

Cached :class:`~repro.sim.schedule.Schedule` objects are never handed
out directly: every call returns a fresh ``Schedule`` whose ``rounds``
list, ``chunk_sizes`` dict and ``meta`` are copies (the ``Transfer``
tuples inside are immutable and shared), so callers may mutate the
result without corrupting the cache.

When a disk-cache directory is configured (:mod:`repro.cache.disk`),
an in-memory miss falls through to the on-disk layer before running
the generator, and freshly generated schedules are persisted — so a
cold process (a sweep worker, a fresh CI run) replays an earlier
process's generation work instead of repeating it.
"""

from __future__ import annotations

import copy
import functools
import inspect
from typing import Any, Callable, Hashable, TypeVar

from repro.cache.disk import schedule_disk
from repro.cache.lru import MISSING, LRUCache, caching_enabled
from repro.sim.faults import FaultPlan
from repro.sim.ports import PortModel
from repro.sim.schedule import Schedule
from repro.topology.base import Topology
from repro.trees.base import SpanningTree

__all__ = ["memoize_schedule"]

F = TypeVar("F", bound=Callable[..., Schedule])


def _normalize(value: Any) -> Hashable:
    """A hashable cache-key component for one generator argument."""
    if isinstance(value, Topology):
        # The full token — ("hypercube", n) vs ("torus", n, k) — so
        # different topologies at the same n can never share an entry,
        # in memory or on disk.
        return value.cache_token()
    if isinstance(value, PortModel):
        return ("port", value.value)
    if isinstance(value, SpanningTree):
        return value.cache_token()
    if isinstance(value, FaultPlan):
        # Equal fault sets share an entry; any difference (an extra
        # dead link, a changed activation time) splits the key, so a
        # fault-free schedule is never served for a damaged cube.
        return value.cache_token()
    if isinstance(value, (list, tuple)):
        return tuple(_normalize(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return ("set", tuple(sorted(_normalize(v) for v in value)))
    hash(value)  # unhashable arguments must not be silently collapsed
    return value


def _copy_schedule(sched: Schedule) -> Schedule:
    return Schedule(
        rounds=list(sched.rounds),
        chunk_sizes=dict(sched.chunk_sizes),
        algorithm=sched.algorithm,
        meta=copy.deepcopy(sched.meta),
    )


def memoize_schedule(maxsize: int | None = 256) -> Callable[[F], F]:
    """Decorator memoizing a schedule generator in a named LRU cache.

    The cache key binds the call against the generator's signature
    (defaults applied), so positional and keyword spellings of the same
    call share an entry.  The wrapped function gains a ``cache``
    attribute exposing the underlying :class:`LRUCache`.
    """

    def decorate(fn: F) -> F:
        sig = inspect.signature(fn)
        cache = LRUCache(f"schedules.{fn.__name__}", maxsize=maxsize)

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not caching_enabled():
                return fn(*args, **kwargs)
            bound = sig.bind(*args, **kwargs)
            bound.apply_defaults()
            key = tuple(
                (name, _normalize(value))
                for name, value in bound.arguments.items()
            )
            hit = cache.get(key)
            if hit is not MISSING:
                return _copy_schedule(hit)
            disk_hit = schedule_disk.fetch((fn.__name__, key))
            if disk_hit is not MISSING:
                cache.put(key, disk_hit)
                return _copy_schedule(disk_hit)
            sched = fn(*args, **kwargs)
            cache.put(key, _copy_schedule(sched))
            # pickling snapshots the schedule, so no extra copy is needed
            schedule_disk.store((fn.__name__, key), sched)
            return sched

        wrapper.cache = cache  # type: ignore[attr-defined]
        return wrapper  # type: ignore[return-value]

    return decorate
