"""Caching layer: keyed LRUs for spanning trees and routing schedules.

Parameter sweeps (the Figure 5–8 reproductions) evaluate the same
trees and schedules at many ``(M, B, port model)`` points; this package
makes repeats cheap while keeping results bit-identical to the uncached
paths (asserted by ``tests/cache``).

An optional second, on-disk layer (:mod:`repro.cache.disk`) persists
schedules and canonical trees across processes: sweep workers and fresh
CI runs reuse previously generated artifacts instead of regenerating
them.

Environment:
    ``REPRO_CACHE=0`` (or ``off``/``false``/``no``) disables the whole
    layer (read at import; re-read with ``configure(from_env=True)``).
    ``REPRO_CACHE_DIR=<dir>`` enables the on-disk layer (read live).
"""

from repro.cache.disk import (
    DiskCache,
    configure_disk,
    disk_cache,
    disk_cache_dir,
    schedule_disk,
    tree_disk,
)
from repro.cache.lru import (
    LRUCache,
    MISSING,
    cache_stats,
    caching_enabled,
    clear_caches,
    configure,
    disabled,
)
from repro.cache.schedules import memoize_schedule
from repro.cache.trees import cached_msbt_graph, cached_tree

__all__ = [
    "DiskCache",
    "LRUCache",
    "MISSING",
    "cache_stats",
    "caching_enabled",
    "cached_msbt_graph",
    "cached_tree",
    "clear_caches",
    "configure",
    "configure_disk",
    "disabled",
    "disk_cache",
    "disk_cache_dir",
    "memoize_schedule",
    "schedule_disk",
    "tree_disk",
]
