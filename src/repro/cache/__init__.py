"""Caching layer: keyed LRUs for spanning trees and routing schedules.

Parameter sweeps (the Figure 5–8 reproductions) evaluate the same
trees and schedules at many ``(M, B, port model)`` points; this package
makes repeats cheap while keeping results bit-identical to the uncached
paths (asserted by ``tests/cache``).

Environment:
    ``REPRO_CACHE=0`` (or ``off``/``false``/``no``) disables the layer.
"""

from repro.cache.lru import (
    LRUCache,
    MISSING,
    cache_stats,
    caching_enabled,
    clear_caches,
    configure,
    disabled,
)
from repro.cache.schedules import memoize_schedule
from repro.cache.trees import cached_msbt_graph, cached_tree

__all__ = [
    "LRUCache",
    "MISSING",
    "cache_stats",
    "caching_enabled",
    "cached_msbt_graph",
    "cached_tree",
    "clear_caches",
    "configure",
    "disabled",
    "memoize_schedule",
]
