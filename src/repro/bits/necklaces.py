"""Necklaces (generator sets), periods, and the BST *base* function.

The Balanced Spanning Tree assigns each node to a subtree according to
the rotational equivalence class (necklace) of its relative address:

* ``period(i, n)`` — least ``p > 0`` with ``R^p(i) == i``; a number is
  *cyclic* when its period is smaller than ``n``.
* ``base(i, n)`` — the minimum number of right rotations after which the
  rotated value is minimal over all rotations.  Node ``i`` (relative to
  the source) belongs to subtree ``base(i)``.

Note on the paper's worked example: the paper states
``base((011010)) = 3`` but its own formal definition — which we follow —
gives 1 (the minimal rotation of ``011010`` is ``001101 = 13``, reached
after one right rotation).  The definition used here reproduces the
paper's Table 5 exactly for all ``n`` in 2..20, as well as all the
structural properties of §4.1 (see the tests and DESIGN.md §2).
"""

from __future__ import annotations

from math import gcd

from repro.bits.ops import rotate_right

__all__ = [
    "period",
    "is_cyclic",
    "base",
    "canonical_rotation",
    "generator_set",
    "necklace_representatives",
    "count_necklaces",
    "count_cyclic",
]


def period(i: int, n: int) -> int:
    """Least ``p > 0`` such that right-rotating ``i`` by ``p`` is a fixpoint.

    The period always divides ``n``.

    >>> period(0b011011, 6)
    3
    >>> period(0b011010, 6)
    6
    """
    _check(i, n)
    for p in _divisors(n):
        if rotate_right(i, p, n) == i:
            return p
    raise AssertionError("unreachable: period(n) divides n")


def is_cyclic(i: int, n: int) -> bool:
    """True when ``i`` has period smaller than ``n`` (a degenerate necklace)."""
    return period(i, n) < n


def base(i: int, n: int) -> int:
    """Subtree index of node ``i`` in a BST: the first minimizing rotation.

    ``base(i)`` is the least ``j`` such that ``R^j(i) <= R^l(i)`` for
    every ``l``.  For ``i == 0`` it is 0 (the root is outside all
    subtrees; callers special-case it).

    >>> base(0b110110, 6)
    1
    """
    _check(i, n)
    best_j = 0
    best_v = i
    v = i
    for j in range(1, n):
        v = rotate_right(v, 1, n)
        if v < best_v:
            best_v = v
            best_j = j
    return best_j


def canonical_rotation(i: int, n: int) -> int:
    """Minimal value among all rotations of ``i`` (the necklace representative)."""
    _check(i, n)
    return rotate_right(i, base(i, n), n)


def generator_set(i: int, n: int) -> tuple[int, ...]:
    """All distinct rotations of ``i`` — its generator set (necklace).

    The tuple has ``period(i, n)`` elements and starts with ``i``.
    """
    _check(i, n)
    out = [i]
    v = rotate_right(i, 1, n)
    while v != i:
        out.append(v)
        v = rotate_right(v, 1, n)
    return tuple(out)


def necklace_representatives(n: int) -> list[int]:
    """Canonical representatives of every ``n``-bit necklace, ascending.

    Enumerated directly (an ``O(N)`` filter); fine for the cube sizes
    this library simulates (``n <= ~22``).
    """
    if n <= 0:
        raise ValueError(f"word width must be positive, got {n}")
    return [i for i in range(1 << n) if canonical_rotation(i, n) == i]


def count_necklaces(n: int) -> int:
    """Number of binary necklaces of length ``n`` (Burnside's lemma).

    ``(1/n) * sum over d | n of phi(d) * 2^(n/d)``.  The maximum BST
    subtree size is ``count_necklaces(n) - 1`` (all necklaces except the
    all-zeros one, which is the root) — this is what Table 5 tabulates.
    """
    if n <= 0:
        raise ValueError(f"word width must be positive, got {n}")
    return sum(_euler_phi(d) * (1 << (n // d)) for d in _divisors(n)) // n


def count_cyclic(n: int) -> int:
    """Number of cyclic (period < n) ``n``-bit numbers, including 0."""
    if n <= 0:
        raise ValueError(f"word width must be positive, got {n}")
    total = 0
    for p in _divisors(n):
        if p < n:
            total += _count_exact_period(p)
    return total


def _count_exact_period(p: int) -> int:
    """Number of binary strings of length ``p`` with period exactly ``p``."""
    total = 1 << p
    for d in _divisors(p):
        if d < p:
            total -= _count_exact_period(d)
    return total


def _divisors(n: int) -> list[int]:
    small, large = [], []
    d = 1
    while d * d <= n:
        if n % d == 0:
            small.append(d)
            if d != n // d:
                large.append(n // d)
        d += 1
    return small + large[::-1]


def _euler_phi(n: int) -> int:
    return sum(1 for k in range(1, n + 1) if gcd(k, n) == 1)


def _check(i: int, n: int) -> None:
    if n <= 0:
        raise ValueError(f"word width must be positive, got {n}")
    if i < 0 or i >> n:
        raise ValueError(f"{i} is not an {n}-bit value")
