"""Binary-reflected Gray codes.

The paper's SBT scatter implementation transmits packets over ports "in
an order corresponding to the transition sequence in a binary-reflected
Gray code" (§5.2), so port 0 is used every other cycle, port 1 every
fourth cycle, and so on.  A Gray-code enumeration of cube nodes is also
a Hamiltonian path, which is the paper's HP broadcast baseline.
"""

from __future__ import annotations

from collections.abc import Iterator
from functools import lru_cache

from repro.bits.ops import lowest_set_bit, mask

__all__ = [
    "gray_code",
    "gray_decode",
    "gray_sequence",
    "gray_rank",
    "transition_sequence",
    "hamiltonian_path",
]


def gray_code(i: int) -> int:
    """The ``i``-th binary-reflected Gray codeword ``G(i) = i ^ (i >> 1)``.

    >>> [gray_code(i) for i in range(4)]
    [0, 1, 3, 2]
    """
    if i < 0:
        raise ValueError(f"Gray code index must be non-negative, got {i}")
    return i ^ (i >> 1)


def gray_decode(g: int) -> int:
    """Inverse of :func:`gray_code`: the rank of codeword ``g``."""
    if g < 0:
        raise ValueError(f"Gray codeword must be non-negative, got {g}")
    i = 0
    while g:
        i ^= g
        g >>= 1
    return i


def gray_rank(g: int) -> int:
    """Alias of :func:`gray_decode`, named for readability at call sites."""
    return gray_decode(g)


@lru_cache(maxsize=32)
def _gray_sequence_tuple(n: int) -> tuple[int, ...]:
    return tuple(gray_code(i) for i in range(1 << n))


def gray_sequence(n: int) -> list[int]:
    """All ``2**n`` Gray codewords in rank order.

    Consecutive entries differ in exactly one bit, and so do the first
    and last entries (the code is cyclic).  The sequence is memoized per
    width internally; callers get a fresh list.
    """
    if n < 0:
        raise ValueError(f"code width must be non-negative, got {n}")
    return list(_gray_sequence_tuple(n))


def transition_sequence(n: int) -> list[int]:
    """Bit positions flipped between consecutive Gray codewords.

    Entry ``i`` is the dimension crossed when moving from ``G(i)`` to
    ``G(i+1)``; it equals the index of the lowest set bit of ``i + 1``.
    Position 0 appears every other step, position 1 every fourth step,
    etc. — exactly the port usage pattern of the paper's SBT scatter.

    >>> transition_sequence(3)
    [0, 1, 0, 2, 0, 1, 0]
    """
    if n < 0:
        raise ValueError(f"code width must be non-negative, got {n}")
    return [lowest_set_bit(i + 1) for i in range((1 << n) - 1)]


def hamiltonian_path(n: int, start: int = 0) -> list[int]:
    """A Hamiltonian path of the ``n``-cube starting at ``start``.

    The path is the Gray-code enumeration translated (XOR) so that it
    begins at ``start``.  Every consecutive pair is a cube edge and each
    node appears exactly once.
    """
    if n < 0:
        raise ValueError(f"cube dimension must be non-negative, got {n}")
    if start < 0 or start & ~mask(n):
        raise ValueError(f"start node {start} outside a {n}-cube")
    return [g ^ start for g in gray_sequence(n)]


def iter_hamiltonian_edges(n: int, start: int = 0) -> Iterator[tuple[int, int]]:
    """Yield the directed edges of :func:`hamiltonian_path` in order."""
    path = hamiltonian_path(n, start)
    for a, b in zip(path, path[1:]):
        yield a, b
