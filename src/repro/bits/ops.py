"""Bit-level primitives for hypercube addressing.

Node addresses in a Boolean ``n``-cube are ``n``-bit integers.  Bits are
numbered 0 (least significant) through ``n - 1``; the paper calls bit
``j`` the *j-th port* of a node because flipping it reaches the
neighbour across dimension ``j``.

Scalar helpers operate on Python ``int``; the ``*_array`` variants
operate elementwise on NumPy integer arrays so whole-cube quantities
(``parents_array`` of a tree, Hamming levels, ...) can be computed
without Python-level loops.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "bit",
    "clear_bit",
    "flip_bit",
    "hamming_distance",
    "highest_set_bit",
    "lowest_set_bit",
    "mask",
    "popcount",
    "popcount_array",
    "rotate_left",
    "rotate_right",
    "rotate_right_array",
    "set_bit",
    "to_bits",
    "from_bits",
    "bit_string",
]


def mask(n: int) -> int:
    """Return an ``n``-bit mask ``2**n - 1``.

    >>> mask(4)
    15
    """
    if n < 0:
        raise ValueError(f"mask width must be non-negative, got {n}")
    return (1 << n) - 1


def bit(x: int, j: int) -> int:
    """Return bit ``j`` of ``x`` (0 or 1)."""
    return (x >> j) & 1


def set_bit(x: int, j: int) -> int:
    """Return ``x`` with bit ``j`` set."""
    return x | (1 << j)


def clear_bit(x: int, j: int) -> int:
    """Return ``x`` with bit ``j`` cleared."""
    return x & ~(1 << j)


def flip_bit(x: int, j: int) -> int:
    """Return ``x`` with bit ``j`` complemented.

    In cube terms this is the neighbour of node ``x`` across
    dimension ``j`` (the node reached through port ``j``).
    """
    return x ^ (1 << j)


def popcount(x: int) -> int:
    """Number of one bits of ``x`` (``|x|`` in the paper).

    >>> popcount(0b1011)
    3
    """
    if x < 0:
        raise ValueError(f"popcount of a negative number is undefined, got {x}")
    return x.bit_count()


def hamming_distance(a: int, b: int) -> int:
    """Hamming distance ``|a ⊕ b|`` — the cube distance between nodes."""
    return popcount(a ^ b)


def highest_set_bit(x: int) -> int:
    """Index of the highest set bit of ``x``; ``-1`` for ``x == 0``.

    The paper's SBT construction calls this ``k``: the highest-order bit
    of the relative address that is one.
    """
    if x < 0:
        raise ValueError(f"expected a non-negative integer, got {x}")
    return x.bit_length() - 1


def lowest_set_bit(x: int) -> int:
    """Index of the lowest set bit of ``x``; ``-1`` for ``x == 0``."""
    if x < 0:
        raise ValueError(f"expected a non-negative integer, got {x}")
    if x == 0:
        return -1
    return (x & -x).bit_length() - 1


def rotate_right(x: int, steps: int, n: int) -> int:
    """Right-rotate the ``n``-bit number ``x`` by ``steps`` positions.

    This is the paper's rotation function ``R``: bit ``p`` of ``x``
    moves to position ``(p - steps) mod n``, i.e. ``R(a_{n-1} ... a_0) =
    (a_0 a_{n-1} ... a_1)`` for ``steps == 1``.

    >>> bit_string(rotate_right(0b011010, 1, 6))
    '001101'
    """
    if n <= 0:
        raise ValueError(f"word width must be positive, got {n}")
    if x >> n:
        raise ValueError(f"{x:#x} does not fit in {n} bits")
    steps %= n
    if steps == 0:
        return x
    return ((x >> steps) | (x << (n - steps))) & mask(n)


def rotate_left(x: int, steps: int, n: int) -> int:
    """Left-rotate the ``n``-bit number ``x`` by ``steps`` positions."""
    if n <= 0:
        raise ValueError(f"word width must be positive, got {n}")
    return rotate_right(x, n - (steps % n), n)


def to_bits(x: int, n: int) -> tuple[int, ...]:
    """Expand ``x`` into an ``n``-tuple ``(a_0, a_1, ..., a_{n-1})``.

    Index ``j`` of the result is bit ``j`` (LSB first).
    """
    if x >> n:
        raise ValueError(f"{x:#x} does not fit in {n} bits")
    return tuple((x >> j) & 1 for j in range(n))


def from_bits(bits_lsb_first: tuple[int, ...] | list[int]) -> int:
    """Inverse of :func:`to_bits`."""
    value = 0
    for j, b in enumerate(bits_lsb_first):
        if b not in (0, 1):
            raise ValueError(f"bit values must be 0 or 1, got {b!r} at index {j}")
        value |= b << j
    return value


def bit_string(x: int, n: int) -> str:
    """Render ``x`` as the paper writes addresses: ``a_{n-1} ... a_0``.

    >>> bit_string(0b01101, 5)
    '01101'
    """
    if x >> n:
        raise ValueError(f"{x:#x} does not fit in {n} bits")
    return format(x, f"0{n}b")


# ---------------------------------------------------------------------------
# Vectorized variants
# ---------------------------------------------------------------------------

_POPCOUNT_TABLE = np.array([bin(i).count("1") for i in range(256)], dtype=np.int64)


def popcount_array(x: np.ndarray) -> np.ndarray:
    """Elementwise popcount of a non-negative integer array.

    Works for any integer dtype up to 64 bits by summing byte-table
    lookups; used to compute Hamming levels of whole cubes at once.
    """
    x = np.asarray(x)
    if not np.issubdtype(x.dtype, np.integer):
        raise TypeError(f"popcount_array expects an integer array, got {x.dtype}")
    if x.size and int(x.min()) < 0:
        raise ValueError("popcount_array expects non-negative values")
    v = x.astype(np.uint64)
    total = np.zeros(x.shape, dtype=np.int64)
    for shift in range(0, 64, 8):
        total += _POPCOUNT_TABLE[((v >> np.uint64(shift)) & np.uint64(0xFF)).astype(np.intp)]
        if not int((v >> np.uint64(shift + 8)).max() if v.size else 0):
            break
    return total


def rotate_right_array(x: np.ndarray, steps: int, n: int) -> np.ndarray:
    """Elementwise :func:`rotate_right` over an array of ``n``-bit values."""
    if n <= 0 or n > 62:
        raise ValueError(f"word width must be in 1..62 for array rotation, got {n}")
    x = np.asarray(x, dtype=np.int64)
    if x.size and (int(x.max()) >> n or int(x.min()) < 0):
        raise ValueError(f"values do not fit in {n} bits")
    steps %= n
    if steps == 0:
        return x.copy()
    m = (1 << n) - 1
    return ((x >> steps) | (x << (n - steps))) & m
