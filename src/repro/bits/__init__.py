"""Bit-level substrate: addressing, Gray codes, necklaces.

These are the combinatorial primitives the paper's tree constructions
are defined in terms of (§2 *Notation and Definitions*).
"""

from repro.bits.gray import (
    gray_code,
    gray_decode,
    gray_rank,
    gray_sequence,
    hamiltonian_path,
    transition_sequence,
)
from repro.bits.necklaces import (
    base,
    canonical_rotation,
    count_cyclic,
    count_necklaces,
    generator_set,
    is_cyclic,
    necklace_representatives,
    period,
)
from repro.bits.ops import (
    bit,
    bit_string,
    clear_bit,
    flip_bit,
    from_bits,
    hamming_distance,
    highest_set_bit,
    lowest_set_bit,
    mask,
    popcount,
    popcount_array,
    rotate_left,
    rotate_right,
    rotate_right_array,
    set_bit,
    to_bits,
)

__all__ = [
    "bit",
    "bit_string",
    "clear_bit",
    "flip_bit",
    "from_bits",
    "hamming_distance",
    "highest_set_bit",
    "lowest_set_bit",
    "mask",
    "popcount",
    "popcount_array",
    "rotate_left",
    "rotate_right",
    "rotate_right_array",
    "set_bit",
    "to_bits",
    "gray_code",
    "gray_decode",
    "gray_rank",
    "gray_sequence",
    "hamiltonian_path",
    "transition_sequence",
    "base",
    "canonical_rotation",
    "count_cyclic",
    "count_necklaces",
    "generator_set",
    "is_cyclic",
    "necklace_representatives",
    "period",
]
