"""The routing-schedule data model shared by the generators and engines.

A :class:`Schedule` is a list of *rounds* (the paper's routing steps or
cycles); each round is a tuple of :class:`Transfer` objects that are
intended to happen concurrently.  Payloads are symbolic: a transfer
carries a frozenset of *chunk identifiers*, and the schedule maps each
chunk to its size in elements.  This lets the engines verify actual
data delivery (who holds what, when) rather than merely counting
messages.

Chunk identifiers are opaque hashables.  Conventions used by the
generators in :mod:`repro.routing`:

* broadcast:  ``("b", p)`` — packet ``p`` of the broadcast message;
* scatter:    ``("m", dest, p)`` — packet ``p`` of the message
  personalized for node ``dest``;
* all-to-all: ``("m", src, dest, p)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

__all__ = ["Transfer", "Schedule", "Chunk", "merge_schedules"]

Chunk = Hashable


@dataclass(frozen=True)
class Transfer:
    """One packet moving over one directed cube edge.

    Large schedules materialize one instance per packet (an n=14 MSBT
    broadcast is close to a million), hence ``__slots__``.

    Attributes:
        src: sending node.
        dst: receiving node (must be a cube neighbour of ``src``).
        chunks: the chunk ids carried (the engines verify ``src`` holds
            them all when the transfer starts).
    """

    __slots__ = ("src", "dst", "chunks")

    src: int
    dst: int
    chunks: frozenset[Chunk]

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"self-transfer at node {self.src}")
        if not isinstance(self.chunks, frozenset):
            object.__setattr__(self, "chunks", frozenset(self.chunks))

    # frozen + manual __slots__ needs explicit pickle support (the
    # default slot-state restore goes through the frozen __setattr__)
    def __getstate__(self):
        return (self.src, self.dst, self.chunks)

    def __setstate__(self, state) -> None:
        for name, value in zip(self.__slots__, state):
            object.__setattr__(self, name, value)

    def __repr__(self) -> str:
        return f"Transfer({self.src}->{self.dst}, {len(self.chunks)} chunks)"


@dataclass
class Schedule:
    """A complete routing schedule for one collective operation.

    Attributes:
        rounds: transfers grouped by routing step.
        chunk_sizes: elements per chunk id.
        algorithm: generator label, e.g. ``"sbt-broadcast"``.
        meta: free-form extra information from the generator (packet
            size used, port model targeted, ...).
    """

    rounds: list[tuple[Transfer, ...]]
    chunk_sizes: dict[Chunk, int]
    algorithm: str = ""
    meta: dict = field(default_factory=dict)

    @property
    def num_rounds(self) -> int:
        """Number of routing steps (the paper's cycle count)."""
        return len(self.rounds)

    @property
    def num_transfers(self) -> int:
        """Total packets sent."""
        return sum(len(r) for r in self.rounds)

    def transfer_elems(self, t: Transfer) -> int:
        """Size of one transfer in elements."""
        return sum(self.chunk_sizes[c] for c in t.chunks)

    def total_elems_moved(self) -> int:
        """Sum of transfer sizes over the whole schedule (link-time proxy)."""
        return sum(self.transfer_elems(t) for r in self.rounds for t in r)

    def max_transfer_elems(self) -> int:
        """Largest single packet in the schedule."""
        return max(
            (self.transfer_elems(t) for r in self.rounds for t in r),
            default=0,
        )

    def all_transfers(self) -> list[Transfer]:
        """All transfers in round order (the engines' program order)."""
        return [t for r in self.rounds for t in r]

    def compact(self) -> "Schedule":
        """Drop empty rounds (generators may emit them for alignment)."""
        return Schedule(
            rounds=[r for r in self.rounds if r],
            chunk_sizes=self.chunk_sizes,
            algorithm=self.algorithm,
            meta=dict(self.meta),
        )

    def reversed(self) -> "Schedule":
        """The time- and direction-reversed schedule.

        Running a broadcast schedule backwards yields the matching
        reduction/gather communication pattern: every transfer flips
        direction and the rounds play in reverse order.
        """
        return Schedule(
            rounds=[
                tuple(Transfer(t.dst, t.src, t.chunks) for t in r)
                for r in reversed(self.rounds)
            ],
            chunk_sizes=dict(self.chunk_sizes),
            algorithm=f"{self.algorithm}-reversed",
            meta=dict(self.meta),
        )

    def __repr__(self) -> str:
        return (
            f"Schedule({self.algorithm!r}, rounds={self.num_rounds}, "
            f"transfers={self.num_transfers})"
        )


def merge_schedules(
    schedules: list["Schedule"],
    tag_chunks: bool = True,
    algorithm: str = "merged",
) -> "Schedule":
    """Compose several schedules into one (rounds zipped side by side).

    The merged rounds simply concatenate the inputs' rounds index by
    index; the result usually violates a one-port model (two broadcasts
    share senders) and is meant to be re-packed with
    :func:`repro.routing.scheduler.reschedule` — this is how concurrent
    multi-source collectives are composed and costed.

    Args:
        schedules: the schedules to merge.
        tag_chunks: when True (default), chunk ids are namespaced by the
            schedule index (``(idx, chunk)``) so same-named chunks from
            different operations (e.g. two broadcasts both using
            ``("b", 0)``) do not alias.  Initial holdings must be
            namespaced the same way.
        algorithm: label of the merged schedule.
    """
    if not schedules:
        raise ValueError("need at least one schedule to merge")
    chunk_sizes: dict[Chunk, int] = {}
    depth = max(s.num_rounds for s in schedules)
    rounds: list[list[Transfer]] = [[] for _ in range(depth)]
    for idx, s in enumerate(schedules):
        def _tag(c: Chunk) -> Chunk:
            return (idx, c) if tag_chunks else c

        for c, size in s.chunk_sizes.items():
            key = _tag(c)
            if key in chunk_sizes and chunk_sizes[key] != size:
                raise ValueError(f"conflicting sizes for chunk {key!r}")
            chunk_sizes[key] = size
        for ri, r in enumerate(s.rounds):
            for t in r:
                rounds[ri].append(
                    Transfer(t.src, t.dst, frozenset(_tag(c) for c in t.chunks))
                )
    return Schedule(
        rounds=[tuple(r) for r in rounds],
        chunk_sizes=chunk_sizes,
        algorithm=algorithm,
        meta={"merged_from": [s.algorithm for s in schedules]},
    )
