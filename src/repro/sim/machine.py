"""Machine (communication cost) parameters.

The paper's cost model: sending one packet of ``b`` elements over a
link takes ``tau + b * t_c`` — a fixed start-up plus a transfer time
proportional to the packet size.  Hardware additionally imposes an
*internal* maximum packet size (1 KB on the Intel iPSC): a user-level
send of ``b`` elements is split into ``ceil(b / internal)`` hardware
packets, each paying the start-up.

The iPSC also exhibits a ~20 % overlap between communication actions on
*different* ports of the same node (§5.2 explains the measured BST
advantage on one-port hardware through exactly this overlap); the
asynchronous engine models it through :attr:`MachineParams.overlap`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from math import ceil

__all__ = ["MachineParams", "IPSC_D7", "UNIT_COST", "ZERO_STARTUP"]


@dataclass(frozen=True)
class MachineParams:
    """Communication cost parameters of a simulated cube machine.

    Attributes:
        tau: start-up time per (internal) packet, in seconds.
        t_c: transfer time per element, in seconds.
        internal_packet_elems: hardware maximum packet size in elements;
            ``None`` means unbounded (pure model of the paper's
            analysis, where ``B`` is the only packet-size limit).
        overlap: fraction (0..1) of a communication action that may
            overlap with the node's next action *on a different port*
            under the one-port models.  0 reproduces the strict
            analytical model; 0.2 reproduces the iPSC's measured
            behaviour.
        name: human-readable label for reports.
    """

    tau: float = 1.0
    t_c: float = 1.0
    internal_packet_elems: int | None = None
    overlap: float = 0.0
    name: str = "generic"

    def __post_init__(self) -> None:
        if self.tau < 0:
            raise ValueError(f"start-up time must be non-negative, got {self.tau}")
        if self.t_c < 0:
            raise ValueError(f"transfer time must be non-negative, got {self.t_c}")
        if self.internal_packet_elems is not None and self.internal_packet_elems < 1:
            raise ValueError(
                f"internal packet size must be >= 1 element, got {self.internal_packet_elems}"
            )
        if not 0.0 <= self.overlap < 1.0:
            raise ValueError(f"overlap must be in [0, 1), got {self.overlap}")

    def send_cost(self, elems: int) -> float:
        """Time to push ``elems`` elements over one link.

        ``ceil(elems / internal) * tau + elems * t_c`` — one start-up
        per hardware packet plus the proportional transfer time.  A
        zero-element send still pays one start-up (a header packet).
        """
        if elems < 0:
            raise ValueError(f"cannot send a negative number of elements ({elems})")
        if self.internal_packet_elems is None:
            packets = 1
        else:
            packets = max(1, ceil(elems / self.internal_packet_elems))
        return packets * self.tau + elems * self.t_c

    def with_overlap(self, overlap: float) -> "MachineParams":
        """A copy of these parameters with a different overlap factor."""
        return replace(self, overlap=overlap)

    @classmethod
    def from_bandwidth(
        cls,
        startup_us: float,
        bandwidth_mb_per_s: float,
        internal_packet_bytes: int | None = None,
        overlap: float = 0.0,
        name: str = "custom",
    ) -> "MachineParams":
        """Build parameters from datasheet-style numbers.

        Args:
            startup_us: per-packet start-up in microseconds.
            bandwidth_mb_per_s: link bandwidth in MB/s (elements are
                bytes: ``t_c = 1 / bandwidth``).
            internal_packet_bytes: hardware maximum packet, if any.
            overlap: cross-port overlap fraction.
            name: label for reports.

        >>> m = MachineParams.from_bandwidth(1000.0, 0.4, 1024)
        >>> round(m.tau, 6), round(m.t_c * 1e6, 2)
        (0.001, 2.5)
        """
        if startup_us <= 0 or bandwidth_mb_per_s <= 0:
            raise ValueError("start-up and bandwidth must be positive")
        return cls(
            tau=startup_us * 1e-6,
            t_c=1.0 / (bandwidth_mb_per_s * 1e6),
            internal_packet_elems=internal_packet_bytes,
            overlap=overlap,
            name=name,
        )

    def ideal(self) -> "MachineParams":
        """A copy with no hardware packet limit and no overlap (pure model)."""
        return replace(self, internal_packet_elems=None, overlap=0.0)


#: Intel iPSC/d7 calibration used for the paper's §5 experiments:
#: ≈1 ms per-packet start-up, ≈2.5 µs per byte (elements are bytes),
#: 1 KB internal packets, ≈20 % overlap between actions on distinct
#: ports (the effect §5.2 credits for the BST's measured advantage).
IPSC_D7 = MachineParams(
    tau=1.0e-3,
    t_c=2.5e-6,
    internal_packet_elems=1024,
    overlap=0.20,
    name="Intel iPSC/d7",
)

#: Unit costs (tau = t_c = 1): handy for tests, where predicted times
#: become small integers.
UNIT_COST = MachineParams(tau=1.0, t_c=1.0, name="unit")

#: Pure bandwidth model (no start-ups) for transfer-time-only checks.
ZERO_STARTUP = MachineParams(tau=0.0, t_c=1.0, name="zero-startup")
