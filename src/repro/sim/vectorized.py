"""Vectorized array-core asynchronous engine.

Runs the same discrete-event semantics as :func:`repro.sim.engine.
run_async` (and the reference oracle) over the flat arrays produced by
:mod:`repro.sim.lowering`, instead of per-transfer Python objects.
Results are bit-identical — the equivalence suite asserts it on every
tree, port model, machine and fault plan.

How bit-identity survives vectorization
---------------------------------------
The reference engine advances time instant by instant: at each instant
it rescans *all* pending transfers in program order until a fixpoint,
then jumps ``now`` to the earliest pushed wake-up strictly more than
``_EPS`` ahead.  Scanning a blocked transfer has exactly one side
effect — pushing its current constraint value as a wake.  Which floats
end up in the wake heap *matters to the last ulp*: an instant the
reference does not visit can capture a transfer whose ready time lies
within ``_EPS`` above it and start it one ulp early, so this engine
must push the same wake values, no more and no fewer.  They are:

* the completion time ``end`` and the overlap release in *duration*
  form ``start + (1-ov)*dur``, pushed at occupation (ready-time wakes
  are always ``end`` values, so they add nothing new);
* blocked transfers' constraint values — maxima over channel windows
  whose other-port terms use the *end-start* release form
  ``start + (1-ov)*(end-start)``, one ulp away from the duration form
  in general.  The reference re-pushes these for every blocked
  transfer at every instant; like the indexed engine, this engine
  materializes them with a dirty-channel sweep before each time
  advance — every transfer blocked on a channel occupied during the
  closed instant gets its constraint re-evaluated against final
  instant state and pushed as a pure wake.

With the wake values aligned, the full rescan is unnecessary: within
an instant the scalar admission loop below replays the reference's
program-order fixpoint exactly — including mid-pass pickup of
transfers enabled by zero-duration deliveries.

The wake heap holds raw floats deduplicated by their exact bit pattern
(a set of float keys — the "microtick" identity of an instant), so the
heap stays bounded by the number of genuinely distinct event times.

Per instant, admission candidates are prefiltered in bulk by the
:mod:`repro.sim._kernels` kernel (NumPy masks over the payload-ready
column and a per-transfer constraint column ``vc``; numba-jitted when
available); only the survivors reach the exact scalar check.  The
``vc`` gate is exact, not conservative: a blocked transfer's stored
constraint is re-materialized by the dirty-channel sweep whenever its
resources change, so at prefilter time ``vc > limit`` is precisely the
reference's own admission refusal (under the all-port model ``vc`` can
lag *below* the true link constraint, which costs a re-exam, never a
wrong skip).  Channel state itself stays in per-node Python lists
pruned exactly like ``_Channel.occupy`` — the float arithmetic is
identical expression for expression.
"""

from __future__ import annotations

from heapq import heappop, heappush
from time import perf_counter

import numpy as np

from repro.obs.instruments import engine_run_finished
from repro.sim._kernels import prefilter
from repro.sim.engine import _EPS, AsyncResult
from repro.sim.faults import (
    DegradedResult,
    FaultError,
    FaultEvent,
    FaultPlan,
    TransferLog,
    _check_mode,
    undelivered_map,
)
from repro.sim.lowering import LoweredSchedule, lower_schedule
from repro.sim.machine import MachineParams
from repro.sim.ports import PortModel
from repro.sim.schedule import Chunk, Schedule, Transfer
from repro.sim.trace import LinkStats
from repro.topology.base import Topology
from repro.topology.hypercube import DirectedEdge

__all__ = ["run_async_vectorized"]

_INF = float("inf")


def run_async_vectorized(
    cube: Topology,
    schedule: Schedule,
    port_model: PortModel,
    initial_holdings: dict[int, set[Chunk]],
    machine: MachineParams | None = None,
    faults: FaultPlan | None = None,
    on_fault: str = "raise",
    lowered: LoweredSchedule | None = None,
    transfer_log: bool = False,
) -> AsyncResult | DegradedResult:
    """Event-driven execution of ``schedule`` under ``port_model``.

    Drop-in equivalent of :func:`repro.sim.engine.run_async` (same
    signature, same results bit for bit, same fault and deadlock
    semantics).  ``lowered`` optionally reuses a pre-built
    :class:`~repro.sim.lowering.LoweredSchedule`; it must have been
    lowered from this exact ``schedule`` and ``initial_holdings``
    (lowering is machine- and port-model-independent, so one lowering
    can be replayed under many machines).  ``transfer_log=True``
    additionally records per-transfer provenance (program-order ids +
    execution-order start times) on the result — the service layer's
    hook for splitting merged multi-job runs back into per-job
    accounting.

    This engine also honours per-chunk *release times* baked into the
    lowering (see :func:`repro.sim.lowering.lower_schedule`): a
    transfer whose payload is released at ``t > 0`` is filed for the
    instant ``t`` instead of competing at 0, which is how service jobs
    admitted mid-stream join an already-running cube.
    """
    machine = machine or MachineParams()
    _check_mode(on_fault)
    report = faults is not None and on_fault == "report"
    half = port_model.half_duplex
    allport = port_model is PortModel.ALL_PORT
    use_lb = not allport
    ov1 = 1.0 - machine.overlap
    eps = _EPS

    low = lowered if lowered is not None else lower_schedule(
        cube, schedule, initial_holdings
    )
    nT = low.n_transfers
    transfers = low.transfers

    # Python mirrors of the per-transfer columns: the scalar admission
    # loop reads these (C-int list access beats NumPy scalar indexing
    # by ~5x per element).
    src_py = low.src.tolist()
    dst_py = low.dst.tolist()
    port_py = low.port.tolist()
    link_py = low.link.tolist()
    in_ptr = low.in_ptr.tolist()
    in_idx = low.in_idx.tolist()
    out_ptr = (
        in_ptr  # in/out CSR pointers are parallel by construction
        if np.array_equal(low.out_ptr, low.in_ptr)
        else low.out_ptr.tolist()
    )
    out_idx = low.out_idx.tolist()
    wait_ptr = low.wait_ptr.tolist()
    wait_idx = low.wait_idx.tolist()

    # send_cost is pure in the size, so compute it once per distinct size
    uniq_sizes, size_inv = np.unique(low.elems, return_inverse=True)
    uniq_costs = [machine.send_cost(int(s)) for s in uniq_sizes.tolist()]
    if uniq_sizes.size == 1:
        costs_py = uniq_costs * nT
    else:
        costs_py = [uniq_costs[j] for j in size_inv.tolist()]

    # -- mutable state -----------------------------------------------------
    avail_py = low.init_avail.tolist()
    missing_py = low.init_missing.tolist()
    done_py = [False] * nT
    ready_np = np.full(nT, np.inf)
    # Queue-membership marker: a transfer already sitting in the current
    # instant's exam queues is never pushed a second time (the reference
    # examines each pending transfer at most once per scan pass).
    inq = [False] * nT
    link_free_py = [0.0] * low.n_links
    num_nodes = cube.num_nodes
    n_ports = cube.num_ports
    if use_lb:
        # Exact channel windows, pruned like _Channel.
        swin: list[list[tuple[int, float, float]]] = [
            [] for _ in range(num_nodes)
        ]
        rwin = swin if half else [[] for _ in range(num_nodes)]
        # Transfers currently blocked on each node channel, and the
        # channels occupied since the last time advance (the dirty set
        # driving the constraint re-materialization sweep).
        sblk: list[set[int]] = [set() for _ in range(num_nodes)]
        rblk = sblk if half else [set() for _ in range(num_nodes)]
        dirty_s: set[int] = set()
        dirty_r: set[int] = set()
    else:
        swin = rwin = [[]]
        sblk = rblk = [set()]
        dirty_s = set()
        dirty_r = set()
    # Outstanding blocked-set entries; while zero, the execute path can
    # skip blocked-set and dirty-channel bookkeeping entirely.
    blk_total = 0
    # Per-channel occupation epochs plus per-blocked-transfer stamps of
    # (send epoch, recv epoch, link_free) at exam time: a transfer that
    # blocked in one pass is re-examined in the next only if one of its
    # three resources changed after the exam — an unchanged re-exam
    # recomputes the same constraint, whose wake the first exam already
    # pushed, so skipping it is exactly a no-op.
    es = [0] * num_nodes
    er = es if half else [0] * num_nodes
    st_se = [0] * nT
    st_re = [0] * nT
    st_lf = [0.0] * nT
    # Stored constraint value at stamp time (max of channel walks and
    # link-free).  It is only ever read under unchanged stamps, where
    # max(now, vc) reproduces the walk bit for bit; the zero init
    # encodes the virgin state exactly — empty windows and a free link
    # constrain to ``now``.  The NumPy mirror is the prefilter's
    # admission gate; ``vc_touch`` collects ids whose mirror entry is
    # stale, flushed in one fancy assignment per instant (executed and
    # faulted transfers are then batch-set to +inf, dropping them from
    # all future candidate sets).
    vc_py = [0.0] * nT
    vc_np = np.zeros(nT)
    vc_touch: list[int] = []

    # Event calendar: transfer ids bucketed under the exact float time
    # at which they next surface as admission candidates (their ready
    # or stored-constraint value — always also a wake-heap value, so
    # the advance's own pops harvest the due buckets).  Every vc/ready
    # change files a new entry, so the latest state always has one;
    # stale (superseded or post-execution) entries are tolerated — the
    # kernel filters them in bulk against the current ``vc`` column.
    # This keeps per-instant work proportional to the transfers
    # actually due, not to the number of enabled transfers.
    calendar: dict[float, list[int]] = {}
    # Entries falling inside the instant being processed (sweep values
    # clamped to ``now``) carry straight into the next instant's due
    # list instead, as do the t=0 seeds.
    pending: list[int] = []

    # Wake heap of raw float times, deduplicated by exact bit pattern.
    wake: list[float] = []
    wake_set: set[float] = set()

    for i in range(nT):
        if missing_py[i] == 0:
            r = 0.0
            for s in in_idx[in_ptr[i]:in_ptr[i + 1]]:
                a = avail_py[s]
                if a > r:
                    r = a
            ready_np[i] = r
            if r > eps:
                # Release-delayed seed (multi-job programs): file it for
                # the instant its payload is released, exactly like a
                # delivery beyond the current instant would.
                b0 = calendar.get(r)
                if b0 is None:
                    calendar[r] = [i]
                else:
                    b0.append(i)
                if r not in wake_set:
                    wake_set.add(r)
                    heappush(wake, r)
            else:
                pending.append(i)

    remaining = nT
    now = 0.0
    finish = 0.0
    start_times: list[float] = []
    executed_ids: list[int] = []
    fault_events: list[FaultEvent] = []
    lost: list[Transfer] = []

    t0 = perf_counter()
    doneskip_n = 0
    blocks_n = 0

    def _flush(deadlocked: bool = False) -> None:
        elems_total = (
            int(low.elems[np.asarray(executed_ids, dtype=np.int64)].sum())
            if executed_ids
            else 0
        )
        engine_run_finished(
            "vectorized", port_model,
            transfers=len(start_times),
            elems=elems_total,
            seconds=perf_counter() - t0,
            events=(
                blocks_n + doneskip_n
                + len(start_times) + len(fault_events)
            ),
            admission_blocks=blocks_n,
            faulted=len(lost),
            deadlocked=deadlocked,
            table_bytes=low.table_bytes,
        )

    while remaining:
        limit = now + eps

        if pending:
            cand_arr = prefilter(
                np.asarray(pending, dtype=np.int64), ready_np, vc_np, limit
            )
            pending = []
            # unique: an id with several due entries is examined once
            cur: list[int] = np.unique(cand_arr).tolist()
        else:
            cur = []
        for i in cur:
            inq[i] = True
        nextpass: list[int] = []
        blocked_acc: list[int] = []
        idone: list[int] = []

        while True:
            mark = len(start_times) + len(fault_events)
            # Walk `cur` (ascending ids = program order) with a cursor;
            # `extra` holds same-instant enables ahead of the cursor.
            extra: list[int] = []
            ci = 0
            cn = len(cur)
            while True:
                if ci < cn:
                    i = cur[ci]
                    if extra and extra[0] < i:
                        i = heappop(extra)
                    else:
                        ci += 1
                elif extra:
                    i = heappop(extra)
                else:
                    break
                inq[i] = False
                if done_py[i]:
                    doneskip_n += 1
                    continue
                p_ = port_py[i]
                s_ = src_py[i]
                d_ = dst_py[i]
                li = link_py[i]
                lf = link_free_py[li]
                if st_se[i] == es[s_] and st_re[i] == er[d_] and st_lf[i] == lf:
                    # Unchanged resources since the stamped exam (or the
                    # virgin state, which the zero stamps encode
                    # exactly): the stored constraint still holds, its
                    # wake value is already in the heap, and a blocked
                    # transfer is already in the blocked-channel sets.
                    start = vc_py[i]
                    if start > limit:
                        blocks_n += 1
                        blocked_acc.append(i)
                        continue
                    if start < now:
                        start = now
                else:
                    start = now
                    if use_lb:
                        for ap, as_, ae in swin[s_]:
                            v = ae if ap == p_ else as_ + ov1 * (ae - as_)
                            if v > start:
                                start = v
                        for ap, as_, ae in rwin[d_]:
                            v = ae if ap == p_ else as_ + ov1 * (ae - as_)
                            if v > start:
                                start = v
                    if lf > start:
                        start = lf
                    if start > limit:
                        blocks_n += 1
                        if use_lb:
                            bs = sblk[s_]
                            if i not in bs:
                                bs.add(i)
                                blk_total += 1
                            bs = rblk[d_]
                            if i not in bs:
                                bs.add(i)
                                blk_total += 1
                        if start not in wake_set:
                            wake_set.add(start)
                            heappush(wake, start)
                        st_se[i] = es[s_]
                        st_re[i] = er[d_]
                        st_lf[i] = lf
                        vc_py[i] = start
                        vc_touch.append(i)
                        b = calendar.get(start)
                        if b is None:
                            calendar[start] = [i]
                        else:
                            b.append(i)
                        blocked_acc.append(i)
                        continue

                if faults is not None:
                    hit = faults.blocks(s_, d_, start)
                    if hit is not None:
                        kind, subject = hit
                        t = transfers[i]
                        if on_fault == "raise":
                            _flush()
                            raise FaultError(
                                f"transfer {t.src}->{t.dst} blocked by dead "
                                f"{kind} {subject} at t={start:.6g}; pending "
                                f"chunks {sorted(map(repr, t.chunks))[:4]}",
                                edge=(t.src, t.dst),
                                node=subject if kind == "node" else None,
                                time=start,
                                chunks=t.chunks,
                            )
                        fault_events.append(FaultEvent(t, start, kind, subject))
                        lost.append(t)
                        done_py[i] = True
                        idone.append(i)
                        continue

                dur = costs_py[i]
                end = start + dur
                if use_lb:
                    es[s_] += 1
                    er[d_] += 1
                    cut = start + eps
                    w = swin[s_]
                    if w:
                        if len(w) == 1:
                            if w[0][2] <= cut:
                                w.clear()
                        else:
                            swin[s_] = w = [a for a in w if a[2] > cut]
                    w.append((p_, start, end))
                    w = rwin[d_]
                    if w:
                        if len(w) == 1:
                            if w[0][2] <= cut:
                                w.clear()
                        else:
                            rwin[d_] = w = [a for a in w if a[2] > cut]
                    w.append((p_, start, end))
                    if blk_total:
                        bs = sblk[s_]
                        if i in bs:
                            bs.discard(i)
                            blk_total -= 1
                        bs = rblk[d_]
                        if i in bs:
                            bs.discard(i)
                            blk_total -= 1
                        # Only occupations that land while some transfer
                        # is blocked can invalidate a pushed constraint;
                        # with nothing blocked the sweep has no work.
                        dirty_s.add(s_)
                        dirty_r.add(d_)
                    # Duration-form overlap release, pushed like the
                    # reference at occupation; the end-start form the
                    # channel constraints compute is materialized by
                    # the dirty-channel sweep before the next advance.
                    r1 = start + ov1 * dur
                    if r1 not in wake_set:
                        wake_set.add(r1)
                        heappush(wake, r1)
                link_free_py[li] = end
                if end not in wake_set:
                    wake_set.add(end)
                    heappush(wake, end)

                op = out_ptr[i]
                oe = out_ptr[i + 1]
                outs = (
                    (out_idx[op],) if oe - op == 1 else out_idx[op:oe]
                )
                for s in outs:
                    a = avail_py[s]
                    if end < a:
                        avail_py[s] = end
                        first = a == _INF
                        wp0 = wait_ptr[s]
                        wp1 = wait_ptr[s + 1]
                        waiters = (
                            (wait_idx[wp0],)
                            if wp1 - wp0 == 1
                            else wait_idx[wp0:wp1]
                        )
                        for w2 in waiters:
                            if done_py[w2]:
                                continue
                            if first:
                                m = missing_py[w2] - 1
                                missing_py[w2] = m
                                if m:
                                    continue
                                newly = True
                            else:
                                if missing_py[w2]:
                                    continue
                                newly = False
                            i0 = in_ptr[w2]
                            i1 = in_ptr[w2 + 1]
                            if i1 - i0 == 1:
                                r = avail_py[in_idx[i0]]
                            else:
                                r = 0.0
                                for s2 in in_idx[i0:i1]:
                                    a2 = avail_py[s2]
                                    if a2 > r:
                                        r = a2
                            ready_np[w2] = r
                            if r > limit:
                                b = calendar.get(r)
                                if b is None:
                                    calendar[r] = [w2]
                                else:
                                    b.append(w2)
                            elif not inq[w2]:
                                # Enabled at this same instant: the
                                # reference's scan picks it up in this
                                # pass when it lies ahead of the
                                # cursor, next pass otherwise.
                                inq[w2] = True
                                if w2 > i:
                                    heappush(extra, w2)
                                else:
                                    nextpass.append(w2)

                start_times.append(start)
                executed_ids.append(i)
                if end > finish:
                    finish = end
                done_py[i] = True
                idone.append(i)

            dtot = len(start_times) + len(fault_events)
            remaining = nT - dtot
            if dtot == mark or not remaining:
                break
            if blocked_acc:
                for j in blocked_acc:
                    if (
                        not done_py[j]
                        and not inq[j]
                        and (
                            es[src_py[j]] != st_se[j]
                            or er[dst_py[j]] != st_re[j]
                            or link_free_py[link_py[j]] != st_lf[j]
                        )
                    ):
                        inq[j] = True
                        nextpass.append(j)
            if not nextpass:
                break
            cur = nextpass
            nextpass = []
            cur.sort()

        for j in nextpass:  # delivery-enabled when the instant closed
            inq[j] = False

        if not remaining:
            break

        # Dirty-channel sweep (see module docstring): re-evaluate every
        # transfer blocked on a channel occupied during this instant and
        # push its constraint — computed from final instant state, with
        # the end-start release form — as a pure wake.  This is where
        # the reference's per-instant rescan pushes come from.
        if use_lb and (dirty_s or dirty_r):
            # Channel windows are frozen for the whole sweep, so the
            # per-(node, port) walk maxima are memoized — the blocked
            # transfers of one pile share their send-side walk.
            swc: dict[int, float] = {}
            rwc = swc if half else {}
            for blk_list, nodes in ((sblk, dirty_s), (rblk, dirty_r)):
                for node in nodes:
                    blocked = blk_list[node]
                    for w3 in list(blocked):
                        if done_py[w3]:
                            blocked.discard(w3)
                            blk_total -= 1
                            continue
                        # Unchanged resources since the blocked exam (or
                        # a previous sweep visit) mean an unchanged
                        # constraint, already in the wake set.
                        sw3 = src_py[w3]
                        dw3 = dst_py[w3]
                        lfw = link_free_py[link_py[w3]]
                        if (
                            es[sw3] == st_se[w3]
                            and er[dw3] == st_re[w3]
                            and lfw == st_lf[w3]
                        ):
                            continue
                        st_se[w3] = es[sw3]
                        st_re[w3] = er[dw3]
                        st_lf[w3] = lfw
                        pw = port_py[w3]
                        k_ = sw3 * n_ports + pw
                        sv = swc.get(k_)
                        if sv is None:
                            sv = 0.0
                            for ap, as_, ae in swin[sw3]:
                                c = ae if ap == pw else as_ + ov1 * (ae - as_)
                                if c > sv:
                                    sv = c
                            swc[k_] = sv
                        k_ = dw3 * n_ports + pw
                        rv = rwc.get(k_)
                        if rv is None:
                            rv = 0.0
                            for ap, as_, ae in rwin[dw3]:
                                c = ae if ap == pw else as_ + ov1 * (ae - as_)
                                if c > rv:
                                    rv = c
                            rwc[k_] = rv
                        v = now
                        if sv > v:
                            v = sv
                        if rv > v:
                            v = rv
                        if lfw > v:
                            v = lfw
                        # max(now', vc) == max(now', true constraint)
                        # for every later instant now' >= now, so the
                        # now-clamped value is safe to store.
                        vc_py[w3] = v
                        vc_touch.append(w3)
                        if v > limit:
                            b = calendar.get(v)
                            if b is None:
                                calendar[v] = [w3]
                            else:
                                b.append(w3)
                        else:
                            pending.append(w3)
                        if v not in wake_set:
                            wake_set.add(v)
                            heappush(wake, v)
            dirty_s.clear()
            dirty_r.clear()

        # Flush the NumPy mirrors the prefilter reads, in one batch per
        # instant: stale vc entries first (duplicate ids all carry the
        # same final value), then the executed/faulted overrides.
        if vc_touch:
            vc_np[vc_touch] = [vc_py[j] for j in vc_touch]
            vc_touch.clear()
        if idone:
            vc_np[idone] = np.inf

        nxt = None
        while wake:
            v = heappop(wake)
            if v > limit:
                nxt = v
                break
        if nxt is None:
            if report and fault_events:
                break  # starvation cascade from cancelled transfers
            stuck = [transfers[j] for j in range(nT) if not done_py[j]][:4]
            _flush(deadlocked=True)
            raise RuntimeError(
                f"schedule deadlocked with {remaining} transfers pending, "
                f"e.g. {stuck}"
            )
        now = nxt
        # Harvest the due calendar buckets: the new instant coalesces
        # every wake value in (limit, now + eps], so ids filed under
        # those values are exactly the next admission candidates.
        b = calendar.pop(nxt, None)
        if b is not None:
            pending.extend(b)
        lim2 = nxt + eps
        while wake and wake[0] <= lim2:
            v = heappop(wake)
            b = calendar.pop(v, None)
            if b is not None:
                pending.extend(b)
        # The dedup set otherwise accumulates every float ever pushed;
        # rebuilding it from the live heap keeps it cache-sized on
        # million-transfer runs.  (Dedup is a size optimization, not a
        # correctness requirement: a missed duplicate is popped and
        # coalesced at the same instant.)
        if len(wake_set) > 4 * len(wake) + 4096:
            wake_set = set(wake)
            wake_set.add(nxt)

    # -- result assembly ---------------------------------------------------
    holdings: dict[int, set[Chunk]] = {node: set() for node in cube.nodes()}
    chunk_objects = low.chunk_objects
    slot_node = low.slot_node.tolist()
    slot_chunk = low.slot_chunk.tolist()
    for s in np.flatnonzero(np.asarray(avail_py) != np.inf).tolist():
        holdings[slot_node[s]].add(chunk_objects[slot_chunk[s]])

    stats = LinkStats()
    if executed_ids:
        ids = np.asarray(executed_ids, dtype=np.int64)
        le = low.link[ids]
        packets = np.bincount(le, minlength=low.n_links)
        elems_per = np.bincount(
            le, weights=low.elems[ids].astype(np.float64),
            minlength=low.n_links,
        )
        lsrc = low.link_src.tolist()
        ldst = low.link_dst.tolist()
        pk = packets.tolist()
        el = elems_per.tolist()
        for li in np.flatnonzero(packets).tolist():
            edge = DirectedEdge(lsrc[li], ldst[li])
            stats.packets[edge] = pk[li]
            stats.elems[edge] = int(el[li])

    log = (
        TransferLog(ids=list(executed_ids), starts=list(start_times))
        if transfer_log
        else None
    )
    start_times.sort()  # stable: equal start times keep execution order

    if fault_events or remaining:
        lost.extend(transfers[j] for j in range(nT) if not done_py[j])
        _flush()
        return DegradedResult(
            time=finish,
            holdings=holdings,
            link_stats=stats,
            fault_events=fault_events,
            undelivered=undelivered_map(lost, holdings),
            transfers_executed=len(start_times),
            transfers_lost=len(lost),
            start_times=start_times,
            transfer_log=log,
        )

    _flush()
    return AsyncResult(
        time=finish,
        holdings=holdings,
        link_stats=stats,
        start_times=start_times,
        transfers_executed=nT,
        transfer_log=log,
    )
