"""Multi-schedule programs: several collectives merged on one cube.

The service layer (:mod:`repro.service`) runs a *stream* of collective
jobs concurrently on one shared hypercube.  Each job still comes from
the ordinary schedule generators, but the engines execute exactly one
schedule per run — so concurrent jobs are composed here into a single
:class:`MergedProgram` first:

* chunk ids are namespaced per job (``(tag, chunk)``) so two broadcasts
  both shipping ``("b", 0)`` never alias;
* the merged program order interleaves the jobs **round by round in the
  given entry order** — program order is contention priority in the
  event engines, so the entry order *is* the scheduling policy's
  priority ranking;
* every transfer records its owning entry (``owners``) — the per-job
  provenance the service uses to split one engine run back into
  per-job completion times, link traffic and delivery reports;
* each job's initially-held chunks carry a *release time* (its
  admission instant): the vectorized engine will not start any
  transfer of the job before it, which is how jobs arriving mid-stream
  enter an already-running cube.

Unlike :func:`repro.sim.schedule.merge_schedules` (which exists to be
re-packed into a new valid round structure), a merged program is meant
for the *event* engines, where rounds are priorities rather than
barriers: two jobs contending for one link simply serialize, exactly
like the paper's port-model admission rules demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from repro.sim.schedule import Chunk, Schedule, Transfer

__all__ = ["JobEntry", "MergedProgram", "merge_programs", "untag_holdings"]


@dataclass(frozen=True)
class JobEntry:
    """One job's contribution to a merged program.

    Attributes:
        tag: hashable job identity used to namespace its chunks (the
            service uses the job id).
        schedule: the job's own (untagged) routing schedule.
        initial: the job's initial holdings, untagged.
        release: earliest instant any transfer of the job may start
            (the service's admission time).
    """

    tag: Hashable
    schedule: Schedule
    initial: dict[int, set[Chunk]]
    release: float = 0.0

    def __post_init__(self) -> None:
        if self.release < 0:
            raise ValueError(f"release time must be >= 0, got {self.release}")


@dataclass
class MergedProgram:
    """Several job schedules compiled into one engine-ready schedule.

    Attributes:
        schedule: the merged, chunk-tagged schedule (engine input).
        initial: merged, chunk-tagged initial holdings (engine input).
        release_times: tagged chunk -> availability instant of the
            initially-held copies (for
            :func:`repro.sim.lowering.lower_schedule`).
        owners: transfer index in ``schedule.all_transfers()`` program
            order -> position of the owning entry in ``entries``.
        entries: the input entries, in merged (priority) order.
    """

    schedule: Schedule
    initial: dict[int, set[Chunk]]
    release_times: dict[Chunk, float]
    owners: list[int]
    entries: list[JobEntry]

    @property
    def num_jobs(self) -> int:
        """Number of merged jobs."""
        return len(self.entries)

    def job_transfers(self, position: int) -> list[int]:
        """Transfer indices owned by the entry at ``position``."""
        return [i for i, o in enumerate(self.owners) if o == position]


def merge_programs(entries: Sequence[JobEntry]) -> MergedProgram:
    """Compose job entries into one :class:`MergedProgram`.

    The rounds of all entries are zipped index by index (entry order
    within each round), so the flattened program order — the event
    engines' contention priority — ranks entry 0's round-``k``
    transfers ahead of entry 1's, for every ``k``.  Callers sort the
    entries by their policy's priority key first.
    """
    if not entries:
        raise ValueError("need at least one job entry to merge")
    tags = [e.tag for e in entries]
    if len(set(tags)) != len(tags):
        raise ValueError(f"job tags must be unique, got {tags}")

    chunk_sizes: dict[Chunk, int] = {}
    release_times: dict[Chunk, float] = {}
    initial: dict[int, set[Chunk]] = {}
    depth = max(e.schedule.num_rounds for e in entries)
    rounds: list[list[Transfer]] = [[] for _ in range(depth)]
    owner_rounds: list[list[int]] = [[] for _ in range(depth)]
    for pos, entry in enumerate(entries):
        tag = entry.tag
        for c, size in entry.schedule.chunk_sizes.items():
            chunk_sizes[(tag, c)] = size
        for node, chunks in entry.initial.items():
            held = initial.setdefault(node, set())
            for c in chunks:
                tagged = (tag, c)
                held.add(tagged)
                release_times[tagged] = entry.release
        for ri, r in enumerate(entry.schedule.rounds):
            for t in r:
                rounds[ri].append(
                    Transfer(t.src, t.dst, frozenset((tag, c) for c in t.chunks))
                )
                owner_rounds[ri].append(pos)
    merged = Schedule(
        rounds=[tuple(r) for r in rounds],
        chunk_sizes=chunk_sizes,
        algorithm="multi-job",
        meta={
            "merged_from": [e.schedule.algorithm for e in entries],
            "tags": list(tags),
        },
    )
    owners = [o for r in owner_rounds for o in r]
    return MergedProgram(
        schedule=merged,
        initial=initial,
        release_times=release_times,
        owners=owners,
        entries=list(entries),
    )


def untag_holdings(
    holdings: dict[int, set[Chunk]],
    tag: Hashable,
    nodes: Iterable[int] | None = None,
) -> dict[int, set[Chunk]]:
    """One job's view of merged holdings, with the namespace stripped.

    Returns ``{node: {chunk for (tag, chunk) held}}`` — exactly the
    holdings a standalone run of the job's own schedule would produce,
    which is what makes the single-job differential test bit-exact.
    """
    keys = holdings.keys() if nodes is None else nodes
    return {
        node: {c for t, c in holdings.get(node, set()) if t == tag}
        for node in keys
    }
