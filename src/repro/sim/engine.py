"""Asynchronous discrete-event execution of a routing schedule.

Where :mod:`repro.sim.synchronous` counts idealized lock-step cycles,
this engine models what actual hardware (the Intel iPSC of §5) does
with the same schedule:

* every transfer takes ``machine.send_cost(elems)`` wall-clock time
  (start-up per internal hardware packet + proportional transfer);
* a transfer starts as soon as — and no sooner than — its payload is
  present at the sender, its directed link is free, and both endpoint
  nodes have channel capacity under the active port model;
* under the one-port models, consecutive actions of one node on
  *different* ports may overlap by the machine's ``overlap`` fraction
  (the iPSC's measured ~20 %, which §5.2 identifies as the reason the
  BST scatter beats the SBT scatter on one-port hardware);
* transfers compete in schedule order (program order), i.e. the round
  structure provides priorities, not barriers.

The engine is what regenerates the *measured* curves of Figures 5–8.

Implementation
--------------
The original engine rescanned the full pending list at every wake-up,
which is O(T^2) in the number of transfers.  This implementation is
dependency-indexed and runs in O(T log T + deliveries):

* each pending transfer is registered in a ``(node, chunk) -> waiting
  transfer ids`` map; a delivery re-examines exactly the transfers it
  might unblock;
* node channels prune completed actions on every occupation, so they
  hold only the live overlap window (a handful of entries) instead of
  the full action history, and admission checks are O(window);
* an event heap of ``(time, pass, transfer id)`` drives time forward;
  examinations due within ``_EPS`` of the current instant are processed
  as one coalesced batch in program order, and the ``pass`` component
  reproduces the original engine's fixpoint-scan ordering for
  zero-duration cascades.  A per-transfer earliest-pending-examination
  marker dedupes wake-ups so the heap stays bounded by the number of
  genuinely distinct events.

The reference implementation is preserved verbatim in
:mod:`repro.sim._engine_reference`; the equivalence suite asserts both
produce bit-identical results on every algorithm and port model.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from time import perf_counter

from repro.obs.instruments import engine_run_finished
from repro.sim.faults import (
    DegradedResult,
    FaultError,
    FaultEvent,
    FaultPlan,
    TransferLog,
    _check_mode,
    undelivered_map,
)
from repro.sim.machine import MachineParams
from repro.sim.ports import PortModel
from repro.sim.schedule import Chunk, Schedule, Transfer
from repro.sim.trace import LinkStats
from repro.topology.base import Topology

__all__ = ["AsyncResult", "TransferLog", "run_async"]

_EPS = 1e-12


class _Channel:
    """A serialized node channel with cross-port overlap.

    A new action on port ``p`` may start once it is past the end of
    every live action on ``p`` and past the overlap-release point
    ``start + (1 - overlap) * duration`` of every live action on other
    ports.  Each occupation prunes actions that ended before the new
    start, so the list only ever holds the live overlap window — a
    handful of entries, regardless of schedule length.  (The pruning
    rule and constraint arithmetic match the reference engine exactly;
    that is what keeps the two engines bit-identical.)
    """

    __slots__ = ("_overlap", "_actions", "blocked")

    def __init__(self, overlap: float):
        self._overlap = overlap
        self._actions: list[tuple[int, float, float]] = []  # (port, start, end)
        # Ready transfers currently deferred on this channel; their
        # constraint is re-evaluated whenever the channel gains an
        # action (see the dirty-channel sweep in run_async).
        self.blocked: set[int] = set()

    def earliest_start(self, port: int, now: float) -> float:
        t = now
        for p, s, e in self._actions:
            if p == port:
                if e > t:
                    t = e
            else:
                r = s + (1.0 - self._overlap) * (e - s)
                if r > t:
                    t = r
        return t

    def occupy(self, port: int, start: float, end: float) -> None:
        acts = self._actions
        if acts:
            self._actions = acts = [a for a in acts if a[2] > start + _EPS]
        acts.append((port, start, end))


@dataclass
class AsyncResult:
    """Outcome of an asynchronous run.

    Attributes:
        time: completion time of the last transfer.
        holdings: chunk ids held by every node at the end.
        link_stats: per-edge traffic counters.
        start_times: start time of each executed transfer, sorted
            ascending by start time (ties keep execution order), so
            ``start_times[k]`` is the k-th transfer initiation on the
            machine (useful for utilization analysis).
        transfers_executed: number of transfers run.
        transfer_log: execution provenance when requested
            (``transfer_log=True`` on the vectorized engine).
    """

    time: float
    holdings: dict[int, set[Chunk]]
    link_stats: LinkStats
    start_times: list[float] = field(default_factory=list)
    transfers_executed: int = 0
    transfer_log: TransferLog | None = None


def run_async(
    cube: Topology,
    schedule: Schedule,
    port_model: PortModel,
    initial_holdings: dict[int, set[Chunk]],
    machine: MachineParams | None = None,
    faults: FaultPlan | None = None,
    on_fault: str = "raise",
) -> AsyncResult | DegradedResult:
    """Event-driven execution of ``schedule`` under ``port_model``.

    Raises ``RuntimeError`` on deadlock — i.e. when a pending transfer's
    payload can never arrive because the schedule is causally broken.

    With a :class:`~repro.sim.faults.FaultPlan`, a transfer whose start
    instant falls on a dead link or endpoint raises a structured
    :class:`~repro.sim.faults.FaultError` (``on_fault="raise"``,
    default) or is cancelled and reported (``on_fault="report"``):
    the run then continues with the surviving transfers, transfers
    starved by the cancellation cascade are dropped instead of
    deadlocking, and a :class:`~repro.sim.faults.DegradedResult` names
    every undelivered ``(node, chunk)``.  A faulted run that still
    executes every transfer returns a plain :class:`AsyncResult`.
    """
    machine = machine or MachineParams()
    _check_mode(on_fault)
    report = faults is not None and on_fault == "report"
    fault_events: list[FaultEvent] = []
    lost: list[Transfer] = []
    half = port_model.half_duplex
    allport = port_model is PortModel.ALL_PORT
    overlap = machine.overlap

    # Chunk availability per node: time at which (node, chunk) is present.
    avail: dict[tuple[int, Chunk], float] = {}
    for node, chunks in initial_holdings.items():
        for c in chunks:
            avail[(node, c)] = 0.0

    # Channels: one per node under ONE_PORT_HALF; separate send/recv
    # channels under ONE_PORT_FULL; per-directed-link only under ALL_PORT.
    send_ch: dict[int, _Channel] = {}
    recv_ch: dict[int, _Channel] = {}

    def _send_channel(node: int) -> _Channel:
        ch = send_ch.get(node)
        if ch is None:
            ch = _Channel(overlap)
            send_ch[node] = ch
            if half:
                recv_ch[node] = ch  # shared channel
        return ch

    def _recv_channel(node: int) -> _Channel:
        ch = recv_ch.get(node)
        if ch is None:
            if half:
                ch = _send_channel(node)
            else:
                ch = _Channel(overlap)
                recv_ch[node] = ch
        return ch

    link_free: dict[tuple[int, int], float] = {}

    transfers: list[Transfer] = schedule.all_transfers()
    n_transfers = len(transfers)
    sizes = [schedule.transfer_elems(t) for t in transfers]
    cost_of: dict[int, float] = {}
    costs = [
        cost_of.setdefault(s, machine.send_cost(s)) for s in sizes
    ]
    done = [False] * n_transfers
    remaining = n_transfers

    # Dependency index: which pending transfers send (node, chunk).
    waiters: dict[tuple[int, Chunk], list[int]] = {}
    for idx, t in enumerate(transfers):
        for c in t.chunks:
            waiters.setdefault((t.src, c), []).append(idx)

    stats = LinkStats()
    start_times: list[float] = []
    finish = 0.0
    now = 0.0
    cur_pass = 0
    cur_idx = -1

    # Telemetry accumulates in locals and flushes once per run (every
    # exit path calls _flush), keeping the event loop free of registry
    # work.
    t0 = perf_counter()
    events_n = 0
    blocks_n = 0

    def _flush(deadlocked: bool = False) -> None:
        engine_run_finished(
            "async", port_model,
            transfers=len(start_times),
            elems=stats.total_elems(),
            seconds=perf_counter() - t0,
            events=events_n,
            admission_blocks=blocks_n,
            faulted=len(lost),
            deadlocked=deadlocked,
        )

    # Future examinations live in `events`, a heap of (time, pass, idx).
    # Examinations due at the current instant (all times within _EPS of
    # `now` count as one instant, exactly like the reference engine's
    # wake-up coalescing) live in `batch`, a heap of (pass, idx, time):
    # within one instant program order decides priority, not the
    # sub-epsilon float representative an event happened to carry.
    # `scheduled[idx]` tracks the earliest pending examination so
    # duplicate wake-ups are never pushed (and stragglers from
    # rescheduling are dropped on pop).
    events: list[tuple[float, int, int]] = [
        (0.0, 0, idx) for idx in range(n_transfers)
    ]
    batch: list[tuple[int, int, float]] = []
    scheduled: list[float | None] = [0.0] * n_transfers

    def _push_exam(w: int, te: float) -> None:
        sc = scheduled[w]
        if sc is not None and sc <= te + _EPS:
            return  # an examination no later than te is already pending
        scheduled[w] = te
        if te <= now + _EPS:
            # Same-instant re-examination: transfers at or before the
            # cursor wait for the next pass (the reference engine's
            # rescan), later ones are picked up in the current pass.
            p = cur_pass if w > cur_idx else cur_pass + 1
            heapq.heappush(batch, (p, w, te))
        else:
            heapq.heappush(events, (te, 0, w))

    dirty: set[_Channel] = set()  # channels occupied since last sweep

    while remaining:
        if not batch:
            # The reference engine rescans every pending transfer after
            # each execution, re-pushing each blocked transfer's current
            # channel constraint as a wake.  Those constraint values can
            # be overlap-release points that exist nowhere else in the
            # event stream, yet later serve as the instant another
            # transfer's start snaps to — so re-evaluate the blocked
            # transfers of every channel dirtied in the closed window
            # and push their constraints as pure wakes.
            if dirty:
                seen: set[int] = set()
                for ch in dirty:
                    for w in list(ch.blocked):
                        if done[w]:
                            ch.blocked.discard(w)
                            continue
                        if w in seen:
                            continue
                        seen.add(w)
                        tw = transfers[w]
                        pw = cube.port_towards(tw.src, tw.dst)
                        v = _send_channel(tw.src).earliest_start(pw, now)
                        v2 = _recv_channel(tw.dst).earliest_start(pw, now)
                        if v2 > v:
                            v = v2
                        lfw = link_free.get((tw.src, tw.dst))
                        if lfw is not None and lfw > v:
                            v = lfw
                        heapq.heappush(events, (v, 0, -1))
                dirty.clear()
            # Advance time to the next instant with a live examination.
            # Pure wakes (idx == -1: transfer ends and overlap releases)
            # never trigger work themselves, but the reference engine
            # advances `now` through them — so when a live examination
            # falls within _EPS of the nearest pure wake, that wake's
            # time is the instant's representative, exactly as it would
            # have been the `now` at which the reference rescans.
            cand = None  # earliest unresolved pure-wake time
            while events:
                te, p, idx = heapq.heappop(events)
                if idx >= 0 and not done[idx]:
                    sc = scheduled[idx]
                    if sc is not None and sc >= te - _EPS:
                        break  # a live examination
                # Anything else — pure wakes, superseded examination
                # times, wakes of already-executed transfers — is still
                # a time the reference engine pushed, so it stays a
                # candidate instant representative.
                if te <= now + _EPS:
                    continue  # coalesced into the previous instant
                if cand is None or te > cand + _EPS:
                    cand = te
            else:
                if report and fault_events:
                    # Starvation cascade from cancelled transfers: the
                    # pending payloads can never arrive.  Terminate the
                    # degraded run instead of diagnosing a deadlock.
                    break
                stuck = [
                    transfers[i] for i in range(n_transfers) if not done[i]
                ][:4]
                _flush(deadlocked=True)
                raise RuntimeError(
                    f"schedule deadlocked with {remaining} transfers pending, "
                    f"e.g. {stuck}"
                )
            rep = cand if (cand is not None and te <= cand + _EPS) else te
            if rep > now + _EPS:
                now = rep
            heapq.heappush(batch, (p, idx, te))
            # Pull in every other examination due at this same instant.
            while events and events[0][0] <= now + _EPS:
                te2, p2, idx2 = heapq.heappop(events)
                if idx2 < 0 or done[idx2]:
                    continue
                sc = scheduled[idx2]
                if sc is None or sc < te2 - _EPS:
                    continue
                heapq.heappush(batch, (p2, idx2, te2))

        p, idx, te = heapq.heappop(batch)
        events_n += 1
        if done[idx]:
            continue
        sc = scheduled[idx]
        if sc is None or sc < te - _EPS:
            continue  # stale duplicate; an earlier examination handled it
        scheduled[idx] = None
        cur_pass = p
        cur_idx = idx

        t = transfers[idx]
        # Payload availability at the sender.
        ready = 0.0
        missing = False
        for c in t.chunks:
            a = avail.get((t.src, c))
            if a is None:
                missing = True
                break
            if a > ready:
                ready = a
        if missing:
            continue  # parked; the delivery index will re-examine us
        if ready > now + _EPS:
            _push_exam(idx, ready)
            continue

        port = cube.port_towards(t.src, t.dst)
        start = now
        if not allport:
            s = _send_channel(t.src).earliest_start(port, now)
            if s > start:
                start = s
            s = _recv_channel(t.dst).earliest_start(port, now)
            if s > start:
                start = s
        lf = link_free.get((t.src, t.dst))
        if lf is not None and lf > start:
            start = lf
        if start > now + _EPS:
            blocks_n += 1
            if not allport:
                _send_channel(t.src).blocked.add(idx)
                _recv_channel(t.dst).blocked.add(idx)
            _push_exam(idx, start)
            continue

        if faults is not None:
            hit = faults.blocks(t.src, t.dst, start)
            if hit is not None:
                kind, subject = hit
                if on_fault == "raise":
                    _flush()
                    raise FaultError(
                        f"transfer {t.src}->{t.dst} blocked by dead {kind} "
                        f"{subject} at t={start:.6g}; pending chunks "
                        f"{sorted(map(repr, t.chunks))[:4]}",
                        edge=(t.src, t.dst),
                        node=subject if kind == "node" else None,
                        time=start,
                        chunks=t.chunks,
                    )
                fault_events.append(FaultEvent(t, start, kind, subject))
                lost.append(t)
                done[idx] = True
                remaining -= 1
                continue

        dur = costs[idx]
        end = start + dur
        if not allport:
            sch = _send_channel(t.src)
            rch = _recv_channel(t.dst)
            sch.occupy(port, start, end)
            rch.occupy(port, start, end)
            sch.blocked.discard(idx)
            rch.blocked.discard(idx)
            dirty.add(sch)
            dirty.add(rch)
            # Pure wake at the overlap-release point (reference pushes
            # this in dur form; the channel constraint's end-start form
            # is materialized by the dirty-channel sweep above).
            heapq.heappush(events, (start + (1.0 - overlap) * dur, 0, -1))
        heapq.heappush(events, (end, 0, -1))  # pure wake at completion
        link_free[(t.src, t.dst)] = end
        for c in t.chunks:
            key = (t.dst, c)
            a = avail.get(key)
            if a is None or a > end:
                avail[key] = end
                ws = waiters.get(key)
                if ws:
                    for w in ws:
                        if not done[w]:
                            _push_exam(w, end)
        stats.record(t.src, t.dst, sizes[idx])
        start_times.append(start)
        if end > finish:
            finish = end
        done[idx] = True
        remaining -= 1

    holdings: dict[int, set[Chunk]] = {node: set() for node in cube.nodes()}
    for (node, chunk) in avail:
        holdings[node].add(chunk)

    start_times.sort()  # stable: equal start times keep execution order

    if fault_events or remaining:
        lost.extend(transfers[i] for i in range(n_transfers) if not done[i])
        _flush()
        return DegradedResult(
            time=finish,
            holdings=holdings,
            link_stats=stats,
            fault_events=fault_events,
            undelivered=undelivered_map(lost, holdings),
            transfers_executed=len(start_times),
            transfers_lost=len(lost),
            start_times=start_times,
        )

    _flush()
    return AsyncResult(
        time=finish,
        holdings=holdings,
        link_stats=stats,
        start_times=start_times,
        transfers_executed=n_transfers,
    )
