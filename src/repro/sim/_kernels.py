"""Admission-prefilter kernel for the vectorized event engine.

One kernel, two implementations selected at import time:

* a numba ``@njit`` loop when numba is importable (opt-in acceleration;
  the ``accel`` extra installs it) and ``REPRO_NO_NUMBA`` is unset;
* a pure-NumPy fallback otherwise — the canonical, always-tested path.

Both answer the same question for a batch of candidate transfer ids:
*which candidates must the scalar admission loop examine at the
current instant?*  The filter is exact, not conservative, because the
engine maintains ``vc`` — the per-transfer constraint value — with an
invariant that makes the comparison lossless:

* a virgin (never-examined) transfer has ``vc = 0``, so it is kept the
  moment its payload is ready (its first exam parks it or starts it);
* a parked (examined-and-blocked) transfer's ``vc`` is its exact
  channel/link constraint, re-materialized by the engine's
  dirty-channel sweep before every time advance, so ``vc <= limit`` is
  precisely the reference's admission re-check (for the all-port model
  ``vc`` may lag *below* the true link constraint, which only costs a
  re-exam, never a wrong drop);
* an executed or faulted transfer has ``vc = inf`` and is never kept
  again.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = ["HAVE_NUMBA", "prefilter"]

HAVE_NUMBA = False


def _prefilter_numpy(
    idx: np.ndarray,
    ready: np.ndarray,
    vc: np.ndarray,
    limit: float,
) -> np.ndarray:
    """Candidate ids from ``idx`` requiring an exact exam at this instant."""
    sub = idx[ready[idx] <= limit]
    if sub.size == 0:
        return sub
    return sub[vc[sub] <= limit]


prefilter = _prefilter_numpy

if not os.environ.get("REPRO_NO_NUMBA"):
    try:
        from numba import njit  # type: ignore[import-not-found]
    except ImportError:
        pass
    else:  # pragma: no cover - exercised only when numba is installed
        @njit(cache=True)
        def _prefilter_jit(idx, ready, vc, limit):  # type: ignore[misc]
            out = np.empty(idx.size, dtype=np.int64)
            k = 0
            for j in range(idx.size):
                i = idx[j]
                if ready[i] <= limit and vc[i] <= limit:
                    out[k] = i
                    k += 1
            return out[:k]

        prefilter = _prefilter_jit
        HAVE_NUMBA = True
