"""Synchronous lock-step execution of a routing schedule.

The paper counts *routing steps* (cycles): in each step every node may
communicate within the limits of the active port model, and all packets
of the step complete together.  This engine

* verifies the schedule against the port model (the paper's claims are
  precisely that its schedules fit within these constraints),
* verifies causality — a node only sends chunks it already holds,
* tracks who holds what, so tests can assert complete delivery,
* accumulates per-link traffic,
* and prices the run: a step carrying packets of at most ``b`` elements
  costs ``tau + b * t_c`` (plus hardware splitting if the machine has
  an internal packet limit).

The cycle counts it reports are the quantities of Tables 1 and 2 and
the step terms of Table 3.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from time import perf_counter

try:  # the vectorized constraint fast path is optional
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a standard dependency
    _np = None

from repro.obs.instruments import engine_run_finished
from repro.sim.faults import (
    DegradedResult,
    FaultError,
    FaultEvent,
    FaultPlan,
    _check_mode,
    undelivered_map,
)
from repro.sim.machine import MachineParams
from repro.sim.ports import PortModel
from repro.sim.schedule import Chunk, Schedule, Transfer
from repro.sim.trace import LinkStats
from repro.topology.base import Topology

__all__ = ["SyncResult", "run_synchronous", "check_round_constraints"]


class ScheduleViolation(ValueError):
    """A schedule broke a port-model or causality constraint."""


@dataclass
class SyncResult:
    """Outcome of a synchronous run.

    Attributes:
        cycles: number of (non-empty) routing steps executed.
        time: lock-step time — each step costs the machine's
            ``send_cost`` of its largest packet.
        holdings: chunk ids held by each node at the end.
        link_stats: per-edge traffic counters.
        step_costs: the individual step costs summing to ``time``.
    """

    cycles: int
    time: float
    holdings: dict[int, set[Chunk]]
    link_stats: LinkStats
    step_costs: list[float] = field(default_factory=list)

    def holds(self, node: int, chunk: Chunk) -> bool:
        """True when ``node`` ended the run holding ``chunk``."""
        return chunk in self.holdings.get(node, set())


#: below this many transfers per round the scalar checker is faster
#: than building the arrays
_VECTOR_THRESHOLD = 8


def _round_ok_vectorized(
    cube: Topology,
    round_transfers: tuple[Transfer, ...],
    port_model: PortModel,
) -> bool:
    """Whole-round constraint check over NumPy arrays.

    Returns True when the round provably satisfies every port-model
    constraint; False means *some* check failed (the caller re-runs the
    scalar path to raise the precise diagnostic).
    """
    k = len(round_transfers)
    src = _np.fromiter((t.src for t in round_transfers), dtype=_np.int64, count=k)
    dst = _np.fromiter((t.dst for t in round_transfers), dtype=_np.int64, count=k)
    num = cube.num_nodes
    if (cube.edge_ports(src, dst) < 0).any():  # not an edge of the topology
        return False
    keys = src * num + dst
    if _np.unique(keys).size != k:  # directed edge used twice
        return False
    if port_model is PortModel.ALL_PORT:
        return True
    send_counts = _np.bincount(src, minlength=num)
    recv_counts = _np.bincount(dst, minlength=num)
    if (send_counts > 1).any() or (recv_counts > 1).any():
        return False
    if port_model.half_duplex and ((send_counts > 0) & (recv_counts > 0)).any():
        return False
    return True


def check_round_constraints(
    cube: Topology,
    round_transfers: tuple[Transfer, ...],
    port_model: PortModel,
    round_index: int,
) -> None:
    """Validate one round against the port model; raise on violation."""
    if (
        _np is not None
        and len(round_transfers) >= _VECTOR_THRESHOLD
        and _round_ok_vectorized(cube, round_transfers, port_model)
    ):
        return
    sends: Counter[int] = Counter()
    recvs: Counter[int] = Counter()
    edges_used: set[tuple[int, int]] = set()
    for t in round_transfers:
        cube.check_node(t.src)
        cube.check_node(t.dst)
        if not cube.are_adjacent(t.src, t.dst):
            raise ScheduleViolation(
                f"round {round_index}: transfer {t.src}->{t.dst} is not a cube edge"
            )
        if (t.src, t.dst) in edges_used:
            raise ScheduleViolation(
                f"round {round_index}: directed edge {t.src}->{t.dst} used twice"
            )
        edges_used.add((t.src, t.dst))
        sends[t.src] += 1
        recvs[t.dst] += 1

    if port_model is PortModel.ALL_PORT:
        return  # per-edge exclusivity (checked above) is the only limit
    for node, k in sends.items():
        if k > 1:
            raise ScheduleViolation(
                f"round {round_index}: node {node} sends {k} packets "
                f"under {port_model.value}"
            )
    for node, k in recvs.items():
        if k > 1:
            raise ScheduleViolation(
                f"round {round_index}: node {node} receives {k} packets "
                f"under {port_model.value}"
            )
    if port_model.half_duplex:
        for node in sends:
            if node in recvs:
                raise ScheduleViolation(
                    f"round {round_index}: node {node} both sends and receives "
                    f"under {port_model.value}"
                )


def run_synchronous(
    cube: Topology,
    schedule: Schedule,
    port_model: PortModel,
    initial_holdings: dict[int, set[Chunk]],
    machine: MachineParams | None = None,
    validate: bool = True,
    faults: FaultPlan | None = None,
    on_fault: str = "raise",
) -> SyncResult | DegradedResult:
    """Execute ``schedule`` in lock-step under ``port_model``.

    Args:
        cube: the host cube.
        schedule: the routing schedule to run.
        port_model: per-node concurrency limits to enforce.
        initial_holdings: chunks held by each node before round 0
            (typically: the source holds everything).
        machine: cost parameters (default: unit costs).
        validate: when True (default), raise :class:`ScheduleViolation`
            on any port-model or causality breach.
        faults: failed links/nodes to enforce.  A transfer touching a
            fault active at its round's start time raises
            :class:`~repro.sim.faults.FaultError` (``on_fault="raise"``)
            or is cancelled and reported (``on_fault="report"``).
        on_fault: ``"raise"`` (default) or ``"report"``.  In report
            mode, transfers starved by a cancellation cascade are
            dropped instead of raising :class:`ScheduleViolation`, and
            a degraded run returns a
            :class:`~repro.sim.faults.DegradedResult` naming every
            undelivered ``(node, chunk)``.

    Returns:
        A :class:`SyncResult` (``cycles`` counts non-empty rounds), or
        a :class:`~repro.sim.faults.DegradedResult` when faults
        actually cancelled transfers in report mode.
    """
    machine = machine or MachineParams()
    _check_mode(on_fault)
    report = faults is not None and on_fault == "report"
    fault_events: list[FaultEvent] = []
    lost: list[Transfer] = []
    executed = 0
    holdings: dict[int, set[Chunk]] = {
        node: set(initial_holdings.get(node, set())) for node in cube.nodes()
    }
    stats = LinkStats()
    step_costs: list[float] = []
    cycles = 0
    elapsed = 0.0

    # One flush per run on every exit path; the round loop only touches
    # plain locals.
    t0 = perf_counter()

    def _flush() -> None:
        engine_run_finished(
            "sync", port_model,
            transfers=executed,
            elems=stats.total_elems(),
            seconds=perf_counter() - t0,
            faulted=len(lost),
        )

    # Bound-method lookups hoisted out of the round loop: an n=14 MSBT
    # schedule has ~1M transfers, and re-binding these per transfer is
    # measurable in the lock-step path.
    transfer_elems = schedule.transfer_elems
    record = stats.record
    send_cost = machine.send_cost
    faults_blocks = faults.blocks if faults is not None else None

    for r_idx, round_transfers in enumerate(schedule.rounds):
        if not round_transfers:
            continue
        if faults_blocks is not None:
            keep: list[Transfer] = []
            for t in round_transfers:
                hit = faults_blocks(t.src, t.dst, elapsed)
                if hit is None:
                    keep.append(t)
                    continue
                kind, subject = hit
                if on_fault == "raise":
                    _flush()
                    raise FaultError(
                        f"round {r_idx}: transfer {t.src}->{t.dst} blocked by "
                        f"dead {kind} {subject} at t={elapsed:.6g}; pending "
                        f"chunks {sorted(map(repr, t.chunks))[:4]}",
                        edge=(t.src, t.dst),
                        node=subject if kind == "node" else None,
                        time=elapsed,
                        chunks=t.chunks,
                    )
                fault_events.append(FaultEvent(t, elapsed, kind, subject))
                lost.append(t)
            round_transfers = tuple(keep)
        if report:
            # Transfers starved by the cancellation cascade are dropped,
            # not violations — their payload can no longer arrive.
            keep = []
            for t in round_transfers:
                if t.chunks - holdings[t.src]:
                    lost.append(t)
                else:
                    keep.append(t)
            round_transfers = tuple(keep)
        if not round_transfers:
            continue
        cycles += 1
        if validate:
            check_round_constraints(cube, round_transfers, port_model, r_idx)
            for t in round_transfers:
                missing = t.chunks - holdings[t.src]
                if missing:
                    raise ScheduleViolation(
                        f"round {r_idx}: node {t.src} sends chunks it does not "
                        f"hold: {sorted(map(str, missing))[:4]}"
                    )
        biggest = 0
        for t in round_transfers:
            elems = transfer_elems(t)
            if elems > biggest:
                biggest = elems
            record(t.src, t.dst, elems)
        # Deliveries land after the whole round (lock-step semantics):
        for t in round_transfers:
            holdings[t.dst] |= t.chunks
        executed += len(round_transfers)
        step_costs.append(send_cost(biggest))
        elapsed += step_costs[-1]

    _flush()
    if lost or fault_events:
        return DegradedResult(
            time=sum(step_costs),
            holdings=holdings,
            link_stats=stats,
            fault_events=fault_events,
            undelivered=undelivered_map(lost, holdings),
            transfers_executed=executed,
            transfers_lost=len(lost),
            cycles=cycles,
            step_costs=step_costs,
        )

    return SyncResult(
        cycles=cycles,
        time=sum(step_costs),
        holdings=holdings,
        link_stats=stats,
        step_costs=step_costs,
    )
