"""Engine selection: one name, one runner, one environment default.

Three interchangeable async engines execute the same
:class:`~repro.sim.schedule.Schedule` contract:

* ``"indexed"`` — the object-path event engine
  (:func:`repro.sim.engine.run_async`); the default.
* ``"vectorized"`` — the array-core engine
  (:func:`repro.sim.vectorized.run_async_vectorized`): lowers the
  schedule to flat NumPy tables once and drives admission through a
  batched prefilter kernel.  Bit-identical results, much faster on
  large cubes (n >= 10).
* ``"reference"`` — the deliberately naive oracle
  (:func:`repro.sim._engine_reference.run_async_reference`), kept for
  differential debugging.  Note its ``start_times`` are in completion
  order, not sorted; callers comparing against it must sort.

:func:`resolve_engine` turns ``None`` into the process-wide default
(the ``REPRO_ENGINE`` environment variable, else ``"indexed"``), which
is also how the sweep executor's worker processes inherit an engine
choice without threading a parameter through every experiment
function.
"""

from __future__ import annotations

import os
from collections.abc import Callable
from typing import Any

__all__ = ["ENGINES", "get_engine", "resolve_engine"]

#: Recognized engine names, in documentation order.
ENGINES = ("indexed", "vectorized", "reference")


def resolve_engine(engine: str | None = None) -> str:
    """Validate ``engine``, defaulting to ``REPRO_ENGINE`` or ``"indexed"``.

    Raises:
        ValueError: if the name (explicit or from the environment) is
            not one of :data:`ENGINES`.
    """
    if engine is None:
        engine = os.environ.get("REPRO_ENGINE") or "indexed"
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {', '.join(ENGINES)}"
        )
    return engine


def get_engine(engine: str | None = None) -> Callable[..., Any]:
    """Return the ``run_async``-compatible runner for ``engine``.

    Imports lazily so selecting ``"indexed"`` never pays for NumPy
    table setup code, and vice versa.
    """
    name = resolve_engine(engine)
    if name == "vectorized":
        from repro.sim.vectorized import run_async_vectorized

        return run_async_vectorized
    if name == "reference":
        from repro.sim._engine_reference import run_async_reference

        return run_async_reference
    from repro.sim.engine import run_async

    return run_async
