"""Lower a :class:`~repro.sim.schedule.Schedule` into flat arrays.

The vectorized event engine (:mod:`repro.sim.vectorized`) does not walk
``Transfer`` objects, chunk frozensets and ``(node, chunk)`` dicts at
every admission check.  Instead this module compiles a schedule once
into an array-of-structs :class:`LoweredSchedule`:

* per-transfer columns ``src``/``dst``/``port``/``link``/``elems`` —
  the port and the dense directed-link id are precomputed here, so the
  hot loop never calls :meth:`Hypercube.port_towards` (profiling shows
  the indexed engine spends a large share of its time re-deriving and
  re-validating ports, ~6–7 examinations per transfer);
* a *slot* table: every distinct ``(node, chunk)`` pair that can ever
  hold payload gets a dense id, with ``slot_node``/``slot_chunk``
  decoding columns and an ``init_avail`` column (0.0 for initial
  holdings — or their per-chunk release time, see ``release_times`` —
  and ``+inf`` for absent);
* dependency CSR indexes: ``in_ptr``/``in_idx`` (the slots a transfer
  reads at its sender), ``out_ptr``/``out_idx`` (the slots it writes at
  its receiver) and the inverted ``wait_ptr``/``wait_idx`` (the
  transfers waiting on each slot), plus ``init_missing`` — how many of
  each transfer's input slots start out absent.

Lowering is machine- and port-model-independent: the same
:class:`LoweredSchedule` can be replayed under any
:class:`~repro.sim.machine.MachineParams`.  It *does* bake in the
initial holdings (they define the slot table and ``init_avail``).

Adjacency validation is vectorized through the topology's
``edge_ports``: every transfer must cross exactly one port of the host
graph (a cube dimension, a torus ring step).  Offending transfers are
re-checked through ``port_towards`` so the error message matches the
object-path engines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.schedule import Chunk, Schedule, Transfer
from repro.topology.base import Topology

__all__ = ["LoweredSchedule", "lower_schedule"]


@dataclass
class LoweredSchedule:
    """A schedule compiled to flat NumPy columns (see module docstring).

    Attributes:
        n_transfers: number of transfers ``T``.
        n_slots: number of distinct ``(node, chunk)`` payload slots.
        n_links: number of distinct directed links used.
        transfers: transfer id -> original :class:`Transfer` (for error
            reporting, fault events and degraded results).
        chunk_objects: chunk id -> original chunk identifier.
        src, dst, port: per-transfer endpoints and cube dimension.
        link: per-transfer dense directed-link id.
        elems: per-transfer payload size in elements.
        in_ptr, in_idx: CSR — transfer -> sender payload slots.
        out_ptr, out_idx: CSR — transfer -> receiver payload slots.
        wait_ptr, wait_idx: CSR — slot -> transfer ids waiting on it.
        slot_node, slot_chunk: slot -> ``(node, chunk id)`` decode.
        init_avail: slot -> availability time at t=0 (``inf`` = absent).
        init_missing: transfer -> count of input slots absent at t=0.
        link_src, link_dst: link id -> directed endpoints.
    """

    n_transfers: int
    n_slots: int
    n_links: int
    transfers: list[Transfer]
    chunk_objects: list[Chunk]
    src: np.ndarray
    dst: np.ndarray
    port: np.ndarray
    link: np.ndarray
    elems: np.ndarray
    in_ptr: np.ndarray
    in_idx: np.ndarray
    out_ptr: np.ndarray
    out_idx: np.ndarray
    wait_ptr: np.ndarray
    wait_idx: np.ndarray
    slot_node: np.ndarray
    slot_chunk: np.ndarray
    init_avail: np.ndarray
    init_missing: np.ndarray
    link_src: np.ndarray
    link_dst: np.ndarray

    @property
    def table_bytes(self) -> int:
        """Total bytes held by the lowered arrays (peak table footprint)."""
        return sum(
            getattr(self, name).nbytes
            for name in (
                "src", "dst", "port", "link", "elems",
                "in_ptr", "in_idx", "out_ptr", "out_idx",
                "wait_ptr", "wait_idx",
                "slot_node", "slot_chunk", "init_avail", "init_missing",
                "link_src", "link_dst",
            )
        )


def lower_schedule(
    cube: Topology,
    schedule: Schedule,
    initial_holdings: dict[int, set[Chunk]],
    release_times: dict[Chunk, float] | None = None,
) -> LoweredSchedule:
    """Compile ``schedule`` + ``initial_holdings`` into flat arrays.

    ``release_times`` optionally delays initially-held chunks: a chunk
    mapped to ``t`` becomes available at its holders at instant ``t``
    instead of 0.0, so no transfer reading it can start earlier.  This
    is how the service layer gates a job admitted at time ``t`` into an
    already-running merged program (multi-job runs, see
    :mod:`repro.sim.multi`); absent chunks still start at ``+inf``.
    """
    transfers = schedule.all_transfers()
    n_transfers = len(transfers)
    chunk_sizes = schedule.chunk_sizes

    # -- chunk interning ---------------------------------------------------
    chunk_ids: dict[Chunk, int] = {}
    chunk_objects: list[Chunk] = []

    def _cid(c: Chunk) -> int:
        i = chunk_ids.get(c)
        if i is None:
            i = len(chunk_objects)
            chunk_ids[c] = i
            chunk_objects.append(c)
        return i

    # One Python pass over the transfer list gathers everything that
    # needs object hashing; all index construction after it is NumPy.
    src_l: list[int] = []
    dst_l: list[int] = []
    elems_l: list[int] = []
    in_counts: list[int] = []
    in_cids: list[int] = []
    in_nodes: list[int] = []
    out_cids: list[int] = []
    out_nodes: list[int] = []
    for t in transfers:
        s, d = t.src, t.dst
        src_l.append(s)
        dst_l.append(d)
        total = 0
        k = 0
        for c in t.chunks:
            ci = _cid(c)
            total += chunk_sizes[c]
            in_cids.append(ci)
            in_nodes.append(s)
            out_cids.append(ci)
            out_nodes.append(d)
            k += 1
        elems_l.append(total)
        in_counts.append(k)

    init_nodes: list[int] = []
    init_cids: list[int] = []
    init_at: list[float] = []
    for node, chunks in initial_holdings.items():
        for c in chunks:
            init_nodes.append(node)
            init_cids.append(_cid(c))
            init_at.append(
                release_times.get(c, 0.0) if release_times else 0.0
            )

    n_chunks = max(1, len(chunk_objects))
    num_nodes = cube.num_nodes

    src = np.asarray(src_l, dtype=np.int64).reshape(n_transfers)
    dst = np.asarray(dst_l, dtype=np.int64).reshape(n_transfers)
    elems = np.asarray(elems_l, dtype=np.int64).reshape(n_transfers)

    # -- adjacency validation + port extraction (vectorized) ---------------
    port = cube.edge_ports(src, dst).astype(np.int32).reshape(n_transfers)
    if n_transfers and not bool((port >= 0).all()):
        bad = int(np.flatnonzero(port < 0)[0])
        # re-raise through the canonical validators for the same message
        cube.check_node(transfers[bad].src)
        cube.check_node(transfers[bad].dst)
        cube.port_towards(transfers[bad].src, transfers[bad].dst)
        raise AssertionError("unreachable")  # pragma: no cover

    # -- dense directed-link ids -------------------------------------------
    edge_key = src * num_nodes + dst
    uniq_edges, link = np.unique(edge_key, return_inverse=True)
    link = link.astype(np.int64).reshape(n_transfers)
    link_src = (uniq_edges // num_nodes).astype(np.int32)
    link_dst = (uniq_edges % num_nodes).astype(np.int32)

    # -- slot table: every (node, chunk) that can hold payload -------------
    in_key = (
        np.asarray(in_nodes, dtype=np.int64) * n_chunks
        + np.asarray(in_cids, dtype=np.int64)
    )
    out_key = (
        np.asarray(out_nodes, dtype=np.int64) * n_chunks
        + np.asarray(out_cids, dtype=np.int64)
    )
    init_key = (
        np.asarray(init_nodes, dtype=np.int64) * n_chunks
        + np.asarray(init_cids, dtype=np.int64)
    )
    all_keys = np.concatenate([in_key, out_key, init_key])
    uniq_slots, inv = np.unique(all_keys, return_inverse=True)
    inv = inv.astype(np.int64)
    n_slots = int(uniq_slots.size)
    n_in = in_key.size
    n_out = out_key.size
    in_idx = inv[:n_in]
    out_idx = inv[n_in:n_in + n_out]
    init_slots = inv[n_in + n_out:]
    slot_node = (uniq_slots // n_chunks).astype(np.int64)
    slot_chunk = (uniq_slots % n_chunks).astype(np.int64)

    counts = np.asarray(in_counts, dtype=np.int64).reshape(n_transfers)
    ptr = np.zeros(n_transfers + 1, dtype=np.int64)
    np.cumsum(counts, out=ptr[1:])
    in_ptr = ptr
    out_ptr = ptr.copy()  # in/out slot lists are parallel per transfer

    init_avail = np.full(n_slots, np.inf)
    # np.minimum.at: a chunk held by several nodes keeps the earliest
    # release should duplicate (node, chunk) init entries ever appear
    np.minimum.at(init_avail, init_slots, np.asarray(init_at, dtype=np.float64))

    # -- inverted dependency index: slot -> waiting transfer ids -----------
    owner = np.repeat(np.arange(n_transfers, dtype=np.int64), counts)
    order = np.argsort(in_idx, kind="stable")
    wait_idx = owner[order]
    wait_ptr = np.zeros(n_slots + 1, dtype=np.int64)
    np.cumsum(np.bincount(in_idx, minlength=n_slots), out=wait_ptr[1:])

    absent = init_avail[in_idx] == np.inf
    init_missing = np.bincount(owner[absent], minlength=n_transfers).astype(
        np.int64
    )

    return LoweredSchedule(
        n_transfers=n_transfers,
        n_slots=n_slots,
        n_links=int(uniq_edges.size),
        transfers=transfers,
        chunk_objects=chunk_objects,
        src=src,
        dst=dst,
        port=port,
        link=link,
        elems=elems,
        in_ptr=in_ptr,
        in_idx=in_idx,
        out_ptr=out_ptr,
        out_idx=out_idx,
        wait_ptr=wait_ptr,
        wait_idx=wait_idx,
        slot_node=slot_node,
        slot_chunk=slot_chunk,
        init_avail=init_avail,
        init_missing=init_missing,
        link_src=link_src,
        link_dst=link_dst,
    )
