"""The paper's three port (communication capability) models.

Every complexity row of Tables 1–4 and 6 is parameterized by one of:

* ``ONE_PORT_HALF`` — "one send *or* receive": a node performs at most
  one communication action per cycle (the most restrictive model).
* ``ONE_PORT_FULL`` — "one send *and* receive": a node may send one
  packet and receive one packet concurrently (the effective model of
  the Intel iPSC, §3).
* ``ALL_PORT`` — concurrent communication on all ``n`` ports in both
  directions (the model under which MSBT/BST reach their lower bounds).
"""

from __future__ import annotations

from enum import Enum

__all__ = ["PortModel"]


class PortModel(Enum):
    """Per-node concurrency constraint on communication actions."""

    ONE_PORT_HALF = "1-send-or-receive"
    ONE_PORT_FULL = "1-send-and-receive"
    ALL_PORT = "all-ports"

    @property
    def max_sends(self) -> int | None:
        """Concurrent sends a node may have in flight (``None`` = one per port)."""
        return None if self is PortModel.ALL_PORT else 1

    @property
    def max_receives(self) -> int | None:
        """Concurrent receives a node may have in flight (``None`` = one per port)."""
        return None if self is PortModel.ALL_PORT else 1

    @property
    def half_duplex(self) -> bool:
        """True when a send and a receive may not overlap at one node."""
        return self is PortModel.ONE_PORT_HALF

    def describe(self) -> str:
        """The paper's wording for this model."""
        return {
            PortModel.ONE_PORT_HALF: "one send or one receive at a time",
            PortModel.ONE_PORT_FULL: "one send and one receive concurrently",
            PortModel.ALL_PORT: "concurrent communication on all ports",
        }[self]
