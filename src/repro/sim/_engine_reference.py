"""Reference (seed) implementation of the asynchronous engine.

This is the original O(T^2) scan-loop engine kept verbatim as a
*timing oracle*: the production engine in :mod:`repro.sim.engine` is a
dependency-indexed rewrite that must produce bit-identical results
(``time``, ``holdings``, ``link_stats`` and the multiset of transfer
start times).  The equivalence suite in
``tests/sim/test_engine_equivalence.py`` runs both on every algorithm
and port model; keep this module untouched unless the *semantics* of
the engine deliberately change.
"""


from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.sim.engine import AsyncResult
from repro.sim.faults import (
    DegradedResult,
    FaultError,
    FaultEvent,
    FaultPlan,
    _check_mode,
    undelivered_map,
)
from repro.sim.machine import MachineParams
from repro.sim.ports import PortModel
from repro.sim.schedule import Chunk, Schedule, Transfer
from repro.sim.trace import LinkStats
from repro.topology.base import Topology

__all__ = ["run_async_reference"]

_EPS = 1e-12


@dataclass
class _Action:
    """One in-flight occupation of a node channel."""

    __slots__ = ("port", "start", "end")

    port: int
    start: float
    end: float


class _Channel:
    """A serialized node channel with cross-port overlap.

    A new action on port ``p`` may start once every in-flight action
    ``a`` satisfies ``t >= a.end`` (same port) or
    ``t >= a.start + (1 - overlap) * (a.end - a.start)`` (other port).
    """

    def __init__(self, overlap: float):
        self._overlap = overlap
        self._actions: list[_Action] = []

    def earliest_start(self, port: int, now: float) -> float:
        t = now
        for a in self._actions:
            if a.port == port:
                t = max(t, a.end)
            else:
                t = max(t, a.start + (1.0 - self._overlap) * (a.end - a.start))
        return t

    def occupy(self, port: int, start: float, end: float) -> None:
        self._actions = [a for a in self._actions if a.end > start + _EPS]
        self._actions.append(_Action(port, start, end))

    def wakeup_times(self, port_hint: int | None = None) -> list[float]:
        """Times at which this channel may admit a new action."""
        out = []
        for a in self._actions:
            out.append(a.end)
            out.append(a.start + (1.0 - self._overlap) * (a.end - a.start))
        return out


def run_async_reference(
    cube: Topology,
    schedule: Schedule,
    port_model: PortModel,
    initial_holdings: dict[int, set[Chunk]],
    machine: MachineParams | None = None,
    faults: FaultPlan | None = None,
    on_fault: str = "raise",
) -> AsyncResult | DegradedResult:
    """Event-driven execution of ``schedule`` under ``port_model``.

    Raises ``RuntimeError`` on deadlock — i.e. when a pending transfer's
    payload can never arrive because the schedule is causally broken.

    Fault semantics are identical to :func:`repro.sim.engine.run_async`
    (the equivalence suite's fault matrix pins both engines to the same
    outcomes): a transfer starting on an active fault raises
    :class:`FaultError` or — in ``report`` mode — is cancelled, with
    the starvation cascade terminating in a :class:`DegradedResult`.
    """
    machine = machine or MachineParams()
    _check_mode(on_fault)
    report = faults is not None and on_fault == "report"
    fault_events: list[FaultEvent] = []
    lost: list[Transfer] = []
    half = port_model.half_duplex
    allport = port_model is PortModel.ALL_PORT

    # Chunk availability per node: time at which (node, chunk) is present.
    avail: dict[tuple[int, Chunk], float] = {}
    for node, chunks in initial_holdings.items():
        for c in chunks:
            avail[(node, c)] = 0.0

    # Channels: one per node under ONE_PORT_HALF; separate send/recv
    # channels under ONE_PORT_FULL; per-directed-link only under ALL_PORT.
    send_ch: dict[int, _Channel] = {}
    recv_ch: dict[int, _Channel] = {}

    def _send_channel(node: int) -> _Channel:
        ch = send_ch.get(node)
        if ch is None:
            ch = _Channel(machine.overlap)
            send_ch[node] = ch
            if half:
                recv_ch[node] = ch  # shared channel
        return ch

    def _recv_channel(node: int) -> _Channel:
        ch = recv_ch.get(node)
        if ch is None:
            if half:
                ch = _send_channel(node)
            else:
                ch = _Channel(machine.overlap)
                recv_ch[node] = ch
        return ch

    link_free: dict[tuple[int, int], float] = {}

    pending: list[Transfer] = schedule.all_transfers()
    sizes = [schedule.transfer_elems(t) for t in pending]
    done = [False] * len(pending)
    remaining = len(pending)

    stats = LinkStats()
    start_times: list[float] = []
    finish = 0.0
    now = 0.0
    wake: list[float] = []

    def _ready_time(idx: int) -> float | None:
        """Payload-availability time at the sender, or None if absent."""
        t = pending[idx]
        worst = 0.0
        for c in t.chunks:
            a = avail.get((t.src, c))
            if a is None:
                return None
            worst = max(worst, a)
        return worst

    while remaining:
        progress = True
        while progress:
            progress = False
            for idx, t in enumerate(pending):
                if done[idx]:
                    continue
                ready = _ready_time(idx)
                if ready is None or ready > now + _EPS:
                    if ready is not None:
                        heapq.heappush(wake, ready)
                    continue
                port = cube.port_towards(t.src, t.dst)
                start = now
                if not allport:
                    start = max(start, _send_channel(t.src).earliest_start(port, now))
                    start = max(start, _recv_channel(t.dst).earliest_start(port, now))
                start = max(start, link_free.get((t.src, t.dst), 0.0))
                if start > now + _EPS:
                    heapq.heappush(wake, start)
                    continue
                if faults is not None:
                    hit = faults.blocks(t.src, t.dst, start)
                    if hit is not None:
                        kind, subject = hit
                        if on_fault == "raise":
                            raise FaultError(
                                f"transfer {t.src}->{t.dst} blocked by dead "
                                f"{kind} {subject} at t={start:.6g}; pending "
                                f"chunks {sorted(map(repr, t.chunks))[:4]}",
                                edge=(t.src, t.dst),
                                node=subject if kind == "node" else None,
                                time=start,
                                chunks=t.chunks,
                            )
                        fault_events.append(FaultEvent(t, start, kind, subject))
                        lost.append(t)
                        done[idx] = True
                        remaining -= 1
                        progress = True
                        continue
                dur = machine.send_cost(sizes[idx])
                end = start + dur
                if not allport:
                    _send_channel(t.src).occupy(port, start, end)
                    _recv_channel(t.dst).occupy(port, start, end)
                link_free[(t.src, t.dst)] = end
                for c in t.chunks:
                    key = (t.dst, c)
                    if key not in avail or avail[key] > end:
                        avail[key] = end
                stats.record(t.src, t.dst, sizes[idx])
                start_times.append(start)
                heapq.heappush(wake, end)
                if not allport:
                    heapq.heappush(wake, start + (1.0 - machine.overlap) * dur)
                finish = max(finish, end)
                done[idx] = True
                remaining -= 1
                progress = True
        if not remaining:
            break
        # advance to the next wake-up strictly after `now`
        nxt = None
        while wake:
            cand = heapq.heappop(wake)
            if cand > now + _EPS:
                nxt = cand
                break
        if nxt is None:
            if report and fault_events:
                break  # starvation cascade from cancelled transfers
            stuck = [pending[i] for i in range(len(pending)) if not done[i]][:4]
            raise RuntimeError(
                f"schedule deadlocked with {remaining} transfers pending, "
                f"e.g. {stuck}"
            )
        now = nxt

    holdings: dict[int, set[Chunk]] = {node: set() for node in cube.nodes()}
    for (node, chunk) in avail:
        holdings[node].add(chunk)

    if fault_events or remaining:
        lost.extend(pending[i] for i in range(len(pending)) if not done[i])
        return DegradedResult(
            time=finish,
            holdings=holdings,
            link_stats=stats,
            fault_events=fault_events,
            undelivered=undelivered_map(lost, holdings),
            transfers_executed=len(start_times),
            transfers_lost=len(lost),
            start_times=start_times,
        )

    return AsyncResult(
        time=finish,
        holdings=holdings,
        link_stats=stats,
        start_times=start_times,
        transfers_executed=len(pending),
    )
